// Label-evaluated XPath: §2 of the paper motivates labelling schemes by
// XPath processing — "the value of a node label permits the evaluation of
// ancestor-descendant, parent-child and sibling-based relationships ...
// contributing significantly to the reduction of XPath processing costs".
// This example runs the same queries under a full-support scheme (QED)
// and a Partial scheme (Vector), showing the Figure 7 XPath column as
// observable behaviour.

#include <cstdio>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace {

using namespace xmlup;

const char* kCatalog = R"(<catalog>
  <book id="b1" year="2004">
    <title>Wayfarer</title>
    <author>Matthew Dickens</author>
    <price>12.99</price>
  </book>
  <book id="b2" year="1965">
    <title>Dune</title>
    <author>Frank Herbert</author>
    <price>9.99</price>
  </book>
  <book id="b3" year="1965">
    <title>The Caves of Steel</title>
    <author>Isaac Asimov</author>
  </book>
</catalog>)";

void RunQueries(const char* scheme_name) {
  printf("--- scheme: %s ---\n", scheme_name);
  auto tree = xml::ParseDocument(kCatalog);
  if (!tree.ok()) return;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return;
  xpath::XPathEvaluator eval(&*doc, xpath::EvalMode::kLabels);

  const char* queries[] = {
      "descendant::title",
      "descendant::author[.='Frank Herbert']/ancestor::book/"
      "descendant::title",
      "//title",
      "book[@year='1965']/title",
      "//author[.='Frank Herbert']/preceding-sibling::title",
      "book[price]/title",
      "book[last()]/title",
      "//text()",
  };
  for (const char* query : queries) {
    auto result = eval.Query(query);
    printf("  %-52s -> ", query);
    if (!result.ok()) {
      printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    printf("{");
    for (size_t i = 0; i < result->size(); ++i) {
      if (i > 0) printf(", ");
      printf("%s", eval.StringValue((*result)[i]).c_str());
    }
    printf("}\n");
  }
  printf("\n");
}

}  // namespace

int main() {
  printf("=== XPath evaluated from labels alone ===\n\n");
  // Full XPath support (Figure 7: F): every axis works.
  RunQueries("qed");
  // Partial support (Figure 7: P): ancestor/descendant work, parent-child
  // and sibling axes are not evaluable from the labels.
  RunQueries("vector");
  printf("The failures under 'vector' are Figure 7's Partial grade made "
         "concrete: a containment\nlabel can prove ancestry but cannot "
         "name a parent. An encoding scheme (Figure 2)\nsupplies the "
         "missing structure — at the cost of the extra joins §5.1 "
         "mentions.\n");
  return 0;
}
