// §5.2 scenario 2: "an XML repository that is expected to consume very
// large documents on a regular basis may consider a labelling scheme that
// is not subject to the overflow problem."
//
// This example simulates a news-feed repository: a large base document
// ingests a continuous stream of appended entries plus skewed editorial
// insertions. A fixed-width scheme (DLN, small budget) is driven into
// repeated overflow relabelling passes, while QED absorbs the same stream
// without touching an existing label.

#include <cstdio>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using xml::NodeId;
using xml::NodeKind;

struct IngestReport {
  size_t ingested = 0;
  uint64_t overflow_passes = 0;
  uint64_t labels_rewritten = 0;
  double avg_bits = 0;
  bool exhausted = false;
};

bool Ingest(const std::string& scheme_name,
            const labels::SchemeOptions& options, IngestReport* report) {
  auto scheme = labels::CreateScheme(scheme_name, options);
  if (!scheme.ok()) return false;
  workload::DocumentShape shape;
  shape.target_nodes = 2000;
  shape.max_depth = 4;
  shape.max_fanout = 12;
  shape.seed = 101;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return false;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return false;
  (*scheme)->ResetCounters();

  // The feed: 1500 appended entries at the feed element, with a 20%
  // mixture of skewed editorial inserts near the front.
  NodeId feed = doc->tree().first_child(doc->tree().root());
  workload::InsertionPlanner editorial(
      workload::InsertPattern::kSkewedFixed, 7);
  for (size_t i = 0; i < 1500; ++i) {
    common::Result<NodeId> node(common::Status::Internal("unset"));
    if (i % 5 == 4) {
      auto pos = editorial.Next(doc->tree());
      if (!pos.ok()) return false;
      node = doc->InsertNode(pos->parent, NodeKind::kElement, "edit", "",
                             pos->before);
    } else {
      std::string value = "e";
      value += std::to_string(i);
      node = doc->InsertNode(feed, NodeKind::kElement, "entry",
                             std::move(value));
    }
    if (!node.ok()) {
      report->exhausted = true;
      break;
    }
    ++report->ingested;
  }
  report->overflow_passes = (*scheme)->counters().overflows;
  report->labels_rewritten = (*scheme)->counters().relabels;
  report->avg_bits = doc->AverageLabelBits();
  return true;
}

}  // namespace

int main() {
  printf("=== Bulk feed ingest: why §5.2 prescribes overflow-free schemes "
         "===\n\n");
  labels::SchemeOptions options;
  options.dln_max_components = 8;  // DLN's fixed label size.

  printf("%-10s %10s %16s %18s %10s\n", "scheme", "ingested",
         "overflow passes", "labels rewritten", "bits/label");
  for (const char* scheme : {"dln", "cdbs", "qed", "cdqs", "vector"}) {
    IngestReport report;
    if (!Ingest(scheme, options, &report)) {
      printf("%-10s ERROR\n", scheme);
      return 1;
    }
    printf("%-10s %10zu %16llu %18llu %10.1f%s\n", scheme, report.ingested,
           static_cast<unsigned long long>(report.overflow_passes),
           static_cast<unsigned long long>(report.labels_rewritten),
           report.avg_bits, report.exhausted ? "  (exhausted)" : "");
  }
  printf("\nThe fixed-width schemes fail on a pure ingest workload — DLN "
         "exhausts its fixed label\nsize outright, CDBS pays repeated "
         "relabelling passes — while the separator-encoded\nquaternary "
         "schemes and the vector scheme never rewrite a label.\n");
  return 0;
}
