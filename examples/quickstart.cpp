// Quickstart: parse a document, label it with a dynamic scheme, apply
// structural updates without relabelling, and answer XPath axes from the
// labels alone.

#include <cstdio>

#include "core/axis_evaluator.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xmlup;

  // 1. Parse a textual document into the tree representation (§2.1).
  const char* text = R"(<library>
    <book id="b1"><title>Wayfarer</title></book>
    <book id="b2"><title>Dune</title></book>
  </library>)";
  auto tree = xml::ParseDocument(text);
  if (!tree.ok()) {
    fprintf(stderr, "parse error: %s\n", tree.status().ToString().c_str());
    return 1;
  }

  // 2. Label it with QED — persistent, overflow-free quaternary codes.
  auto scheme = labels::CreateScheme("qed");
  if (!scheme.ok()) return 1;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return 1;

  printf("Initial labels:\n");
  for (xml::NodeId n : doc->tree().PreorderNodes()) {
    printf("  %-8s %s\n",
           doc->tree().name(n).empty() ? doc->tree().value(n).c_str()
                                       : doc->tree().name(n).c_str(),
           doc->scheme().Render(doc->label(n)).c_str());
  }

  // 3. Insert a book between the two existing ones — no relabelling.
  xml::NodeId second = doc->tree().Children(doc->tree().root())[1];
  core::UpdateStats stats;
  auto fresh = doc->InsertNode(doc->tree().root(), xml::NodeKind::kElement,
                               "book", "", second, &stats);
  if (!fresh.ok()) return 1;
  auto title = doc->InsertNode(*fresh, xml::NodeKind::kElement, "title", "");
  if (!title.ok()) return 1;
  if (!doc->InsertNode(*title, xml::NodeKind::kText, "", "Hyperion").ok()) {
    return 1;
  }
  printf("\nInserted a book between b1 and b2: label %s, relabelled %zu "
         "existing nodes\n",
         doc->scheme().Render(doc->label(*fresh)).c_str(), stats.relabeled);

  // 4. Query axes from labels alone.
  core::AxisEvaluator axes(&*doc);
  printf("\nDescendants of the new book (by labels only):\n");
  for (xml::NodeId n : axes.Descendants(*fresh)) {
    printf("  %s '%s'\n",
           std::string(xml::NodeKindName(doc->tree().kind(n))).c_str(),
           doc->tree().name(n).empty() ? doc->tree().value(n).c_str()
                                       : doc->tree().name(n).c_str());
  }

  // 5. Serialise the updated document back to text (§2.3).
  xml::SerializeOptions pretty;
  pretty.pretty = true;
  printf("\nUpdated document:\n%s",
         xml::SerializeDocument(doc->tree(), pretty).value().c_str());
  return 0;
}
