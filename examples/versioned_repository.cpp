// §5.2 scenario 1: "a repository that may want to record document history
// and enable version control would select a labelling scheme supporting
// persistent labels."
//
// This example builds a tiny versioned XML store: every node is addressed
// by its label, and a changelog of (label, operation) entries is recorded
// across versions. Because the chosen scheme (CDQS) has persistent
// labels, entries recorded against version 1 still resolve after many
// later updates — and the example demonstrates why DeweyID would break
// the changelog.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace {

using namespace xmlup;
using labels::Label;
using labels::LabelHash;
using xml::NodeId;
using xml::NodeKind;

// A changelog entry: which labelled node changed and how.
struct ChangeEntry {
  int version;
  std::string operation;
  std::string label_text;
  Label label;
};

// Resolves a label back to a live node (a by-label index).
NodeId Resolve(const core::LabeledDocument& doc, const Label& label) {
  for (NodeId n : doc.tree().PreorderNodes()) {
    if (doc.label(n) == label) return n;
  }
  return xml::kInvalidNode;
}

int RunScenario(const std::string& scheme_name) {
  printf("--- scheme: %s ---\n", scheme_name.c_str());
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return 1;
  auto doc = core::LabeledDocument::Build(workload::SampleBookDocument(),
                                          scheme->get());
  if (!doc.ok()) return 1;

  // Version 1: bookmark the <author> element by its label.
  NodeId author = doc->tree().Children(doc->tree().root())[1];
  std::vector<ChangeEntry> changelog;
  changelog.push_back({1, "bookmark author",
                       doc->scheme().Render(doc->label(author)),
                       doc->label(author)});
  printf("v1: bookmarked <author> under label %s\n",
         changelog.back().label_text.c_str());

  // Versions 2..5: editorial churn — chapters inserted before, after and
  // between existing children.
  size_t total_relabels = 0;
  for (int version = 2; version <= 5; ++version) {
    core::UpdateStats stats;
    NodeId first = doc->tree().first_child(doc->tree().root());
    std::string value = "v";
    value += std::to_string(version);
    auto a = doc->InsertNode(doc->tree().root(), NodeKind::kElement,
                             "chapter", std::move(value), first, &stats);
    if (!a.ok()) return 1;
    total_relabels += stats.relabeled;
    auto b = doc->InsertNode(doc->tree().root(), NodeKind::kElement,
                             "appendix", "", xml::kInvalidNode, &stats);
    if (!b.ok()) return 1;
    total_relabels += stats.relabeled;
    changelog.push_back({version, "insert chapter+appendix",
                         doc->scheme().Render(doc->label(*a)),
                         doc->label(*a)});
  }
  printf("v2..v5: 8 structural updates, %zu existing labels rewritten\n",
         total_relabels);

  // Replay: does the v1 bookmark still resolve?
  NodeId resolved = Resolve(*doc, changelog.front().label);
  bool ok = resolved != xml::kInvalidNode &&
            doc->tree().name(resolved) == "author";
  printf("v5: resolving the v1 bookmark %s -> %s\n\n",
         changelog.front().label_text.c_str(),
         ok ? "still addresses <author> (persistent labels)"
            : "DANGLING — the node was relabelled; the changelog is broken");
  return ok ? 0 : 2;
}

}  // namespace

int main() {
  printf("=== Versioned repository: why §5.2 prescribes persistent labels "
         "===\n\n");
  int persistent = RunScenario("cdqs");
  int transient = RunScenario("dewey");
  // CDQS must keep the bookmark alive; DeweyID must break it.
  if (persistent != 0) return 1;
  if (transient != 2) return 1;
  printf("Conclusion: version-controlled repositories need a scheme graded "
         "F on Persistent Labels\n(the framework recommends ORDPATH, "
         "ImprovedBinary, QED, CDQS or Vector).\n");
  return 0;
}
