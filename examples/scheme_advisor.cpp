// The paper's §5.2 use-case as a tool: "the evaluation framework can
// provide assistance in the selection of a dynamic labelling scheme for
// an XML repository by enabling the database designer to select the
// labelling scheme that is most suitable for their requirements."
//
// Usage:
//   scheme_advisor [property...]
// where each property is one of: persistent, xpath, level, overflow,
// orthogonal, compact, no-division, no-recursion. With no arguments the
// advisor scores every scheme by the number of fully satisfied
// properties (reproducing the paper's conclusion that CDQS is the most
// generic scheme).

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.h"

namespace {

using namespace xmlup;
using core::Compliance;
using core::SchemeEvaluation;

int FullCount(const SchemeEvaluation& eval) {
  int count = 0;
  for (const core::PropertyResult* p :
       {&eval.persistent, &eval.xpath, &eval.level, &eval.overflow,
        &eval.orthogonal, &eval.compact, &eval.division, &eval.recursion}) {
    if (p->compliance == Compliance::kFull) ++count;
  }
  return count;
}

bool Satisfies(const SchemeEvaluation& eval, const std::string& property) {
  auto full = [](const core::PropertyResult& r) {
    return r.compliance == Compliance::kFull;
  };
  if (property == "persistent") return full(eval.persistent);
  if (property == "xpath") return full(eval.xpath);
  if (property == "level") return full(eval.level);
  if (property == "overflow") return full(eval.overflow);
  if (property == "orthogonal") return full(eval.orthogonal);
  if (property == "compact") return full(eval.compact);
  if (property == "no-division") return full(eval.division);
  if (property == "no-recursion") return full(eval.recursion);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required(argv + 1, argv + argc);

  core::EvaluationFramework framework;
  auto rows = framework.EvaluateAll(/*matrix_only=*/false);
  if (!rows.ok()) {
    fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }

  if (required.empty()) {
    printf("=== Scheme advisor: schemes ranked by fully satisfied "
           "properties ===\n\n");
    std::vector<const SchemeEvaluation*> ranked;
    for (const SchemeEvaluation& eval : *rows) ranked.push_back(&eval);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const SchemeEvaluation* a, const SchemeEvaluation* b) {
                       return FullCount(*a) > FullCount(*b);
                     });
    for (const SchemeEvaluation* eval : ranked) {
      printf("%-22s %d/8 full marks%s\n", eval->display_name.c_str(),
             FullCount(*eval),
             eval->in_paper_matrix ? "" : "  (extension)");
    }
    printf("\nThe paper's conclusion (§5.2): \"the CDQS labelling scheme "
           "satisfies the greater\nnumber of properties and thus may be "
           "considered the most generic.\"\n");
    return 0;
  }

  printf("=== Schemes satisfying:");
  for (const std::string& p : required) printf(" %s", p.c_str());
  printf(" ===\n\n");
  bool any = false;
  for (const SchemeEvaluation& eval : *rows) {
    bool ok = true;
    for (const std::string& p : required) {
      if (!Satisfies(eval, p)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      printf("  %s%s\n", eval.display_name.c_str(),
             eval.in_paper_matrix ? "" : "  (extension)");
      any = true;
    }
  }
  if (!any) printf("  (none — relax a requirement)\n");
  return 0;
}
