// A durable XML document store in four acts: open, edit, crash, recover.
//
// The DocumentStore pairs a labelled document (any scheme from the
// registry) with a write-ahead journal: every structural update is
// framed, checksummed, and fsync'd before it is acknowledged, so a crash
// at ANY byte of the journal loses at most the unacknowledged tail. The
// crash here is simulated with the fault-injection file system: a write
// cap makes the "kernel" silently drop bytes past a chosen offset, the
// process "dies" (the store object is destroyed), and recovery reopens
// the same directory.

#include <cstdio>
#include <string>

#include "store/document_store.h"
#include "store/file.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using namespace xmlup;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

void PrintDocument(const char* heading, const core::LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  std::printf("%s\n  %s\n", heading,
              text.ok() ? text->c_str() : text.status().ToString().c_str());
}

}  // namespace

int main() {
  MemFileSystem fs;  // swap for store::PosixFileSystem() to hit real disk
  StoreOptions options;
  options.fs = &fs;

  // Act 1: create the store. The initial document becomes snapshot-000001
  // and an empty journal-000001 is opened for appends.
  auto tree = xml::ParseDocument(
      "<library><shelf id=\"a\"><book><title>Iliad</title></book></shelf>"
      "</library>");
  if (!tree.ok()) return 1;
  auto created =
      DocumentStore::Create("db", std::move(*tree), "ordpath", options);
  if (!created.ok()) {
    std::printf("create failed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  PrintDocument("initial document:", (*created)->document());

  // Act 2: edit. Each update is journalled and fsync'd before InsertNode
  // returns; the journal, not the snapshot, is the durable truth.
  {
    DocumentStore& st = **created;
    NodeId root = st.document().tree().root();
    auto shelf = st.InsertNode(root, xml::NodeKind::kElement, "shelf", "");
    if (!shelf.ok()) return 1;
    auto book = st.InsertNode(*shelf, xml::NodeKind::kElement, "book", "");
    if (!book.ok()) return 1;
    auto title =
        st.InsertNode(*book, xml::NodeKind::kElement, "title", "");
    if (!title.ok()) return 1;
    if (!st.InsertNode(*title, xml::NodeKind::kText, "", "Odyssey").ok()) {
      return 1;
    }
    PrintDocument("after four edits:", st.document());
    std::printf("  journal: %llu records, %llu bytes\n",
                static_cast<unsigned long long>(st.stats().journal_records),
                static_cast<unsigned long long>(st.stats().journal_bytes));
  }

  // Act 3: crash. Cap the journal file at its current durable size, then
  // apply one more edit: the store believes the write succeeded (as a
  // kernel page cache would claim), but the bytes never reach "disk".
  std::string journal_path = "db/" + store::JournalFileName(1);
  fs.SetWriteLimit(journal_path, fs.FileSize(journal_path) + 7);
  {
    DocumentStore& st = **created;
    NodeId root = st.document().tree().root();
    auto lost = st.InsertNode(root, xml::NodeKind::kElement, "lost", "");
    std::printf("\ncrashing with a torn record%s...\n",
                lost.ok() ? " (the store saw a successful write)" : "");
  }
  created->reset();  // the process dies here

  // Act 4: recover. Open scans the journal, drops the torn tail at the
  // first bad frame, replays the durable prefix against the snapshot,
  // and verifies labels match what the original session assigned.
  auto recovered = DocumentStore::Open("db", options);
  if (!recovered.ok()) {
    std::printf("recovery failed: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  const auto& stats = (*recovered)->stats();
  std::printf("recovered %llu records, truncated %llu torn bytes\n",
              static_cast<unsigned long long>(stats.recovered_records),
              static_cast<unsigned long long>(stats.truncated_bytes));
  PrintDocument("after recovery (the <lost/> edit is gone):",
                (*recovered)->document());

  // The recovered store is fully writable; a checkpoint folds the journal
  // into a fresh snapshot generation.
  if (!(*recovered)->Checkpoint().ok()) return 1;
  std::printf("checkpointed to generation %llu\n",
              static_cast<unsigned long long>((*recovered)->stats().sequence));
  return 0;
}
