#!/bin/sh
# Workload-engine smoke: the bundled specs drive real traffic against
# both deployment shapes — a single-document `xmlup serve` and a 2-shard
# corpus behind `xmlup route` — and every acked op is accounted for: the
# run must report nonzero ops, zero client-visible errors, and the
# router must report zero route errors. CI uploads the resulting
# BENCH_workload.json.
#
# Usage: workload_smoke.sh <xmlup-binary> [examples/workloads dir]
set -eu

XMLUP="$1"
EXAMPLES="${2:-$(dirname "$0")/../examples/workloads}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Every bundled spec must validate before anything is served.
for spec in "$EXAMPLES"/*.workload; do
  [ -f "$spec" ] || fail "no bundled specs found in $EXAMPLES"
  "$XMLUP" workload check "$spec" || fail "bundled spec $spec does not validate"
done

assert_clean_run() {
  json="$1"; what="$2"
  grep -q '"errors_total": 0' "$json" \
    || fail "$what: errored ops in $(cat "$json")"
  grep -q '"ops_total": 0' "$json" \
    && fail "$what: zero ops acked" || true
}

# --- shape 1: single-document serve ----------------------------------------
DB="$WORK/db"
DBSOCK="$WORK/db.sock"
"$XMLUP" init "$DB" --scheme ordpath > /dev/null
"$XMLUP" serve "$DB" --socket "$DBSOCK" &
DB_PID=$!
i=0
until "$XMLUP" req --socket "$DBSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "serve did not come up"
  sleep 0.1
done

"$XMLUP" workload run "$EXAMPLES/read-heavy.workload" \
  --target "$DBSOCK" --threads 4 --seed 1 --ops 40 \
  --out "$WORK/read-heavy.json" \
  || fail "read-heavy run against serve failed"
assert_clean_run "$WORK/read-heavy.json" "read-heavy"

"$XMLUP" workload run "$EXAMPLES/write-heavy.workload" \
  --target "$DBSOCK" --threads 4 --seed 1 --ops 40 \
  --out "$WORK/write-heavy.json" \
  || fail "write-heavy run against serve failed"
assert_clean_run "$WORK/write-heavy.json" "write-heavy"

"$XMLUP" req --socket "$DBSOCK" --shutdown > /dev/null || fail "serve shutdown"
wait "$DB_PID" || fail "serve exited nonzero"

# --- shape 2: 2-shard corpus behind a router -------------------------------
ASOCK="$WORK/a.sock"
BSOCK="$WORK/b.sock"
RSOCK="$WORK/r.sock"
mkdir -p "$WORK/shard-a" "$WORK/shard-b"
"$XMLUP" serve "$WORK/shard-a" --corpus --socket "$ASOCK" &
A_PID=$!
"$XMLUP" serve "$WORK/shard-b" --corpus --socket "$BSOCK" &
B_PID=$!
"$XMLUP" route --shards "$ASOCK,$BSOCK" --socket "$RSOCK" &
R_PID=$!
i=0
until "$XMLUP" req --socket "$RSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "router did not come up"
  sleep 0.1
done

# The mixed-corpus keyspace; the router places each key on its shard.
for key in alpha beta gamma delta; do
  "$XMLUP" req --socket "$RSOCK" --doc "$key" --create ordpath > /dev/null \
    || fail "creating document $key through the router failed"
done

"$XMLUP" workload run "$EXAMPLES/mixed-corpus.workload" \
  --target "$RSOCK" --threads 4 --seed 1 --ops 60 \
  --out BENCH_workload.json \
  || fail "mixed-corpus run against the router failed"
assert_clean_run BENCH_workload.json "mixed-corpus"

# Update scripts as single --apply frames, routed by document key; the
# reshape node's move/rename prove multi-action transactions survive the
# trip. The scripts grew real subtrees: every document must show them.
"$XMLUP" workload run "$EXAMPLES/script-apply.workload" \
  --target "$RSOCK" --threads 4 --seed 1 --ops 60 \
  --out "$WORK/script-apply.json" \
  || fail "script-apply run against the router failed"
assert_clean_run "$WORK/script-apply.json" "script-apply"
for key in alpha beta gamma delta; do
  "$XMLUP" req --socket "$RSOCK" --doc "$key" --xml \
    | grep -q "<bay\|<shaped" \
    || fail "script-apply: document $key shows no applied scripts"
done

# Every frame found its shard: the router counted no route errors.
"$XMLUP" req --socket "$RSOCK" --stats > "$WORK/router-stats.txt" \
  || fail "router --stats failed"
grep -q '^cluster.route_errors=0$' "$WORK/router-stats.txt" \
  || fail "router reports route errors: $(cat "$WORK/router-stats.txt")"
grep -q '^cluster.route_misses=0$' "$WORK/router-stats.txt" \
  || fail "router reports route misses: $(cat "$WORK/router-stats.txt")"

"$XMLUP" req --socket "$RSOCK" --shutdown > /dev/null || fail "router shutdown"
wait "$R_PID" || fail "router exited nonzero"
"$XMLUP" req --socket "$ASOCK" --shutdown > /dev/null || fail "shard a shutdown"
wait "$A_PID" || fail "shard a exited nonzero"
"$XMLUP" req --socket "$BSOCK" --shutdown > /dev/null || fail "shard b shutdown"
wait "$B_PID" || fail "shard b exited nonzero"

echo "PASS: BENCH_workload.json written"
