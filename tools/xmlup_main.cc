// xmlup — command-line front end for the durable document store.
//
// An xmlstar-style `ed` command set (SNIPPETS §1) over a journaled
// labelled document: open a store, apply structural edits by XPath, crash
// it (or damage the journal deliberately), and recover — all from the
// shell. Every edit is one or more CRC-framed journal records; `cat`
// after a process restart replays them on top of the latest snapshot.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/failover.h"
#include "cluster/router.h"
#include "cluster/sharded_service.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/update.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "replication/applier.h"
#include "replication/fence.h"
#include "replication/source.h"
#include "store/document_store.h"
#include "store/file.h"
#include "updates/script.h"
#include "updates/update.h"
#include "workload/engine/engine.h"
#include "workload/engine/spec.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"

namespace {

using namespace xmlup;
using store::DocumentStore;
using store::StoreOptions;
using xml::NodeId;

int Usage() {
  std::fprintf(stderr, R"(xmlup — durable XML document store

usage:
  xmlup init <dir> --scheme <name> [--xml <file>]
      create a store at <dir> labelling <file> (default: an empty <root/>)
  xmlup ed <dir> [--print] [--labels] [--no-sync] {<action>}...
      apply structural edits; actions are executed in order:
        -i <xpath> -t elem|attr|text|comment -n <name> [-v <value>]
            insert a new sibling before each match
        -a <xpath> -t <type> -n <name> [-v <value>]
            insert a new sibling after each match
        -s <xpath> -t <type> -n <name> [-v <value>]
            insert as a child of each match (attrs before element children)
        -d <xpath>
            delete each matched subtree
        -u <xpath> -v <value>
            replace the value/text of each match
        -m <src-xpath> <dst-xpath>
            move each match to be the last child of <dst-xpath>'s first
            match (attrs slot in before element children)
        -r <xpath> -v <new-name>
            rename each matched element or attribute
      the script is applied all-or-nothing with one fsync at the end
      (group commit): a failing action rolls the journal back, leaving
      the store exactly as before the invocation; a malformed action
      list exits 2 with a one-line diagnostic quoting the bad token
      --print / --labels echo the resulting XML / node labels afterwards
  xmlup apply <dir> <script-file> [--print] [--labels]
      compile an update script and apply it as one all-or-nothing
      transaction. Scripts are line-oriented: '#' comments, blank
      lines, `let NAME = <value>` bindings (referenced as ${NAME}),
      and action lines in the ed grammar above ("quotes" group
      tokens). Compile errors exit 2 with a one-line
      <file>:<line>: diagnostic quoting the offending token
  xmlup apply (--socket <path> | --tcp <host:port>) [--doc <key>]
              <script-file>
      the same script sent to a running server (or through a router
      with --doc) as a single --apply frame: one group-commit
      transaction, acknowledged after the fsync; prints
      <matched> and <epoch>
  xmlup cat <dir> [--pretty]
      recover the document and serialize it to stdout
  xmlup labels <dir>
      recover and list every node with its label (preorder, indented)
  xmlup info <dir>
      recovery and journal statistics
  xmlup stats <dir> [--json] [--timing] [--trace]
      open the store (running recovery) and dump the metrics registry;
      the default snapshot is deterministic — identical stores render
      identical bytes. --timing adds wall-clock histogram values,
      --trace appends the recovery trace spans
  xmlup checkpoint <dir>
      roll the journal into a fresh snapshot
  xmlup damage <dir> --truncate <n> | --flip <byte>[:<bit>]
      deliberately tear or corrupt the live journal (crash simulation)
  xmlup serve <dir> --socket <path> | --tcp <host:port> | --stdio
              [--queue <n>] [--batch <n>] [--apply-workers <n>]
      serve the store to concurrent clients: snapshot-isolated reads,
      single-writer group commit; requests use the wire protocol
      (length-prefixed action/query frames — see `xmlup req`); a
      socket server is also a replication primary: replicas subscribe
      over the same socket. --apply-workers <n> turns on the
      parallel-prepare stage: each group-commit batch's XPath
      resolution and independence analysis fan out over n lanes, and
      provably disjoint transactions skip re-resolution (journal
      bytes stay identical to a serial apply)
  xmlup serve <dir> --corpus --socket <path> | --tcp <host:port>
              [--sync-repl]
      serve a corpus of documents (one store per subdirectory) as a
      cluster shard: every request names its document with
      --doc <key> <tokens...>; --doc <key> --create <scheme> adds one;
      --sync-repl ships each commit to every connected replica before
      acknowledging it (the failover zero-loss mode)
  xmlup serve <dir> --corpus (--socket|--tcp ...)
              --replicate-from <endpoint> [--sync-repl]
      run a replica corpus: every document of the upstream shard is
      tailed into <dir>; documents flip to primary on
      --doc <key> --promote (failover) and back on --demote
  xmlup serve <dir> (--socket|--tcp ...) --replicate-from <endpoint>
              [--replicate-doc <key>]
      run a read-scaling replica: tail the primary's journal stream
      into <dir> (snapshot catch-up when too far behind) and serve
      reads from replicated snapshots; updates are rejected (until a
      --promote flips it into a primary over the same directory).
      <endpoint> is a socket path or tcp:HOST:PORT; --replicate-doc
      subscribes to one document of a corpus shard
  xmlup route --shards <ep>[,<ep>...] --socket <path> | --tcp <host:port>
              [--prefix <key-prefix>=<shard>,...]
              [--replica <shard>=<ep>]... [--failover]
      run a cluster router: forward each --doc <key> frame to the shard
      owning <key> (hash placement, or longest-prefix rules with hash
      fallback) over pooled connections; --cluster-status aggregates
      every shard's health and positions. --replica registers shard
      <shard>'s replica endpoints (repeatable); --failover watches every
      shard and, when one dies, promotes each of its documents' furthest-
      ahead replicas and repoints routing at them automatically
  xmlup promote --socket <path> | --tcp <host:port> [--doc <key>]
              [--epoch <n>]
      flip a running replica into a primary (manual failover): stops its
      applier, fences the old primary's epoch, and opens the full write
      pipeline over the same store directory. --doc targets one document
      of a replica corpus; --epoch forces a fence epoch (default: one
      past the highest known)
  xmlup req --socket <path> | --tcp <host:port> {<token>}...
      send one request frame to a running server and print the reply:
      the ed action grammar above, or -q <xpath>, --xml, --epoch,
      --stats, --ping, --repl-status, --shutdown
  xmlup repl-status --socket <path> | --tcp <host:port>
      replication role, position, and lag of a running server
  xmlup cluster-status --socket <path> | --tcp <host:port>
      cluster health: per-shard reachability, document keys, and
      CommitPoint triples (via a router), or one shard's corpus when
      pointed at the shard directly
  xmlup workload check <spec>
      parse and validate a declarative workload spec (graph of edit/
      query/random-choice/for-n/think-time nodes — see DESIGN.md §11);
      any structural defect exits 2 with a one-line diagnostic quoting
      the offending spec line
  xmlup workload run <spec> --target <endpoint> [--threads <n>]
              [--seed <s>] [--ops <n> | --duration <ms>] [--rate <hz>]
              [--retries <n>]
              [--set <name>=<value>]... [--out <file>] [--trace <file>]
      drive the spec against a running server (socket path or
      tcp:HOST:PORT — a single-document serve, a corpus shard, or a
      router) with <n> worker threads, each bit-reproducibly seeded
      from --seed; stops after --ops client ops per thread, after
      --duration, or after one pass through the graph. --rate paces
      each worker open-loop; --set overrides a spec variable. Per-node
      latency lands in the metrics registry and the run writes per-node
      p50/p95/p99, throughput, and error counts to --out (default
      BENCH_workload.json); --trace dumps the client-side op sequence;
      --retries raises the per-op transport attempt budget (and retries
      routed-unavailable replies) so a run rides out a failover window
  xmlup schemes
      list registered labelling schemes
)");
  return 2;
}

int Fail(const common::Status& status) {
  std::fprintf(stderr, "xmlup: %s\n", status.ToString().c_str());
  return 1;
}

common::Result<std::string> ReadInputFile(const std::string& path) {
  return store::PosixFileSystem()->ReadFile(path);
}

void PrintLabels(const core::LabeledDocument& doc) {
  for (NodeId n : doc.tree().PreorderNodes()) {
    int depth = doc.tree().Depth(n);
    std::string name = doc.tree().name(n);
    if (name.empty()) {
      name.push_back('#');
      name.append(xml::NodeKindName(doc.tree().kind(n)));
    }
    std::printf("%*s%-16s %s\n", depth * 2, "", name.c_str(),
                doc.scheme().Render(doc.label(n)).c_str());
  }
}

int PrintXml(const core::LabeledDocument& doc, bool pretty) {
  xml::SerializeOptions opts;
  opts.pretty = pretty;
  auto text = xml::SerializeDocument(doc.tree(), opts);
  if (!text.ok()) return Fail(text.status());
  std::fputs(text->c_str(), stdout);
  if (text->empty() || text->back() != '\n') std::fputc('\n', stdout);
  return 0;
}

// --- ed / apply -----------------------------------------------------------

// Applies one compiled request list to a local store as an all-or-nothing
// script with a single sync barrier — the body shared by `ed` (argv
// actions) and `apply` (a compiled script file).
int ApplyToLocalStore(const char* cmd, const std::string& dir,
                      const std::vector<updates::UpdateRequest>& actions,
                      bool print, bool labels) {
  StoreOptions options;
  // One barrier for the whole script; a mid-script failure rolls back.
  options.sync_each_update = false;
  // Checkpoints compact NodeIds; roll only between whole edit scripts.
  options.auto_checkpoint = false;
  auto st = DocumentStore::Open(dir, options);
  if (!st.ok()) return Fail(st.status());
  // Nothing this invocation appends is synced until CommitBatch below, so
  // a mid-script failure rolls the journal back to this mark — in place,
  // never rewriting (and so never endangering) the committed prefix.
  const DocumentStore::BatchMark mark = (*st)->Mark();
  for (const updates::UpdateRequest& action : actions) {
    common::Status status = updates::ApplyUpdate(st->get(), action, nullptr);
    if (!status.ok()) {
      // Unwind the unsynced tail this invocation appended: the journal —
      // and therefore the next recovery — must not contain a partially
      // applied script.
      common::Status rolled = (*st)->RollbackTail(mark);
      if (!rolled.ok()) {
        std::fprintf(stderr,
                     "xmlup %s: rollback failed, a partial script may "
                     "remain in the journal: %s\n",
                     cmd, rolled.ToString().c_str());
      }
      return Fail(status);
    }
  }
  common::Status committed = (*st)->CommitBatch();
  if (!committed.ok()) return Fail(committed);
  common::Status rolled = (*st)->MaybeCheckpoint();
  if (!rolled.ok()) return Fail(rolled);
  if (print) {
    int rc = PrintXml((*st)->document(), /*pretty=*/false);
    if (rc != 0) return rc;
  }
  if (labels) PrintLabels((*st)->document());
  return 0;
}

int CmdEd(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string dir = argv[0];
  bool print = false, labels = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--print") {
      print = true;
    } else if (arg == "--labels") {
      labels = true;
    } else if (arg == "--no-sync") {
      // Historical flag: scripts now always commit with one sync at the
      // end (group commit), which is what --no-sync used to request.
    } else {
      tokens.push_back(std::move(arg));
    }
  }
  auto actions = updates::ParseActionTokens(tokens);
  if (!actions.ok()) {
    // A malformed action list is a usage error, not a store failure: the
    // one-line token-quoting diagnostic and exit 2, matching `workload
    // check` and `apply`.
    std::fprintf(stderr, "xmlup ed: %s\n",
                 actions.status().ToString().c_str());
    return 2;
  }
  if (actions->empty()) {
    std::fprintf(stderr, "xmlup ed: no actions given\n");
    return Usage();
  }
  return ApplyToLocalStore("ed", dir, *actions, print, labels);
}

int CmdApply(int argc, char** argv);  // defined after the req helpers

// --- serve / req ----------------------------------------------------------

// Strict positive-count parser for --queue/--batch/--threads/...:
// strtoull's 0-on-junk would otherwise turn a typo into a queue no
// request can ever enter (or a batch size the writer can never drain).
bool ParseCountFor(const char* cmd, const char* flag, const char* text,
                   size_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  size_t narrowed = static_cast<size_t>(value);
  if (errno != 0 || end == text || *end != '\0' || value == 0 ||
      narrowed != value) {
    std::fprintf(stderr, "xmlup %s: %s needs a positive integer, got '%s'\n",
                 cmd, flag, text);
    return false;
  }
  *out = narrowed;
  return true;
}

// Validates a --tcp HOST:PORT spec with the command's one-line-diagnostic
// contract (same spirit as ParseCount above: a typo'd port must not bind
// some other port, it must fail loudly).
bool ParseTcpSpec(const char* cmd, const std::string& spec, std::string* host,
                  uint16_t* port) {
  common::Status status = concurrency::ParseHostPort(spec, host, port);
  if (!status.ok()) {
    std::fprintf(stderr, "xmlup %s: %s\n", cmd, status.ToString().c_str());
    return false;
  }
  return true;
}

int CmdServe(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string dir = argv[0];
  std::string socket_path;
  std::string tcp_spec;
  std::string replicate_from;
  std::string replicate_doc;
  bool stdio = false;
  bool corpus = false;
  bool sync_repl = false;
  concurrency::ConcurrentStoreOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--corpus") {
      corpus = true;
    } else if (arg == "--sync-repl") {
      sync_repl = true;
    } else if (arg == "--replicate-from" && i + 1 < argc) {
      replicate_from = argv[++i];
    } else if (arg == "--replicate-doc" && i + 1 < argc) {
      replicate_doc = argv[++i];
    } else if (arg == "--queue" && i + 1 < argc) {
      if (!ParseCountFor("serve", "--queue", argv[++i], &options.queue_capacity)) return 2;
    } else if (arg == "--batch" && i + 1 < argc) {
      if (!ParseCountFor("serve", "--batch", argv[++i], &options.max_batch)) return 2;
    } else if (arg == "--apply-workers" && i + 1 < argc) {
      if (!ParseCountFor("serve", "--apply-workers", argv[++i],
                         &options.apply_workers)) {
        return 2;
      }
    } else {
      return Usage();
    }
  }
  if ((socket_path.empty() ? 0 : 1) + (tcp_spec.empty() ? 0 : 1) +
          (stdio ? 1 : 0) !=
      1) {
    std::fprintf(
        stderr, "xmlup serve: exactly one of --socket/--tcp/--stdio required\n");
    return 2;
  }
  std::string tcp_host;
  uint16_t tcp_port = 0;
  if (!tcp_spec.empty() &&
      !ParseTcpSpec("serve", tcp_spec, &tcp_host, &tcp_port)) {
    return 2;
  }
  if (!replicate_doc.empty() && replicate_from.empty()) {
    std::fprintf(stderr,
                 "xmlup serve: --replicate-doc needs --replicate-from\n");
    return 2;
  }

  if (corpus) {
    // A cluster shard: one store per subdirectory of `dir`, each with its
    // own pipeline and replication source, multiplexed by --doc <key> —
    // or, with --replicate-from, a replica corpus tailing another shard,
    // ready to be promoted document by document.
    if (stdio) {
      std::fprintf(stderr,
                   "xmlup serve: --corpus needs --socket or --tcp\n");
      return 2;
    }
    cluster::ShardedServiceOptions service_options;
    service_options.store = options;
    service_options.replicate_from = replicate_from;
    service_options.sync_replication = sync_repl;
    auto service = cluster::ShardedService::Open(dir, service_options);
    if (!service.ok()) return Fail(service.status());
    concurrency::Listener listener(service->get());
    common::Status served = tcp_spec.empty()
                                ? listener.ServeUnixSocket(socket_path)
                                : listener.ServeTcp(tcp_host, tcp_port);
    (*service)->Stop();
    if (!served.ok()) return Fail(served);
    return 0;
  }

  if (!replicate_from.empty()) {
    // Replica: no local writer at all. The applier tails the primary into
    // `dir` (a normal store directory — `xmlup cat`/`info` read it) and
    // the server answers reads from replicated snapshots.
    if (stdio) {
      std::fprintf(stderr,
                   "xmlup serve: --replicate-from needs --socket or --tcp, "
                   "not --stdio\n");
      return 2;
    }
    replication::ReplicaApplierOptions applier_options;
    if (!replicate_doc.empty()) {
      applier_options.hello_prefix = {"--doc", replicate_doc};
    }
    auto applier = replication::ReplicaApplier::Start(dir, replicate_from,
                                                      applier_options);
    if (!applier.ok()) return Fail(applier.status());
    concurrency::Server server(applier->get());
    server.SetReplStatus(
        [a = applier->get()] { return a->StatusFields(); });
    // `--promote` flips this replica into a primary in place: stop the
    // applier, fence the old primary's epoch, open the full pipeline
    // over the same directory (the layouts are bit-identical), swap the
    // server's role. The promoted objects must outlive serving.
    struct PromotedRole {
      std::mutex mu;
      std::unique_ptr<replication::ReplicationSource> source;
      std::unique_ptr<concurrency::ConcurrentStore> store;
    };
    auto promoted = std::make_shared<PromotedRole>();
    server.SetPromoteHandler(
        [&, promoted](uint64_t epoch)
            -> common::Result<std::vector<std::string>> {
          std::lock_guard<std::mutex> lock(promoted->mu);
          if (promoted->store != nullptr) {
            return std::vector<std::string>{
                "already-primary",
                "fence=" + std::to_string(promoted->source->fence_epoch())};
          }
          replication::ReplicaApplier* a = applier->get();
          const replication::ReplicaStatus before = a->status();
          if (!before.has_view || before.applied.generation == 0) {
            return common::Status::InvalidArgument(
                "cannot promote: replica holds no document yet");
          }
          a->Stop();
          const store::CommitPoint position = a->status().applied;
          const uint64_t fence_epoch =
              std::max(epoch, a->status().fence_epoch + 1);
          const replication::FenceToken fence{fence_epoch, position};
          XMLUP_RETURN_NOT_OK(
              replication::WriteFence(nullptr, dir, fence));
          replication::ReplicationSource::Options source_options;
          source_options.fence = fence;
          source_options.sync_ship = sync_repl;
          auto source = std::make_unique<replication::ReplicationSource>(
              source_options);
          concurrency::ConcurrentStoreOptions open_options = options;
          open_options.commit_hook = source.get();
          XMLUP_ASSIGN_OR_RETURN(
              std::unique_ptr<concurrency::ConcurrentStore> store,
              concurrency::ConcurrentStore::Open(dir, open_options));
          server.SetRole(store.get(), store.get(), source.get(),
                         [s = source.get()] { return s->StatusFields(); });
          promoted->source = std::move(source);
          promoted->store = std::move(store);
          return std::vector<std::string>{
              "promoted", "fence=" + std::to_string(fence_epoch),
              "generation=" + std::to_string(position.generation),
              "records=" + std::to_string(position.records),
              "bytes=" + std::to_string(position.bytes)};
        });
    common::Status served = tcp_spec.empty()
                                ? server.ServeUnixSocket(socket_path)
                                : server.ServeTcp(tcp_host, tcp_port);
    {
      std::lock_guard<std::mutex> lock(promoted->mu);
      if (promoted->store != nullptr) {
        promoted->store->Stop();
        promoted->source->Close();
      } else {
        (*applier)->Stop();
      }
    }
    if (!served.ok()) return Fail(served);
    return 0;
  }

  // Primary: the source tails every group commit so replicas can
  // subscribe on the serving socket (no-op until one does). The stored
  // fence (if any) carries the epoch across restarts.
  auto fence = replication::ReadFence(nullptr, dir);
  if (!fence.ok()) return Fail(fence.status());
  replication::ReplicationSource::Options source_options;
  source_options.fence = *fence;
  source_options.sync_ship = sync_repl;
  replication::ReplicationSource source(source_options);
  options.commit_hook = &source;
  auto st = concurrency::ConcurrentStore::Open(dir, options);
  if (!st.ok()) return Fail(st.status());
  concurrency::Server server(st->get());
  server.EnableReplication(&source);
  server.SetReplStatus([&source] { return source.StatusFields(); });
  if (stdio) {
    server.ServeConnection(/*in_fd=*/0, /*out_fd=*/1);
  } else {
    common::Status served = tcp_spec.empty()
                                ? server.ServeUnixSocket(socket_path)
                                : server.ServeTcp(tcp_host, tcp_port);
    if (!served.ok()) return Fail(served);
  }
  (*st)->Stop();
  return 0;
}

// Shared by req/repl-status/cluster-status: exactly one of --socket
// <path> / --tcp HOST:PORT, folded into the DialEndpoint spec grammar.
// Returns false (after its one-line diagnostic) on a malformed flag set.
bool ParseEndpointFlags(const char* cmd, const std::string& socket_path,
                        const std::string& tcp_spec, std::string* endpoint) {
  if (socket_path.empty() == tcp_spec.empty()) {
    std::fprintf(stderr, "xmlup %s: exactly one of --socket/--tcp required\n",
                 cmd);
    return false;
  }
  if (!tcp_spec.empty()) {
    std::string host;
    uint16_t port = 0;
    if (!ParseTcpSpec(cmd, tcp_spec, &host, &port)) return false;
    *endpoint = "tcp:" + tcp_spec;
    return true;
  }
  *endpoint = socket_path;
  return true;
}

int CmdReq(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  std::vector<std::string> request;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else {
      request.push_back(std::move(arg));
    }
  }
  std::string endpoint;
  if (!ParseEndpointFlags("req", socket_path, tcp_spec, &endpoint)) return 2;
  if (request.empty()) return Usage();
  auto response = concurrency::EndpointRequest(endpoint, request);
  if (!response.ok()) return Fail(response.status());
  if (response->empty() || (*response)[0] == "err") {
    std::fprintf(stderr, "xmlup req: %s\n",
                 response->size() > 1 ? (*response)[1].c_str()
                                      : "malformed reply");
    return 1;
  }
  for (size_t i = 1; i < response->size(); ++i) {
    std::printf("%s\n", (*response)[i].c_str());
  }
  return 0;
}

// `xmlup apply`: compile an update-script file and run it as one
// transaction — locally against a store directory, or remotely as a
// single `--apply` frame (optionally routed with --doc). Compile errors
// exit 2 with the script compiler's `<file>:<line>: ...` one-liner; the
// remote form compiles locally first so a typo never costs a round-trip.
int CmdApply(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string socket_path;
  std::string tcp_spec;
  std::string doc_key;
  bool print = false, labels = false;
  std::vector<std::string> positional;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--doc" && i + 1 < argc) {
      doc_key = argv[++i];
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--labels") {
      labels = true;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  const bool remote = !socket_path.empty() || !tcp_spec.empty();
  if (remote) {
    if (print || labels) {
      std::fprintf(stderr,
                   "xmlup apply: --print/--labels are local-only (use "
                   "`xmlup req ... --xml` against a server)\n");
      return 2;
    }
    if (positional.size() != 1) {
      std::fprintf(stderr,
                   "xmlup apply: remote form takes exactly one "
                   "<script-file>\n");
      return 2;
    }
  } else {
    if (!doc_key.empty()) {
      std::fprintf(stderr, "xmlup apply: --doc needs --socket or --tcp\n");
      return 2;
    }
    if (positional.size() != 2) return Usage();
  }
  const std::string& script_path = remote ? positional[0] : positional[1];
  auto text = ReadInputFile(script_path);
  if (!text.ok()) {
    std::fprintf(stderr, "xmlup apply: %s\n",
                 text.status().ToString().c_str());
    return 2;
  }
  auto script = updates::ParseUpdateScript(*text, script_path);
  if (!script.ok()) {
    std::fprintf(stderr, "xmlup apply: %s\n",
                 script.status().ToString().c_str());
    return 2;
  }
  if (script->requests.empty()) {
    std::fprintf(stderr, "xmlup apply: %s: script contains no actions\n",
                 script_path.c_str());
    return 2;
  }
  if (!remote) {
    return ApplyToLocalStore("apply", positional[0], script->requests, print,
                             labels);
  }
  std::string endpoint;
  if (!ParseEndpointFlags("apply", socket_path, tcp_spec, &endpoint)) return 2;
  std::vector<std::string> request;
  if (!doc_key.empty()) {
    request.push_back("--doc");
    request.push_back(doc_key);
  }
  request.push_back("--apply");
  request.push_back(*text);  // the server compiles its own copy
  auto response = concurrency::EndpointRequest(endpoint, request);
  if (!response.ok()) return Fail(response.status());
  if (response->empty() || (*response)[0] != "ok") {
    std::fprintf(stderr, "xmlup apply: %s\n",
                 response->size() > 1 ? (*response)[1].c_str()
                                      : "malformed reply");
    return 1;
  }
  for (size_t i = 1; i < response->size(); ++i) {
    std::printf("%s\n", (*response)[i].c_str());
  }
  return 0;
}

// Sugar for `req ... <verb>`: the same wire verb, a memorable name.
// repl-status asks one server for its replication role/lag;
// cluster-status asks a router (or a shard directly) for per-shard
// health, document keys, and CommitPoint triples.
int CmdStatusVerb(const char* cmd, const char* verb, int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else {
      return Usage();
    }
  }
  std::string endpoint;
  if (!ParseEndpointFlags(cmd, socket_path, tcp_spec, &endpoint)) return 2;
  auto response = concurrency::EndpointRequest(endpoint, {verb});
  if (!response.ok()) return Fail(response.status());
  if (response->empty() || (*response)[0] != "ok") {
    std::fprintf(stderr, "xmlup %s: %s\n", cmd,
                 response->size() > 1 ? (*response)[1].c_str()
                                      : "malformed reply");
    return 1;
  }
  for (size_t i = 1; i < response->size(); ++i) {
    std::printf("%s\n", (*response)[i].c_str());
  }
  return 0;
}

// --- promote ----------------------------------------------------------------

// Manual failover: sends `--promote` (optionally scoped to one document
// of a corpus) to a running replica and prints the reply fields.
int CmdPromote(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  std::string doc_key;
  std::string epoch_text;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--doc" && i + 1 < argc) {
      doc_key = argv[++i];
    } else if (arg == "--epoch" && i + 1 < argc) {
      epoch_text = argv[++i];
    } else {
      return Usage();
    }
  }
  std::string endpoint;
  if (!ParseEndpointFlags("promote", socket_path, tcp_spec, &endpoint)) {
    return 2;
  }
  if (!epoch_text.empty()) {
    size_t ignored = 0;
    if (!ParseCountFor("promote", "--epoch", epoch_text.c_str(), &ignored)) {
      return 2;
    }
  }
  std::vector<std::string> request;
  if (!doc_key.empty()) request = {"--doc", doc_key};
  request.push_back("--promote");
  if (!epoch_text.empty()) request.push_back(epoch_text);
  auto response = concurrency::EndpointRequest(endpoint, request);
  if (!response.ok()) return Fail(response.status());
  if (response->empty() || (*response)[0] != "ok") {
    std::fprintf(stderr, "xmlup promote: %s\n",
                 response->size() > 1 ? (*response)[1].c_str()
                                      : "malformed reply");
    return 1;
  }
  for (size_t i = 1; i < response->size(); ++i) {
    std::printf("%s\n", (*response)[i].c_str());
  }
  return 0;
}

// --- route ------------------------------------------------------------------

int CmdRoute(int argc, char** argv) {
  std::string shards_text;
  std::string socket_path;
  std::string tcp_spec;
  std::string prefix_text;
  bool failover = false;
  // shard index -> replica endpoint specs, from repeated --replica flags.
  std::map<size_t, std::vector<std::string>> replica_map;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      shards_text = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--prefix" && i + 1 < argc) {
      prefix_text = argv[++i];
    } else if (arg == "--replica" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const size_t eq = kv.find('=');
      char* end = nullptr;
      errno = 0;
      unsigned long long index =
          eq == std::string::npos
              ? 0
              : std::strtoull(kv.substr(0, eq).c_str(), &end, 10);
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size() ||
          errno != 0 || end == nullptr || *end != '\0') {
        std::fprintf(stderr,
                     "xmlup route: --replica needs <shard-index>=<endpoint>, "
                     "got '%s'\n",
                     kv.c_str());
        return 2;
      }
      std::string spec = kv.substr(eq + 1);
      if (spec.rfind("tcp:", 0) != 0 &&
          spec.find(':') != std::string::npos) {
        spec = "tcp:" + spec;  // bare HOST:PORT is TCP
      }
      replica_map[static_cast<size_t>(index)].push_back(std::move(spec));
    } else if (arg == "--failover") {
      failover = true;
    } else {
      return Usage();
    }
  }
  if (shards_text.empty()) {
    std::fprintf(stderr, "xmlup route: --shards is required\n");
    return 2;
  }
  auto shards = cluster::ParseShardList(shards_text);
  if (!shards.ok()) {
    std::fprintf(stderr, "xmlup route: %s\n",
                 shards.status().ToString().c_str());
    return 2;
  }
  if ((socket_path.empty() ? 0 : 1) + (tcp_spec.empty() ? 0 : 1) != 1) {
    std::fprintf(stderr,
                 "xmlup route: exactly one of --socket/--tcp required\n");
    return 2;
  }
  std::string tcp_host;
  uint16_t tcp_port = 0;
  if (!tcp_spec.empty() &&
      !ParseTcpSpec("route", tcp_spec, &tcp_host, &tcp_port)) {
    return 2;
  }
  std::unique_ptr<cluster::ShardRouter> router;
  if (prefix_text.empty()) {
    router = std::make_unique<cluster::HashRouter>(shards->size());
  } else {
    auto rules = cluster::ParsePrefixRules(prefix_text, shards->size());
    if (!rules.ok()) {
      std::fprintf(stderr, "xmlup route: %s\n",
                   rules.status().ToString().c_str());
      return 2;
    }
    router = std::make_unique<cluster::PrefixRouter>(std::move(*rules),
                                                     shards->size());
  }
  const size_t shard_count = shards->size();
  for (const auto& [index, specs] : replica_map) {
    (void)specs;
    if (index >= shard_count) {
      std::fprintf(stderr,
                   "xmlup route: --replica shard index %zu out of range "
                   "(%zu shards)\n",
                   index, shard_count);
      return 2;
    }
  }
  if (failover && replica_map.empty()) {
    std::fprintf(stderr,
                 "xmlup route: --failover needs at least one --replica\n");
    return 2;
  }
  std::vector<std::string> primary_specs;
  primary_specs.reserve(shard_count);
  for (const cluster::ShardAddress& shard : *shards) {
    primary_specs.push_back(shard.spec);
  }
  cluster::Coordinator coordinator(std::move(*shards), std::move(router));
  std::unique_ptr<cluster::FailoverMonitor> monitor;
  if (failover) {
    std::vector<cluster::ShardTopology> topology(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      topology[i].primary = primary_specs[i];
      auto it = replica_map.find(i);
      if (it != replica_map.end()) topology[i].replicas = it->second;
    }
    monitor = std::make_unique<cluster::FailoverMonitor>(
        &coordinator, std::move(topology), cluster::FailoverOptions{});
    coordinator.SetExtraStatus(
        [raw = monitor.get()] { return raw->StatusFields(); });
  }
  // Startup discovery: one cluster-hello sweep, printed before serving so
  // an operator sees immediately which shards answered and what they own.
  for (const std::string& field : coordinator.ClusterStatusFields()) {
    std::fprintf(stderr, "%s\n", field.c_str());
  }
  if (monitor) monitor->Start();
  concurrency::Listener listener(&coordinator);
  common::Status served = tcp_spec.empty()
                              ? listener.ServeUnixSocket(socket_path)
                              : listener.ServeTcp(tcp_host, tcp_port);
  if (monitor) monitor->Stop();
  if (!served.ok()) return Fail(served);
  return 0;
}

// --- workload ---------------------------------------------------------------

// `workload check <spec>`: the validate-only gate. Exit 2 with the
// parser's one-line spec-quoting diagnostic, matching the CLI's
// bad-flag convention, so CI can vet a spec before opening any traffic.
int CmdWorkloadCheck(int argc, char** argv) {
  if (argc != 1) return Usage();
  auto text = ReadInputFile(argv[0]);
  if (!text.ok()) {
    std::fprintf(stderr, "xmlup workload check: %s\n",
                 text.status().ToString().c_str());
    return 2;
  }
  auto spec = workload::ParseWorkloadSpec(*text);
  if (!spec.ok()) {
    std::fprintf(stderr, "xmlup workload check: %s\n",
                 spec.status().ToString().c_str());
    return 2;
  }
  // nodes includes the implicit finish; report what the author wrote.
  const std::string title = spec->name.empty() ? "" : spec->name + ", ";
  std::printf("ok: %s%zu nodes, start=%s\n", title.c_str(),
              spec->nodes.size() - 1,
              spec->nodes[spec->start].name.c_str());
  return 0;
}

int CmdWorkloadRun(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string spec_path = argv[0];
  workload::EngineOptions options;
  std::string out_path = "BENCH_workload.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) {
      options.target = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseCountFor("workload run", "--threads", argv[++i], &options.threads)) return 2;
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ops" && i + 1 < argc) {
      size_t ops = 0;
      if (!ParseCountFor("workload run", "--ops", argv[++i], &ops)) return 2;
      options.ops_per_thread = ops;
    } else if (arg == "--duration" && i + 1 < argc) {
      size_t ms = 0;
      if (!ParseCountFor("workload run", "--duration", argv[++i], &ms)) return 2;
      options.duration_ms = ms;
    } else if (arg == "--rate" && i + 1 < argc) {
      options.rate_hz = std::strtod(argv[++i], nullptr);
      if (!(options.rate_hz > 0)) {
        std::fprintf(stderr,
                     "xmlup workload run: --rate needs a positive number\n");
        return 2;
      }
    } else if (arg == "--set" && i + 1 < argc) {
      std::string kv = argv[++i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "xmlup workload run: --set needs <name>=<value>, got "
                     "'%s'\n",
                     kv.c_str());
        return 2;
      }
      options.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      options.collect_trace = true;
    } else if (arg == "--retries" && i + 1 < argc) {
      size_t attempts = 0;
      if (!ParseCountFor("workload run", "--retries", argv[++i], &attempts)) {
        return 2;
      }
      // The chaos knob: ops survive a failover window by retrying until
      // the promoted primary answers, and a router's "routed: ...
      // unavailable" reply becomes retryable instead of fatal.
      options.op_attempts = static_cast<int>(attempts);
      options.retry_routed_errors = true;
    } else {
      return Usage();
    }
  }
  if (options.target.empty()) {
    std::fprintf(stderr, "xmlup workload run: --target is required\n");
    return 2;
  }
  if (options.target.rfind("tcp:", 0) == 0) {
    std::string host;
    uint16_t port = 0;
    if (!ParseTcpSpec("workload run", options.target.substr(4), &host,
                      &port)) {
      return 2;
    }
  }
  if (options.ops_per_thread > 0 && options.duration_ms > 0) {
    std::fprintf(stderr,
                 "xmlup workload run: --ops and --duration are mutually "
                 "exclusive\n");
    return 2;
  }

  auto text = ReadInputFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "xmlup workload run: %s\n",
                 text.status().ToString().c_str());
    return 2;
  }
  auto spec = workload::ParseWorkloadSpec(*text);
  if (!spec.ok()) {
    std::fprintf(stderr, "xmlup workload run: %s\n",
                 spec.status().ToString().c_str());
    return 2;
  }

  auto report = workload::RunWorkload(*spec, options);
  if (!report.ok()) return Fail(report.status());

  // Summary to stderr (stdout stays parseable), JSON to --out.
  for (const workload::NodeReport& node : report->nodes) {
    std::fprintf(stderr,
                 "node %-16s %-10s ops=%llu errors=%llu "
                 "p50=%lluus p95=%lluus p99=%lluus\n",
                 node.name.c_str(), node.type.c_str(),
                 static_cast<unsigned long long>(node.ops),
                 static_cast<unsigned long long>(node.errors),
                 static_cast<unsigned long long>(node.latency.p50 / 1000),
                 static_cast<unsigned long long>(node.latency.p95 / 1000),
                 static_cast<unsigned long long>(node.latency.p99 / 1000));
  }
  std::printf("ops=%llu errors=%llu elapsed_ms=%.0f ops_per_s=%.0f\n",
              static_cast<unsigned long long>(report->ops_total),
              static_cast<unsigned long long>(report->errors_total),
              report->elapsed_ms, report->ops_per_s);

  std::string json = workload::RenderWorkloadJson(*spec, options, *report);
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "xmlup workload run: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);

  if (!trace_path.empty()) {
    FILE* trace = std::fopen(trace_path.c_str(), "w");
    if (trace == nullptr) {
      std::fprintf(stderr, "xmlup workload run: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    for (size_t t = 0; t < report->trace.size(); ++t) {
      std::fprintf(trace, "# thread %zu\n", t);
      for (const std::string& line : report->trace[t]) {
        std::fprintf(trace, "%s\n", line.c_str());
      }
    }
    std::fclose(trace);
  }
  return 0;
}

int CmdWorkload(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string sub = argv[0];
  if (sub == "check") return CmdWorkloadCheck(argc - 1, argv + 1);
  if (sub == "run") return CmdWorkloadRun(argc - 1, argv + 1);
  std::fprintf(stderr, "xmlup workload: unknown subcommand '%s'\n",
               sub.c_str());
  return Usage();
}

// --- other commands -------------------------------------------------------

int CmdInit(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string dir = argv[0];
  std::string scheme_name, xml_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--scheme" && i + 1 < argc) {
      scheme_name = argv[++i];
    } else if (arg == "--xml" && i + 1 < argc) {
      xml_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (scheme_name.empty()) {
    std::fprintf(stderr, "xmlup init: --scheme is required\n");
    return Usage();
  }
  xml::Tree tree;
  if (xml_path.empty()) {
    auto root = tree.CreateRoot(xml::NodeKind::kElement, "root");
    if (!root.ok()) return Fail(root.status());
  } else {
    auto text = ReadInputFile(xml_path);
    if (!text.ok()) return Fail(text.status());
    auto parsed = xml::ParseDocument(*text);
    if (!parsed.ok()) return Fail(parsed.status());
    tree = std::move(*parsed);
  }
  auto st = DocumentStore::Create(dir, std::move(tree), scheme_name);
  if (!st.ok()) return Fail(st.status());
  std::printf("created %s: scheme=%s nodes=%zu\n", dir.c_str(),
              scheme_name.c_str(), (*st)->document().tree().node_count());
  return 0;
}

int CmdCat(int argc, char** argv) {
  if (argc < 1) return Usage();
  bool pretty = argc > 1 && std::strcmp(argv[1], "--pretty") == 0;
  auto st = DocumentStore::Open(argv[0]);
  if (!st.ok()) return Fail(st.status());
  return PrintXml((*st)->document(), pretty);
}

int CmdLabels(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto st = DocumentStore::Open(argv[0]);
  if (!st.ok()) return Fail(st.status());
  PrintLabels((*st)->document());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto st = DocumentStore::Open(argv[0]);
  if (!st.ok()) return Fail(st.status());
  const store::StoreStats& stats = (*st)->stats();
  const core::LabeledDocument& doc = (*st)->document();
  std::printf("scheme:             %s\n", doc.scheme().traits().name.c_str());
  std::printf("nodes:              %zu\n", doc.tree().node_count());
  std::printf("avg label bits:     %.1f\n", doc.AverageLabelBits());
  std::printf("generation:         %llu\n",
              static_cast<unsigned long long>(stats.sequence));
  std::printf("journal bytes:      %llu\n",
              static_cast<unsigned long long>(stats.journal_bytes));
  std::printf("journal records:    %llu\n",
              static_cast<unsigned long long>(stats.journal_records));
  std::printf("recovered records:  %llu\n",
              static_cast<unsigned long long>(stats.recovered_records));
  std::printf("truncated bytes:    %llu\n",
              static_cast<unsigned long long>(stats.truncated_bytes));
  // The durable position triple — what a replica's handshake would send.
  const store::CommitPoint commit = (*st)->LastCommitPoint();
  std::printf("last commit:        gen=%llu records=%llu offset=%llu\n",
              static_cast<unsigned long long>(commit.generation),
              static_cast<unsigned long long>(commit.records),
              static_cast<unsigned long long>(commit.bytes));
  return 0;
}

// Opens the store — recovery populates doc.* and store.recovery.* cells —
// and dumps the registry. With metrics compiled out this still recovers
// (so it validates the store) but reports the layer as disabled.
int CmdStats(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string dir = argv[0];
  bool json = false, timing = false, trace = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--trace") {
      trace = true;
    } else {
      return Usage();
    }
  }
  auto st = DocumentStore::Open(dir);
  if (!st.ok()) return Fail(st.status());
  if (!obs::kMetricsEnabled) {
    std::fprintf(stderr,
                 "xmlup stats: metrics are compiled out "
                 "(build with -DXMLUP_METRICS=ON)\n");
    return 1;
  }
  obs::Registry& reg = obs::GlobalMetrics();
  if (json) {
    std::fputs(reg.RenderJson(timing).c_str(), stdout);
  } else {
    std::fputs(reg.RenderText(timing).c_str(), stdout);
  }
  if (trace) {
    std::fputs(obs::GlobalTrace().RenderText().c_str(), stdout);
  }
  return 0;
}

int CmdCheckpoint(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto st = DocumentStore::Open(argv[0]);
  if (!st.ok()) return Fail(st.status());
  common::Status status = (*st)->Checkpoint();
  if (!status.ok()) return Fail(status);
  std::printf("checkpointed %s at generation %llu\n", argv[0],
              static_cast<unsigned long long>((*st)->stats().sequence));
  return 0;
}

int CmdDamage(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string dir = argv[0];
  store::FileSystem* fs = store::PosixFileSystem();
  auto current = fs->ReadFile(dir + "/" + store::kCurrentFileName);
  if (!current.ok()) return Fail(current.status());
  uint64_t sequence = std::strtoull(current->c_str(), nullptr, 10);
  std::string journal_path = dir + "/" + store::JournalFileName(sequence);
  auto bytes = fs->ReadFile(journal_path);
  if (!bytes.ok()) return Fail(bytes.status());

  std::string arg = argv[1];
  if (arg == "--truncate" && argc > 2) {
    uint64_t n = std::strtoull(argv[2], nullptr, 10);
    size_t keep = n >= bytes->size() ? 0 : bytes->size() - n;
    bytes->resize(keep);
    std::printf("tore %llu bytes off %s (now %zu bytes)\n",
                static_cast<unsigned long long>(n), journal_path.c_str(),
                bytes->size());
  } else if (arg == "--flip" && argc > 2) {
    char* colon = nullptr;
    uint64_t offset = std::strtoull(argv[2], &colon, 10);
    int bit = (colon != nullptr && *colon == ':')
                  ? std::atoi(colon + 1)
                  : 0;
    if (offset >= bytes->size() || bit < 0 || bit > 7) {
      return Fail(common::Status::OutOfRange("flip target outside journal"));
    }
    (*bytes)[offset] = static_cast<char>(
        static_cast<uint8_t>((*bytes)[offset]) ^ (1u << bit));
    std::printf("flipped bit %d of byte %llu in %s\n", bit,
                static_cast<unsigned long long>(offset),
                journal_path.c_str());
  } else {
    return Usage();
  }
  auto file = fs->OpenWritable(journal_path,
                               store::FileSystem::WriteMode::kTruncate);
  if (!file.ok()) return Fail(file.status());
  common::Status status = (*file)->Append(*bytes);
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (!status.ok()) return Fail(status);
  return 0;
}

int CmdSchemes() {
  for (const std::string& name : labels::AllSchemeNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "init") return CmdInit(argc - 2, argv + 2);
  if (cmd == "ed") return CmdEd(argc - 2, argv + 2);
  if (cmd == "apply") return CmdApply(argc - 2, argv + 2);
  if (cmd == "serve") return CmdServe(argc - 2, argv + 2);
  if (cmd == "route") return CmdRoute(argc - 2, argv + 2);
  if (cmd == "promote") return CmdPromote(argc - 2, argv + 2);
  if (cmd == "req") return CmdReq(argc - 2, argv + 2);
  if (cmd == "repl-status") {
    return CmdStatusVerb("repl-status", "--repl-status", argc - 2, argv + 2);
  }
  if (cmd == "cluster-status") {
    return CmdStatusVerb("cluster-status", "--cluster-status", argc - 2,
                         argv + 2);
  }
  if (cmd == "workload") return CmdWorkload(argc - 2, argv + 2);
  if (cmd == "cat") return CmdCat(argc - 2, argv + 2);
  if (cmd == "labels") return CmdLabels(argc - 2, argv + 2);
  if (cmd == "info") return CmdInfo(argc - 2, argv + 2);
  if (cmd == "stats") return CmdStats(argc - 2, argv + 2);
  if (cmd == "checkpoint") return CmdCheckpoint(argc - 2, argv + 2);
  if (cmd == "damage") return CmdDamage(argc - 2, argv + 2);
  if (cmd == "schemes") return CmdSchemes();
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "xmlup: unknown command '%s'\n", cmd.c_str());
  return Usage();
}
