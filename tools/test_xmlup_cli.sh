#!/bin/sh
# End-to-end test for the xmlup CLI: a scripted `ed` session on a
# journaled store, followed by a process restart (every xmlup invocation
# is a fresh process), must recover to the exact same XML and labels; a
# deliberately torn journal tail must recover to the pre-tear state.
set -eu

XMLUP="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$WORK/in.xml" <<'EOF'
<library><shelf id="a"><book><title>Iliad</title></book></shelf></library>
EOF

for scheme in ordpath dewey xpath-accelerator; do
  DIR="$WORK/store-$scheme"

  "$XMLUP" init "$DIR" --scheme "$scheme" --xml "$WORK/in.xml" > /dev/null

  # Scripted edit session; --print/--labels capture the in-memory state.
  # Note: in this XPath dialect absolute paths start AT the root element,
  # so the root itself is addressed as '.' and its children as 'shelf'.
  "$XMLUP" ed "$DIR" --print --labels \
    -s '.' -t elem -n shelf \
    -s 'shelf[2]' -t attr -n id -v b \
    -s "//shelf[@id='b']" -t elem -n book \
    -s "//shelf[@id='b']/book" -t elem -n title \
    -s "//shelf[@id='b']/book/title" -t text -v Odyssey \
    -u "shelf[1]/book/title/text()" -v "Iliad (rev)" \
    -i '//book/title' -t comment -v "bought used" \
    -a 'shelf[1]' -t elem -n divider \
    > "$WORK/session.txt"

  # Restart: recover in fresh processes and compare byte for byte.
  "$XMLUP" cat "$DIR" > "$WORK/recovered.txt"
  "$XMLUP" labels "$DIR" >> "$WORK/recovered.txt"
  cmp -s "$WORK/session.txt" "$WORK/recovered.txt" \
    || fail "$scheme: recovered state differs from in-memory session"

  # Crash simulation: add one more edit, tear the journal tail, and check
  # recovery truncates back to the pre-edit state.
  "$XMLUP" cat "$DIR" > "$WORK/before.xml"
  "$XMLUP" ed "$DIR" -s '.' -t elem -n lost > /dev/null
  "$XMLUP" damage "$DIR" --truncate 5 > /dev/null
  # The first recovery after the tear both reports and repairs it, so
  # check info first (later opens see an already-clean journal).
  "$XMLUP" info "$DIR" | grep -q "truncated bytes:    [1-9]" \
    || fail "$scheme: info does not report the truncated tail"
  "$XMLUP" cat "$DIR" > "$WORK/after.xml"
  cmp -s "$WORK/before.xml" "$WORK/after.xml" \
    || fail "$scheme: torn-tail recovery did not drop the partial record"

  # The dropped record's tail is gone for good: the next edit lands after
  # the truncation point and survives.
  "$XMLUP" ed "$DIR" -s '.' -t elem -n annex > /dev/null
  "$XMLUP" cat "$DIR" | grep -q "<annex/>" \
    || fail "$scheme: edit after torn-tail recovery was lost"

  # Checkpoint rolls the journal; the document must be unchanged.
  "$XMLUP" cat "$DIR" > "$WORK/pre_ckpt.xml"
  "$XMLUP" checkpoint "$DIR" > /dev/null
  "$XMLUP" cat "$DIR" > "$WORK/post_ckpt.xml"
  cmp -s "$WORK/pre_ckpt.xml" "$WORK/post_ckpt.xml" \
    || fail "$scheme: checkpoint changed the document"
done

echo "PASS"
