#!/bin/sh
# End-to-end test for the xmlup CLI: a scripted `ed` session on a
# journaled store, followed by a process restart (every xmlup invocation
# is a fresh process), must recover to the exact same XML and labels; a
# deliberately torn journal tail must recover to the pre-tear state.
set -eu

XMLUP="$1"
# Bundled workload specs; CMake passes the source-tree path, a manual run
# finds them relative to this script.
EXAMPLES="${2:-$(dirname "$0")/../examples/workloads}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$WORK/in.xml" <<'EOF'
<library><shelf id="a"><book><title>Iliad</title></book></shelf></library>
EOF

for scheme in ordpath dewey xpath-accelerator; do
  DIR="$WORK/store-$scheme"

  "$XMLUP" init "$DIR" --scheme "$scheme" --xml "$WORK/in.xml" > /dev/null

  # Scripted edit session; --print/--labels capture the in-memory state.
  # Note: in this XPath dialect absolute paths start AT the root element,
  # so the root itself is addressed as '.' and its children as 'shelf'.
  "$XMLUP" ed "$DIR" --print --labels \
    -s '.' -t elem -n shelf \
    -s 'shelf[2]' -t attr -n id -v b \
    -s "//shelf[@id='b']" -t elem -n book \
    -s "//shelf[@id='b']/book" -t elem -n title \
    -s "//shelf[@id='b']/book/title" -t text -v Odyssey \
    -u "shelf[1]/book/title/text()" -v "Iliad (rev)" \
    -i '//book/title' -t comment -v "bought used" \
    -a 'shelf[1]' -t elem -n divider \
    -m 'shelf[1]/book' "//shelf[@id='b']" \
    -r "//shelf[@id='b']/book[2]/title" -v heading \
    > "$WORK/session.txt"
  grep -q '<heading>Iliad (rev)</heading>' "$WORK/session.txt" \
    || fail "$scheme: moved book was not renamed in place"

  # Restart: recover in fresh processes and compare byte for byte.
  "$XMLUP" cat "$DIR" > "$WORK/recovered.txt"
  "$XMLUP" labels "$DIR" >> "$WORK/recovered.txt"
  cmp -s "$WORK/session.txt" "$WORK/recovered.txt" \
    || fail "$scheme: recovered state differs from in-memory session"

  # Crash simulation: add one more edit, tear the journal tail, and check
  # recovery truncates back to the pre-edit state.
  "$XMLUP" cat "$DIR" > "$WORK/before.xml"
  "$XMLUP" ed "$DIR" -s '.' -t elem -n lost > /dev/null
  "$XMLUP" damage "$DIR" --truncate 5 > /dev/null
  # The first recovery after the tear both reports and repairs it, so
  # check info first (later opens see an already-clean journal).
  "$XMLUP" info "$DIR" | grep -q "truncated bytes:    [1-9]" \
    || fail "$scheme: info does not report the truncated tail"
  # The durable-position triple: generation, record count, and the journal
  # offset of the last commit — the offset must equal the (repaired)
  # journal file size, since recovery truncated the torn tail in place.
  COMMIT="$("$XMLUP" info "$DIR" | grep '^last commit:')"
  echo "$COMMIT" | grep -q "gen=[0-9][0-9]* records=[0-9][0-9]* offset=[0-9][0-9]*" \
    || fail "$scheme: info does not print the last-commit triple ($COMMIT)"
  OFFSET="${COMMIT##*offset=}"
  [ "$OFFSET" -eq "$(wc -c < "$(ls "$DIR"/journal-*)")" ] \
    || fail "$scheme: last-commit offset does not match the journal size"
  "$XMLUP" cat "$DIR" > "$WORK/after.xml"
  cmp -s "$WORK/before.xml" "$WORK/after.xml" \
    || fail "$scheme: torn-tail recovery did not drop the partial record"

  # The dropped record's tail is gone for good: the next edit lands after
  # the truncation point and survives.
  "$XMLUP" ed "$DIR" -s '.' -t elem -n annex > /dev/null
  "$XMLUP" cat "$DIR" | grep -q "<annex/>" \
    || fail "$scheme: edit after torn-tail recovery was lost"

  # Checkpoint rolls the journal; the document must be unchanged.
  "$XMLUP" cat "$DIR" > "$WORK/pre_ckpt.xml"
  "$XMLUP" checkpoint "$DIR" > /dev/null
  "$XMLUP" cat "$DIR" > "$WORK/post_ckpt.xml"
  cmp -s "$WORK/pre_ckpt.xml" "$WORK/post_ckpt.xml" \
    || fail "$scheme: checkpoint changed the document"
done

# --- error paths -----------------------------------------------------------
# Every malformed invocation must exit nonzero with a one-line diagnostic
# and leave the store byte-for-byte unchanged: a failing edit script never
# leaves partial journal records behind.

DIR="$WORK/store-errors"
"$XMLUP" init "$DIR" --scheme dewey --xml "$WORK/in.xml" > /dev/null
"$XMLUP" cat "$DIR" > "$WORK/pristine.xml"
JOURNAL_SIZE() { wc -c < "$(ls "$DIR"/journal-*)"; }
SIZE_BEFORE="$(JOURNAL_SIZE)"

expect_error() {
  msg="$1"; shift
  if out="$("$@" 2>&1)"; then
    fail "$msg: expected nonzero exit, got success"
  fi
  [ -n "$out" ] || fail "$msg: no diagnostic printed"
  [ "$(printf '%s\n' "$out" | wc -l)" -eq 1 ] \
    || fail "$msg: diagnostic is not one line: $out"
}

# Malformed XPath.
expect_error "malformed xpath" "$XMLUP" ed "$DIR" -d '///[['
# Unmatched target.
expect_error "unmatched target" "$XMLUP" ed "$DIR" -d '/no/such/node'
# Unknown node type.
expect_error "unknown node type" "$XMLUP" ed "$DIR" -s '.' -t blob -n x
# -u without a value.
expect_error "-u without -v" "$XMLUP" ed "$DIR" -u '/shelf'
# -m with a single operand.
expect_error "-m missing destination" "$XMLUP" ed "$DIR" -m '/shelf'
# -r without the new name.
expect_error "-r without -v" "$XMLUP" ed "$DIR" -r '/shelf'
# -m into the moved subtree itself must be rejected before any mutation.
expect_error "-m into own subtree" "$XMLUP" ed "$DIR" -m '/shelf' '/shelf/book'
# Element insert without a name.
expect_error "elem insert without -n" "$XMLUP" ed "$DIR" -s '.' -t elem
# A script that fails mid-way (first action fine, second unmatched) must
# roll back the first action too: all-or-nothing.
expect_error "mid-script failure" "$XMLUP" ed "$DIR" \
  -s '.' -t elem -n halfway -d '/no/such/node'
"$XMLUP" cat "$DIR" | grep -q "<halfway/>" \
  && fail "mid-script failure left a partial edit applied"

[ "$(JOURNAL_SIZE)" -eq "$SIZE_BEFORE" ] \
  || fail "failed edits grew the journal (partial records persisted)"
"$XMLUP" cat "$DIR" > "$WORK/after-errors.xml"
cmp -s "$WORK/pristine.xml" "$WORK/after-errors.xml" \
  || fail "failed edits changed the recovered document"

# Unknown scheme on init: diagnostic, nonzero exit, nothing created.
expect_error "unknown scheme" "$XMLUP" init "$WORK/store-bogus" --scheme bogus
[ ! -e "$WORK/store-bogus" ] \
  || fail "failed init left a store directory behind"

# --- update scripts (apply) -------------------------------------------------
# Compiled update scripts: comments, `let` bindings, quoted tokens, move
# and rename, applied as one all-or-nothing transaction; compile errors
# exit 2 with a one-line <file>:<line> diagnostic quoting the offending
# token; the remote form ships the same script as a single --apply frame
# (directly, and routed to a corpus document with --doc).

DIR="$WORK/store-apply"
"$XMLUP" init "$DIR" --scheme dewey --xml "$WORK/in.xml" > /dev/null

cat > "$WORK/grow.up" <<'EOF'
# grow a second shelf and restock it
let SHELF = //shelf[@id='b']
-s . -t elem -n shelf
-s shelf[2] -t attr -n id -v b
-s ${SHELF} -t elem -n book
-s ${SHELF}/book -t elem -n title
-s ${SHELF}/book/title -t text -v "Moby Dick"
-m shelf[1]/book ${SHELF}
-r ${SHELF}/book[1]/title -v heading
EOF
"$XMLUP" apply "$DIR" "$WORK/grow.up" --print > "$WORK/apply.out" \
  || fail "apply: script failed"
grep -q '<shelf id="b"><book><heading>Moby Dick</heading></book><book><title>Iliad</title></book></shelf>' \
  "$WORK/apply.out" || fail "apply: script result wrong: $(cat "$WORK/apply.out")"
# Restart: the applied script recovers byte for byte.
"$XMLUP" cat "$DIR" > "$WORK/apply-recovered.xml"
cmp -s "$WORK/apply.out" "$WORK/apply-recovered.xml" \
  || fail "apply: recovered state differs from the in-memory result"

# msg, <file>:<line> needle, quoted-token needle, then the command.
expect_exit2_quoting() {
  msg="$1"; where="$2"; token="$3"; shift 3
  if out="$("$@" 2>&1)"; then
    fail "$msg: expected exit 2, got success"
  else
    code=$?
  fi
  [ "$code" -eq 2 ] || fail "$msg: expected exit 2, got $code"
  [ "$(printf '%s\n' "$out" | wc -l)" -eq 1 ] \
    || fail "$msg: diagnostic is not one line: $out"
  case "$out" in
    *"$where"*) ;;
    *) fail "$msg: diagnostic misses $where: $out" ;;
  esac
  case "$out" in
    *"$token"*) ;;
    *) fail "$msg: diagnostic misses $token: $out" ;;
  esac
}

cat > "$WORK/broken.up" <<'EOF'
# fine line
-u shelf/x/text() -v ok
-z oops
EOF
expect_exit2_quoting "apply: unknown action" "broken.up:3:" '"-z"' \
  "$XMLUP" apply "$DIR" "$WORK/broken.up"
printf -- '-u ${NOPE}/text() -v x\n' > "$WORK/undef.up"
expect_exit2_quoting "apply: undefined variable" "undef.up:1:" '"${NOPE}"' \
  "$XMLUP" apply "$DIR" "$WORK/undef.up"
# A failed compile applies nothing.
"$XMLUP" cat "$DIR" > "$WORK/after-bad-scripts.xml"
cmp -s "$WORK/apply-recovered.xml" "$WORK/after-bad-scripts.xml" \
  || fail "apply: failed scripts changed the store"

# Remote form: the same script as one --apply frame, through a server
# running the parallel-prepare stage.
ASOCK="$WORK/apply.sock"
"$XMLUP" serve "$DIR" --socket "$ASOCK" --apply-workers 4 &
APPLY_PID=$!
i=0
until "$XMLUP" req --socket "$ASOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "apply: server did not come up"
  sleep 0.1
done
cat > "$WORK/remote.up" <<'EOF'
let WING = annex
-s . -t elem -n ${WING}
-s ${WING} -t text -v "via apply"
EOF
"$XMLUP" apply --socket "$ASOCK" "$WORK/remote.up" > "$WORK/remote.out" \
  || fail "apply: remote script failed"
# The reply is the transaction's <matched> and <epoch>, one per line.
[ "$(wc -l < "$WORK/remote.out")" -eq 2 ] \
  || fail "apply: remote reply is not matched+epoch: $(cat "$WORK/remote.out")"
[ "$(head -1 "$WORK/remote.out")" = "2" ] \
  || fail "apply: remote matched count wrong: $(cat "$WORK/remote.out")"
[ "$("$XMLUP" req --socket "$ASOCK" -q '/annex' | head -1)" = "1" ] \
  || fail "apply: remote edit not visible"
# Remote compile errors are caught locally, before any round trip.
expect_exit2_quoting "apply: remote compile error" "broken.up:3:" '"-z"' \
  "$XMLUP" apply --socket "$ASOCK" "$WORK/broken.up"
"$XMLUP" req --socket "$ASOCK" --shutdown > /dev/null \
  || fail "apply: shutdown failed"
wait "$APPLY_PID" || fail "apply: server exited nonzero"
"$XMLUP" cat "$DIR" | grep -q "via apply" \
  || fail "apply: acknowledged remote script lost after shutdown"

# Routed: the identical frame through a corpus service keyed by --doc.
ACSOCK="$WORK/apply-corpus.sock"
"$XMLUP" serve "$WORK/apply-corpus" --corpus --socket "$ACSOCK" &
ACORPUS_PID=$!
i=0
until "$XMLUP" req --socket "$ACSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "apply: corpus did not come up"
  sleep 0.1
done
"$XMLUP" req --socket "$ACSOCK" --doc alpha --create dewey > /dev/null \
  || fail "apply: corpus create failed"
"$XMLUP" apply --socket "$ACSOCK" --doc alpha "$WORK/remote.up" > /dev/null \
  || fail "apply: routed script failed"
[ "$("$XMLUP" req --socket "$ACSOCK" --doc alpha -q '/annex' | head -1)" = "1" ] \
  || fail "apply: routed edit not visible"
"$XMLUP" req --socket "$ACSOCK" --shutdown > /dev/null \
  || fail "apply: corpus shutdown failed"
wait "$ACORPUS_PID" || fail "apply: corpus exited nonzero"

# --- serve / req -----------------------------------------------------------
# Socket round trip: a server process, edits and queries through the wire
# protocol, clean shutdown, durable state visible to a fresh process.

DIR="$WORK/store-serve"
SOCK="$WORK/serve.sock"
"$XMLUP" init "$DIR" --scheme dewey --xml "$WORK/in.xml" > /dev/null

# Bad pipeline knobs are rejected up front (a zero queue would deadlock
# every submitter; strtoull's 0-on-junk must not sneak through either).
expect_error "--queue 0" "$XMLUP" serve "$DIR" --socket "$SOCK" --queue 0
expect_error "--batch 0" "$XMLUP" serve "$DIR" --socket "$SOCK" --batch 0
expect_error "bad --queue" "$XMLUP" serve "$DIR" --socket "$SOCK" --queue x

"$XMLUP" serve "$DIR" --socket "$SOCK" --queue 64 --batch 16 &
SERVER_PID=$!

i=0
until "$XMLUP" req --socket "$SOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || fail "serve: server did not come up"
  sleep 0.1
done

"$XMLUP" req --socket "$SOCK" \
  -s '.' -t elem -n wing -a '/shelf[1]' -t comment -v "via socket" \
  > /dev/null || fail "serve: edit request failed"
COUNT="$("$XMLUP" req --socket "$SOCK" -q '/wing' | head -1)"
[ "$COUNT" = "1" ] || fail "serve: query did not see the edit (got $COUNT)"
"$XMLUP" req --socket "$SOCK" --xml | grep -q "via socket" \
  || fail "serve: serialized XML misses the comment"
# Errors come back as err frames -> nonzero exit, server keeps running.
"$XMLUP" req --socket "$SOCK" -d '/no/such/node' > /dev/null 2>&1 \
  && fail "serve: unmatched delete reported success"
"$XMLUP" req --socket "$SOCK" --ping > /dev/null \
  || fail "serve: server died after a failed request"
# A frame is one all-or-nothing transaction, exactly like an ed script:
# the first action must not survive the second action's failure.
"$XMLUP" req --socket "$SOCK" \
  -s '.' -t elem -n orphan -d '/no/such/node' > /dev/null 2>&1 \
  && fail "serve: partial frame reported success"
COUNT="$("$XMLUP" req --socket "$SOCK" -q '/orphan' | head -1)"
[ "$COUNT" = "0" ] || fail "serve: failed frame left a partial edit applied"

"$XMLUP" req --socket "$SOCK" --shutdown > /dev/null \
  || fail "serve: shutdown request failed"
wait "$SERVER_PID" || fail "serve: server exited nonzero"

# Acknowledged socket edits survive the restart.
"$XMLUP" cat "$DIR" | grep -q "<wing/>" \
  || fail "serve: acknowledged edit lost after shutdown"

# --- replication -----------------------------------------------------------
# Primary + replica over two sockets: the replica bootstraps with a
# snapshot, tails live edits, serves reads, rejects writes, and leaves a
# normal store directory behind that a fresh process can `cat`.

PRIMARY_DIR="$WORK/store-primary"
REPLICA_DIR="$WORK/store-replica"
PSOCK="$WORK/primary.sock"
RSOCK="$WORK/replica.sock"
"$XMLUP" init "$PRIMARY_DIR" --scheme ordpath --xml "$WORK/in.xml" > /dev/null

"$XMLUP" serve "$PRIMARY_DIR" --socket "$PSOCK" &
PRIMARY_PID=$!
i=0
until "$XMLUP" req --socket "$PSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "repl: primary did not come up"
  sleep 0.1
done

# History before the replica exists, so bootstrap is a snapshot transfer.
"$XMLUP" req --socket "$PSOCK" -s '.' -t elem -n archive > /dev/null \
  || fail "repl: primary edit failed"

"$XMLUP" serve "$REPLICA_DIR" --socket "$RSOCK" --replicate-from "$PSOCK" &
REPLICA_PID=$!
i=0
until "$XMLUP" req --socket "$RSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "repl: replica did not come up"
  sleep 0.1
done

# A live edit after the replica subscribed, then wait for it to arrive.
"$XMLUP" req --socket "$PSOCK" -s '.' -t elem -n fresh > /dev/null \
  || fail "repl: live edit failed"
i=0
until [ "$("$XMLUP" req --socket "$RSOCK" -q '/fresh' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "repl: replica never saw the live edit"
  sleep 0.1
done

# Replica reads match the primary byte for byte.
"$XMLUP" req --socket "$PSOCK" --xml > "$WORK/primary.xml"
"$XMLUP" req --socket "$RSOCK" --xml > "$WORK/replica.xml"
cmp -s "$WORK/primary.xml" "$WORK/replica.xml" \
  || fail "repl: replica XML differs from primary"

# Writes are for the primary only.
"$XMLUP" req --socket "$RSOCK" -s '.' -t elem -n rogue > /dev/null 2>&1 \
  && fail "repl: replica accepted a write"

# Both roles answer repl-status with their role and zero replica lag.
"$XMLUP" repl-status --socket "$PSOCK" | grep -q "role=primary" \
  || fail "repl: primary repl-status misses role=primary"
# The commit-point marker trails the frames by one message, so give the
# lag gauge a moment to hit zero.
i=0
while :; do
  "$XMLUP" repl-status --socket "$RSOCK" > "$WORK/rstatus.txt"
  grep -q "role=replica" "$WORK/rstatus.txt" \
    || fail "repl: replica repl-status misses role=replica"
  grep -q "lag_bytes=0" "$WORK/rstatus.txt" && break
  i=$((i + 1))
  [ "$i" -lt 100 ] \
    || fail "repl: replica still lagging at quiesce: $(cat "$WORK/rstatus.txt")"
  sleep 0.1
done

"$XMLUP" req --socket "$RSOCK" --shutdown > /dev/null \
  || fail "repl: replica shutdown failed"
wait "$REPLICA_PID" || fail "repl: replica exited nonzero"
"$XMLUP" req --socket "$PSOCK" --shutdown > /dev/null \
  || fail "repl: primary shutdown failed"
wait "$PRIMARY_PID" || fail "repl: primary exited nonzero"

# The replica directory is a plain store: recovery reads it directly.
"$XMLUP" cat "$REPLICA_DIR" | grep -q "<fresh/>" \
  || fail "repl: replica store directory does not recover the edits"

# --- workload --------------------------------------------------------------
# Declarative workload engine round trip: every bundled spec validates,
# malformed specs are rejected with exit 2 and a one-line spec-quoting
# diagnostic, and a run against a live server is bit-reproducible (same
# spec + seed + threads -> byte-identical client-side trace).

for spec in "$EXAMPLES"/*.workload; do
  [ -f "$spec" ] || fail "workload: no bundled specs found in $EXAMPLES"
  "$XMLUP" workload check "$spec" > /dev/null \
    || fail "workload: bundled spec $spec does not validate"
done

expect_exit2() {
  msg="$1"; shift
  if out="$("$@" 2>&1)"; then
    fail "$msg: expected exit 2, got success"
  else
    code=$?
  fi
  [ "$code" -eq 2 ] || fail "$msg: expected exit 2, got $code"
  [ "$(printf '%s\n' "$out" | wc -l)" -eq 1 ] \
    || fail "$msg: diagnostic is not one line: $out"
  echo "$out" | grep -q 'spec line' \
    || fail "$msg: diagnostic does not quote the spec: $out"
}

printf 'node a blob\n  next finish\n' > "$WORK/bad.workload"
expect_exit2 "workload: unknown node type" \
  "$XMLUP" workload check "$WORK/bad.workload"
printf 'node a query\n  xpath //x\n  next nowhere\n' > "$WORK/bad.workload"
expect_exit2 "workload: dangling next" \
  "$XMLUP" workload check "$WORK/bad.workload"
printf 'node a random-choice\n  choice 0 a\n' > "$WORK/bad.workload"
expect_exit2 "workload: zero weights" \
  "$XMLUP" workload check "$WORK/bad.workload"
printf 'node a query\n  xpath //x\n  next a\n' > "$WORK/bad.workload"
expect_exit2 "workload: unreachable finish" \
  "$XMLUP" workload check "$WORK/bad.workload"

cat > "$WORK/mix.workload" <<'EOF'
workload cli-mix
node turn for-n
  count 1000000
  do pick
  next finish
node pick random-choice
  choice 70 grow
  choice 30 look
node grow edit
  script -s . -t elem -n g${thread}x${op}r${rand:31}
  next end
node look query
  xpath //g${thread}x${rand:6}r${rand:31}
  next end
EOF
"$XMLUP" workload check "$WORK/mix.workload" > /dev/null \
  || fail "workload: inline mix spec does not validate"

WLDIR="$WORK/store-workload"
WLSOCK="$WORK/wl.sock"
"$XMLUP" init "$WLDIR" --scheme ordpath > /dev/null
"$XMLUP" serve "$WLDIR" --socket "$WLSOCK" &
WL_PID=$!
i=0
until "$XMLUP" req --socket "$WLSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "workload: server did not come up"
  sleep 0.1
done

# --ops and --duration are mutually exclusive, rejected before any traffic.
code=0
"$XMLUP" workload run "$WORK/mix.workload" --target "$WLSOCK" \
  --ops 5 --duration 100 > /dev/null 2>&1 || code=$?
[ "$code" -eq 2 ] || fail "workload: --ops with --duration not rejected"

"$XMLUP" workload run "$WORK/mix.workload" --target "$WLSOCK" \
  --threads 2 --seed 11 --ops 15 \
  --out "$WORK/run1.json" --trace "$WORK/run1.trace" > "$WORK/run1.out" \
  || fail "workload: run against serve failed"
grep -q "^ops=30 errors=0 " "$WORK/run1.out" \
  || fail "workload: totals line wrong: $(cat "$WORK/run1.out")"
grep -q '"errors_total": 0' "$WORK/run1.json" \
  || fail "workload: JSON reports errors"
grep -q '"p99_ns"' "$WORK/run1.json" \
  || fail "workload: JSON misses per-node percentiles"

# Same seed, fresh server-side names are re-inserted (they already exist
# now, but inserts still succeed), trace must be byte-identical.
"$XMLUP" workload run "$WORK/mix.workload" --target "$WLSOCK" \
  --threads 2 --seed 11 --ops 15 \
  --out "$WORK/run2.json" --trace "$WORK/run2.trace" > /dev/null \
  || fail "workload: second run failed"
cmp -s "$WORK/run1.trace" "$WORK/run2.trace" \
  || fail "workload: same seed produced different traces"

"$XMLUP" req --socket "$WLSOCK" --shutdown > /dev/null \
  || fail "workload: shutdown failed"
wait "$WL_PID" || fail "workload: server exited nonzero"

# --- failover (manual promote) ---------------------------------------------
# The scripted failover round trip: a sync-replicated primary/replica
# pair, kill -9 the primary, `xmlup promote` the replica into a primary
# over the same directory, write through it, then rejoin the old primary
# as a replica of the new one and prove bit-identical convergence.

FP_DIR="$WORK/store-fo-primary"
FR_DIR="$WORK/store-fo-replica"
FPSOCK="$WORK/fo-primary.sock"
FRSOCK="$WORK/fo-replica.sock"
"$XMLUP" init "$FP_DIR" --scheme ordpath --xml "$WORK/in.xml" > /dev/null

"$XMLUP" serve "$FP_DIR" --socket "$FPSOCK" --sync-repl &
FP_PID=$!
i=0
until "$XMLUP" req --socket "$FPSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: primary did not come up"
  sleep 0.1
done
"$XMLUP" req --socket "$FPSOCK" -s '.' -t elem -n durable > /dev/null \
  || fail "failover: primary edit failed"

"$XMLUP" serve "$FR_DIR" --socket "$FRSOCK" --replicate-from "$FPSOCK" &
FR_PID=$!
i=0
until [ "$("$XMLUP" req --socket "$FRSOCK" -q '/durable' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: replica never caught up"
  sleep 0.1
done

# A write acknowledged under sync replication, then the crash.
"$XMLUP" req --socket "$FPSOCK" -s '.' -t elem -n acked_before_crash \
  > /dev/null || fail "failover: acked write failed"
i=0
until [ "$("$XMLUP" req --socket "$FRSOCK" -q '/acked_before_crash' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: acked write never shipped"
  sleep 0.1
done
kill -9 "$FP_PID"
wait "$FP_PID" 2>/dev/null || true

# Promote: replica -> primary over the same store directory.
"$XMLUP" promote --socket "$FRSOCK" > "$WORK/promote.out" \
  || fail "failover: promote failed: $(cat "$WORK/promote.out")"
grep -q "^promoted$" "$WORK/promote.out" \
  || fail "failover: promote reply misses 'promoted': $(cat "$WORK/promote.out")"
grep -q "^fence=" "$WORK/promote.out" \
  || fail "failover: promote reply misses the fence epoch"
# Idempotent: a second promote reports the standing fence.
"$XMLUP" promote --socket "$FRSOCK" | grep -q "already-primary" \
  || fail "failover: repeated promote is not idempotent"

# The role flipped (replica -> primary) and writes now land here.
"$XMLUP" repl-status --socket "$FRSOCK" | grep -q "role=primary" \
  || fail "failover: promoted node does not report role=primary"
"$XMLUP" req --socket "$FRSOCK" -s '.' -t elem -n after_failover \
  > /dev/null || fail "failover: promoted node rejected a write"
[ "$("$XMLUP" req --socket "$FRSOCK" -q '/acked_before_crash' | head -1)" = "1" ] \
  || fail "failover: acked write lost across the promotion"

# The old primary rejoins as a replica of the new primary (role
# primary -> replica) and converges on the post-failover history.
"$XMLUP" serve "$FP_DIR" --socket "$FPSOCK" --replicate-from "$FRSOCK" &
FP_PID=$!
i=0
until [ "$("$XMLUP" req --socket "$FPSOCK" -q '/after_failover' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: rejoined primary never converged"
  sleep 0.1
done
"$XMLUP" repl-status --socket "$FPSOCK" | grep -q "role=replica" \
  || fail "failover: rejoined old primary does not report role=replica"
"$XMLUP" req --socket "$FRSOCK" --xml > "$WORK/new-primary.xml"
"$XMLUP" req --socket "$FPSOCK" --xml > "$WORK/rejoined.xml"
cmp -s "$WORK/new-primary.xml" "$WORK/rejoined.xml" \
  || fail "failover: rejoined replica XML differs from the new primary"

"$XMLUP" req --socket "$FPSOCK" --shutdown > /dev/null \
  || fail "failover: rejoined replica shutdown failed"
wait "$FP_PID" || fail "failover: rejoined replica exited nonzero"
"$XMLUP" req --socket "$FRSOCK" --shutdown > /dev/null \
  || fail "failover: promoted primary shutdown failed"
wait "$FR_PID" || fail "failover: promoted primary exited nonzero"

# --- failover (corpus roles via cluster-status) -----------------------------
# The same promotion on one document of a corpus, watched through
# cluster-status docrole fields: primary corpus dies, `xmlup promote
# --doc` flips the replica corpus's copy, and the restarted old corpus
# rejoins replica-role — primary -> replica -> primary across the pair.

CP_DIR="$WORK/corpus-fo-primary"
CR_DIR="$WORK/corpus-fo-replica"
CPSOCK="$WORK/corpus-fo-p.sock"
CRSOCK="$WORK/corpus-fo-r.sock"

"$XMLUP" serve "$CP_DIR" --corpus --socket "$CPSOCK" --sync-repl &
CP_PID=$!
i=0
until "$XMLUP" req --socket "$CPSOCK" --ping > /dev/null 2>&1; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: corpus primary did not come up"
  sleep 0.1
done
"$XMLUP" req --socket "$CPSOCK" --doc alpha --create ordpath > /dev/null \
  || fail "failover: corpus create failed"
"$XMLUP" req --socket "$CPSOCK" --doc alpha -s '.' -t elem -n seed \
  > /dev/null || fail "failover: corpus edit failed"
"$XMLUP" cluster-status --socket "$CPSOCK" | grep -q "docrole.alpha=primary" \
  || fail "failover: corpus primary does not report docrole.alpha=primary"

"$XMLUP" serve "$CR_DIR" --corpus --socket "$CRSOCK" \
  --replicate-from "$CPSOCK" --sync-repl &
CR_PID=$!
i=0
until [ "$("$XMLUP" req --socket "$CRSOCK" --doc alpha -q '/seed' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: corpus replica never caught up"
  sleep 0.1
done
"$XMLUP" cluster-status --socket "$CRSOCK" | grep -q "docrole.alpha=replica" \
  || fail "failover: corpus replica does not report docrole.alpha=replica"

kill -9 "$CP_PID"
wait "$CP_PID" 2>/dev/null || true

"$XMLUP" promote --socket "$CRSOCK" --doc alpha --epoch 7 > "$WORK/cpromote.out" \
  || fail "failover: corpus promote failed: $(cat "$WORK/cpromote.out")"
grep -q "^fence=7$" "$WORK/cpromote.out" \
  || fail "failover: corpus promote ignored --epoch 7: $(cat "$WORK/cpromote.out")"
"$XMLUP" cluster-status --socket "$CRSOCK" > "$WORK/cstatus.txt"
grep -q "docrole.alpha=primary" "$WORK/cstatus.txt" \
  || fail "failover: promoted corpus doc is not primary-role: $(cat "$WORK/cstatus.txt")"
grep -q "docfence.alpha=7" "$WORK/cstatus.txt" \
  || fail "failover: promoted corpus doc fence is not 7: $(cat "$WORK/cstatus.txt")"
"$XMLUP" req --socket "$CRSOCK" --doc alpha -s '.' -t elem -n regrown \
  > /dev/null || fail "failover: promoted corpus doc rejected a write"

# Old corpus primary rejoins as a replica corpus of the promoted one.
"$XMLUP" serve "$CP_DIR" --corpus --socket "$CPSOCK" \
  --replicate-from "$CRSOCK" &
CP_PID=$!
i=0
until [ "$("$XMLUP" req --socket "$CPSOCK" --doc alpha -q '/regrown' 2>/dev/null | head -1)" = "1" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "failover: rejoined corpus never converged"
  sleep 0.1
done
"$XMLUP" cluster-status --socket "$CPSOCK" | grep -q "docrole.alpha=replica" \
  || fail "failover: rejoined corpus doc is not replica-role"

"$XMLUP" req --socket "$CPSOCK" --shutdown > /dev/null \
  || fail "failover: rejoined corpus shutdown failed"
wait "$CP_PID" || fail "failover: rejoined corpus exited nonzero"
"$XMLUP" req --socket "$CRSOCK" --shutdown > /dev/null \
  || fail "failover: promoted corpus shutdown failed"
wait "$CR_PID" || fail "failover: promoted corpus exited nonzero"

echo "PASS"
