// Crash-consistency matrix: kill the journal via the fault-injection file
// system at every record boundary and mid-record (and, for representative
// schemes, at every single byte offset), then assert that recovery yields
// exactly the durable prefix of the applied updates — no torn record ever
// applied — with labels bit-identical to a reference replay that never
// touches the journal code path. Runs for every scheme in the registry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "labels/registry.h"
#include "store/document_store.h"
#include "store/file.h"
#include "store/journal.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup {
namespace {

using core::LabeledDocument;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

constexpr char kBaseDoc[] =
    "<library><shelf id=\"a\"><book><title>Iliad</title></book>"
    "<book><title>Odyssey</title></book></shelf>"
    "<shelf id=\"b\"><book><title>Aeneid</title></book></shelf></library>";

// One primitive update, recorded from the live session through the
// document's observer hook — deliberately NOT by decoding the journal, so
// the reference replay is independent of the code under test.
struct RecordedOp {
  enum class Kind { kInsert, kRemove, kSetValue };
  Kind kind = Kind::kInsert;
  NodeId node = xml::kInvalidNode;
  NodeId parent = xml::kInvalidNode;
  NodeId before = xml::kInvalidNode;
  xml::NodeKind node_kind = xml::NodeKind::kElement;
  std::string name;
  std::string value;
};

class Recorder : public core::UpdateObserver {
 public:
  void OnInsertNode(const LabeledDocument& doc, NodeId node,
                    const core::UpdateStats&) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kInsert;
    op.node = node;
    op.parent = doc.tree().parent(node);
    op.before = doc.tree().next_sibling(node);
    op.node_kind = doc.tree().kind(node);
    op.name = doc.tree().name(node);
    op.value = doc.tree().value(node);
    ops.push_back(std::move(op));
  }
  void OnRemoveSubtree(const LabeledDocument&, NodeId node) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kRemove;
    op.node = node;
    ops.push_back(std::move(op));
  }
  void OnUpdateValue(const LabeledDocument& doc, NodeId node) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kSetValue;
    op.node = node;
    op.value = doc.tree().value(node);
    ops.push_back(std::move(op));
  }

  std::vector<RecordedOp> ops;
};

std::vector<std::string> LabelBytes(const LabeledDocument& doc) {
  std::vector<std::string> out;
  for (NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

std::string Serialize(const LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

// Document state after a prefix of the update sequence.
struct ReferenceState {
  std::vector<std::string> labels;
  std::string xml;
};

NodeId FindByName(const xml::Tree& tree, std::string_view name) {
  for (NodeId n : tree.PreorderNodes()) {
    if (tree.name(n) == name) return n;
  }
  return xml::kInvalidNode;
}

// The scripted update session: a mix of head/middle/tail leaf inserts
// (head inserts force relabelling in non-persistent schemes), a subtree
// insertion, content updates and a subtree deletion.
void RunSession(DocumentStore* st) {
  const xml::Tree& tree = st->document().tree();
  NodeId root = tree.root();
  NodeId shelf_a = tree.first_child(root);

  ASSERT_TRUE(
      st->InsertNode(root, xml::NodeKind::kElement, "shelf", "").ok());
  // Head insert: before shelf a.
  ASSERT_TRUE(st->InsertNode(root, xml::NodeKind::kComment, "",
                             "front matter", shelf_a)
                  .ok());
  // Middle insert: a book between the two existing ones on shelf a.
  NodeId second_book = tree.next_sibling(
      tree.first_child(shelf_a) == xml::kInvalidNode
          ? xml::kInvalidNode
          : FindByName(tree, "book"));
  ASSERT_NE(second_book, xml::kInvalidNode);
  auto mid = st->InsertNode(shelf_a, xml::NodeKind::kElement, "book", "",
                            second_book);
  ASSERT_TRUE(mid.ok());
  ASSERT_TRUE(
      st->InsertNode(*mid, xml::NodeKind::kElement, "title", "").ok());

  // Subtree insertion: serialised as one record per node.
  auto fragment = xml::ParseDocument(
      "<appendix><errata>three typos</errata><index/></appendix>");
  ASSERT_TRUE(fragment.ok());
  ASSERT_TRUE(
      st->InsertSubtree(root, *fragment, fragment->root()).ok());

  // Content update on the deepest text node.
  NodeId text = xml::kInvalidNode;
  for (NodeId n : tree.PreorderNodes()) {
    if (tree.kind(n) == xml::NodeKind::kText) text = n;
  }
  ASSERT_NE(text, xml::kInvalidNode);
  ASSERT_TRUE(st->UpdateValue(text, "now four typos").ok());

  // Delete a whole shelf, then keep inserting after the deletion.
  NodeId shelf_b = FindByName(tree, "shelf") == xml::kInvalidNode
                       ? xml::kInvalidNode
                       : tree.next_sibling(tree.next_sibling(
                             tree.first_child(root)));
  ASSERT_NE(shelf_b, xml::kInvalidNode);
  ASSERT_TRUE(st->RemoveSubtree(shelf_b).ok());
  ASSERT_TRUE(
      st->InsertNode(root, xml::NodeKind::kElement, "coda", "").ok());
}

struct SessionArtifacts {
  std::string snapshot;             // snapshot image the journal hangs off
  std::string journal;              // full, uncrashed journal bytes
  std::vector<size_t> frame_ends;   // file offset after each frame
  std::vector<RecordedOp> ops;      // primitive updates, session order
};

SessionArtifacts RunScriptedSession(const std::string& scheme) {
  SessionArtifacts artifacts;
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.auto_checkpoint = false;  // keep one journal for the whole run
  auto st = DocumentStore::Create("db", [] {
        auto tree = xml::ParseDocument(kBaseDoc);
        EXPECT_TRUE(tree.ok());
        return std::move(*tree);
      }(),
      scheme, options);
  EXPECT_TRUE(st.ok()) << scheme << ": " << st.status().ToString();
  if (!st.ok()) return artifacts;

  Recorder recorder;
  (*st)->mutable_document()->AddUpdateObserver(&recorder);
  RunSession(st->get());
  (*st)->mutable_document()->RemoveUpdateObserver(&recorder);

  artifacts.snapshot = *fs.GetFile("db/" + store::SnapshotFileName(1));
  artifacts.journal = *fs.GetFile("db/" + store::JournalFileName(1));
  artifacts.ops = recorder.ops;

  // Frame boundaries, walked independently with the documented framing.
  size_t pos = store::kJournalHeaderSize;
  const std::string& j = artifacts.journal;
  while (pos + store::kFrameHeaderSize <= j.size()) {
    uint32_t length = static_cast<uint8_t>(j[pos]) |
                      static_cast<uint8_t>(j[pos + 1]) << 8 |
                      static_cast<uint8_t>(j[pos + 2]) << 16 |
                      static_cast<uint8_t>(j[pos + 3]) << 24;
    pos += store::kFrameHeaderSize + length;
    artifacts.frame_ends.push_back(pos);
  }
  EXPECT_EQ(pos, j.size()) << scheme << ": frame walk out of step";
  EXPECT_EQ(artifacts.frame_ends.size(), artifacts.ops.size())
      << scheme << ": one frame per primitive update";
  return artifacts;
}

// Reference replay: starting from the snapshot, apply the first k ops for
// every k through the plain LabeledDocument API (never the journal), and
// capture labels + XML after each step.
std::vector<ReferenceState> BuildReferenceStates(
    const SessionArtifacts& artifacts) {
  std::vector<ReferenceState> states;
  std::unique_ptr<labels::LabelingScheme> scheme;
  auto doc = core::LoadSnapshot(artifacts.snapshot, &scheme);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  states.push_back({LabelBytes(*doc), Serialize(*doc)});
  for (const RecordedOp& op : artifacts.ops) {
    switch (op.kind) {
      case RecordedOp::Kind::kInsert: {
        auto node = doc->InsertNode(op.parent, op.node_kind, op.name,
                                    op.value, op.before);
        EXPECT_TRUE(node.ok()) << node.status().ToString();
        EXPECT_EQ(*node, op.node) << "reference replay id divergence";
        break;
      }
      case RecordedOp::Kind::kRemove:
        EXPECT_TRUE(doc->RemoveSubtree(op.node).ok());
        break;
      case RecordedOp::Kind::kSetValue:
        EXPECT_TRUE(doc->UpdateValue(op.node, op.value).ok());
        break;
    }
    states.push_back({LabelBytes(*doc), Serialize(*doc)});
  }
  return states;
}

// Recover from a journal cut (or corrupted) image and check the result is
// exactly reference state k for the surviving frame count k.
void CheckRecovery(const std::string& scheme,
                   const SessionArtifacts& artifacts,
                   const std::vector<ReferenceState>& states,
                   std::string journal_image, size_t context_offset) {
  MemFileSystem fs;
  fs.SetFile("db/" + std::string(store::kCurrentFileName), "1\n");
  fs.SetFile("db/" + store::SnapshotFileName(1), artifacts.snapshot);
  fs.SetFile("db/" + store::JournalFileName(1), std::move(journal_image));
  StoreOptions options;
  options.fs = &fs;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok()) << scheme << " @" << context_offset << ": "
                       << st.status().ToString();
  size_t k = (*st)->stats().recovered_records;
  ASSERT_LT(k, states.size());
  const LabeledDocument& doc = (*st)->document();
  EXPECT_EQ(LabelBytes(doc), states[k].labels)
      << scheme << " @" << context_offset
      << ": recovered labels differ from reference replay of " << k
      << " updates";
  EXPECT_EQ(Serialize(doc), states[k].xml) << scheme << " @"
                                           << context_offset;
  ASSERT_TRUE(doc.VerifyOrderAndUniqueness().ok())
      << scheme << " @" << context_offset;
}

size_t ExpectedFrames(const SessionArtifacts& artifacts, size_t cut) {
  size_t k = 0;
  for (size_t end : artifacts.frame_ends) {
    if (end <= cut) ++k;
  }
  return k;
}

void CheckCrashAtOffset(const std::string& scheme,
                        const SessionArtifacts& artifacts,
                        const std::vector<ReferenceState>& states,
                        size_t cut) {
  // A crash at byte offset `cut` makes exactly the frames that end at or
  // before it durable; recovery must apply those and nothing more.
  MemFileSystem probe;
  std::string image = artifacts.journal.substr(0, cut);
  size_t expected = ExpectedFrames(artifacts, cut);
  {
    SCOPED_TRACE(scheme + " crash at byte " + std::to_string(cut));
    MemFileSystem fs;
    fs.SetFile("db/" + std::string(store::kCurrentFileName), "1\n");
    fs.SetFile("db/" + store::SnapshotFileName(1), artifacts.snapshot);
    fs.SetFile("db/" + store::JournalFileName(1), image);
    StoreOptions options;
    options.fs = &fs;
    auto st = DocumentStore::Open("db", options);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ((*st)->stats().recovered_records, expected)
        << "torn record applied or durable record lost";
  }
  CheckRecovery(scheme, artifacts, states, std::move(image), cut);
}

class CrashMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashMatrixTest, RecoveryYieldsExactPrefixAtEveryBoundary) {
  const std::string scheme = GetParam();
  SessionArtifacts artifacts = RunScriptedSession(scheme);
  ASSERT_FALSE(artifacts.ops.empty());
  std::vector<ReferenceState> states = BuildReferenceStates(artifacts);
  ASSERT_EQ(states.size(), artifacts.ops.size() + 1);

  // Crash offsets: before the first frame, at every frame boundary, one
  // byte either side of each boundary, and mid-record.
  std::vector<size_t> cuts = {0, store::kJournalHeaderSize / 2,
                              store::kJournalHeaderSize};
  size_t start = store::kJournalHeaderSize;
  for (size_t end : artifacts.frame_ends) {
    cuts.push_back(start + (end - start) / 2);  // mid-record
    if (end > 0) cuts.push_back(end - 1);       // one byte short
    cuts.push_back(end);                        // exactly at the boundary
    if (end < artifacts.journal.size()) cuts.push_back(end + 1);
    start = end;
  }
  for (size_t cut : cuts) {
    CheckCrashAtOffset(scheme, artifacts, states, cut);
  }
}

TEST_P(CrashMatrixTest, BitflipInAnyRecordTruncatesThere) {
  const std::string scheme = GetParam();
  SessionArtifacts artifacts = RunScriptedSession(scheme);
  ASSERT_FALSE(artifacts.ops.empty());
  std::vector<ReferenceState> states = BuildReferenceStates(artifacts);

  size_t start = store::kJournalHeaderSize;
  for (size_t i = 0; i < artifacts.frame_ends.size(); ++i) {
    size_t end = artifacts.frame_ends[i];
    // Flip one bit in the middle of frame i: recovery must keep exactly
    // the i preceding records.
    size_t offset = start + (end - start) / 2;
    std::string image = artifacts.journal;
    image[offset] = static_cast<char>(
        static_cast<uint8_t>(image[offset]) ^ 0x04);
    {
      SCOPED_TRACE(scheme + " bitflip in frame " + std::to_string(i));
      MemFileSystem fs;
      fs.SetFile("db/" + std::string(store::kCurrentFileName), "1\n");
      fs.SetFile("db/" + store::SnapshotFileName(1), artifacts.snapshot);
      fs.SetFile("db/" + store::JournalFileName(1), image);
      StoreOptions options;
      options.fs = &fs;
      auto st = DocumentStore::Open("db", options);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
      ASSERT_EQ((*st)->stats().recovered_records, i)
          << "corrupt record applied";
    }
    CheckRecovery(scheme, artifacts, states, std::move(image), offset);
    start = end;
  }
}

// A recovered store must keep working: append more updates after a
// mid-record crash, restart again, and still agree with a live session.
TEST_P(CrashMatrixTest, StoreStaysWritableAfterRecovery)
{
  const std::string scheme = GetParam();
  SessionArtifacts artifacts = RunScriptedSession(scheme);
  ASSERT_FALSE(artifacts.ops.empty());
  size_t cut = artifacts.frame_ends[artifacts.frame_ends.size() / 2] + 3;

  MemFileSystem fs;
  fs.SetFile("db/" + std::string(store::kCurrentFileName), "1\n");
  fs.SetFile("db/" + store::SnapshotFileName(1), artifacts.snapshot);
  fs.SetFile("db/" + store::JournalFileName(1),
             artifacts.journal.substr(0, cut));
  StoreOptions options;
  options.fs = &fs;
  std::string xml;
  std::vector<std::string> labels;
  {
    auto st = DocumentStore::Open("db", options);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    NodeId root = (*st)->document().tree().root();
    ASSERT_TRUE((*st)
                    ->InsertNode(root, xml::NodeKind::kElement,
                                 "post_crash", "")
                    .ok());
    xml = Serialize((*st)->document());
    labels = LabelBytes((*st)->document());
  }
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(Serialize((*st)->document()), xml);
  EXPECT_EQ(LabelBytes((*st)->document()), labels);
  ASSERT_TRUE((*st)->document().VerifyOrderAndUniqueness().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CrashMatrixTest,
    ::testing::ValuesIn(labels::AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Exhaustive sweep for representative global- and prefix-order schemes:
// a crash at EVERY byte offset of the journal recovers a valid prefix.
class CrashEveryByteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashEveryByteTest, EveryByteOffsetRecoversAValidPrefix) {
  const std::string scheme = GetParam();
  SessionArtifacts artifacts = RunScriptedSession(scheme);
  ASSERT_FALSE(artifacts.ops.empty());
  std::vector<ReferenceState> states = BuildReferenceStates(artifacts);
  for (size_t cut = 0; cut <= artifacts.journal.size(); ++cut) {
    CheckCrashAtOffset(scheme, artifacts, states, cut);
  }
}

INSTANTIATE_TEST_SUITE_P(Representatives, CrashEveryByteTest,
                         ::testing::Values("xpath-accelerator", "dewey"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace xmlup
