// DocumentStore behaviour: create/open round-trips, journalled edits
// surviving restart, checkpoint rotation, fsync-failure poisoning, and
// the observer-driven journalling of direct document mutations.

#include "store/document_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup {
namespace {

using core::LabeledDocument;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

constexpr char kDoc[] =
    "<library><shelf id=\"a\"><book><title>Iliad</title></book></shelf>"
    "</library>";

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::string Serialize(const LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

// All live labels in preorder, as raw bytes — the bit-identical currency
// the recovery tests compare in.
std::vector<std::string> LabelBytes(const LabeledDocument& doc) {
  std::vector<std::string> out;
  for (NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

TEST(DocumentStoreTest, CreateThenOpenRestoresDocumentAndLabels) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  auto created =
      DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::string xml = Serialize((*created)->document());
  std::vector<std::string> labels = LabelBytes((*created)->document());

  auto opened = DocumentStore::Open("db", options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(Serialize((*opened)->document()), xml);
  EXPECT_EQ(LabelBytes((*opened)->document()), labels);
  EXPECT_EQ((*opened)->stats().recovered_records, 0u);
}

TEST(DocumentStoreTest, CreateRefusesExistingStore) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  ASSERT_TRUE(
      DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options).ok());
  EXPECT_FALSE(
      DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options).ok());
}

TEST(DocumentStoreTest, EditsSurviveRestart) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  std::string xml, value_xml;
  std::vector<std::string> labels;
  {
    auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "dewey", options);
    ASSERT_TRUE(st.ok());
    NodeId root = (*st)->document().tree().root();
    auto shelf = (*st)->InsertNode(root, xml::NodeKind::kElement, "shelf", "");
    ASSERT_TRUE(shelf.ok()) << shelf.status().ToString();
    auto book =
        (*st)->InsertNode(*shelf, xml::NodeKind::kElement, "book", "");
    ASSERT_TRUE(book.ok());
    // Insert before an existing node, delete a subtree, update a value.
    auto front = (*st)->InsertNode(
        root, xml::NodeKind::kComment, "", "front matter",
        (*st)->document().tree().first_child(root));
    ASSERT_TRUE(front.ok());
    ASSERT_TRUE((*st)->RemoveSubtree(*book).ok());
    NodeId title_text = xml::kInvalidNode;
    for (NodeId n : (*st)->document().tree().PreorderNodes()) {
      if ((*st)->document().tree().kind(n) == xml::NodeKind::kText) {
        title_text = n;
      }
    }
    ASSERT_NE(title_text, xml::kInvalidNode);
    ASSERT_TRUE((*st)->UpdateValue(title_text, "Odyssey").ok());
    xml = Serialize((*st)->document());
    labels = LabelBytes((*st)->document());
    EXPECT_GT((*st)->stats().journal_records, 0u);
  }
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ((*st)->stats().recovered_records, 5u);
  EXPECT_EQ(Serialize((*st)->document()), xml);
  EXPECT_EQ(LabelBytes((*st)->document()), labels);
  ASSERT_TRUE((*st)->document().VerifyOrderAndUniqueness().ok());
}

TEST(DocumentStoreTest, SubtreeInsertIsJournalledAsItsSerialisedSequence) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  std::string xml;
  std::vector<std::string> labels;
  {
    auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "lsdx", options);
    ASSERT_TRUE(st.ok());
    xml::Tree fragment = ParseOrDie(
        "<appendix><section>notes</section><section>errata</section>"
        "</appendix>");
    auto inserted = (*st)->InsertSubtree(
        (*st)->document().tree().root(), fragment, fragment.root());
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    // 1 appendix + 2 sections + 2 text nodes = 5 primitive records.
    EXPECT_EQ((*st)->stats().journal_records, 5u);
    xml = Serialize((*st)->document());
    labels = LabelBytes((*st)->document());
  }
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->stats().recovered_records, 5u);
  EXPECT_EQ(Serialize((*st)->document()), xml);
  EXPECT_EQ(LabelBytes((*st)->document()), labels);
}

TEST(DocumentStoreTest, DirectDocumentMutationsAreJournalledToo) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  std::string xml;
  {
    auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "qed", options);
    ASSERT_TRUE(st.ok());
    // Mutate through the document, bypassing the store's convenience API:
    // the observer hook must journal it all the same.
    core::LabeledDocument* doc = (*st)->mutable_document();
    auto node = doc->InsertNode(doc->tree().root(), xml::NodeKind::kElement,
                                "direct", "");
    ASSERT_TRUE(node.ok());
    EXPECT_EQ((*st)->stats().journal_records, 1u);
    ASSERT_TRUE((*st)->Sync().ok());
    xml = Serialize((*st)->document());
  }
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->stats().recovered_records, 1u);
  EXPECT_EQ(Serialize((*st)->document()), xml);
}

TEST(DocumentStoreTest, CheckpointRollsGenerationAndCompacts) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.checkpoint.max_journal_records = 4;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  ASSERT_TRUE(st.ok());
  std::string xml_before;
  for (int i = 0; i < 10; ++i) {
    NodeId root = (*st)->document().tree().root();
    std::string name = "n";
    name += std::to_string(i);
    auto node = (*st)->InsertNode(root, xml::NodeKind::kElement, name, "");
    ASSERT_TRUE(node.ok()) << node.status().ToString();
  }
  EXPECT_GT((*st)->stats().checkpoints, 0u);
  EXPECT_GT((*st)->stats().sequence, 1u);
  // Old generation files are gone; current ones exist.
  uint64_t seq = (*st)->stats().sequence;
  EXPECT_TRUE(fs.FileExists("db/" + store::SnapshotFileName(seq)));
  EXPECT_TRUE(fs.FileExists("db/" + store::JournalFileName(seq)));
  EXPECT_FALSE(fs.FileExists("db/" + store::SnapshotFileName(1)));
  EXPECT_FALSE(fs.FileExists("db/" + store::JournalFileName(1)));
  xml_before = Serialize((*st)->document());

  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Serialize((*reopened)->document()), xml_before);
  ASSERT_TRUE((*reopened)->document().VerifyOrderAndUniqueness().ok());
}

TEST(DocumentStoreTest, ExplicitCheckpointEmptiesJournal) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "dln", options);
  ASSERT_TRUE(st.ok());
  NodeId root = (*st)->document().tree().root();
  ASSERT_TRUE((*st)->InsertNode(root, xml::NodeKind::kElement, "x", "").ok());
  EXPECT_EQ((*st)->stats().journal_records, 1u);
  ASSERT_TRUE((*st)->Checkpoint().ok());
  EXPECT_EQ((*st)->stats().journal_records, 0u);
  EXPECT_EQ((*st)->stats().sequence, 2u);
  // The journal after a checkpoint holds only the header.
  EXPECT_EQ(fs.FileSize("db/" + store::JournalFileName(2)),
            store::kJournalHeaderSize);
}

TEST(DocumentStoreTest, SyncFailurePoisonsTheStore) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  ASSERT_TRUE(st.ok());
  NodeId root = (*st)->document().tree().root();
  fs.FailNextSyncs(1);
  auto node = (*st)->InsertNode(root, xml::NodeKind::kElement, "x", "");
  EXPECT_FALSE(node.ok());
  // Durability is unknown from here on: every further mutation must fail.
  auto again = (*st)->InsertNode(root, xml::NodeKind::kElement, "y", "");
  EXPECT_FALSE(again.ok());
  EXPECT_FALSE((*st)->Checkpoint().ok());
}

TEST(DocumentStoreTest, RollbackTailRestoresMarkedState) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "dewey", options);
  ASSERT_TRUE(st.ok());
  NodeId root = (*st)->document().tree().root();
  // An acknowledged (group-committed) prefix the rollback must preserve.
  ASSERT_TRUE((*st)->InsertNode(root, xml::NodeKind::kElement, "kept", "").ok());
  ASSERT_TRUE((*st)->CommitBatch().ok());

  const DocumentStore::BatchMark mark = (*st)->Mark();
  const std::string journal_path =
      "db/" + store::JournalFileName((*st)->stats().sequence);
  const std::string journal_at_mark = *fs.GetFile(journal_path);
  const std::string xml = Serialize((*st)->document());
  const std::vector<std::string> labels = LabelBytes((*st)->document());

  // An unsynced tail: two inserts and a delete past the mark.
  root = (*st)->document().tree().root();
  auto doomed =
      (*st)->InsertNode(root, xml::NodeKind::kElement, "doomed", "");
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(
      (*st)->InsertNode(*doomed, xml::NodeKind::kText, "", "gone").ok());
  ASSERT_TRUE(
      (*st)->RemoveSubtree((*st)->document().tree().first_child(root)).ok());

  ASSERT_TRUE((*st)->RollbackTail(mark).ok());
  // In-memory state, journal bytes and stats are exactly the marked state.
  EXPECT_EQ(Serialize((*st)->document()), xml);
  EXPECT_EQ(LabelBytes((*st)->document()), labels);
  EXPECT_EQ(*fs.GetFile(journal_path), journal_at_mark);
  EXPECT_EQ((*st)->stats().journal_bytes, mark.bytes);
  EXPECT_EQ((*st)->stats().journal_records, mark.records);
  // Rolling back to the current position is a no-op.
  ASSERT_TRUE((*st)->RollbackTail((*st)->Mark()).ok());

  // The store stays fully usable: edit, commit, recover.
  root = (*st)->document().tree().root();
  ASSERT_TRUE(
      (*st)->InsertNode(root, xml::NodeKind::kElement, "after", "").ok());
  ASSERT_TRUE((*st)->CommitBatch().ok());
  std::string final_xml = Serialize((*st)->document());
  st->reset();
  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Serialize((*reopened)->document()), final_xml);
  ASSERT_TRUE((*reopened)->document().VerifyOrderAndUniqueness().ok());
}

TEST(DocumentStoreTest, RollbackTailFailurePropagatesAndKeepsAckedPrefix) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  ASSERT_TRUE(st.ok());
  NodeId root = (*st)->document().tree().root();
  ASSERT_TRUE((*st)->InsertNode(root, xml::NodeKind::kElement, "kept", "").ok());
  ASSERT_TRUE((*st)->CommitBatch().ok());
  const DocumentStore::BatchMark mark = (*st)->Mark();
  const std::string journal_path =
      "db/" + store::JournalFileName((*st)->stats().sequence);
  const std::string journal_at_mark = *fs.GetFile(journal_path);

  root = (*st)->document().tree().root();
  ASSERT_TRUE(
      (*st)->InsertNode(root, xml::NodeKind::kElement, "doomed", "").ok());

  // The truncate's durability barrier fails: the rollback must report it
  // (not swallow it) and poison the store — but at no point may the
  // acknowledged prefix be rewritten or lost.
  fs.FailNextSyncs(1);
  EXPECT_FALSE((*st)->RollbackTail(mark).ok());
  std::string journal_now = *fs.GetFile(journal_path);
  EXPECT_EQ(journal_now.substr(0, journal_at_mark.size()), journal_at_mark);
  EXPECT_FALSE(
      (*st)->InsertNode(root, xml::NodeKind::kElement, "z", "").ok());

  // Recovery still yields at least the acknowledged prefix.
  st->reset();
  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  bool found_kept = false;
  for (NodeId n : (*reopened)->document().tree().PreorderNodes()) {
    if ((*reopened)->document().tree().name(n) == "kept") found_kept = true;
  }
  EXPECT_TRUE(found_kept);
}

TEST(DocumentStoreTest, RollbackTailRefusesAfterSyncPoisoning) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "dewey", options);
  ASSERT_TRUE(st.ok());
  const DocumentStore::BatchMark mark = (*st)->Mark();
  NodeId root = (*st)->document().tree().root();
  ASSERT_TRUE((*st)->InsertNode(root, xml::NodeKind::kElement, "x", "").ok());
  fs.FailNextSyncs(1);
  ASSERT_FALSE((*st)->CommitBatch().ok());
  // After a failed fsync no unsynced journal position is trustworthy;
  // rollback must refuse rather than pretend to restore the mark.
  EXPECT_FALSE((*st)->RollbackTail(mark).ok());
}

TEST(DocumentStoreTest, RollbackTailPosix) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("xmlup_rollback_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  StoreOptions options;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  std::string xml;
  {
    auto st =
        DocumentStore::Create(dir.string(), ParseOrDie(kDoc), "dewey", options);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    NodeId root = (*st)->document().tree().root();
    ASSERT_TRUE(
        (*st)->InsertNode(root, xml::NodeKind::kElement, "kept", "").ok());
    ASSERT_TRUE((*st)->CommitBatch().ok());
    const DocumentStore::BatchMark mark = (*st)->Mark();
    xml = Serialize((*st)->document());
    // The real-file path exercises stdio buffering: the tail below sits in
    // the FILE* buffer until the rollback's close flushes it — the
    // truncate must still cut it off.
    root = (*st)->document().tree().root();
    ASSERT_TRUE(
        (*st)->InsertNode(root, xml::NodeKind::kElement, "doomed", "").ok());
    ASSERT_TRUE((*st)->RollbackTail(mark).ok());
    EXPECT_EQ(Serialize((*st)->document()), xml);
  }
  auto st = DocumentStore::Open(dir.string(), options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(Serialize((*st)->document()), xml);
  std::filesystem::remove_all(dir);
}

TEST(DocumentStoreTest, OpenOfMissingStoreFails) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  EXPECT_FALSE(DocumentStore::Open("nowhere", options).ok());
}

TEST(DocumentStoreTest, OverlongCurrentGenerationIsMalformed) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  // 21 digits would silently wrap uint64 if accumulated unchecked.
  fs.SetFile("db/CURRENT", "184467440737095516161\n");
  auto st = DocumentStore::Open("db", options);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.status().ToString().find("out of range"), std::string::npos)
      << st.status().ToString();
}

// An auto-checkpoint compacts NodeIds at the end of a mutating call; the
// id that call returns must be remapped so a caller can chain inserts
// through it. With max_journal_records = 1 every insert checkpoints, so
// any stale id would immediately address the wrong node (or fail).
TEST(DocumentStoreTest, AutoCheckpointRemapsTheReturnedNodeId) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.checkpoint.max_journal_records = 1;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  ASSERT_TRUE(st.ok());
  NodeId parent = (*st)->document().tree().root();
  for (int i = 0; i < 5; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    auto node = (*st)->InsertNode(parent, xml::NodeKind::kElement, name, "");
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    ASSERT_TRUE((*st)->document().tree().IsValid(*node));
    EXPECT_EQ((*st)->document().tree().name(*node), name);
    parent = *node;
  }
  EXPECT_GE((*st)->stats().checkpoints, 5u);
  std::string xml = Serialize((*st)->document());
  EXPECT_NE(xml.find("<c0><c1><c2><c3><c4/></c3></c2></c1></c0>"),
            std::string::npos)
      << xml;

  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Serialize((*reopened)->document()), xml);
  EXPECT_EQ(LabelBytes((*reopened)->document()),
            LabelBytes((*st)->document()));
}

// Directory-durability sweep: run a fixed session (create, six inserts,
// auto-checkpoints at two-record thresholds), failing the k-th fsync —
// file or directory — for every k. After the failure, crash with every
// subset of the still-pending directory operations written back (the
// kernel may flush any of them, in any combination, before a crash) and
// reopen. Recovery must always succeed, keep every acknowledged update,
// and contain at most the one in-flight unacknowledged update. This is
// the matrix that catches a missing or mis-ordered directory sync: an
// unlink durable before the CURRENT rename would leave the store
// unrecoverable.
namespace sweep {

constexpr int kInserts = 6;

// Returns how many inserts were acknowledged (all, unless a fault fired).
size_t RunSession(MemFileSystem* fs) {
  StoreOptions options;
  options.fs = fs;
  options.checkpoint.max_journal_records = 2;
  auto st = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
  if (!st.ok()) return 0;
  size_t acked = 0;
  for (int i = 0; i < kInserts; ++i) {
    NodeId root = (*st)->document().tree().root();
    std::string name = "n";
    name += std::to_string(i);
    if (!(*st)->InsertNode(root, xml::NodeKind::kElement, name, "").ok()) {
      break;
    }
    ++acked;
  }
  return acked;
}

}  // namespace sweep

TEST(DocumentStoreTest, CrashAtEverySyncRecoversAcknowledgedPrefix) {
  // Reference XML after each acknowledged prefix, from clean runs.
  std::vector<std::string> ref;
  for (int j = 0; j <= sweep::kInserts; ++j) {
    MemFileSystem fs;
    StoreOptions options;
    options.fs = &fs;
    options.checkpoint.max_journal_records = 2;
    auto st =
        DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath", options);
    ASSERT_TRUE(st.ok());
    for (int i = 0; i < j; ++i) {
      NodeId root = (*st)->document().tree().root();
      std::string name = "n";
      name += std::to_string(i);
      ASSERT_TRUE(
          (*st)->InsertNode(root, xml::NodeKind::kElement, name, "").ok());
    }
    ref.push_back(Serialize((*st)->document()));
  }

  size_t total_syncs = 0;
  {
    MemFileSystem fs;
    ASSERT_EQ(sweep::RunSession(&fs), size_t{sweep::kInserts});
    total_syncs = fs.sync_count();
  }
  ASSERT_GT(total_syncs, 0u);

  for (size_t k = 0; k < total_syncs; ++k) {
    // Probe run: how many directory ops are pending once sync k fails?
    size_t pending = 0;
    {
      MemFileSystem fs;
      fs.FailSyncs(k, 1);
      sweep::RunSession(&fs);
      pending = fs.pending_metadata_ops();
    }
    // A growing pending list would mean the store keeps mutating without
    // ever syncing the directory — itself a bug worth failing on.
    ASSERT_LE(pending, 8u) << "sync " << k;
    for (uint64_t mask = 0; mask < (uint64_t{1} << pending); ++mask) {
      MemFileSystem fs;
      fs.FailSyncs(k, 1);
      size_t acked = sweep::RunSession(&fs);
      fs.Crash(mask);
      StoreOptions options;
      options.fs = &fs;
      auto st = DocumentStore::Open("db", options);
      if (!st.ok()) {
        // Only permissible if the store was never durably created — i.e.
        // nothing was ever acknowledged.
        EXPECT_EQ(acked, 0u) << "sync " << k << " mask " << mask << ": "
                             << st.status().ToString();
        continue;
      }
      ASSERT_TRUE((*st)->document().VerifyOrderAndUniqueness().ok())
          << "sync " << k << " mask " << mask;
      std::string xml = Serialize((*st)->document());
      // Every acknowledged update survives; the failed call's update may
      // or may not have become durable before the crash.
      EXPECT_TRUE(xml == ref[acked] ||
                  (acked + 1 < ref.size() && xml == ref[acked + 1]))
          << "sync " << k << " mask " << mask << " acked " << acked
          << ": recovered\n"
          << xml;
    }
  }
}

TEST(DocumentStoreTest, PosixRoundTrip) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("xmlup_store_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::string xml;
  std::vector<std::string> labels;
  {
    auto st = DocumentStore::Create(dir.string(), ParseOrDie(kDoc), "vector");
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    NodeId root = (*st)->document().tree().root();
    for (int i = 0; i < 5; ++i) {
      std::string name = "n";
      name += std::to_string(i);
      auto node = (*st)->InsertNode(root, xml::NodeKind::kElement, name, "");
      ASSERT_TRUE(node.ok());
    }
    xml = Serialize((*st)->document());
    labels = LabelBytes((*st)->document());
  }
  auto st = DocumentStore::Open(dir.string());
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ((*st)->stats().recovered_records, 5u);
  EXPECT_EQ(Serialize((*st)->document()), xml);
  EXPECT_EQ(LabelBytes((*st)->document()), labels);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xmlup
