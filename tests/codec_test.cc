#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/rng.h"
#include "labels/binary_codec.h"
#include "labels/dewey_codec.h"
#include "labels/dln_codec.h"
#include "labels/lsdx_codec.h"
#include "labels/order_codec.h"
#include "labels/ordpath_codec.h"
#include "labels/quaternary_codec.h"
#include "labels/vector_codec.h"

namespace xmlup::labels {
namespace {

struct CodecParam {
  const char* name;
  std::function<std::unique_ptr<OrderCodec>()> make;
  // LSDX's published rules violate order/uniqueness in corner cases by
  // design; its property tests are relaxed accordingly.
  bool order_reliable = true;
};

class CodecTest : public ::testing::TestWithParam<CodecParam> {
 protected:
  std::unique_ptr<OrderCodec> codec_ = GetParam().make();
};

TEST_P(CodecTest, InitialCodesAreStrictlyIncreasingAndUnique) {
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 30u, 200u}) {
    std::vector<std::string> codes;
    auto status = codec_->InitialCodes(n, &codes, nullptr);
    ASSERT_TRUE(status.ok()) << codec_->name() << " n=" << n << ": "
                             << status.ToString();
    ASSERT_EQ(codes.size(), n);
    for (size_t i = 1; i < n; ++i) {
      ASSERT_LT(codec_->Compare(codes[i - 1], codes[i]), 0)
          << codec_->name() << " n=" << n << " i=" << i;
    }
  }
}

TEST_P(CodecTest, CompareIsAntisymmetricAndReflexive) {
  std::vector<std::string> codes;
  ASSERT_TRUE(codec_->InitialCodes(20, &codes, nullptr).ok());
  for (const auto& a : codes) {
    EXPECT_EQ(codec_->Compare(a, a), 0);
    for (const auto& b : codes) {
      EXPECT_EQ(codec_->Compare(a, b), -codec_->Compare(b, a));
    }
  }
}

TEST_P(CodecTest, RenderAndStorageAreDefined) {
  std::vector<std::string> codes;
  ASSERT_TRUE(codec_->InitialCodes(10, &codes, nullptr).ok());
  for (const auto& code : codes) {
    EXPECT_FALSE(codec_->Render(code).empty()) << codec_->name();
    EXPECT_GT(codec_->StorageBits(code), 0u) << codec_->name();
  }
}

TEST_P(CodecTest, RandomInsertionChainsStayOrdered) {
  if (!GetParam().order_reliable) {
    GTEST_SKIP() << "scheme is non-unique by design";
  }
  std::vector<std::string> codes;
  ASSERT_TRUE(codec_->InitialCodes(4, &codes, nullptr).ok());
  common::SplitMix64 rng(7);
  int inserted = 0;
  for (int i = 0; i < 400; ++i) {
    size_t gap = rng.NextBelow(codes.size() + 1);
    std::string left = gap == 0 ? std::string() : codes[gap - 1];
    std::string right = gap == codes.size() ? std::string() : codes[gap];
    auto fresh = codec_->Between(left, right, nullptr);
    if (!fresh.ok()) {
      // Overflow means "host must relabel" — legitimate for Dewey, DLN,
      // fixed slots. Any other error is a bug.
      ASSERT_EQ(fresh.status().code(), common::StatusCode::kOverflow)
          << codec_->name() << ": " << fresh.status().ToString();
      continue;
    }
    if (!left.empty()) {
      ASSERT_LT(codec_->Compare(left, *fresh), 0) << codec_->name();
    }
    if (!right.empty()) {
      ASSERT_LT(codec_->Compare(*fresh, right), 0) << codec_->name();
    }
    codes.insert(codes.begin() + static_cast<long>(gap), *fresh);
    ++inserted;
  }
  // Every codec must support at least appends.
  EXPECT_GT(inserted, 0) << codec_->name();
}

TEST_P(CodecTest, AppendChainAlwaysWorksUntilBudget) {
  std::vector<std::string> codes;
  ASSERT_TRUE(codec_->InitialCodes(1, &codes, nullptr).ok());
  std::string last = codes[0];
  for (int i = 0; i < 100; ++i) {
    auto fresh = codec_->Between(last, "", nullptr);
    if (!fresh.ok()) {
      ASSERT_EQ(fresh.status().code(), common::StatusCode::kOverflow);
      return;  // Budgeted codecs may legitimately stop.
    }
    ASSERT_LT(codec_->Compare(last, *fresh), 0) << codec_->name();
    last = *fresh;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecTest,
    ::testing::Values(
        CodecParam{"improved_binary",
                   [] { return std::make_unique<ImprovedBinaryCodec>(); }},
        CodecParam{"cdbs", [] { return std::make_unique<CdbsCodec>(); }},
        CodecParam{"qed", [] { return std::make_unique<QedCodec>(); }},
        CodecParam{"cdqs", [] { return std::make_unique<CdqsCodec>(); }},
        CodecParam{"vector", [] { return std::make_unique<VectorCodec>(); }},
        CodecParam{"dewey", [] { return std::make_unique<DeweyCodec>(); }},
        CodecParam{"dln", [] { return std::make_unique<DlnCodec>(); }},
        CodecParam{"ordpath",
                   [] { return std::make_unique<OrdpathCodec>(); }},
        CodecParam{"lsdx", [] { return std::make_unique<LsdxCodec>(); },
                   /*order_reliable=*/false},
        CodecParam{"com_d", [] { return std::make_unique<ComDCodec>(); },
                   /*order_reliable=*/false}),
    [](const ::testing::TestParamInfo<CodecParam>& info) {
      return info.param.name;
    });

// --- Codec-specific behaviour -------------------------------------------

TEST(DeweyCodecTest, OnlyAppendsSucceed) {
  DeweyCodec codec;
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(3, &codes, nullptr).ok());
  EXPECT_EQ(codec.Render(codes[0]), "1");
  EXPECT_EQ(codec.Render(codes[2]), "3");
  auto after = codec.Between(codes[2], "", nullptr);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(codec.Render(*after), "4");
  auto between = codec.Between(codes[0], codes[1], nullptr);
  ASSERT_FALSE(between.ok());
  EXPECT_EQ(between.status().code(), common::StatusCode::kOverflow);
  auto before = codec.Between("", codes[0], nullptr);
  EXPECT_FALSE(before.ok());
}

TEST(ImprovedBinaryCodecTest, LengthFieldBudgetOverflows) {
  ImprovedBinaryCodec codec(/*length_field_bits=*/3);  // Max 7-bit codes.
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(2, &codes, nullptr).ok());
  std::string last = codes[1];
  bool overflowed = false;
  for (int i = 0; i < 20; ++i) {
    auto fresh = codec.Between(last, "", nullptr);
    if (!fresh.ok()) {
      EXPECT_EQ(fresh.status().code(), common::StatusCode::kOverflow);
      overflowed = true;
      break;
    }
    last = *fresh;
  }
  EXPECT_TRUE(overflowed);
}

TEST(ImprovedBinaryCodecTest, CountsDivisionsAndRecursion) {
  ImprovedBinaryCodec codec;
  std::vector<std::string> codes;
  common::OpCounters stats;
  ASSERT_TRUE(codec.InitialCodes(10, &codes, &stats).ok());
  EXPECT_GT(stats.recursive_calls, 0u);
  EXPECT_GT(stats.divisions, 0u);
}

TEST(QedCodecTest, CodesNeverEndInOne) {
  QedCodec codec;
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(100, &codes, nullptr).ok());
  for (const auto& code : codes) {
    ASSERT_FALSE(code.empty());
    EXPECT_GE(static_cast<int>(code.back()), 2) << codec.Render(code);
  }
}

TEST(QedCodecTest, StorageIncludesSeparator) {
  QedCodec codec;
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(1, &codes, nullptr).ok());
  // One quaternary number (2 bits) + separator (2 bits).
  EXPECT_EQ(codec.StorageBits(codes[0]), 4u);
}

TEST(CdqsCodecTest, UsesShortestCodesFirst) {
  CdqsCodec codec;
  std::vector<std::string> two, eight;
  ASSERT_TRUE(codec.InitialCodes(2, &two, nullptr).ok());
  ASSERT_TRUE(codec.InitialCodes(8, &eight, nullptr).ok());
  EXPECT_EQ(codec.Render(two[0]), "2");
  EXPECT_EQ(codec.Render(two[1]), "3");
  // n=8 uses the two single-digit codes plus six two-digit codes.
  size_t singles = 0;
  for (const auto& code : eight) singles += code.size() == 1 ? 1 : 0;
  EXPECT_EQ(singles, 2u);
}

TEST(CdqsCodecTest, MoreCompactThanQedOnWideFanouts) {
  CdqsCodec cdqs;
  QedCodec qed;
  for (size_t n : {50u, 200u, 1000u}) {
    std::vector<std::string> a, b;
    ASSERT_TRUE(cdqs.InitialCodes(n, &a, nullptr).ok());
    ASSERT_TRUE(qed.InitialCodes(n, &b, nullptr).ok());
    size_t cdqs_bits = 0, qed_bits = 0;
    for (const auto& code : a) cdqs_bits += cdqs.StorageBits(code);
    for (const auto& code : b) qed_bits += qed.StorageBits(code);
    EXPECT_LE(cdqs_bits, qed_bits) << "n=" << n;
  }
}

TEST(VectorCodecTest, MediantBetweenBounds) {
  VectorCodec codec;
  auto mid = codec.Between("", "", nullptr);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(codec.Render(*mid), "(1,1)");
  auto upper = codec.Between(*mid, "", nullptr);
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(codec.Render(*upper), "(1,2)");
  auto between = codec.Between(*mid, *upper, nullptr);
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(codec.Render(*between), "(2,3)");
  EXPECT_LT(codec.Compare(*mid, *between), 0);
  EXPECT_LT(codec.Compare(*between, *upper), 0);
}

TEST(VectorCodecTest, GradientComparisonAvoidsOverflowErrors) {
  VectorCodec codec;
  std::string huge = VectorCodec::Pack(UINT64_MAX / 2, UINT64_MAX / 2 - 1);
  std::string huger = VectorCodec::Pack(UINT64_MAX / 2 - 1, UINT64_MAX / 2);
  EXPECT_LT(codec.Compare(huge, huger), 0);
}

TEST(VectorCodecTest, ComponentOverflowIsReported) {
  VectorCodec codec;
  std::string top = VectorCodec::Pack(1, UINT64_MAX);
  auto result = codec.Between(top, "", nullptr);  // y + 1 wraps.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kOverflow);
}

TEST(DlnCodecTest, AppendOverflowsAtComponentMax) {
  DlnCodec codec(/*component_bits=*/2, /*max_components=*/8);  // Max 3.
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(3, &codes, nullptr).ok());
  EXPECT_EQ(codec.Render(codes[2]), "3");
  auto append = codec.Between(codes[2], "", nullptr);
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), common::StatusCode::kOverflow);
}

TEST(DlnCodecTest, BetweenUsesSubValues) {
  DlnCodec codec;
  std::vector<std::string> codes;
  ASSERT_TRUE(codec.InitialCodes(2, &codes, nullptr).ok());
  auto mid = codec.Between(codes[0], codes[1], nullptr);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(codec.Render(*mid), "1/1");
}

TEST(ComDCodecTest, CompressionRoundTripsPaperExample) {
  // §3.1.2: aaaaabcbcbcdddde -> 5a3(bc)4de.
  EXPECT_EQ(ComDCodec::Compress("aaaaabcbcbcdddde"), "5a3(bc)4de");
  EXPECT_EQ(ComDCodec::Decompress("5a3(bc)4de"), "aaaaabcbcbcdddde");
}

TEST(ComDCodecTest, CompressionRoundTripsRandomStrings) {
  common::SplitMix64 rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string s;
    size_t len = 1 + rng.NextBelow(40);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(4)));
    }
    EXPECT_EQ(ComDCodec::Decompress(ComDCodec::Compress(s)), s) << s;
  }
}

TEST(ComDCodecTest, CompressedStorageNeverLarger) {
  ComDCodec codec;
  LsdxCodec plain;
  for (const char* s : {"b", "zzzzzzzb", "abababab", "bcde"}) {
    EXPECT_LE(codec.StorageBits(s), plain.StorageBits(s)) << s;
  }
}

}  // namespace
}  // namespace xmlup::labels
