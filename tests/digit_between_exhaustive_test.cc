// Exhaustive validation of the digit-string algebra: for every ordered
// pair of valid codes up to a small length, DigitBetween must produce a
// valid code strictly between them. This is the load-bearing invariant
// under ImprovedBinary, CDBS, QED, CDQS and DLN.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "labels/digit_string.h"

namespace xmlup::labels {
namespace {

std::vector<std::string> AllValidCodes(const DigitDomain& domain,
                                       size_t max_len) {
  std::vector<std::string> out;
  std::vector<std::string> frontier = {""};
  for (size_t len = 1; len <= max_len; ++len) {
    std::vector<std::string> next;
    for (const std::string& prefix : frontier) {
      for (int d = domain.min_digit; d <= domain.max_digit; ++d) {
        std::string code = prefix;
        code.push_back(static_cast<char>(d));
        if (static_cast<uint8_t>(code.back()) >= domain.min_terminal) {
          out.push_back(code);
        }
        next.push_back(code);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

struct DomainCase {
  const char* name;
  DigitDomain domain;
  size_t max_len;
};

class DigitBetweenExhaustiveTest
    : public ::testing::TestWithParam<DomainCase> {};

TEST_P(DigitBetweenExhaustiveTest, EveryOrderedPairHasAValidBetween) {
  const DigitDomain& domain = GetParam().domain;
  std::vector<std::string> codes =
      AllValidCodes(domain, GetParam().max_len);
  ASSERT_FALSE(codes.empty());
  size_t pairs = 0;
  for (const std::string& left : codes) {
    for (const std::string& right : codes) {
      if (DigitCompare(left, right) >= 0) continue;
      auto mid = DigitBetween(domain, left, right);
      ASSERT_TRUE(mid.ok())
          << "no code between two valid codes: " << mid.status().ToString();
      ASSERT_TRUE(IsValidDigitCode(domain, *mid));
      ASSERT_LT(DigitCompare(left, *mid), 0);
      ASSERT_LT(DigitCompare(*mid, right), 0);
      ++pairs;
    }
  }
  EXPECT_GT(pairs, 100u) << "enumeration too small to be meaningful";
}

TEST_P(DigitBetweenExhaustiveTest, EveryCodeHasBeforeAndAfter) {
  const DigitDomain& domain = GetParam().domain;
  for (const std::string& code : AllValidCodes(domain, GetParam().max_len)) {
    auto before = DigitBefore(domain, code);
    ASSERT_TRUE(before.ok()) << "no code before a valid code";
    ASSERT_TRUE(IsValidDigitCode(domain, *before));
    ASSERT_LT(DigitCompare(*before, code), 0);
    std::string after = DigitAfter(domain, code);
    ASSERT_TRUE(IsValidDigitCode(domain, after));
    ASSERT_LT(DigitCompare(code, after), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DigitBetweenExhaustiveTest,
    ::testing::Values(DomainCase{"binary", {0, 1, 1}, 7},
                      DomainCase{"quaternary", {1, 3, 2}, 4},
                      DomainCase{"dln", {0, 3, 1}, 4}),
    [](const ::testing::TestParamInfo<DomainCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xmlup::labels
