// Unit tests of the ContainmentScheme host: begin/end label codec,
// interval assignment, insertion boundaries and the full-relabel path.

#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/containment_scheme.h"
#include "labels/quaternary_codec.h"
#include "labels/registry.h"
#include "labels/vector_codec.h"
#include "xml/tree.h"

namespace xmlup::labels {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(ContainmentLabelCodecTest, SplitRoundTrip) {
  Label label = ContainmentScheme::MakeLabel("begin-code", "end");
  std::string begin, end;
  ASSERT_TRUE(ContainmentScheme::Split(label, &begin, &end));
  EXPECT_EQ(begin, "begin-code");
  EXPECT_EQ(end, "end");
  EXPECT_FALSE(ContainmentScheme::Split(Label("\x09x"), &begin, &end));
  EXPECT_FALSE(ContainmentScheme::Split(Label(), &begin, &end));
}

std::unique_ptr<ContainmentScheme> MakeVectorScheme() {
  SchemeTraits traits;
  traits.name = "test-vector";
  traits.display_name = "TestVector";
  return std::make_unique<ContainmentScheme>(
      traits, std::make_unique<VectorCodec>());
}

TEST(ContainmentSchemeTest, IntervalsNestCorrectly) {
  auto scheme = MakeVectorScheme();
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  NodeId a1 = tree.AppendChild(a, NodeKind::kElement, "a1").value();
  std::vector<Label> labels;
  ASSERT_TRUE(scheme->LabelTree(tree, &labels).ok());

  EXPECT_TRUE(scheme->IsAncestor(labels[root], labels[a]));
  EXPECT_TRUE(scheme->IsAncestor(labels[root], labels[a1]));
  EXPECT_TRUE(scheme->IsAncestor(labels[a], labels[a1]));
  EXPECT_FALSE(scheme->IsAncestor(labels[a], labels[b]));
  EXPECT_FALSE(scheme->IsAncestor(labels[b], labels[a1]));
  EXPECT_FALSE(scheme->IsAncestor(labels[a], labels[a]));

  EXPECT_LT(scheme->Compare(labels[root], labels[a]), 0);
  EXPECT_LT(scheme->Compare(labels[a], labels[a1]), 0);
  EXPECT_LT(scheme->Compare(labels[a1], labels[b]), 0);
}

TEST(ContainmentSchemeTest, HostDisablesStructuralPredicates) {
  auto scheme = MakeVectorScheme();
  EXPECT_EQ(scheme->traits().family, "containment");
  EXPECT_FALSE(scheme->traits().supports_parent);
  EXPECT_FALSE(scheme->traits().supports_sibling);
  EXPECT_FALSE(scheme->traits().supports_level);
  EXPECT_FALSE(scheme->Level(Label("xx")).ok());
}

TEST(ContainmentSchemeTest, InsertUsesNeighbourBoundaries) {
  auto scheme = MakeVectorScheme();
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  std::vector<Label> labels;
  ASSERT_TRUE(scheme->LabelTree(tree, &labels).ok());

  // Insert between a and b.
  NodeId mid = tree.InsertChild(root, NodeKind::kElement, "m", "", b).value();
  labels.resize(tree.arena_size());
  auto outcome = scheme->LabelForInsert(tree, mid, labels);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->relabeled.empty());
  labels[mid] = outcome->label;
  EXPECT_LT(scheme->Compare(labels[a], labels[mid]), 0);
  EXPECT_LT(scheme->Compare(labels[mid], labels[b]), 0);
  EXPECT_TRUE(scheme->IsAncestor(labels[root], labels[mid]));
  EXPECT_FALSE(scheme->IsAncestor(labels[a], labels[mid]));

  // Insert under the (previously leaf) node m.
  NodeId child = tree.AppendChild(mid, NodeKind::kElement, "c").value();
  labels.resize(tree.arena_size());
  auto child_outcome = scheme->LabelForInsert(tree, child, labels);
  ASSERT_TRUE(child_outcome.ok());
  labels[child] = child_outcome->label;
  EXPECT_TRUE(scheme->IsAncestor(labels[mid], labels[child]));
  EXPECT_FALSE(scheme->IsAncestor(labels[b], labels[child]));
}

TEST(ContainmentSchemeTest, RootInsertRejected) {
  auto scheme = MakeVectorScheme();
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  std::vector<Label> labels(tree.arena_size());
  EXPECT_FALSE(scheme->LabelForInsert(tree, root, labels).ok());
}

TEST(ContainmentSchemeTest, QedContainmentSharesCodecBehaviour) {
  // The orthogonality ablation scheme: QED codes in interval pairs.
  auto scheme = CreateScheme("qed-containment");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  for (int i = 0; i < 10; ++i) {
    tree.AppendChild(root, NodeKind::kElement, "c").value();
  }
  auto doc = core::LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
  // Renders as a quaternary interval.
  std::string rendered =
      (*scheme)->Render(doc->label(doc->tree().first_child(root)));
  EXPECT_EQ(rendered.front(), '[');
  EXPECT_NE(rendered.find(','), std::string::npos);
}

}  // namespace
}  // namespace xmlup::labels
