#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xmlup::xpath {
namespace {

using core::LabeledDocument;
using xml::NodeId;

class XPathEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scheme = labels::CreateScheme("qed");
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::move(*scheme);
    auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                      scheme_.get());
    ASSERT_TRUE(doc.ok());
    doc_.emplace(std::move(*doc));
  }

  std::vector<std::string> Names(const std::vector<NodeId>& nodes) {
    std::vector<std::string> out;
    for (NodeId n : nodes) {
      out.push_back(doc_->tree().name(n).empty() ? doc_->tree().value(n)
                                                 : doc_->tree().name(n));
    }
    return out;
  }

  std::unique_ptr<labels::LabelingScheme> scheme_;
  std::optional<LabeledDocument> doc_;
};

TEST_F(XPathEvalTest, AbsoluteChildPath) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  // Absolute paths start at the root *element* (there is no separate
  // document node in the tree model), so these two are equivalent when
  // the context is the root.
  auto result = eval.Query("/publisher/editor/name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Names(*result), std::vector<std::string>{"name"});
  auto from_root = eval.Query("publisher/editor/name");
  ASSERT_TRUE(from_root.ok());
  EXPECT_EQ(Names(*from_root), std::vector<std::string>{"name"});
}

TEST_F(XPathEvalTest, DescendantSearch) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto result = eval.Query("//name");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(eval.StringValue((*result)[0]), "Destiny Image");
}

TEST_F(XPathEvalTest, WildcardAndText) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto elements = eval.Query("//*");
  ASSERT_TRUE(elements.ok());
  // // expands to descendant-or-self::node()/child::*, so every element
  // except the (parentless) root: 7 of the 8 elements.
  EXPECT_EQ(elements->size(), 7u);
  auto texts = eval.Query("//text()");
  ASSERT_TRUE(texts.ok());
  EXPECT_EQ(texts->size(), 5u);
}

TEST_F(XPathEvalTest, AttributeAxis) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto genre = eval.Query("title/@genre");
  ASSERT_TRUE(genre.ok());
  ASSERT_EQ(genre->size(), 1u);
  EXPECT_EQ(doc_->tree().value((*genre)[0]), "Fantasy");
  // @* matches attributes only.
  auto all_attrs = eval.Query("//@*");
  ASSERT_TRUE(all_attrs.ok());
  EXPECT_EQ(all_attrs->size(), 2u);  // genre + year.
}

TEST_F(XPathEvalTest, PositionalPredicates) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto second = eval.Query("*[2]");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Names(*second), std::vector<std::string>{"author"});
  auto last = eval.Query("*[last()]");
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(Names(*last), std::vector<std::string>{"publisher"});
}

TEST_F(XPathEvalTest, ExistenceAndEqualityPredicates) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto with_editor = eval.Query("*[editor]");
  ASSERT_TRUE(with_editor.ok());
  EXPECT_EQ(Names(*with_editor), std::vector<std::string>{"publisher"});
  auto by_value = eval.Query("//editor[name='Destiny Image']/address");
  ASSERT_TRUE(by_value.ok());
  ASSERT_EQ(by_value->size(), 1u);
  EXPECT_EQ(eval.StringValue((*by_value)[0]), "USA");
  auto by_attr = eval.Query("title[@genre='Fantasy']");
  ASSERT_TRUE(by_attr.ok());
  EXPECT_EQ(by_attr->size(), 1u);
  auto no_match = eval.Query("title[@genre='SciFi']");
  ASSERT_TRUE(no_match.ok());
  EXPECT_TRUE(no_match->empty());
}

TEST_F(XPathEvalTest, ParentAndAncestorAxes) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto parent = eval.Query("//name/..");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(Names(*parent), std::vector<std::string>{"editor"});
  auto ancestors = eval.Query("//name/ancestor::*");
  ASSERT_TRUE(ancestors.ok());
  EXPECT_EQ(Names(*ancestors),
            (std::vector<std::string>{"book", "publisher", "editor"}));
  auto nearest = eval.Query("//name/ancestor::*[1]");
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(Names(*nearest), std::vector<std::string>{"editor"});
}

TEST_F(XPathEvalTest, SiblingAxes) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto following = eval.Query("title/following-sibling::*");
  ASSERT_TRUE(following.ok());
  EXPECT_EQ(Names(*following),
            (std::vector<std::string>{"author", "publisher"}));
  auto preceding = eval.Query("publisher/preceding-sibling::*[1]");
  ASSERT_TRUE(preceding.ok());
  EXPECT_EQ(Names(*preceding), std::vector<std::string>{"author"});
}

TEST_F(XPathEvalTest, FollowingAndPrecedingAxes) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto following = eval.Query("//author/following::*");
  ASSERT_TRUE(following.ok());
  EXPECT_EQ(Names(*following),
            (std::vector<std::string>{"publisher", "editor", "name",
                                      "address", "edition"}));
}

TEST_F(XPathEvalTest, UnionMergesInDocumentOrder) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto result = eval.Query("//author | //name | //author");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Names(*result), (std::vector<std::string>{"author", "name"}));
}

TEST_F(XPathEvalTest, NumericComparisonPredicates) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  // year attribute is "2004": numeric comparison applies.
  auto newer = eval.Query("//edition[@year>'1999']");
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(newer->size(), 1u);
  auto older = eval.Query("//edition[@year<'1999']");
  ASSERT_TRUE(older.ok());
  EXPECT_TRUE(older->empty());
  auto ne = eval.Query("*[@genre!='Fantasy']");
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(ne->empty());  // title's genre IS Fantasy.
}

TEST(CompareValuesTest, NumericVsStringSemantics) {
  using xmlup::xpath::CompareOp;
  EXPECT_TRUE(XPathEvaluator::CompareValues("10", CompareOp::kGt, "9"));
  EXPECT_FALSE(XPathEvaluator::CompareValues("10x", CompareOp::kGt, "9"));
  EXPECT_TRUE(XPathEvaluator::CompareValues("abc", CompareOp::kLt, "abd"));
  EXPECT_TRUE(XPathEvaluator::CompareValues("1.50", CompareOp::kEq, "1.5"));
  EXPECT_TRUE(XPathEvaluator::CompareValues("a", CompareOp::kNe, "b"));
  EXPECT_TRUE(XPathEvaluator::CompareValues("2", CompareOp::kGe, "2"));
  EXPECT_TRUE(XPathEvaluator::CompareValues("2", CompareOp::kLe, "2"));
}

TEST_F(XPathEvalTest, StringValueOfElements) {
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto editor = eval.Query("//editor");
  ASSERT_TRUE(editor.ok());
  EXPECT_EQ(eval.StringValue((*editor)[0]), "Destiny ImageUSA");
}

TEST_F(XPathEvalTest, DuplicateEliminationAcrossContexts) {
  // Two distinct context nodes reach the same ancestor: the result set
  // must contain it once (§2.2's uniqueness requirement).
  XPathEvaluator eval(&*doc_, EvalMode::kLabels);
  auto result = eval.Query("//editor/*/ancestor::*");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Names(*result),
            (std::vector<std::string>{"book", "publisher", "editor"}));
}

TEST_F(XPathEvalTest, PartialSchemesRejectStructuralAxes) {
  auto vector_scheme = labels::CreateScheme("vector");
  ASSERT_TRUE(vector_scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    vector_scheme->get());
  ASSERT_TRUE(doc.ok());
  XPathEvaluator eval(&*doc, EvalMode::kLabels);
  // Ancestor-descendant works (containment)...
  auto desc = eval.Query("descendant::name");
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_EQ(desc->size(), 1u);
  // ...but the child axis cannot be answered from vector labels alone:
  // the Partial grade of Figure 7 surfacing as an error.
  auto child = eval.Query("publisher/editor");
  ASSERT_FALSE(child.ok());
  EXPECT_EQ(child.status().code(), common::StatusCode::kUnsupported);
  // The tree-mode evaluator (auxiliary structure) still answers it.
  XPathEvaluator tree_eval(&*doc, EvalMode::kTree);
  auto via_tree = tree_eval.Query("publisher/editor");
  ASSERT_TRUE(via_tree.ok());
  EXPECT_EQ(via_tree->size(), 1u);
}

// Label-mode and tree-mode evaluation agree on every query, for every
// full-support scheme.
class XPathEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(XPathEquivalenceTest, LabelAndTreeModesAgree) {
  auto scheme = labels::CreateScheme(GetParam());
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 120;
  shape.seed = 23;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  XPathEvaluator by_labels(&*doc, EvalMode::kLabels);
  XPathEvaluator by_tree(&*doc, EvalMode::kTree);
  const char* queries[] = {
      "//item",
      "//*[@id]",
      "//record/..",
      "//entry/ancestor::*",
      "*[2]/*[1]",
      "//person/following-sibling::*",
      "//order[1]/preceding-sibling::*[1]",
      "//text()",
      "//note/descendant-or-self::node()",
      "//*[last()]",
      "//section/following::item",
  };
  for (const char* query : queries) {
    auto a = by_labels.Query(query);
    auto b = by_tree.Query(query);
    ASSERT_EQ(a.ok(), b.ok()) << query;
    if (!a.ok()) continue;
    EXPECT_EQ(*a, *b) << GetParam() << " query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullSupportSchemes, XPathEquivalenceTest,
    ::testing::Values("dewey", "ordpath", "dln", "improved-binary", "qed",
                      "cdqs", "prime", "dde"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xmlup::xpath
