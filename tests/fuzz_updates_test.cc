// Randomised failure-injection sweep: long mixed sequences of structural
// updates (leaf / internal / subtree inserts, subtree deletions, content
// updates) against every scheme, across several seeds, with full
// verification at checkpoints. Complements scheme_property_test's
// pattern-driven batteries with arbitrary interleavings.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "observability/metrics.h"
#include "store/document_store.h"
#include "store/file.h"
#include "workload/document_generator.h"
#include "xml/serializer.h"

namespace xmlup::core {
namespace {

using common::SplitMix64;
using common::Status;
using xml::NodeId;
using xml::NodeKind;

struct FuzzCase {
  std::string scheme;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = info.param.scheme + "_seed" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::vector<FuzzCase> Cases() {
  std::vector<FuzzCase> cases;
  for (const std::string& scheme : labels::AllSchemeNames()) {
    if (scheme == "lsdx" || scheme == "com-d") continue;  // Non-unique.
    for (uint64_t seed : {101ULL, 202ULL, 303ULL}) {
      cases.push_back({scheme, seed});
    }
  }
  return cases;
}

class FuzzUpdateTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzUpdateTest, LongMixedUpdateSequencesKeepInvariants) {
  const FuzzCase& param = GetParam();
  auto scheme = labels::CreateScheme(param.scheme);
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 80;
  shape.seed = param.seed;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  SplitMix64 rng(param.seed * 7919);
  auto random_element = [&]() -> NodeId {
    std::vector<NodeId> nodes = doc->tree().PreorderNodes();
    for (int tries = 0; tries < 50; ++tries) {
      NodeId n = nodes[rng.NextBelow(nodes.size())];
      if (doc->tree().kind(n) == NodeKind::kElement) return n;
    }
    return doc->tree().root();
  };

  int performed = 0;
  for (int op = 0; op < 300; ++op) {
    uint64_t kind = rng.NextBelow(10);
    if (kind < 5) {
      // Leaf insert at a random gap.
      NodeId parent = random_element();
      std::vector<NodeId> kids = doc->tree().Children(parent);
      NodeId before = kids.empty()
                          ? xml::kInvalidNode
                          : (rng.NextBool(0.5)
                                 ? kids[rng.NextBelow(kids.size())]
                                 : xml::kInvalidNode);
      auto node = doc->InsertNode(parent, NodeKind::kElement, "f", "",
                                  before);
      if (!node.ok()) {
        ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow)
            << node.status().ToString();
        break;
      }
    } else if (kind < 7) {
      // Subtree insert (internal-node update): graft a small fragment.
      xml::Tree fragment;
      NodeId froot =
          fragment.CreateRoot(NodeKind::kElement, "frag").value();
      fragment.AppendChild(froot, NodeKind::kAttribute, "k", "v").value();
      NodeId mid = fragment.AppendChild(froot, NodeKind::kElement, "m")
                       .value();
      fragment.AppendChild(mid, NodeKind::kText, "", "t").value();
      auto grafted =
          doc->InsertSubtree(random_element(), fragment, froot);
      if (!grafted.ok()) {
        ASSERT_EQ(grafted.status().code(), common::StatusCode::kOverflow);
        break;
      }
    } else if (kind < 9) {
      // Subtree delete (keep the document from collapsing).
      std::vector<NodeId> nodes = doc->tree().PreorderNodes();
      if (nodes.size() > 30) {
        NodeId victim = nodes[1 + rng.NextBelow(nodes.size() - 1)];
        ASSERT_TRUE(doc->RemoveSubtree(victim).ok());
      }
    } else {
      // Content update: labels must be untouched.
      NodeId target = random_element();
      labels::Label before_label = doc->label(target);
      ASSERT_TRUE(doc->UpdateValue(target, "updated").ok());
      ASSERT_EQ(doc->label(target), before_label);
    }
    ++performed;
    if (op % 75 == 74) {
      ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok())
          << param.scheme << " after op " << op;
    }
  }
  EXPECT_GT(performed, 20) << "battery ended too early";
  Status order = doc->VerifyOrderAndUniqueness();
  EXPECT_TRUE(order.ok()) << order.message();
  Status axes = doc->VerifyAxes(param.seed);
  EXPECT_TRUE(axes.ok()) << axes.message();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FuzzUpdateTest, ::testing::ValuesIn(Cases()),
                         CaseName);

// --- Journaled-store fuzz -------------------------------------------------
//
// The same kind of mixed battery, but driven through a DocumentStore so
// every update is journalled, then recovered. Runs for ALL registered
// schemes — including lsdx and com-d, whose labels are not unique under
// updates: recovery replay only cross-checks the journalled outcome
// (node id, relabel count, overflow), not uniqueness, so the bit-identical
// label comparison below is the meaningful invariant for them. The
// snapshot stays at generation 1 (auto_checkpoint=false), so replay — not
// snapshot restore — carries every update.
//
// A test-side UpdateObserver records the primitive event sequence
// independently of both the journal writer and the metrics cells; all
// three paths must agree, before and after recovery.

// Counts primitive update events exactly as the journal sees them: one
// OnInsertNode per serialised node of a subtree graft, one OnRemoveSubtree
// per whole-subtree removal.
class EventCounter : public UpdateObserver {
 public:
  void OnInsertNode(const LabeledDocument&, NodeId,
                    const UpdateStats&) override {
    ++inserts;
  }
  void OnRemoveSubtree(const LabeledDocument&, NodeId) override { ++removes; }
  void OnUpdateValue(const LabeledDocument&, NodeId) override {
    ++value_updates;
  }

  uint64_t total() const { return inserts + removes + value_updates; }

  uint64_t inserts = 0;
  uint64_t removes = 0;
  uint64_t value_updates = 0;
};

std::map<std::string, uint64_t> MetricFields() {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : obs::GlobalMetrics().TextFields(false)) {
    out[name] = std::stoull(value);
  }
  return out;
}

uint64_t Field(const std::map<std::string, uint64_t>& fields,
               const std::string& name) {
  auto it = fields.find(name);
  return it == fields.end() ? 0 : it->second;
}

std::string Serialize(const LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

std::vector<std::string> LabelBytes(const LabeledDocument& doc) {
  std::vector<std::string> out;
  for (NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

std::vector<FuzzCase> JournaledCases() {
  std::vector<FuzzCase> cases;
  for (const std::string& scheme : labels::AllSchemeNames()) {
    for (uint64_t seed : {11ULL, 23ULL}) {
      cases.push_back({scheme, seed});
    }
  }
  return cases;
}

class JournaledFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(JournaledFuzzTest, SubtreeMixesRecoverBitIdenticalWithMetrics) {
  const FuzzCase& param = GetParam();
  workload::DocumentShape shape;
  shape.target_nodes = 40;
  shape.seed = param.seed;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());

  store::MemFileSystem fs;
  store::StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  obs::GlobalMetrics().Reset();

  EventCounter events;  // outlives the store it observes
  auto created =
      store::DocumentStore::Create("db", std::move(*tree), param.scheme,
                                   options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  store::DocumentStore* st = created->get();
  st->mutable_document()->AddUpdateObserver(&events);

  SplitMix64 rng(param.seed * 6151);
  auto random_element = [&]() -> NodeId {
    std::vector<NodeId> nodes = st->document().tree().PreorderNodes();
    for (int tries = 0; tries < 50; ++tries) {
      NodeId n = nodes[rng.NextBelow(nodes.size())];
      if (st->document().tree().kind(n) == NodeKind::kElement) return n;
    }
    return st->document().tree().root();
  };

  for (int op = 0; op < 150; ++op) {
    uint64_t kind = rng.NextBelow(10);
    if (kind < 4) {
      NodeId parent = random_element();
      std::vector<NodeId> kids = st->document().tree().Children(parent);
      NodeId before = kids.empty()
                          ? xml::kInvalidNode
                          : (rng.NextBool(0.5)
                                 ? kids[rng.NextBelow(kids.size())]
                                 : xml::kInvalidNode);
      auto node = st->InsertNode(parent, NodeKind::kElement, "f", "", before);
      if (!node.ok()) {
        ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow)
            << node.status().ToString();
        break;
      }
    } else if (kind < 7) {
      xml::Tree fragment;
      NodeId froot = fragment.CreateRoot(NodeKind::kElement, "frag").value();
      fragment.AppendChild(froot, NodeKind::kAttribute, "k", "v").value();
      NodeId mid = fragment.AppendChild(froot, NodeKind::kElement, "m").value();
      fragment.AppendChild(mid, NodeKind::kText, "", "t").value();
      auto grafted = st->InsertSubtree(random_element(), fragment, froot);
      if (!grafted.ok()) {
        ASSERT_EQ(grafted.status().code(), common::StatusCode::kOverflow);
        break;
      }
    } else if (kind < 9) {
      std::vector<NodeId> nodes = st->document().tree().PreorderNodes();
      if (nodes.size() > 25) {
        NodeId victim = nodes[1 + rng.NextBelow(nodes.size() - 1)];
        ASSERT_TRUE(st->RemoveSubtree(victim).ok());
      }
    } else {
      ASSERT_TRUE(st->UpdateValue(random_element(), "updated").ok());
    }
  }
  ASSERT_TRUE(st->CommitBatch().ok());
  st->mutable_document()->RemoveUpdateObserver(&events);

  const uint64_t recorded = events.total();
  EXPECT_GT(recorded, 20u) << "battery ended too early";
  // Journal writer, metrics cells, and the reference observer each counted
  // the primitive event stream independently; all three must agree.
  EXPECT_EQ(st->stats().journal_records, recorded);
  const std::string prefix = "doc." + param.scheme + ".";
  if (obs::kMetricsEnabled) {
    auto fields = MetricFields();
    EXPECT_EQ(Field(fields, "store.journal.appends"), recorded);
    EXPECT_EQ(Field(fields, prefix + "inserts"), events.inserts);
    EXPECT_EQ(Field(fields, prefix + "removes"), events.removes);
    EXPECT_EQ(Field(fields, prefix + "value_updates"), events.value_updates);
  }

  std::string xml = Serialize(st->document());
  std::vector<std::string> labels = LabelBytes(st->document());
  created->reset();  // close cleanly; the journal holds every update

  obs::GlobalMetrics().Reset();
  auto reopened = store::DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().recovered_records, recorded);
  EXPECT_EQ(Serialize((*reopened)->document()), xml);
  // Labels must come back bit-identical, not merely order-equivalent:
  // replay retraces the original execution, and schemes are deterministic.
  EXPECT_EQ(LabelBytes((*reopened)->document()), labels);
  if (obs::kMetricsEnabled) {
    // Replay re-drives every journalled event through the labelled
    // document, so the recovery counters and the per-scheme event counters
    // both reconcile with the reference recording.
    auto fields = MetricFields();
    EXPECT_EQ(Field(fields, "store.recovery.opens"), 1u);
    EXPECT_EQ(Field(fields, "store.recovery.replayed_records"), recorded);
    EXPECT_EQ(Field(fields, "store.recovery.truncated_bytes"), 0u);
    EXPECT_EQ(Field(fields, prefix + "inserts"), events.inserts);
    EXPECT_EQ(Field(fields, prefix + "removes"), events.removes);
    EXPECT_EQ(Field(fields, prefix + "value_updates"), events.value_updates);
  }
  if (param.scheme != "lsdx" && param.scheme != "com-d") {
    Status order = (*reopened)->document().VerifyOrderAndUniqueness();
    EXPECT_TRUE(order.ok()) << order.message();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, JournaledFuzzTest,
                         ::testing::ValuesIn(JournaledCases()), CaseName);

}  // namespace
}  // namespace xmlup::core
