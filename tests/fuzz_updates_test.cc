// Randomised failure-injection sweep: long mixed sequences of structural
// updates (leaf / internal / subtree inserts, subtree deletions, content
// updates) against every scheme, across several seeds, with full
// verification at checkpoints. Complements scheme_property_test's
// pattern-driven batteries with arbitrary interleavings.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace xmlup::core {
namespace {

using common::SplitMix64;
using common::Status;
using xml::NodeId;
using xml::NodeKind;

struct FuzzCase {
  std::string scheme;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = info.param.scheme + "_seed" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::vector<FuzzCase> Cases() {
  std::vector<FuzzCase> cases;
  for (const std::string& scheme : labels::AllSchemeNames()) {
    if (scheme == "lsdx" || scheme == "com-d") continue;  // Non-unique.
    for (uint64_t seed : {101ULL, 202ULL, 303ULL}) {
      cases.push_back({scheme, seed});
    }
  }
  return cases;
}

class FuzzUpdateTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzUpdateTest, LongMixedUpdateSequencesKeepInvariants) {
  const FuzzCase& param = GetParam();
  auto scheme = labels::CreateScheme(param.scheme);
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 80;
  shape.seed = param.seed;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  SplitMix64 rng(param.seed * 7919);
  auto random_element = [&]() -> NodeId {
    std::vector<NodeId> nodes = doc->tree().PreorderNodes();
    for (int tries = 0; tries < 50; ++tries) {
      NodeId n = nodes[rng.NextBelow(nodes.size())];
      if (doc->tree().kind(n) == NodeKind::kElement) return n;
    }
    return doc->tree().root();
  };

  int performed = 0;
  for (int op = 0; op < 300; ++op) {
    uint64_t kind = rng.NextBelow(10);
    if (kind < 5) {
      // Leaf insert at a random gap.
      NodeId parent = random_element();
      std::vector<NodeId> kids = doc->tree().Children(parent);
      NodeId before = kids.empty()
                          ? xml::kInvalidNode
                          : (rng.NextBool(0.5)
                                 ? kids[rng.NextBelow(kids.size())]
                                 : xml::kInvalidNode);
      auto node = doc->InsertNode(parent, NodeKind::kElement, "f", "",
                                  before);
      if (!node.ok()) {
        ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow)
            << node.status().ToString();
        break;
      }
    } else if (kind < 7) {
      // Subtree insert (internal-node update): graft a small fragment.
      xml::Tree fragment;
      NodeId froot =
          fragment.CreateRoot(NodeKind::kElement, "frag").value();
      fragment.AppendChild(froot, NodeKind::kAttribute, "k", "v").value();
      NodeId mid = fragment.AppendChild(froot, NodeKind::kElement, "m")
                       .value();
      fragment.AppendChild(mid, NodeKind::kText, "", "t").value();
      auto grafted =
          doc->InsertSubtree(random_element(), fragment, froot);
      if (!grafted.ok()) {
        ASSERT_EQ(grafted.status().code(), common::StatusCode::kOverflow);
        break;
      }
    } else if (kind < 9) {
      // Subtree delete (keep the document from collapsing).
      std::vector<NodeId> nodes = doc->tree().PreorderNodes();
      if (nodes.size() > 30) {
        NodeId victim = nodes[1 + rng.NextBelow(nodes.size() - 1)];
        ASSERT_TRUE(doc->RemoveSubtree(victim).ok());
      }
    } else {
      // Content update: labels must be untouched.
      NodeId target = random_element();
      labels::Label before_label = doc->label(target);
      ASSERT_TRUE(doc->UpdateValue(target, "updated").ok());
      ASSERT_EQ(doc->label(target), before_label);
    }
    ++performed;
    if (op % 75 == 74) {
      ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok())
          << param.scheme << " after op " << op;
    }
  }
  EXPECT_GT(performed, 20) << "battery ended too early";
  Status order = doc->VerifyOrderAndUniqueness();
  EXPECT_TRUE(order.ok()) << order.message();
  Status axes = doc->VerifyAxes(param.seed);
  EXPECT_TRUE(axes.ok()) << axes.message();
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FuzzUpdateTest, ::testing::ValuesIn(Cases()),
                         CaseName);

}  // namespace
}  // namespace xmlup::core
