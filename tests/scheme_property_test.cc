// Property tests over every labelling scheme in the registry: after any
// sequence of structural updates, (i) label order equals document order,
// (ii) labels are unique, (iii) the label predicates the scheme claims
// (ancestor/parent/sibling/level) agree with tree ground truth, and
// (iv) schemes graded persistent never rewrite existing labels.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace xmlup::core {
namespace {

using common::Status;
using labels::CreateScheme;
using labels::LabelingScheme;
using workload::InsertPattern;
using workload::InsertionPlanner;
using xml::NodeId;
using xml::NodeKind;

struct SchemeCase {
  std::string scheme;
  InsertPattern pattern;
};

std::string CaseName(const ::testing::TestParamInfo<SchemeCase>& info) {
  std::string name = info.param.scheme + "_" +
                     std::string(InsertPatternName(info.param.pattern));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::vector<SchemeCase> AllCases() {
  std::vector<SchemeCase> cases;
  for (const std::string& scheme : labels::AllSchemeNames()) {
    if (scheme == "lsdx" || scheme == "com-d") {
      // LSDX's published rules are non-unique by design (§3.1.2); its
      // regression tests live in lsdx_scheme_test.cc.
      continue;
    }
    for (InsertPattern pattern :
         {InsertPattern::kRandom, InsertPattern::kUniform,
          InsertPattern::kSkewedFixed, InsertPattern::kAppend,
          InsertPattern::kPrepend}) {
      cases.push_back({scheme, pattern});
    }
  }
  return cases;
}

class SchemeUpdateTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeUpdateTest, InvariantsHoldThroughUpdates) {
  const SchemeCase& param = GetParam();
  auto scheme = CreateScheme(param.scheme);
  ASSERT_TRUE(scheme.ok());

  workload::DocumentShape shape;
  shape.target_nodes = 120;
  shape.max_depth = 5;
  shape.max_fanout = 6;
  shape.seed = 97;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok())
      << doc->VerifyOrderAndUniqueness().message();
  ASSERT_TRUE(doc->VerifyAxes().ok()) << doc->VerifyAxes().message();

  InsertionPlanner planner(param.pattern, 3);
  for (int i = 0; i < 80; ++i) {
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "n",
                                std::to_string(i), pos->before);
    if (!node.ok()) {
      // Budgeted schemes may hard-exhaust under adversarial patterns.
      ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow)
          << node.status().ToString();
      break;
    }
  }
  Status order = doc->VerifyOrderAndUniqueness();
  EXPECT_TRUE(order.ok()) << order.message();
  Status axes = doc->VerifyAxes();
  EXPECT_TRUE(axes.ok()) << axes.message();
}

TEST_P(SchemeUpdateTest, InvariantsHoldThroughDeletionsAndReinsertion) {
  const SchemeCase& param = GetParam();
  auto scheme = CreateScheme(param.scheme);
  ASSERT_TRUE(scheme.ok());

  workload::DocumentShape shape;
  shape.target_nodes = 100;
  shape.seed = 53;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  common::SplitMix64 rng(17);
  InsertionPlanner planner(param.pattern, 5);
  for (int round = 0; round < 30; ++round) {
    // Delete a random non-root subtree.
    std::vector<NodeId> nodes = doc->tree().PreorderNodes();
    if (nodes.size() > 20) {
      NodeId victim = nodes[1 + rng.NextBelow(nodes.size() - 1)];
      ASSERT_TRUE(doc->RemoveSubtree(victim).ok());
    }
    // Insert a couple of nodes.
    for (int i = 0; i < 3; ++i) {
      auto pos = planner.Next(doc->tree());
      ASSERT_TRUE(pos.ok());
      auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                  pos->before);
      if (!node.ok()) {
        ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow);
        break;
      }
    }
  }
  Status order = doc->VerifyOrderAndUniqueness();
  EXPECT_TRUE(order.ok()) << order.message();
  Status axes = doc->VerifyAxes();
  EXPECT_TRUE(axes.ok()) << axes.message();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeUpdateTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// --- Non-parameterised cross-scheme checks -------------------------------

TEST(SchemeRegistryTest, AllNamesConstruct) {
  for (const std::string& name : labels::AllSchemeNames()) {
    auto scheme = CreateScheme(name);
    ASSERT_TRUE(scheme.ok()) << name;
    EXPECT_EQ((*scheme)->traits().name, name);
    EXPECT_FALSE((*scheme)->traits().display_name.empty());
    EXPECT_FALSE((*scheme)->traits().citation.empty());
  }
}

TEST(SchemeRegistryTest, UnknownNameIsNotFound) {
  auto scheme = CreateScheme("no-such-scheme");
  ASSERT_FALSE(scheme.ok());
  EXPECT_EQ(scheme.status().code(), common::StatusCode::kNotFound);
}

TEST(SchemeRegistryTest, PaperMatrixHasTwelveRows) {
  EXPECT_EQ(labels::PaperMatrixSchemeNames().size(), 12u);
  for (const std::string& name : labels::PaperMatrixSchemeNames()) {
    auto scheme = CreateScheme(name);
    ASSERT_TRUE(scheme.ok());
    EXPECT_TRUE((*scheme)->traits().in_paper_matrix) << name;
  }
}

TEST(SchemeLabelTest, SampleDocumentLabelsAreDeterministic) {
  for (const std::string& name : labels::AllSchemeNames()) {
    auto scheme = CreateScheme(name);
    ASSERT_TRUE(scheme.ok());
    xml::Tree t1 = workload::SampleBookDocument();
    xml::Tree t2 = workload::SampleBookDocument();
    std::vector<labels::Label> l1, l2;
    ASSERT_TRUE((*scheme)->LabelTree(t1, &l1).ok()) << name;
    ASSERT_TRUE((*scheme)->LabelTree(t2, &l2).ok()) << name;
    EXPECT_EQ(l1.size(), l2.size());
    for (size_t i = 0; i < l1.size(); ++i) {
      EXPECT_EQ(l1[i], l2[i]) << name << " node " << i;
    }
  }
}

TEST(SchemeLabelTest, StorageBitsPositiveForAllLiveLabels) {
  for (const std::string& name : labels::AllSchemeNames()) {
    auto scheme = CreateScheme(name);
    ASSERT_TRUE(scheme.ok());
    xml::Tree tree = workload::SampleBookDocument();
    auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
    ASSERT_TRUE(doc.ok()) << name;
    EXPECT_GT(doc->TotalLabelBits(), 0u) << name;
    EXPECT_GT(doc->AverageLabelBits(), 0.0) << name;
  }
}

TEST(SchemeLabelTest, RenderedLabelsAreNonEmpty) {
  for (const std::string& name : labels::AllSchemeNames()) {
    auto scheme = CreateScheme(name);
    ASSERT_TRUE(scheme.ok());
    xml::Tree tree = workload::SampleBookDocument();
    auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
    ASSERT_TRUE(doc.ok());
    for (NodeId n : doc->tree().PreorderNodes()) {
      EXPECT_FALSE((*scheme)->Render(doc->label(n)).empty())
          << name << " node " << n;
    }
  }
}

}  // namespace
}  // namespace xmlup::core
