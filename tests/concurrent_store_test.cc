// ConcurrentStore: the single-writer group-commit pipeline with
// snapshot-isolated readers. Covers the action-grammar parser shared by
// the CLI and the wire protocol, read-your-writes after acknowledgement,
// pinned-view immutability, backpressure on the bounded queue, commit
// failure semantics (no acknowledgement without durability) and restart
// recovery.

#include "concurrency/concurrent_store.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/update.h"
#include "store/document_store.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::concurrency {
namespace {

using store::MemFileSystem;

std::string Name(const char* prefix, int i) {
  std::string out = prefix;
  out += std::to_string(i);
  return out;
}

xml::Tree BaseTree() {
  auto tree = xml::ParseDocument("<root><a>1</a><b>2</b></root>");
  EXPECT_TRUE(tree.ok());
  return std::move(*tree);
}

UpdateRequest InsertChild(std::string xpath, std::string name,
                          std::string value = "") {
  UpdateRequest request;
  request.op = UpdateRequest::Op::kInsertChild;
  request.xpath = std::move(xpath);
  request.kind = xml::NodeKind::kElement;
  request.name = std::move(name);
  request.value = std::move(value);
  return request;
}

// --- Action grammar -------------------------------------------------------

TEST(ParseActionTokensTest, ParsesTheCliGrammar) {
  auto actions = ParseActionTokens({"-s", ".", "-t", "elem", "-n", "c", "-i",
                                    "/a", "-t", "comment", "-v", "note",
                                    "-d", "/b", "-u", "/a/text()", "-v",
                                    "42"});
  ASSERT_TRUE(actions.ok()) << actions.status().ToString();
  ASSERT_EQ(actions->size(), 4u);
  EXPECT_EQ((*actions)[0].op, UpdateRequest::Op::kInsertChild);
  EXPECT_EQ((*actions)[0].name, "c");
  EXPECT_EQ((*actions)[1].op, UpdateRequest::Op::kInsertBefore);
  EXPECT_EQ((*actions)[1].kind, xml::NodeKind::kComment);
  EXPECT_EQ((*actions)[1].value, "note");
  EXPECT_EQ((*actions)[2].op, UpdateRequest::Op::kDelete);
  EXPECT_EQ((*actions)[3].op, UpdateRequest::Op::kSetValue);
  EXPECT_EQ((*actions)[3].value, "42");
}

TEST(ParseActionTokensTest, RejectsMalformedScripts) {
  // Every structural error is caught before anything touches a store.
  EXPECT_FALSE(ParseActionTokens({"-s"}).ok());               // no operand
  EXPECT_FALSE(ParseActionTokens({"-t", "elem"}).ok());       // no action yet
  EXPECT_FALSE(ParseActionTokens({"-s", ".", "-t"}).ok());    // no operand
  EXPECT_FALSE(
      ParseActionTokens({"-s", ".", "-t", "blob", "-n", "x"}).ok());
  EXPECT_FALSE(ParseActionTokens({"-s", ".", "-t", "elem"}).ok());  // no -n
  EXPECT_FALSE(
      ParseActionTokens({"-s", ".", "-t", "attr", "-v", "x"}).ok());
  EXPECT_FALSE(ParseActionTokens({"-u", "/a"}).ok());         // -u needs -v
  EXPECT_FALSE(ParseActionTokens({"--bogus"}).ok());
}

// --- Pipeline basics ------------------------------------------------------

TEST(ConcurrentStoreTest, ReadYourWritesAfterAck) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  auto before = (*st)->PinView();
  ASSERT_NE(before, nullptr);
  const uint64_t epoch0 = before->epoch();

  UpdateResult result = (*st)->Update(InsertChild(".", "c"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.matched, 1u);
  EXPECT_GT(result.epoch, epoch0);

  // The view published with the acknowledgement shows the write.
  auto after = (*st)->PinView();
  EXPECT_GE(after->epoch(), result.epoch);
  auto hits = after->Query("/c");
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 1u);

  // The view pinned before the write is frozen: it still shows nothing.
  auto stale_hits = before->Query("/c");
  ASSERT_TRUE(stale_hits.ok());
  EXPECT_TRUE(stale_hits->empty());
}

TEST(ConcurrentStoreTest, PinnedViewStaysBitIdentical) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "ordpath", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  auto pinned = (*st)->PinView();
  auto frozen_xml = pinned->SerializeXml();
  ASSERT_TRUE(frozen_xml.ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*st)->Update(InsertChild(".", Name("n", i))).status.ok());
  }

  auto again = pinned->SerializeXml();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *frozen_xml);
  auto fresh = (*st)->PinView()->SerializeXml();
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *frozen_xml);
}

TEST(ConcurrentStoreTest, FailedUpdateResolvesWithErrorAndStoreKeepsGoing) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  UpdateResult bad = (*st)->Update(InsertChild("/nope", "x"));
  EXPECT_FALSE(bad.status.ok());
  UpdateRequest malformed;
  malformed.op = UpdateRequest::Op::kDelete;
  malformed.xpath = "///[[";
  EXPECT_FALSE((*st)->Update(malformed).status.ok());

  UpdateResult good = (*st)->Update(InsertChild(".", "c"));
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();

  ConcurrentStoreStats stats = (*st)->stats();
  EXPECT_EQ(stats.updates_failed, 2u);
  EXPECT_EQ(stats.updates_applied, 1u);
}

TEST(ConcurrentStoreTest, FailedTransactionLeavesNothingBehind) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  // First action applies (and journals) before the second fails: the
  // transaction must roll back to nothing — not commit the first half.
  std::vector<UpdateRequest> txn;
  txn.push_back(InsertChild(".", "c"));
  UpdateRequest bad;
  bad.op = UpdateRequest::Op::kDelete;
  bad.xpath = "/no/such/node";
  txn.push_back(bad);
  UpdateResult result = (*st)->SubmitTransaction(std::move(txn)).get();
  EXPECT_FALSE(result.status.ok());

  auto view = (*st)->PinView();
  auto hits = view->Query("/c");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty()) << "failed transaction left a partial edit";

  // The store keeps working, and a successful transaction sums matches.
  std::vector<UpdateRequest> good;
  good.push_back(InsertChild(".", "c"));
  good.push_back(InsertChild(".", "d"));
  result = (*st)->SubmitTransaction(std::move(good)).get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.matched, 2u);

  EXPECT_FALSE((*st)->SubmitTransaction({}).get().status.ok());

  // Restart: only the successful transaction is durable.
  (*st)->Stop();
  fs.Crash();
  auto reopened = ConcurrentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto after = (*reopened)->PinView();
  EXPECT_EQ((*after->Query("/c")).size(), 1u);
  EXPECT_EQ((*after->Query("/d")).size(), 1u);
  EXPECT_EQ((*after->Query("/*")).size(), 4u);  // a, b + c, d
}

TEST(ConcurrentStoreTest, RolledBackTransactionDoesNotSinkItsBatch) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.max_batch = 64;  // let good requests co-batch with the bad one
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  constexpr int kGood = 10;
  std::vector<std::future<UpdateResult>> good;
  for (int i = 0; i < kGood / 2; ++i) {
    good.push_back((*st)->SubmitUpdate(InsertChild(".", Name("g", i))));
  }
  std::vector<UpdateRequest> txn;
  txn.push_back(InsertChild(".", "half"));
  UpdateRequest bad;
  bad.op = UpdateRequest::Op::kDelete;
  bad.xpath = "/no/such/node";
  txn.push_back(bad);
  std::future<UpdateResult> failed = (*st)->SubmitTransaction(std::move(txn));
  for (int i = kGood / 2; i < kGood; ++i) {
    good.push_back((*st)->SubmitUpdate(InsertChild(".", Name("g", i))));
  }

  // However the writer batched them, every good request commits and the
  // bad transaction alone fails, leaving no trace.
  for (auto& f : good) {
    UpdateResult result = f.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_FALSE(failed.get().status.ok());
  auto view = (*st)->PinView();
  EXPECT_TRUE((*view->Query("/half")).empty());
  EXPECT_EQ((*view->Query("/*")).size(), 2u + kGood);

  // And the same picture after recovery.
  (*st)->Stop();
  fs.Crash();
  auto reopened = ConcurrentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto after = (*reopened)->PinView();
  EXPECT_TRUE((*after->Query("/half")).empty());
  EXPECT_EQ((*after->Query("/*")).size(), 2u + kGood);
}

TEST(ConcurrentStoreTest, ZeroQueueAndBatchAreClamped) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.queue_capacity = 0;  // would otherwise block every submitter
  options.max_batch = 0;       // would otherwise never drain the queue
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  UpdateResult result = (*st)->Update(InsertChild(".", "c"));
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

TEST(ConcurrentStoreTest, ManyThreadsThroughATinyQueue) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.queue_capacity = 2;  // force backpressure
  options.max_batch = 4;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        UpdateResult result = (*st)->Update(InsertChild(
            ".", Name("t", t) + Name("x", i)));
        if (result.status.ok()) ++ok_count;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);

  auto view = (*st)->PinView();
  auto hits = view->Query("/*");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u + kThreads * kPerThread);

  ConcurrentStoreStats stats = (*st)->stats();
  EXPECT_EQ(stats.updates_applied,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.largest_batch, 4u);
}

TEST(ConcurrentStoreTest, SubmitAfterStopFailsCleanly) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  (*st)->Stop();
  UpdateResult result = (*st)->Update(InsertChild(".", "late"));
  EXPECT_FALSE(result.status.ok());
  // Stop is idempotent; destruction after Stop is fine.
  (*st)->Stop();
}

// --- Durability -----------------------------------------------------------

TEST(ConcurrentStoreTest, AcknowledgedUpdatesSurviveRestart) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  std::string live_xml;
  {
    auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    std::vector<std::future<UpdateResult>> futures;
    for (int i = 0; i < 10; ++i) {
      futures.push_back(
          (*st)->SubmitUpdate(InsertChild(".", Name("n", i))));
    }
    for (auto& f : futures) {
      ASSERT_TRUE(f.get().status.ok());
    }
    auto xml = (*st)->PinView()->SerializeXml();
    ASSERT_TRUE(xml.ok());
    live_xml = *xml;
    (*st)->Stop();
  }
  // Everything acknowledged was fsync'd; dropping unsynced directory
  // metadata (the crash model) must not lose any of it.
  fs.Crash();
  auto reopened = ConcurrentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto xml = (*reopened)->PinView()->SerializeXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, live_xml);
}

TEST(ConcurrentStoreTest, CommitFailureIsNeverAcknowledgedAsSuccess) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  // The batch's one fsync fails: the apply succeeded in memory, but the
  // future must resolve with the failure — acknowledged implies durable,
  // so an undurable update is not acknowledged.
  fs.FailNextSyncs(1);
  UpdateResult result = (*st)->Update(InsertChild(".", "ghost"));
  EXPECT_FALSE(result.status.ok());
}

TEST(ConcurrentStoreTest, CheckpointsRollBetweenBatches) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.store.checkpoint.max_journal_records = 4;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        (*st)->Update(InsertChild(".", Name("n", i))).status.ok());
  }
  EXPECT_GE((*st)->stats().checkpoints, 1u);
  // Reopen after the rolls: full state intact.
  std::string live_xml = *(*st)->PinView()->SerializeXml();
  (*st)->Stop();
  auto reopened = ConcurrentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->PinView()->SerializeXml(), live_xml);
}

TEST(ConcurrentStoreTest, GroupCommitAccountingIsVisible) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BaseTree(), "dewey", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  std::vector<std::future<UpdateResult>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(
        (*st)->SubmitUpdate(InsertChild(".", Name("n", i))));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());
  ConcurrentStoreStats stats = (*st)->stats();
  EXPECT_EQ(stats.updates_applied, 50u);
  // One fsync per batch, not per update: the batch count bounds the sync
  // count, and both bound 50 from below only through batching.
  EXPECT_LE(stats.batches, 50u);
  EXPECT_GE(stats.largest_batch, 1u);
}

}  // namespace
}  // namespace xmlup::concurrency
