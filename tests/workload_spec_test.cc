// Parser and validation tests for the declarative workload spec
// (src/workload/engine/spec.h). The error-path cases pin the CLI
// contract: every structural defect is rejected up front with a
// one-line diagnostic that quotes the offending spec line.

#include "workload/engine/spec.h"

#include <gtest/gtest.h>

#include <string>

namespace xmlup::workload {
namespace {

constexpr char kMixedSpec[] = R"(# exercise every node type
workload mixed
var keys = a,b,c
var depth = 3

start warm

node warm edit
  doc ${choice:keys}
  script -s . -t elem -n w${thread}
  next loop

node loop for-n
  count 10
  do pick
  next done

node pick random-choice
  choice 3 write
  choice 2 read
  choice 1 pause

node write edit
  doc ${choice:keys}
  script -s . -t elem -n n${thread}x${op} -u //n${thread}x${op} -v "two words"
  next end

node read query
  doc ${choice:keys}
  xpath //n${rand:8}x${rand:4}
  next end

node pause think-time
  ms 1 5
  next end

node done finish
)";

TEST(WorkloadSpec, ParsesEveryNodeType) {
  auto spec = ParseWorkloadSpec(kMixedSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "mixed");
  // 7 declared + the implicit finish.
  ASSERT_EQ(spec->nodes.size(), 8u);
  EXPECT_EQ(spec->nodes[spec->start].name, "warm");
  ASSERT_EQ(spec->variables.size(), 2u);
  EXPECT_EQ(*spec->FindVariable("keys"), "a,b,c");

  const SpecNode* loop = nullptr;
  const SpecNode* pick = nullptr;
  const SpecNode* write = nullptr;
  const SpecNode* pause = nullptr;
  for (const SpecNode& node : spec->nodes) {
    if (node.name == "loop") loop = &node;
    if (node.name == "pick") pick = &node;
    if (node.name == "write") write = &node;
    if (node.name == "pause") pause = &node;
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->type, SpecNodeType::kForN);
  EXPECT_EQ(loop->count, 10u);
  EXPECT_EQ(spec->nodes[loop->body].name, "pick");
  EXPECT_EQ(spec->nodes[loop->next].name, "done");

  ASSERT_NE(pick, nullptr);
  ASSERT_EQ(pick->choices.size(), 3u);
  EXPECT_DOUBLE_EQ(pick->choices[0].first, 3.0);
  EXPECT_EQ(spec->nodes[pick->choices[0].second].name, "write");

  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->next, kNextEnd);
  EXPECT_EQ(write->doc_template, "${choice:keys}");
  // The quoted token survives as one field.
  ASSERT_FALSE(write->script.empty());
  EXPECT_EQ(write->script.back(), "two words");

  ASSERT_NE(pause, nullptr);
  EXPECT_EQ(pause->think_min_ms, 1u);
  EXPECT_EQ(pause->think_max_ms, 5u);
}

TEST(WorkloadSpec, StartDefaultsToFirstNode) {
  auto spec = ParseWorkloadSpec(
      "node only edit\n  script -s . -t elem -n x\n  next finish\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->nodes[spec->start].name, "only");
}

TEST(WorkloadSpec, ImplicitFinishIsAlwaysATarget) {
  auto spec = ParseWorkloadSpec(
      "node a query\n  xpath //x\n  next finish\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->nodes[spec->nodes[spec->start].next].type,
            SpecNodeType::kFinish);
}

// --- error paths: each defect rejected with a one-line spec-quoting
// diagnostic, the contract `xmlup workload check` surfaces as exit 2.

void ExpectRejected(const std::string& text, const std::string& must_quote,
                    const std::string& must_mention) {
  auto spec = ParseWorkloadSpec(text);
  ASSERT_FALSE(spec.ok()) << "accepted: " << text;
  const std::string message = spec.status().ToString();
  EXPECT_EQ(message.find('\n'), std::string::npos)
      << "not one line: " << message;
  EXPECT_NE(message.find(must_quote), std::string::npos)
      << "does not quote the spec: " << message;
  EXPECT_NE(message.find(must_mention), std::string::npos) << message;
}

TEST(WorkloadSpecErrors, UnknownNodeType) {
  ExpectRejected("node a blob\n  next finish\n", "node a blob",
                 "unknown node type 'blob'");
}

TEST(WorkloadSpecErrors, WeightsNotNormalizable) {
  ExpectRejected(
      "node a random-choice\n  choice 0 a\n  choice 0 a\n",
      "node a random-choice", "not normalizable");
}

TEST(WorkloadSpecErrors, NegativeWeightRejected) {
  ExpectRejected("node a random-choice\n  choice -1 a\n", "choice -1 a",
                 "choice needs");
}

TEST(WorkloadSpecErrors, DanglingNextReference) {
  ExpectRejected(
      "node a edit\n  script -s . -t elem -n x\n  next nowhere\n",
      "next nowhere", "dangling reference: node 'nowhere'");
}

TEST(WorkloadSpecErrors, DanglingChoiceReference) {
  ExpectRejected("node a random-choice\n  choice 1 ghost\n",
                 "choice 1 ghost", "dangling reference: node 'ghost'");
}

TEST(WorkloadSpecErrors, DanglingStartReference) {
  ExpectRejected(
      "start ghost\nnode a edit\n  script -s . -t elem -n x\n"
      "  next finish\n",
      "start ghost", "dangling reference");
}

TEST(WorkloadSpecErrors, UnreachableFinish) {
  // A self-loop that can never absorb.
  ExpectRejected(
      "node a edit\n  script -s . -t elem -n x\n  next a\n", "node a edit",
      "no finish node is reachable");
}

TEST(WorkloadSpecErrors, EndOutsideForNBody) {
  ExpectRejected(
      "node a edit\n  script -s . -t elem -n x\n  next end\n",
      "node a edit", "outside any for-n body");
}

TEST(WorkloadSpecErrors, EndReachableBothInsideAndOutsideIsRejected) {
  // `shared` is the loop body AND the loop's continuation, so one of its
  // executions would hit `end` with no enclosing loop.
  ExpectRejected(
      "node loop for-n\n  count 2\n  do shared\n  next shared\n"
      "node shared edit\n  script -s . -t elem -n x\n  next end\n",
      "node shared edit", "outside any for-n body");
}

TEST(WorkloadSpecErrors, BadEditScriptCaughtStatically) {
  ExpectRejected(
      "node a edit\n  script -s . -t blob -n x\n  next finish\n",
      "node a edit", "unknown node type \"blob\"");
}

TEST(WorkloadSpecErrors, EditScriptMissingNameCaughtStatically) {
  ExpectRejected("node a edit\n  script -s . -t elem\n  next finish\n",
                 "node a edit", "script");
}

TEST(WorkloadSpecErrors, BadQueryXPathCaughtStatically) {
  ExpectRejected("node a query\n  xpath ///[[\n  next finish\n",
                 "node a query", "xpath");
}

TEST(WorkloadSpecErrors, UndefinedTemplateVariable) {
  ExpectRejected(
      "node a edit\n  doc ${nokeys}\n  script -s . -t elem -n x\n"
      "  next finish\n",
      "node a edit", "undefined variable ${nokeys}");
}

TEST(WorkloadSpecErrors, ChoiceOfUndefinedVariable) {
  ExpectRejected(
      "node a edit\n  doc ${choice:nokeys}\n  script -s . -t elem -n x\n"
      "  next finish\n",
      "node a edit", "undefined or empty variable");
}

TEST(WorkloadSpecErrors, RandNeedsPositiveBound) {
  ExpectRejected(
      "node a edit\n  script -s . -t elem -n x${rand:0}\n  next finish\n",
      "node a edit", "rand:N");
}

TEST(WorkloadSpecErrors, MissingRequiredFields) {
  ExpectRejected("node a edit\n  next finish\n", "node a edit",
                 "needs a script");
  ExpectRejected("node a query\n  next finish\n", "node a query",
                 "needs an xpath");
  ExpectRejected("node a for-n\n  do a\n  next finish\n", "node a for-n",
                 "needs a count");
  ExpectRejected("node a edit\n  script -s . -t elem -n x\n", "node a edit",
                 "needs a next");
}

TEST(WorkloadSpecErrors, ReservedAndDuplicateNames) {
  ExpectRejected("node end edit\n  script -d .\n  next finish\n",
                 "node end edit", "reserved");
  ExpectRejected("node finish finish\n", "node finish finish", "reserved");
  ExpectRejected(
      "node a finish\nnode a finish\n", "node a finish", "duplicate");
}

TEST(WorkloadSpecErrors, UnknownFieldForType) {
  ExpectRejected("node a finish\n  count 3\n", "count 3", "unknown field");
}

TEST(WorkloadSpecErrors, EmptySpec) {
  auto spec = ParseWorkloadSpec("# nothing but comments\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().ToString().find("no nodes"), std::string::npos);
}

}  // namespace
}  // namespace xmlup::workload
