#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/prime_scheme.h"
#include "labels/registry.h"
#include "xml/tree.h"

namespace xmlup::core {
namespace {

using labels::PrimeScheme;
using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

Tree Chain(int depth, NodeId* leaf) {
  Tree tree;
  NodeId cur = tree.CreateRoot(NodeKind::kElement, "r").value();
  for (int i = 0; i < depth; ++i) {
    cur = tree.AppendChild(cur, NodeKind::kElement, "c").value();
  }
  *leaf = cur;
  return tree;
}

TEST(PrimeSchemeTest, LabelsAreProductsOfPathPrimes) {
  PrimeScheme scheme;
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  NodeId c = tree.AppendChild(a, NodeKind::kElement, "c").value();
  std::vector<labels::Label> labels;
  ASSERT_TRUE(scheme.LabelTree(tree, &labels).ok());
  PrimeScheme::Parts parts;
  // Preorder: root=2, a=3, c=5, b=7.
  ASSERT_TRUE(PrimeScheme::Decode(labels[root], &parts));
  EXPECT_EQ(parts.product.ToString(), "2");
  ASSERT_TRUE(PrimeScheme::Decode(labels[a], &parts));
  EXPECT_EQ(parts.product.ToString(), "6");
  ASSERT_TRUE(PrimeScheme::Decode(labels[c], &parts));
  EXPECT_EQ(parts.product.ToString(), "30");
  EXPECT_EQ(parts.level, 2u);
  ASSERT_TRUE(PrimeScheme::Decode(labels[b], &parts));
  EXPECT_EQ(parts.product.ToString(), "14");
  EXPECT_EQ(parts.self_prime, 7u);
}

TEST(PrimeSchemeTest, AncestryIsDivisibility) {
  auto scheme = labels::CreateScheme("prime");
  ASSERT_TRUE(scheme.ok());
  NodeId leaf;
  Tree tree = Chain(20, &leaf);  // Products far beyond 64 bits.
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*scheme)->IsAncestor(doc->label(doc->tree().root()),
                                    doc->label(leaf)));
  EXPECT_FALSE((*scheme)->IsAncestor(doc->label(leaf),
                                     doc->label(doc->tree().root())));
  EXPECT_TRUE(doc->VerifyAxes().ok()) << doc->VerifyAxes().message();
}

TEST(PrimeSchemeTest, ParentAndSiblingUseMultiplicationOnly) {
  auto scheme = labels::CreateScheme("prime");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  NodeId c = tree.AppendChild(a, NodeKind::kElement, "c").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*scheme)->IsParent(doc->label(root), doc->label(a)));
  EXPECT_FALSE((*scheme)->IsParent(doc->label(root), doc->label(c)));
  EXPECT_TRUE((*scheme)->IsSibling(doc->label(a), doc->label(b)));
  EXPECT_FALSE((*scheme)->IsSibling(doc->label(a), doc->label(c)));
  EXPECT_EQ((*scheme)->counters().divisions, 0u);
}

TEST(PrimeSchemeTest, InsertionKeepsPrimeLabelsButMayRenumberOrder) {
  labels::SchemeOptions options;
  options.prime_order_gap = 4;  // Tiny gaps to force SC recomputation.
  auto scheme = labels::CreateScheme("prime", options);
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId first = tree.AppendChild(root, NodeKind::kElement, "a").value();
  tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  PrimeScheme::Parts before_parts;
  ASSERT_TRUE(PrimeScheme::Decode(doc->label(first), &before_parts));

  bool renumbered = false;
  for (int i = 0; i < 10; ++i) {
    UpdateStats stats;
    auto node = doc->InsertNode(root, NodeKind::kElement, "n", "",
                                doc->tree().next_sibling(first), &stats);
    ASSERT_TRUE(node.ok());
    renumbered |= stats.overflow;
    ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  }
  EXPECT_TRUE(renumbered) << "tiny gaps must trigger SC recomputation";
  // The prime part of an existing label never changes.
  PrimeScheme::Parts after_parts;
  ASSERT_TRUE(PrimeScheme::Decode(doc->label(first), &after_parts));
  EXPECT_EQ(before_parts.self_prime, after_parts.self_prime);
  EXPECT_EQ(before_parts.product.Compare(after_parts.product), 0);
}

TEST(PrimeSchemeTest, LevelDecodes) {
  auto scheme = labels::CreateScheme("prime");
  ASSERT_TRUE(scheme.ok());
  NodeId leaf;
  Tree tree = Chain(5, &leaf);
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  auto level = (*scheme)->Level(doc->label(leaf));
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, 5);
}

}  // namespace
}  // namespace xmlup::core
