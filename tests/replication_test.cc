// Replication building blocks and a single-replica end-to-end pass:
// JournalCursor tailing (including across checkpoint rolls), the
// ReplicaStore's apply/recovery contract (torn tails, bitflips,
// stream-sequence checks, bit-identical files), and a live
// primary/replica pair over a Unix socket with kill/restart tailing and
// forced snapshot catch-up.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/update.h"
#include "core/snapshot.h"
#include "replication/applier.h"
#include "replication/replica_store.h"
#include "replication/source.h"
#include "store/document_store.h"
#include "store/file.h"
#include "store/journal.h"
#include "store/journal_cursor.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup::replication {
namespace {

using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;
using concurrency::UpdateRequest;
using store::DocumentStore;
using store::JournalCursor;
using store::MemFileSystem;
using store::StoreOptions;

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::string Serialize(const core::LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

std::vector<std::string> LabelBytes(const core::LabeledDocument& doc) {
  std::vector<std::string> out;
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

UpdateRequest InsertChild(std::string xpath, std::string name) {
  UpdateRequest request;
  request.op = UpdateRequest::Op::kInsertChild;
  request.xpath = std::move(xpath);
  request.kind = xml::NodeKind::kElement;
  request.name = std::move(name);
  return request;
}

// --- JournalCursor ------------------------------------------------------

TEST(JournalCursorTest, FirstPollReturnsTheWholeCommittedBody) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.auto_checkpoint = false;
  auto created =
      DocumentStore::Create("db", ParseOrDie("<root/>"), "ordpath", options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DocumentStore* store = created->get();
  for (int i = 0; i < 3; ++i) {
    size_t matched = 0;
    ASSERT_TRUE(concurrency::ApplyUpdate(
                    store, InsertChild(".", "n" + std::to_string(i)), &matched)
                    .ok());
  }

  JournalCursor cursor(store);
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_FALSE(batch->rolled);
  EXPECT_EQ(batch->base_bytes, store::kJournalHeaderSize);
  EXPECT_EQ(batch->base_records, 0u);
  EXPECT_EQ(batch->records, 3u);

  // The payload is the journal file body, byte for byte.
  auto journal = fs.GetFile("db/" + store::JournalFileName(
                                        store->LastCommitPoint().generation));
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(batch->payload, journal->substr(store::kJournalHeaderSize));

  // Caught up: the next poll is empty.
  auto empty = cursor.Poll();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->records, 0u);
  EXPECT_TRUE(empty->payload.empty());
  EXPECT_FALSE(empty->rolled);
}

TEST(JournalCursorTest, PollReturnsOnlyTheDeltaAndSurvivesRolls) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.auto_checkpoint = false;
  auto created =
      DocumentStore::Create("db", ParseOrDie("<root/>"), "ordpath", options);
  ASSERT_TRUE(created.ok());
  DocumentStore* store = created->get();
  JournalCursor cursor(store);
  ASSERT_TRUE(cursor.Poll().ok());  // drain the (empty) body

  size_t matched = 0;
  ASSERT_TRUE(concurrency::ApplyUpdate(store, InsertChild(".", "a"), &matched)
                  .ok());
  auto delta = cursor.Poll();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->base_records, 0u);
  EXPECT_EQ(delta->records, 1u);
  EXPECT_GT(delta->payload.size(), 0u);

  const uint64_t old_generation = store->LastCommitPoint().generation;
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(concurrency::ApplyUpdate(store, InsertChild(".", "b"), &matched)
                  .ok());
  auto rolled = cursor.Poll();
  ASSERT_TRUE(rolled.ok());
  EXPECT_TRUE(rolled->rolled);
  EXPECT_GT(rolled->generation, old_generation);
  EXPECT_EQ(rolled->base_bytes, store::kJournalHeaderSize);
  EXPECT_EQ(rolled->base_records, 0u);
  EXPECT_EQ(rolled->records, 1u);
}

// --- ReplicaStore -------------------------------------------------------

struct Primary {
  std::unique_ptr<DocumentStore> store;
  std::string snapshot;  // the generation-opening snapshot image
};

Primary MakePrimary(MemFileSystem* fs, int edits) {
  StoreOptions options;
  options.fs = fs;
  options.auto_checkpoint = false;
  auto created = DocumentStore::Create("db", ParseOrDie("<root><s/></root>"),
                                       "ordpath", options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  Primary p;
  p.store = std::move(*created);
  auto snapshot = fs->GetFile(
      "db/" + store::SnapshotFileName(p.store->LastCommitPoint().generation));
  EXPECT_TRUE(snapshot.ok());
  p.snapshot = *snapshot;
  for (int i = 0; i < edits; ++i) {
    size_t matched = 0;
    std::string name = "n";
    name += std::to_string(i);
    EXPECT_TRUE(
        concurrency::ApplyUpdate(p.store.get(), InsertChild(".", name),
                                 &matched)
            .ok());
  }
  return p;
}

TEST(ReplicaStoreTest, SnapshotPlusFramesReproducesThePrimaryBitForBit) {
  MemFileSystem fs;
  Primary p = MakePrimary(&fs, 4);
  const uint64_t generation = p.store->LastCommitPoint().generation;

  JournalCursor cursor(p.store.get());
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok());

  MemFileSystem replica_fs;
  ReplicaStoreOptions options;
  options.fs = &replica_fs;
  auto opened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ReplicaStore* replica = opened->get();
  EXPECT_FALSE(replica->has_document());
  EXPECT_EQ(replica->position().bytes, 0u);

  ASSERT_TRUE(replica->InstallSnapshot(generation, p.snapshot).ok());
  EXPECT_TRUE(replica->has_document());
  EXPECT_EQ(replica->scheme_name(), "ordpath");
  ASSERT_TRUE(replica
                  ->AppendFrames(generation, batch->base_bytes,
                                 batch->base_records, batch->payload)
                  .ok());
  ASSERT_TRUE(replica->Sync().ok());

  EXPECT_EQ(Serialize(replica->document()), Serialize(p.store->document()));
  EXPECT_EQ(LabelBytes(replica->document()), LabelBytes(p.store->document()));
  // Files, not just state: journal and snapshot byte-identical.
  EXPECT_EQ(*replica_fs.GetFile("r/" + store::JournalFileName(generation)),
            *fs.GetFile("db/" + store::JournalFileName(generation)));
  EXPECT_EQ(*replica_fs.GetFile("r/" + store::SnapshotFileName(generation)),
            *fs.GetFile("db/" + store::SnapshotFileName(generation)));

  // Reopen = crash recovery: same document, same position.
  auto reopened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Serialize((*reopened)->document()),
            Serialize(p.store->document()));
  EXPECT_EQ((*reopened)->position(), replica->position());
}

TEST(ReplicaStoreTest, OutOfSequenceFramesAreRejectedWithoutBreaking) {
  MemFileSystem fs;
  Primary p = MakePrimary(&fs, 2);
  const uint64_t generation = p.store->LastCommitPoint().generation;
  JournalCursor cursor(p.store.get());
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok());

  MemFileSystem replica_fs;
  ReplicaStoreOptions options;
  options.fs = &replica_fs;
  auto opened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(opened.ok());
  ReplicaStore* replica = opened->get();
  ASSERT_TRUE(replica->InstallSnapshot(generation, p.snapshot).ok());

  // A gap (wrong base offset) is an error, but the store stays usable:
  // the correctly sequenced payload still applies afterwards.
  EXPECT_FALSE(replica
                   ->AppendFrames(generation, batch->base_bytes + 8,
                                  batch->base_records, batch->payload)
                   .ok());
  EXPECT_TRUE(replica
                  ->AppendFrames(generation, batch->base_bytes,
                                 batch->base_records, batch->payload)
                  .ok());
}

TEST(ReplicaStoreTest, TornPayloadIsRejectedBeforeAnythingApplies) {
  MemFileSystem fs;
  Primary p = MakePrimary(&fs, 2);
  const uint64_t generation = p.store->LastCommitPoint().generation;
  JournalCursor cursor(p.store.get());
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok());

  MemFileSystem replica_fs;
  ReplicaStoreOptions options;
  options.fs = &replica_fs;
  auto opened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(opened.ok());
  ReplicaStore* replica = opened->get();
  ASSERT_TRUE(replica->InstallSnapshot(generation, p.snapshot).ok());
  const std::string before = Serialize(replica->document());

  // Cut mid-frame and flip a bit: both must be rejected whole — position
  // unchanged, document unchanged, then the intact payload applies.
  std::string torn = batch->payload.substr(0, batch->payload.size() - 3);
  EXPECT_FALSE(replica
                   ->AppendFrames(generation, batch->base_bytes,
                                  batch->base_records, torn)
                   .ok());
  std::string flipped = batch->payload;
  flipped[flipped.size() / 2] ^= 0x10;
  EXPECT_FALSE(replica
                   ->AppendFrames(generation, batch->base_bytes,
                                  batch->base_records, flipped)
                   .ok());
  EXPECT_EQ(Serialize(replica->document()), before);
  EXPECT_TRUE(replica
                  ->AppendFrames(generation, batch->base_bytes,
                                 batch->base_records, batch->payload)
                  .ok());
}

TEST(ReplicaStoreTest, RecoversFromItsOwnTornTailAfterACrash) {
  MemFileSystem fs;
  Primary p = MakePrimary(&fs, 3);
  const uint64_t generation = p.store->LastCommitPoint().generation;
  JournalCursor cursor(p.store.get());
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok());

  MemFileSystem replica_fs;
  ReplicaStoreOptions options;
  options.fs = &replica_fs;
  {
    auto opened = ReplicaStore::Open("r", options);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE((*opened)->InstallSnapshot(generation, p.snapshot).ok());
    ASSERT_TRUE((*opened)
                    ->AppendFrames(generation, batch->base_bytes,
                                   batch->base_records, batch->payload)
                    .ok());
    ASSERT_TRUE((*opened)->Sync().ok());
  }
  // Tear the journal tail mid-frame (a replica crash between append and
  // sync), then reopen: recovery keeps the valid prefix and reports a
  // position the next hello hands to the primary.
  const std::string journal_path = "r/" + store::JournalFileName(generation);
  std::string bytes = *replica_fs.GetFile(journal_path);
  replica_fs.SetFile(journal_path, bytes.substr(0, bytes.size() - 5));

  auto reopened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->has_document());
  EXPECT_LT((*reopened)->position().bytes, batch->base_bytes + batch->payload.size());
  EXPECT_EQ((*reopened)->position().records, batch->records - 1);

  // A mid-file bitflip is caught by the CRC the same way.
  replica_fs.SetFile(journal_path, bytes);
  ASSERT_TRUE(
      replica_fs.FlipBit(journal_path, store::kJournalHeaderSize + 9, 2).ok());
  auto flipped = ReplicaStore::Open("r", options);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ((*flipped)->position().records, 0u);
}

TEST(ReplicaStoreTest, RollWritesTheSameSnapshotThePrimaryWrote) {
  MemFileSystem fs;
  Primary p = MakePrimary(&fs, 3);
  const uint64_t generation = p.store->LastCommitPoint().generation;
  JournalCursor cursor(p.store.get());
  auto batch = cursor.Poll();
  ASSERT_TRUE(batch.ok());

  MemFileSystem replica_fs;
  ReplicaStoreOptions options;
  options.fs = &replica_fs;
  auto opened = ReplicaStore::Open("r", options);
  ASSERT_TRUE(opened.ok());
  ReplicaStore* replica = opened->get();
  ASSERT_TRUE(replica->InstallSnapshot(generation, p.snapshot).ok());
  ASSERT_TRUE(replica
                  ->AppendFrames(generation, batch->base_bytes,
                                 batch->base_records, batch->payload)
                  .ok());

  // Primary checkpoints; the replica follows with its own Roll. The two
  // snapshot files must be bit-identical (SaveSnapshot is deterministic),
  // and the replica document must reload compacted like the primary's.
  ASSERT_TRUE(p.store->Checkpoint().ok());
  const uint64_t next = p.store->LastCommitPoint().generation;
  ASSERT_GT(next, generation);
  ASSERT_TRUE(replica->Roll(next).ok());
  EXPECT_EQ(*replica_fs.GetFile("r/" + store::SnapshotFileName(next)),
            *fs.GetFile("db/" + store::SnapshotFileName(next)));
  EXPECT_EQ(replica->position(),
            (store::CommitPoint{next, store::kJournalHeaderSize, 0}));
  EXPECT_EQ(Serialize(replica->document()), Serialize(p.store->document()));
  EXPECT_EQ(LabelBytes(replica->document()), LabelBytes(p.store->document()));
  EXPECT_FALSE(
      replica_fs.FileExists("r/" + store::SnapshotFileName(generation)));
}

// --- End to end over a Unix socket --------------------------------------

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    char dir_template[] = "/tmp/xmlup_repl_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    tmp_dir_ = dir_template;
    socket_path_ = tmp_dir_ + "/s";
  }
  void TearDown() override {
    if (!tmp_dir_.empty()) ::rmdir(tmp_dir_.c_str());
  }

  void StartPrimary(uint64_t max_journal_records) {
    ConcurrentStoreOptions options;
    options.store.fs = &primary_fs_;
    options.store.checkpoint.max_journal_records = max_journal_records;
    options.commit_hook = &source_;
    auto created = ConcurrentStore::Create(
        "p", ParseOrDie("<root><seed/></root>"), "ordpath", options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    primary_ = std::move(*created);
    server_ = std::make_unique<concurrency::Server>(primary_.get());
    server_->EnableReplication(&source_);
    server_->SetReplStatus([this] { return source_.StatusFields(); });
    server_->set_drain_deadline_ms(200);
    server_thread_ = std::thread([this] {
      EXPECT_TRUE(server_->ServeUnixSocket(socket_path_).ok());
    });
    for (int i = 0; i < 5000; ++i) {
      if (concurrency::UnixSocketRequest(socket_path_, {"--ping"}).ok()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "server socket never came up";
  }

  std::unique_ptr<ReplicaApplier> StartReplica() {
    ReplicaApplierOptions options;
    options.store.fs = &replica_fs_;
    auto applier = ReplicaApplier::Start("r", socket_path_, options);
    EXPECT_TRUE(applier.ok()) << applier.status().ToString();
    return std::move(*applier);
  }

  void Insert(int i) {
    auto result = primary_->Update(InsertChild(".", "n" + std::to_string(i)));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }

  // Waits until the replica applied everything the source committed AND
  // heard a commit-point for it (lag gauges at zero).
  void AwaitConverged(ReplicaApplier* applier) {
    ASSERT_TRUE(applier->WaitForPosition(source_.committed(), 10000));
    for (int i = 0; i < 10000; ++i) {
      ReplicaStatus s = applier->status();
      if (s.lag_bytes == 0 && s.primary == source_.committed()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "replica never heard a caught-up commit-point";
  }

  void ExpectIdentical(ReplicaApplier* applier) {
    auto replica_view = applier->PinView();
    ASSERT_NE(replica_view, nullptr);
    auto primary_view = primary_->PinView();
    auto replica_xml = replica_view->SerializeXml();
    auto primary_xml = primary_view->SerializeXml();
    ASSERT_TRUE(replica_xml.ok() && primary_xml.ok());
    EXPECT_EQ(*replica_xml, *primary_xml);
    EXPECT_EQ(LabelBytes(replica_view->document()),
              LabelBytes(primary_view->document()));
  }

  void Shutdown() {
    EXPECT_TRUE(
        concurrency::UnixSocketRequest(socket_path_, {"--shutdown"}).ok());
    server_thread_.join();
    primary_->Stop();
  }

  std::string tmp_dir_;
  std::string socket_path_;
  MemFileSystem primary_fs_;
  MemFileSystem replica_fs_;
  ReplicationSource source_;
  std::unique_ptr<ConcurrentStore> primary_;
  std::unique_ptr<concurrency::Server> server_;
  std::thread server_thread_;
};

TEST_F(EndToEnd, ReplicaTailsRestartsAndCatchesUpViaSnapshot) {
  StartPrimary(/*max_journal_records=*/1000000);  // no rolls yet
  std::unique_ptr<ReplicaApplier> applier = StartReplica();

  for (int i = 0; i < 5; ++i) Insert(i);
  AwaitConverged(applier.get());
  ExpectIdentical(applier.get());
  {
    ReplicaStatus s = applier->status();
    EXPECT_EQ(s.snapshots_installed, 1u);  // the bootstrap transfer
    EXPECT_EQ(s.lag_records, 0u);
  }

  // Kill the replica, write more, restart: it resumes by tailing frames
  // from its recovered position (no new snapshot).
  applier->Stop();
  applier.reset();
  for (int i = 5; i < 10; ++i) Insert(i);
  applier = StartReplica();
  AwaitConverged(applier.get());
  ExpectIdentical(applier.get());
  EXPECT_EQ(applier->status().snapshots_installed, 0u);

  // The primary's repl-status surfaces the subscriber.
  auto repl_status =
      concurrency::UnixSocketRequest(socket_path_, {"--repl-status"});
  ASSERT_TRUE(repl_status.ok());
  ASSERT_FALSE(repl_status->empty());
  EXPECT_EQ((*repl_status)[0], "ok");

  applier->Stop();
  applier.reset();
  Shutdown();
}

TEST_F(EndToEnd, ReplicaLeftBehindTwoRollsCatchesUpWithASnapshot) {
  StartPrimary(/*max_journal_records=*/3);  // roll every few records
  std::unique_ptr<ReplicaApplier> applier = StartReplica();
  for (int i = 0; i < 2; ++i) Insert(i);
  AwaitConverged(applier.get());
  applier->Stop();
  applier.reset();

  // Enough commits while the replica is down to roll the generation at
  // least twice: its position falls off the retained images, so the
  // handshake must answer with a snapshot.
  for (int i = 2; i < 14; ++i) Insert(i);
  applier = StartReplica();
  AwaitConverged(applier.get());
  ExpectIdentical(applier.get());
  EXPECT_GE(applier->status().snapshots_installed, 1u);

  applier->Stop();
  applier.reset();
  Shutdown();
}

TEST_F(EndToEnd, ReplicaServerAnswersReadsAndRejectsWrites) {
  StartPrimary(/*max_journal_records=*/1000000);
  std::unique_ptr<ReplicaApplier> applier = StartReplica();
  for (int i = 0; i < 3; ++i) Insert(i);
  AwaitConverged(applier.get());

  // A read-only server over the applier's views, on its own socket.
  concurrency::Server replica_server(applier.get());
  replica_server.SetReplStatus([&] { return applier->StatusFields(); });
  replica_server.set_drain_deadline_ms(200);
  const std::string replica_socket = tmp_dir_ + "/rs";
  std::thread replica_thread([&] {
    EXPECT_TRUE(replica_server.ServeUnixSocket(replica_socket).ok());
  });
  for (int i = 0; i < 5000; ++i) {
    if (concurrency::UnixSocketRequest(replica_socket, {"--ping"}).ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto query = concurrency::UnixSocketRequest(replica_socket, {"-q", "."});
  ASSERT_TRUE(query.ok());
  ASSERT_FALSE(query->empty());
  EXPECT_EQ((*query)[0], "ok");

  auto xml = concurrency::UnixSocketRequest(replica_socket, {"--xml"});
  ASSERT_TRUE(xml.ok());
  ASSERT_EQ((*xml)[0], "ok");
  auto primary_xml = primary_->PinView()->SerializeXml();
  ASSERT_TRUE(primary_xml.ok());
  EXPECT_EQ((*xml)[1], *primary_xml);

  auto update = concurrency::UnixSocketRequest(
      replica_socket, {"-s", ".", "-t", "elem", "-n", "nope"});
  ASSERT_TRUE(update.ok());
  ASSERT_FALSE(update->empty());
  EXPECT_EQ((*update)[0], "err");

  auto repl_status =
      concurrency::UnixSocketRequest(replica_socket, {"--repl-status"});
  ASSERT_TRUE(repl_status.ok());
  EXPECT_EQ((*repl_status)[0], "ok");

  EXPECT_TRUE(
      concurrency::UnixSocketRequest(replica_socket, {"--shutdown"}).ok());
  replica_thread.join();
  applier->Stop();
  applier.reset();
  Shutdown();
}

}  // namespace
}  // namespace xmlup::replication
