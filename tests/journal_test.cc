// Unit tests for the write-ahead journal layer: CRC32C, record
// encode/decode, frame scanning with torn tails and bitflips, and the
// fault-injection file system itself.

#include "store/journal.h"

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "store/file.h"

namespace xmlup {
namespace {

using store::FileSystem;
using store::JournalRecord;
using store::JournalScan;
using store::JournalWriter;
using store::MemFileSystem;

// --- CRC32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 §B.4 test vectors.
  EXPECT_EQ(common::Crc32c("", 0), 0u);
  EXPECT_EQ(common::Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(common::Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(common::Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = common::Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = common::Crc32c(data.substr(0, split));
    uint32_t both = common::Crc32c(data.substr(split), first);
    EXPECT_EQ(both, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "journal payload bytes";
  uint32_t crc = common::Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(
          static_cast<uint8_t>(flipped[i]) ^ (1u << bit));
      EXPECT_NE(common::Crc32c(flipped), crc);
    }
  }
}

// --- Record codec ---------------------------------------------------------

std::vector<JournalRecord> SampleRecords() {
  JournalRecord insert;
  insert.op = JournalRecord::Op::kInsertNode;
  insert.node = 7;
  insert.parent = 2;
  insert.before = xml::kInvalidNode;
  insert.kind = xml::NodeKind::kElement;
  insert.name = "chapter";
  insert.value = "";
  insert.relabeled = 3;
  insert.overflow = true;

  JournalRecord text = insert;
  text.node = 8;
  text.parent = 7;
  text.before = 5;
  text.kind = xml::NodeKind::kText;
  text.name = "";
  text.value = std::string("some text with \0 inside", 23);
  text.relabeled = 0;
  text.overflow = false;

  JournalRecord remove;
  remove.op = JournalRecord::Op::kRemoveSubtree;
  remove.node = 4;

  JournalRecord set_value;
  set_value.op = JournalRecord::Op::kSetValue;
  set_value.node = 9;
  set_value.value = "updated";

  return {insert, text, remove, set_value};
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  for (const JournalRecord& record : SampleRecords()) {
    std::string payload = store::EncodeRecord(record);
    JournalRecord decoded;
    ASSERT_TRUE(store::DecodeRecord(payload, &decoded));
    EXPECT_EQ(decoded, record);
  }
}

TEST(JournalRecordTest, RejectsTruncatedPayloads) {
  for (const JournalRecord& record : SampleRecords()) {
    std::string payload = store::EncodeRecord(record);
    JournalRecord decoded;
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(
          store::DecodeRecord(std::string_view(payload).substr(0, len),
                              &decoded))
          << "accepted a " << len << "-byte prefix of a " << payload.size()
          << "-byte record";
    }
    // Trailing garbage is rejected too.
    EXPECT_FALSE(store::DecodeRecord(payload + "x", &decoded));
  }
}

// --- Writer + scan --------------------------------------------------------

std::string WriteSampleJournal(MemFileSystem* fs, const std::string& path) {
  auto writer = JournalWriter::Create(fs, path);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (const JournalRecord& record : SampleRecords()) {
    EXPECT_TRUE(writer->Append(record).ok());
  }
  EXPECT_TRUE(writer->Sync().ok());
  auto bytes = fs->GetFile(path);
  EXPECT_TRUE(bytes.ok());
  EXPECT_EQ(writer->bytes(), bytes->size());
  EXPECT_EQ(writer->records(), SampleRecords().size());
  return *bytes;
}

TEST(JournalScanTest, CleanJournalScansFully) {
  MemFileSystem fs;
  std::string bytes = WriteSampleJournal(&fs, "j");
  auto scan = store::ScanJournal(bytes);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->truncated);
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  ASSERT_EQ(scan->records.size(), SampleRecords().size());
  EXPECT_EQ(scan->records, SampleRecords());
}

TEST(JournalScanTest, TornTailAtEveryByteYieldsFramePrefix) {
  MemFileSystem fs;
  std::string bytes = WriteSampleJournal(&fs, "j");
  // Frame end offsets, computed independently of the scanner.
  std::vector<size_t> ends;
  size_t pos = store::kJournalHeaderSize;
  for (const JournalRecord& record : SampleRecords()) {
    pos += store::kFrameHeaderSize + store::EncodeRecord(record).size();
    ends.push_back(pos);
  }
  ASSERT_EQ(pos, bytes.size());

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    auto scan = store::ScanJournal(std::string_view(bytes).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut at " << cut;
    size_t expected_records = 0;
    size_t expected_valid = cut < store::kJournalHeaderSize
                                ? 0
                                : store::kJournalHeaderSize;
    for (size_t e : ends) {
      if (e <= cut) {
        ++expected_records;
        expected_valid = e;
      }
    }
    EXPECT_EQ(scan->records.size(), expected_records) << "cut at " << cut;
    EXPECT_EQ(scan->valid_bytes, expected_valid) << "cut at " << cut;
    // Anything short of a full header counts as truncated, including an
    // empty file (a crash before the header reached the disk).
    EXPECT_EQ(scan->truncated,
              cut < store::kJournalHeaderSize || cut != expected_valid)
        << "cut at " << cut;
  }
}

TEST(JournalScanTest, EveryBitflipIsContained) {
  MemFileSystem fs;
  std::string clean = WriteSampleJournal(&fs, "j");
  // Frame start offsets.
  std::vector<size_t> starts;
  size_t pos = store::kJournalHeaderSize;
  for (const JournalRecord& record : SampleRecords()) {
    starts.push_back(pos);
    pos += store::kFrameHeaderSize + store::EncodeRecord(record).size();
  }

  for (size_t offset = store::kJournalHeaderSize; offset < clean.size();
       ++offset) {
    std::string bytes = clean;
    bytes[offset] = static_cast<char>(
        static_cast<uint8_t>(bytes[offset]) ^ 0x10);
    // The frame containing the flip.
    size_t victim = 0;
    while (victim + 1 < starts.size() && starts[victim + 1] <= offset) {
      ++victim;
    }
    auto scan = store::ScanJournal(bytes);
    ASSERT_TRUE(scan.ok()) << "flip at " << offset;
    // All frames before the victim must survive intact; the victim and
    // everything after must be dropped (a flipped length field may claim
    // an arbitrary frame size, so nothing past it is trustworthy).
    ASSERT_EQ(scan->records.size(), victim) << "flip at " << offset;
    EXPECT_TRUE(scan->truncated) << "flip at " << offset;
    for (size_t i = 0; i < scan->records.size(); ++i) {
      EXPECT_EQ(scan->records[i], SampleRecords()[i]);
    }
  }
}

TEST(JournalScanTest, BadMagicIsAHardError) {
  std::string bytes = "NOPE\x01\0\0\0";
  bytes.resize(16, '\0');
  EXPECT_FALSE(store::ScanJournal(bytes).ok());
}

TEST(JournalScanTest, ShortHeaderScansAsEmptyTruncated) {
  auto scan = store::ScanJournal("XUPJ");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_TRUE(scan->truncated);
}

// --- Fault-injection file system -----------------------------------------

TEST(MemFileSystemTest, WriteLimitTearsSilently) {
  MemFileSystem fs;
  auto file = fs.OpenWritable("f", FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  fs.SetWriteLimit("f", 10);
  EXPECT_TRUE((*file)->Append("0123456789ABCDEF").ok());  // lies, like a crash
  EXPECT_TRUE((*file)->Append("more").ok());
  EXPECT_EQ(*fs.GetFile("f"), "0123456789");
}

TEST(MemFileSystemTest, SyncFailuresAreInjected) {
  MemFileSystem fs;
  auto file = fs.OpenWritable("f", FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  fs.FailNextSyncs(2);
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Sync().ok());
}

TEST(MemFileSystemTest, RenameIsAtomicReplace) {
  MemFileSystem fs;
  fs.SetFile("a", "new");
  fs.SetFile("b", "old");
  EXPECT_TRUE(fs.RenameFile("a", "b").ok());
  EXPECT_FALSE(fs.FileExists("a"));
  EXPECT_EQ(*fs.GetFile("b"), "new");
}

TEST(MemFileSystemTest, FlipBitCorruptsStoredBytes) {
  MemFileSystem fs;
  fs.SetFile("f", std::string("\x00", 1));
  EXPECT_TRUE(fs.FlipBit("f", 0, 3).ok());
  EXPECT_EQ(*fs.GetFile("f"), std::string("\x08", 1));
  EXPECT_FALSE(fs.FlipBit("f", 1, 0).ok());
  EXPECT_FALSE(fs.FlipBit("f", 0, 8).ok());
}

TEST(MemFileSystemTest, MetadataOpsAreNotDurableUntilSyncDir) {
  MemFileSystem fs;
  fs.SetFile("d/target", "v1");
  // Temp-file-and-rename without the directory sync: the live view shows
  // the replacement, the durable one does not.
  auto file = fs.OpenWritable("d/target.tmp", FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("v2").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fs.RenameFile("d/target.tmp", "d/target").ok());
  EXPECT_EQ(*fs.GetFile("d/target"), "v2");
  EXPECT_EQ(fs.pending_metadata_ops(), 2u);  // create tmp + rename

  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/target"), "v1");
  EXPECT_FALSE(fs.FileExists("d/target.tmp"));
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);
}

TEST(MemFileSystemTest, SyncDirMakesPendingOpsDurable) {
  MemFileSystem fs;
  fs.SetFile("d/target", "v1");
  fs.SetFile("d/stale", "x");
  auto file = fs.OpenWritable("d/target.tmp", FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("v2").ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fs.RenameFile("d/target.tmp", "d/target").ok());
  ASSERT_TRUE(fs.DeleteFile("d/stale").ok());
  ASSERT_TRUE(fs.SyncDir("d").ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);

  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/target"), "v2");
  EXPECT_FALSE(fs.FileExists("d/stale"));
}

TEST(MemFileSystemTest, SyncDirOnlyFlushesOpsInThatDirectory) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.OpenWritable("a/f", FileSystem::WriteMode::kTruncate).ok());
  ASSERT_TRUE(fs.OpenWritable("b/g", FileSystem::WriteMode::kTruncate).ok());
  ASSERT_TRUE(fs.SyncDir("a").ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 1u);  // b/g still pending
  fs.Crash();
  EXPECT_TRUE(fs.FileExists("a/f"));
  EXPECT_FALSE(fs.FileExists("b/g"));
}

TEST(MemFileSystemTest, CrashCanApplyAnySubsetOfPendingOps) {
  // create tmp (bit 0), rename tmp -> f (bit 1). A crash that writes back
  // the rename but not the creation must not invent a file: the rename's
  // source never existed on disk.
  auto setup = [](MemFileSystem* fs) {
    fs->SetFile("d/f", "old");
    auto file = fs->OpenWritable("d/f.tmp", FileSystem::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("new").ok());
    ASSERT_TRUE(fs->RenameFile("d/f.tmp", "d/f").ok());
    ASSERT_EQ(fs->pending_metadata_ops(), 2u);
  };
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b01);  // only the creation hits disk
    EXPECT_EQ(*fs.GetFile("d/f"), "old");
    EXPECT_TRUE(fs.FileExists("d/f.tmp"));
  }
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b10);  // only the rename: source missing, nothing happens
    EXPECT_EQ(*fs.GetFile("d/f"), "old");
    EXPECT_FALSE(fs.FileExists("d/f.tmp"));
  }
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b11);  // both: replacement is visible
    EXPECT_EQ(*fs.GetFile("d/f"), "new");
    EXPECT_FALSE(fs.FileExists("d/f.tmp"));
  }
}

TEST(MemFileSystemTest, SyncDirFailuresAreInjected) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.OpenWritable("d/f", FileSystem::WriteMode::kTruncate).ok());
  fs.FailSyncs(0, 1);
  EXPECT_FALSE(fs.SyncDir("d").ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 1u);  // failed sync flushed nothing
  EXPECT_TRUE(fs.SyncDir("d").ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);
}

}  // namespace
}  // namespace xmlup
