// Cluster soak: concurrent clients hammer a router serving four TCP
// shards, then the router's cluster.* counters must reconcile exactly
// with the client-side tallies — every --doc frame routed is one a
// client sent, every route miss is an unknown-document error a client
// observed, every route error is a "routed:" failure a client read. The
// chaos half kills one shard mid-workload and restarts it on the same
// port: only that shard's keys may error, and after the restart every
// key (including the dead shard's) serves recovered content. Runs under
// TSan in CI (suite name carries "ClusterSoak").

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "cluster/sharded_service.h"
#include "concurrency/server.h"
#include "observability/metrics.h"

namespace xmlup::cluster {
namespace {

constexpr int kShards = 4;
constexpr int kClients = 4;
constexpr int kRequestsPerClient = 48;  // multiple of the 6-way op mix

class TempDir {
 public:
  TempDir() {
    char dir_template[] = "/tmp/xmlup_clsoak_XXXXXX";
    EXPECT_NE(::mkdtemp(dir_template), nullptr);
    path_ = dir_template;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// One in-process shard over TCP, restartable on its original port.
struct ShardProcess {
  std::unique_ptr<TempDir> dir = std::make_unique<TempDir>();
  std::unique_ptr<ShardedService> service;
  std::unique_ptr<concurrency::Listener> listener;
  std::thread thread;
  uint16_t port = 0;

  void Start() {
    auto opened = ShardedService::Open(dir->path());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    service = std::move(*opened);
    listener = std::make_unique<concurrency::Listener>(service.get());
    listener->set_drain_deadline_ms(200);
    const uint16_t bind_port = port;
    concurrency::Listener* raw = listener.get();
    thread = std::thread([raw, bind_port] {
      common::Status served = raw->ServeTcp("127.0.0.1", bind_port);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
    for (int i = 0; i < 5000 && listener->bound_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(listener->bound_port(), 0) << "shard listener never bound";
    port = listener->bound_port();
  }

  void Kill() {
    listener->Shutdown();
    thread.join();
    service->Stop();
    service.reset();
    listener.reset();
  }
};

// Four shards, a coordinator, and the coordinator's own Unix-socket
// listener — clients speak the full wire path end to end.
class ClusterSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::GlobalMetrics().Reset();
    char dir_template[] = "/tmp/xmlup_clsoak_rt_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    router_dir_ = dir_template;
    router_socket_ = router_dir_ + "/r";

    shards_.resize(kShards);
    std::vector<ShardAddress> addresses;
    for (auto& shard : shards_) {
      shard.Start();
      if (HasFatalFailure()) return;
      addresses.push_back(
          ShardAddress{"tcp:127.0.0.1:" + std::to_string(shard.port)});
    }
    coordinator_ = std::make_unique<Coordinator>(
        std::move(addresses), std::make_unique<HashRouter>(kShards));
    router_listener_ =
        std::make_unique<concurrency::Listener>(coordinator_.get());
    router_listener_->set_drain_deadline_ms(200);
    router_thread_ = std::thread([this] {
      common::Status served =
          router_listener_->ServeUnixSocket(router_socket_);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
    for (int i = 0; i < 5000; ++i) {
      if (concurrency::UnixSocketRequest(router_socket_, {"--ping"}).ok()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "router socket never came up";
  }

  void TearDown() override {
    if (router_listener_ != nullptr) {
      router_listener_->Shutdown();
      router_thread_.join();
    }
    coordinator_.reset();
    for (auto& shard : shards_) {
      if (shard.service != nullptr) shard.Kill();
    }
    ::rmdir(router_dir_.c_str());
  }

  // One routed request over the socket; empty reply = transport failure.
  std::vector<std::string> Route(const std::vector<std::string>& request) {
    auto reply = concurrency::UnixSocketRequest(router_socket_, request);
    if (!reply.ok()) return {};
    return *reply;
  }

  std::map<std::string, uint64_t> RouterStats() {
    std::map<std::string, uint64_t> out;
    auto reply = Route({"--stats"});
    EXPECT_GE(reply.size(), 2u);
    for (size_t i = 1; i < reply.size(); ++i) {
      const size_t eq = reply[i].find('=');
      if (eq == std::string::npos) continue;
      out[reply[i].substr(0, eq)] = std::stoull(reply[i].substr(eq + 1));
    }
    return out;
  }

  std::string router_dir_;
  std::string router_socket_;
  std::vector<ShardProcess> shards_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<concurrency::Listener> router_listener_;
  std::thread router_thread_;
};

TEST_F(ClusterSoak, ConcurrentClientsReconcileWithRouterMetrics) {
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("soak" + std::to_string(i));
  // Every --doc frame the router ever sees is tallied here, creates
  // included — cluster.frames_routed must match it exactly at the end.
  std::atomic<uint64_t> doc_frames_sent{0};
  std::atomic<uint64_t> unknown_doc_errors{0};
  std::atomic<uint64_t> routed_errors{0};
  std::atomic<uint64_t> transport_errors{0};

  for (const std::string& key : keys) {
    auto created = Route({"--doc", key, "--create", "ordpath"});
    ASSERT_GE(created.size(), 1u);
    ASSERT_EQ(created[0], "ok") << created[1];
    ++doc_frames_sent;
  }

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string& key = keys[(c + i) % keys.size()];
        std::vector<std::string> request;
        bool expect_miss = false;
        switch (i % 6) {
          case 0:
          case 1:
          case 2:
            request = {"--doc", key, "-s", ".", "-t", "elem", "-n",
                       "c" + std::to_string(c) + "_" + std::to_string(i)};
            break;
          case 3:
            request = {"--doc", key, "-q", "."};
            break;
          case 4:
            request = {"--doc", key, "--epoch"};
            break;
          default:
            // A key no one ever created: the shard answers
            // unknown-document and the router counts a route miss.
            request = {"--doc", "ghost" + std::to_string(i), "--xml"};
            expect_miss = true;
            break;
        }
        auto reply = Route(request);
        if (reply.empty()) {
          ++transport_errors;
          continue;
        }
        ++doc_frames_sent;
        if (expect_miss) {
          EXPECT_EQ(reply[0], "err");
          EXPECT_EQ(reply[1].rfind(kUnknownDocumentError, 0), 0u) << reply[1];
          ++unknown_doc_errors;
        } else if (reply[0] != "ok") {
          if (reply[1].rfind("routed:", 0) == 0) ++routed_errors;
          ADD_FAILURE() << "healthy-cluster request failed: " << reply[1];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(transport_errors.load(), 0u);

  if (obs::kMetricsEnabled) {
    std::map<std::string, uint64_t> stats = RouterStats();
    EXPECT_EQ(stats["cluster.frames_routed"], doc_frames_sent.load());
    EXPECT_EQ(stats["cluster.route_misses"], unknown_doc_errors.load());
    EXPECT_EQ(stats["cluster.route_errors"], routed_errors.load());
    EXPECT_EQ(stats["cluster.connect_retries"], 0u)
        << "no shard restarted, so no pooled connection went stale";
  }

  // --cluster-status agrees: four healthy shards, eight documents total.
  auto status = Route({"--cluster-status"});
  ASSERT_GE(status.size(), 1u);
  ASSERT_EQ(status[0], "ok");
  int healthy = 0;
  uint64_t docs_total = 0;
  for (const std::string& field : status) {
    if (field.find(".healthy=1") != std::string::npos) ++healthy;
    const size_t docs_at = field.find(".docs=");
    if (docs_at != std::string::npos) {
      docs_total += std::stoull(field.substr(docs_at + 6));
    }
  }
  EXPECT_EQ(healthy, kShards);
  EXPECT_EQ(docs_total, keys.size());
}

TEST_F(ClusterSoak, KillAndRestartChaosDegradesOnlyTheDeadShardsKeys) {
  HashRouter placement(kShards);
  std::vector<std::string> shard_key(kShards);
  for (int i = 0;; ++i) {
    ASSERT_LT(i, 10000);
    std::string key = "chaos" + std::to_string(i);
    std::string& slot = shard_key[placement.ShardFor(key)];
    if (slot.empty()) slot = std::move(key);
    bool done = true;
    for (const std::string& k : shard_key) done = done && !k.empty();
    if (done) break;
  }
  std::atomic<uint64_t> doc_frames_sent{0};
  for (const std::string& key : shard_key) {
    ASSERT_EQ(Route({"--doc", key, "--create", "ordpath"})[0], "ok");
    ++doc_frames_sent;
  }

  constexpr int kVictim = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> routed_errors{0};
  std::atomic<uint64_t> wrong_key_errors{0};
  std::atomic<uint64_t> acked_updates{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; !stop.load(); ++i) {
        const int shard = (c + i) % kShards;
        const std::string& key = shard_key[shard];
        auto reply = Route({"--doc", key, "-s", ".", "-t", "elem", "-n",
                            "u" + std::to_string(c) + "_" +
                                std::to_string(i)});
        if (reply.empty()) continue;  // router drain can race test exit
        ++doc_frames_sent;
        if (reply[0] == "ok") {
          ++acked_updates;
        } else if (reply[1].rfind("routed:", 0) == 0) {
          ++routed_errors;
          // Only the victim's keys may see routed errors.
          if (shard != kVictim) ++wrong_key_errors;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Let the healthy cluster absorb some load, then the chaos: kill the
  // victim, hold the outage long enough for clients to hit it, restart
  // it on the same port, let it recover.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  shards_[kVictim].Kill();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  shards_[kVictim].Start();
  ASSERT_FALSE(HasFatalFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(wrong_key_errors.load(), 0u)
      << "a healthy shard's key saw a routed error";
  EXPECT_GT(routed_errors.load(), 0u)
      << "the outage window never surfaced a routed error (timing too "
         "tight to observe the kill)";
  EXPECT_GT(acked_updates.load(), 0u);

  // After recovery every key serves, including the victim's.
  for (int shard = 0; shard < kShards; ++shard) {
    auto reply = Route({"--doc", shard_key[shard], "--xml"});
    ASSERT_GE(reply.size(), 2u);
    ++doc_frames_sent;
    EXPECT_EQ(reply[0], "ok") << "shard " << shard << ": " << reply[1];
  }

  // Metrics reconciliation holds across the chaos: the router counted
  // exactly the frames the clients sent and exactly the errors they read.
  if (obs::kMetricsEnabled) {
    std::map<std::string, uint64_t> stats = RouterStats();
    EXPECT_EQ(stats["cluster.frames_routed"], doc_frames_sent.load());
    EXPECT_EQ(stats["cluster.route_errors"], routed_errors.load());
    EXPECT_EQ(stats["cluster.route_misses"], 0u);
  }

  auto status = Route({"--cluster-status"});
  ASSERT_GE(status.size(), 1u);
  ASSERT_EQ(status[0], "ok");
  for (const std::string& field : status) {
    EXPECT_EQ(field.find(".healthy=0"), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace xmlup::cluster
