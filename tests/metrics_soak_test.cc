// Differential metrics soak: one seeded random edit workload replayed
// through the plain journaled DocumentStore and through the
// ConcurrentStore group-commit pipeline, asserting that the two runs are
// indistinguishable — same final document, same journal, and the same
// deterministic metrics snapshot — and that the metrics reconcile with
// ground truth the test tracks itself (records journaled == records
// counted, acked transactions == committed batch mass, recovery replays
// == recorded appends).
//
// Everything runs on a MemFileSystem with a fixed seed, so the asserted
// counter values are exact, not statistical.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

// GCC 12's -Wrestrict misfires on inlined std::string small-buffer copies
// in the workload builder (GCC bug 105329); nothing here aliases.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include "common/rng.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/update.h"
#include "observability/metrics.h"
#include "store/document_store.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup {
namespace {

using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;
using concurrency::UpdateRequest;
using concurrency::UpdateResult;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;

constexpr char kSeedDoc[] =
    "<library><shelf><book>Iliad</book></shelf></library>";
constexpr uint64_t kSeed = 0xD1FFC0DEull;
constexpr size_t kTxnCount = 60;

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

// One all-or-nothing transaction of the workload. `valid` is the model's
// prediction: a transaction containing a malformed or unmatched XPath
// fails as a whole (ApplyUpdate resolves before mutating; the pipeline
// rolls back anything applied before the failing request).
struct Txn {
  std::vector<UpdateRequest> requests;
  bool valid = true;
  /// The failing request is not the first one, so valid requests applied
  /// (and journaled) before it — rolling back must truncate, which is the
  /// only path that counts a store.rollback. A transaction failing on its
  /// first request leaves the journal untouched and rolls back for free.
  bool rolls_back = false;
};

// Deterministic workload over a client-side mirror of the document's
// top-level children: inserts of uniquely named elements, value updates
// and deletes of live ones, plus two failure flavours (unmatched target,
// malformed XPath). Mirror effects commit only when the whole transaction
// is valid — exactly the all-or-nothing contract under test.
std::vector<Txn> MakeWorkload(uint64_t seed, size_t count) {
  common::SplitMix64 rng(seed);
  std::vector<std::string> live;
  int next_id = 0;
  std::vector<Txn> txns;
  for (size_t t = 0; t < count; ++t) {
    Txn txn;
    const size_t n = 1 + rng.NextBelow(3);
    std::vector<std::string> txn_live = live;
    int txn_next = next_id;
    for (size_t r = 0; r < n; ++r) {
      const uint64_t pick = rng.NextBelow(10);
      UpdateRequest req;
      if (pick < 4 || txn_live.empty()) {
        req.op = UpdateRequest::Op::kInsertChild;
        req.xpath = ".";
        req.kind = xml::NodeKind::kElement;
        req.name = "n";
        req.name += std::to_string(txn_next);
        req.value = "v";
        req.value += std::to_string(txn_next);
        txn_live.push_back(req.name);
        ++txn_next;
      } else if (pick < 6) {
        req.op = UpdateRequest::Op::kSetValue;
        req.xpath = txn_live[rng.NextBelow(txn_live.size())];
        req.value = "w";
        req.value += std::to_string(t);
        req.value += '_';
        req.value += std::to_string(r);
      } else if (pick < 8) {
        const size_t i = rng.NextBelow(txn_live.size());
        req.op = UpdateRequest::Op::kDelete;
        req.xpath = txn_live[i];
        txn_live.erase(txn_live.begin() + static_cast<ptrdiff_t>(i));
      } else if (pick == 8) {
        // Unmatched target: ApplyUpdate returns NotFound before mutating.
        req.op = UpdateRequest::Op::kDelete;
        req.xpath = "ghost";
        if (txn.valid) {
          txn.valid = false;
          txn.rolls_back = r > 0;
        }
      } else {
        // Malformed XPath: rejected at parse time.
        req.op = UpdateRequest::Op::kSetValue;
        req.xpath = "][";
        req.value = "x";
        if (txn.valid) {
          txn.valid = false;
          txn.rolls_back = r > 0;
        }
      }
      txn.requests.push_back(std::move(req));
    }
    if (txn.valid) {
      live = std::move(txn_live);
      next_id = txn_next;
    }
    txns.push_back(std::move(txn));
  }
  return txns;
}

// The deterministic registry snapshot as a map, for by-name comparisons.
std::map<std::string, std::string> Fields() {
  std::map<std::string, std::string> out;
  for (auto& [name, value] : obs::GlobalMetrics().TextFields(false)) {
    out[name] = value;
  }
  return out;
}

uint64_t FieldU64(const std::map<std::string, std::string>& fields,
                  const std::string& name) {
  auto it = fields.find(name);
  EXPECT_NE(it, fields.end()) << "missing metric " << name;
  if (it == fields.end()) return 0;
  return std::stoull(it->second);
}

struct RunOutcome {
  std::string xml;
  uint64_t acked = 0;
  uint64_t failed = 0;
  uint64_t journal_records = 0;  // StoreStats ground truth at close
  std::map<std::string, std::string> fields;
  std::string text;  // full RenderText snapshot
};

// The workload through a plain DocumentStore, mirroring the pipeline's
// per-transaction protocol: mark, apply, rollback-on-failure, one group
// commit per transaction.
RunOutcome RunPlainStore(const std::vector<Txn>& txns, MemFileSystem* fs) {
  RunOutcome out;
  obs::GlobalMetrics().Reset();
  StoreOptions options;
  options.fs = fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto store =
      DocumentStore::Create("db", ParseOrDie(kSeedDoc), "ordpath", options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  for (const Txn& txn : txns) {
    const DocumentStore::BatchMark mark = (*store)->Mark();
    common::Status status;
    for (const UpdateRequest& req : txn.requests) {
      status = concurrency::ApplyUpdate(store->get(), req, nullptr);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      ++out.acked;
    } else {
      EXPECT_TRUE((*store)->RollbackTail(mark).ok());
      ++out.failed;
    }
    EXPECT_TRUE((*store)->CommitBatch().ok());
    EXPECT_EQ(status.ok(), txn.valid);
  }
  auto xml = xml::SerializeDocument((*store)->document().tree());
  EXPECT_TRUE(xml.ok());
  out.xml = *xml;
  out.journal_records = (*store)->stats().journal_records;
  out.fields = Fields();
  out.text = obs::GlobalMetrics().RenderText(false);
  return out;
}

// The same workload through the group-commit pipeline, one transaction
// in flight at a time (so batches — and therefore fsyncs — line up 1:1
// with the plain run).
RunOutcome RunConcurrent(const std::vector<Txn>& txns, MemFileSystem* fs) {
  RunOutcome out;
  obs::GlobalMetrics().Reset();
  ConcurrentStoreOptions options;
  options.store.fs = fs;
  auto engine =
      ConcurrentStore::Create("db", ParseOrDie(kSeedDoc), "ordpath", options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Txn& txn : txns) {
    UpdateResult result =
        (*engine)->SubmitTransaction(txn.requests).get();
    if (result.status.ok()) {
      ++out.acked;
    } else {
      ++out.failed;
    }
    EXPECT_EQ(result.status.ok(), txn.valid);
  }
  (*engine)->Stop();
  auto xml = (*engine)->PinView()->SerializeXml();
  EXPECT_TRUE(xml.ok());
  out.xml = *xml;
  out.fields = Fields();
  out.text = obs::GlobalMetrics().RenderText(false);
  return out;
}

TEST(MetricsSoakTest, DifferentialPlainVsConcurrent) {
  const std::vector<Txn> txns = MakeWorkload(kSeed, kTxnCount);
  MemFileSystem fs_a;
  RunOutcome a = RunPlainStore(txns, &fs_a);
  MemFileSystem fs_b;
  RunOutcome b = RunConcurrent(txns, &fs_b);

  // The workload must exercise every path or the differential is hollow.
  ASSERT_GT(a.acked, 0u);
  ASSERT_GT(a.failed, 0u);
  EXPECT_EQ(a.acked, b.acked);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.acked + a.failed, kTxnCount);

  // Same final document through both pipelines.
  EXPECT_EQ(a.xml, b.xml);

  if (!obs::kMetricsEnabled) return;

  // Per-scheme document counters are deterministic functions of the
  // request sequence, so the two runs must agree exactly. The plain run
  // replays rolled-back prefixes during RollbackTail (reload + journal
  // replay), which re-counts doc events the pipeline run also re-counts —
  // both go through the identical rollback path.
  for (const char* key :
       {"doc.ordpath.inserts", "doc.ordpath.removes",
        "doc.ordpath.value_updates", "doc.ordpath.relabels",
        "doc.ordpath.overflows", "doc.ordpath.label_bits_assigned"}) {
    EXPECT_EQ(a.fields.at(key), b.fields.at(key)) << key;
  }

  // Journal traffic is identical: records journaled == records counted.
  EXPECT_EQ(FieldU64(a.fields, "store.journal.appends"),
            FieldU64(b.fields, "store.journal.appends"));
  EXPECT_EQ(FieldU64(a.fields, "store.journal.append_bytes"),
            FieldU64(b.fields, "store.journal.append_bytes"));
  EXPECT_EQ(FieldU64(a.fields, "store.journal.appends") -
                FieldU64(a.fields, "store.rollback_records_dropped"),
            a.journal_records);

  // Acked transactions == committed batch mass: every transaction drains
  // into exactly one group commit in both runs, and the surviving journal
  // records are exactly the commit histogram's mass.
  EXPECT_EQ(FieldU64(a.fields, "store.commit.batch_records.count"),
            kTxnCount);
  EXPECT_EQ(FieldU64(b.fields, "store.commit.batch_records.count"),
            kTxnCount);
  EXPECT_EQ(FieldU64(a.fields, "store.commit.batch_records.sum"),
            a.journal_records);
  EXPECT_EQ(FieldU64(a.fields, "store.commit.batch_records.sum"),
            FieldU64(b.fields, "store.commit.batch_records.sum"));
  EXPECT_EQ(FieldU64(a.fields, "store.journal.fsync_ns.count"),
            FieldU64(b.fields, "store.journal.fsync_ns.count"));

  // Rollback accounting. The pipeline counts every failed transaction as
  // a txn_rollback; the store-level counter ticks only when the rollback
  // actually truncates (the failure was not the transaction's first
  // request) — the model predicts both exactly.
  uint64_t expected_truncating = 0;
  for (const Txn& txn : txns) {
    if (txn.rolls_back) ++expected_truncating;
  }
  ASSERT_GT(expected_truncating, 0u);
  EXPECT_EQ(FieldU64(a.fields, "store.rollbacks"), expected_truncating);
  EXPECT_EQ(FieldU64(b.fields, "store.rollbacks"), expected_truncating);
  EXPECT_EQ(FieldU64(b.fields, "cstore.txn_rollbacks"), b.failed);
  EXPECT_EQ(FieldU64(a.fields, "store.rollback_records_dropped"),
            FieldU64(b.fields, "store.rollback_records_dropped"));

  // Pipeline-side reconciliation: every submission accounted, acks match.
  EXPECT_EQ(FieldU64(b.fields, "cstore.submitted"), kTxnCount);
  EXPECT_EQ(FieldU64(b.fields, "cstore.acked"), b.acked);
  EXPECT_EQ(FieldU64(b.fields, "cstore.failed"), b.failed);
  EXPECT_EQ(FieldU64(b.fields, "cstore.batch_size.count"),
            FieldU64(b.fields, "cstore.commit_ns.count"));
}

TEST(MetricsSoakTest, RecoveryReplaysMatchRecordedAppends) {
  const std::vector<Txn> txns = MakeWorkload(kSeed, kTxnCount);
  MemFileSystem fs;
  RunOutcome run = RunPlainStore(txns, &fs);

  // Reopen the same directory: recovery must replay exactly the records
  // that survived the run (appends minus rolled-back tails), and the
  // recovered document must be byte-identical.
  obs::GlobalMetrics().Reset();
  StoreOptions options;
  options.fs = &fs;
  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto xml = xml::SerializeDocument((*reopened)->document().tree());
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, run.xml);
  EXPECT_EQ((*reopened)->stats().recovered_records, run.journal_records);

  if (!obs::kMetricsEnabled) return;
  std::map<std::string, std::string> fields = Fields();
  EXPECT_EQ(FieldU64(fields, "store.recovery.opens"), 1u);
  EXPECT_EQ(FieldU64(fields, "store.recovery.replayed_records"),
            run.journal_records);
  EXPECT_EQ(FieldU64(fields, "store.recovery.truncated_bytes"), 0u);
  // Replay re-applies every surviving record through the same observer'd
  // document, so the recovery pass's doc event total equals the replayed
  // record count — the per-event invariant behind "recovery retraces the
  // original execution".
  EXPECT_EQ(FieldU64(fields, "doc.ordpath.inserts") +
                FieldU64(fields, "doc.ordpath.removes") +
                FieldU64(fields, "doc.ordpath.value_updates"),
            run.journal_records);
}

TEST(MetricsSoakTest, SnapshotIsByteStableAcrossIdenticalRuns) {
  if (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "metrics compiled out (XMLUP_METRICS=OFF)";
  }
  const std::vector<Txn> txns = MakeWorkload(kSeed, kTxnCount);
  // Both runs execute with every cell of this binary already registered
  // (prior tests ran the full pipeline), so the renders cover the same
  // name set — the acceptance bar: identical runs, identical bytes.
  MemFileSystem fs1;
  RunOutcome first = RunPlainStore(txns, &fs1);
  MemFileSystem fs2;
  RunOutcome second = RunPlainStore(txns, &fs2);
  EXPECT_EQ(first.text, second.text);
  ASSERT_FALSE(first.text.empty());

  MemFileSystem fs3;
  RunOutcome c1 = RunConcurrent(txns, &fs3);
  MemFileSystem fs4;
  RunOutcome c2 = RunConcurrent(txns, &fs4);
  EXPECT_EQ(c1.text, c2.text);
}

}  // namespace
}  // namespace xmlup
