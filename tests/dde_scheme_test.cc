// DDE (Xu et al., SIGMOD 2009): the homogeneous-Dewey mechanics — initial
// labels are plain Dewey, insertions are mediants, and all predicates are
// division-free cross-multiplications.

#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/dde_scheme.h"
#include "labels/registry.h"
#include "xml/tree.h"

namespace xmlup::core {
namespace {

using labels::DdeScheme;
using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(DdeSchemeTest, InitialLabelsAreDewey) {
  auto scheme = labels::CreateScheme("dde");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  NodeId a2 = tree.AppendChild(a, NodeKind::kElement, "a2").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*scheme)->Render(doc->label(root)), "1");
  EXPECT_EQ((*scheme)->Render(doc->label(a)), "1.1");
  EXPECT_EQ((*scheme)->Render(doc->label(b)), "1.2");
  EXPECT_EQ((*scheme)->Render(doc->label(a2)), "1.1.1");
}

TEST(DdeSchemeTest, MediantInsertionBetweenSiblings) {
  auto scheme = labels::CreateScheme("dde");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  // Between 1.1 and 1.2: the mediant 2.3 (ratio 1.5).
  UpdateStats stats;
  auto mid = doc->InsertNode(root, NodeKind::kElement, "m", "", b, &stats);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*mid)), "2.3");
  EXPECT_EQ(stats.relabeled, 0u);
  EXPECT_FALSE(stats.overflow);

  // Between 1.1 and 2.3: mediant 3.4 (ratio 4/3, between 1 and 1.5).
  auto deeper =
      doc->InsertNode(root, NodeKind::kElement, "m2", "", *mid, &stats);
  ASSERT_TRUE(deeper.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*deeper)), "3.4");
  EXPECT_EQ(stats.relabeled, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(DdeSchemeTest, InsertedNodesSupportFullXPathSurface) {
  auto scheme = labels::CreateScheme("dde");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  auto mid = doc->InsertNode(root, NodeKind::kElement, "m", "", b);
  ASSERT_TRUE(mid.ok());
  // Children of the mediant-labelled node: parent/level/sibling tests must
  // all work on the homogeneous labels.
  auto c1 = doc->InsertNode(*mid, NodeKind::kElement, "c1", "");
  auto c2 = doc->InsertNode(*mid, NodeKind::kElement, "c2", "");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  const labels::LabelingScheme& s = doc->scheme();
  EXPECT_TRUE(s.IsParent(doc->label(*mid), doc->label(*c1)));
  EXPECT_TRUE(s.IsAncestor(doc->label(root), doc->label(*c1)));
  EXPECT_FALSE(s.IsAncestor(doc->label(b), doc->label(*c1)));
  EXPECT_TRUE(s.IsSibling(doc->label(*c1), doc->label(*c2)));
  EXPECT_EQ(s.Level(doc->label(*c1)).value(), 2);
  EXPECT_TRUE(doc->VerifyAxes().ok()) << doc->VerifyAxes().message();
}

TEST(DdeSchemeTest, BeforeFirstPreservesParentPrefixRatios) {
  auto scheme = labels::CreateScheme("dde");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  NodeId b1 = tree.AppendChild(b, NodeKind::kElement, "b1").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  // Insert before b's first child (label 1.2.1): the new node must stay
  // inside b's subtree (after b, before b1 in document order).
  auto fresh = doc->InsertNode(b, NodeKind::kElement, "nb", "", b1);
  ASSERT_TRUE(fresh.ok());
  const labels::LabelingScheme& s = doc->scheme();
  EXPECT_TRUE(s.IsParent(doc->label(b), doc->label(*fresh)));
  EXPECT_LT(s.Compare(doc->label(b), doc->label(*fresh)), 0);
  EXPECT_LT(s.Compare(doc->label(*fresh), doc->label(b1)), 0);
  // Repeated prepends keep working.
  for (int i = 0; i < 20; ++i) {
    auto again = doc->InsertNode(b, NodeKind::kElement, "p", "",
                                 doc->tree().first_child(b));
    ASSERT_TRUE(again.ok());
  }
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(DdeSchemeTest, ComponentCodecRoundTrips) {
  std::vector<uint64_t> components = {1, 7, 300, UINT64_MAX};
  labels::Label label = DdeScheme::Encode(components);
  EXPECT_EQ(DdeScheme::DecodeComponents(label), components);
}

TEST(DdeSchemeTest, SkewedGrowthIsLogarithmic) {
  // DDE's selling point over QED-style codes: fixed-position insertions
  // grow component values (log bits), not label length.
  auto scheme = labels::CreateScheme("dde");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  size_t last_bits = 0;
  for (int i = 0; i < 500; ++i) {
    auto node = doc->InsertNode(root, NodeKind::kElement, "s", "", b);
    ASSERT_TRUE(node.ok());
    last_bits = doc->scheme().StorageBits(doc->label(*node));
  }
  EXPECT_LE(last_bits, 48u) << "500 skewed inserts must stay in two "
                               "small varint components";
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

}  // namespace
}  // namespace xmlup::core
