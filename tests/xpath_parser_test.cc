#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlup::xpath {
namespace {

TEST(XPathParserTest, SimpleChildPath) {
  auto path = ParsePath("/book/title");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(path->absolute);
  ASSERT_EQ(path->steps.size(), 2u);
  EXPECT_EQ(path->steps[0].axis, Axis::kChild);
  EXPECT_EQ(path->steps[0].test.name, "book");
  EXPECT_EQ(path->steps[1].test.name, "title");
}

TEST(XPathParserTest, RelativePath) {
  auto path = ParsePath("title/text()");
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path->absolute);
  ASSERT_EQ(path->steps.size(), 2u);
  EXPECT_EQ(path->steps[1].test.kind, NodeTestKind::kText);
}

TEST(XPathParserTest, DoubleSlashExpandsToDescendantOrSelf) {
  auto path = ParsePath("//title");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->steps.size(), 2u);
  EXPECT_EQ(path->steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(path->steps[0].test.kind, NodeTestKind::kNode);
  EXPECT_EQ(path->steps[1].test.name, "title");

  auto mid = ParsePath("/a//b");
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->steps.size(), 3u);
  EXPECT_EQ(mid->steps[1].axis, Axis::kDescendantOrSelf);
}

TEST(XPathParserTest, ExplicitAxes) {
  auto path = ParsePath("ancestor-or-self::node()/following-sibling::*");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->steps.size(), 2u);
  EXPECT_EQ(path->steps[0].axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(path->steps[1].axis, Axis::kFollowingSibling);
  EXPECT_EQ(path->steps[1].test.name, "*");
}

TEST(XPathParserTest, AttributeAbbreviation) {
  auto path = ParsePath("/book/title/@genre");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->steps.size(), 3u);
  EXPECT_EQ(path->steps[2].axis, Axis::kAttribute);
  EXPECT_EQ(path->steps[2].test.name, "genre");
}

TEST(XPathParserTest, DotAndDotDot) {
  auto path = ParsePath("./../book");
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->steps.size(), 3u);
  EXPECT_EQ(path->steps[0].axis, Axis::kSelf);
  EXPECT_EQ(path->steps[1].axis, Axis::kParent);
}

TEST(XPathParserTest, Predicates) {
  auto path = ParsePath("/lib/book[2][@id='b2'][title]/title[last()]");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const Step& book = path->steps[1];
  ASSERT_EQ(book.predicates.size(), 3u);
  EXPECT_EQ(book.predicates[0].kind, Predicate::Kind::kPosition);
  EXPECT_EQ(book.predicates[0].position, 2);
  EXPECT_EQ(book.predicates[1].kind, Predicate::Kind::kEquals);
  EXPECT_EQ(book.predicates[1].literal, "b2");
  ASSERT_NE(book.predicates[1].path, nullptr);
  EXPECT_EQ(book.predicates[1].path->steps[0].axis, Axis::kAttribute);
  EXPECT_EQ(book.predicates[2].kind, Predicate::Kind::kExists);
  const Step& title = path->steps[2];
  ASSERT_EQ(title.predicates.size(), 1u);
  EXPECT_EQ(title.predicates[0].kind, Predicate::Kind::kLast);
}

TEST(XPathParserTest, RootOnly) {
  auto path = ParsePath("/");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->absolute);
  EXPECT_TRUE(path->steps.empty());
}

TEST(XPathParserTest, CommentTest) {
  auto path = ParsePath("//comment()");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->steps[1].test.kind, NodeTestKind::kComment);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("/book/").ok());
  EXPECT_FALSE(ParsePath("/book[").ok());
  EXPECT_FALSE(ParsePath("/book[1").ok());
  EXPECT_FALSE(ParsePath("/book[@id=]").ok());
  EXPECT_FALSE(ParsePath("/book[@id='x]").ok());
  EXPECT_FALSE(ParsePath("bogus-axis::a").ok());
  EXPECT_FALSE(ParsePath("/a $ b").ok());
  EXPECT_FALSE(ParsePath("/a/unknown()").ok());
}

TEST(XPathParserTest, ToStringCanonicalises) {
  auto path = ParsePath("//book[@id='b1']/title[1]");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(ToString(*path),
            "/descendant-or-self::node()/child::book[attribute::id='b1']"
            "/child::title[1]");
  // Canonical output reparses to the same canonical output.
  auto again = ParsePath(ToString(*path));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ToString(*again), ToString(*path));
}

TEST(XPathParserTest, ComparisonOperators) {
  auto path = ParsePath("/book[@year>'1965'][@id!='x'][price<='10']");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const Step& book = path->steps[0];
  ASSERT_EQ(book.predicates.size(), 3u);
  EXPECT_EQ(book.predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(book.predicates[0].literal, "1965");
  EXPECT_EQ(book.predicates[1].op, CompareOp::kNe);
  EXPECT_EQ(book.predicates[2].op, CompareOp::kLe);
}

TEST(XPathParserTest, UnionExpressions) {
  auto expr = ParseUnion("//title | //author|/book");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  ASSERT_EQ(expr->branches.size(), 3u);
  EXPECT_TRUE(expr->branches[2].absolute);
  EXPECT_NE(ToString(*expr).find(" | "), std::string::npos);
  EXPECT_FALSE(ParseUnion("//a |").ok());
  EXPECT_FALSE(ParseUnion("").ok());
}

TEST(XPathParserTest, WhitespaceTolerated) {
  auto path = ParsePath("  /book [ 1 ] / title ");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->steps.size(), 2u);
}

}  // namespace
}  // namespace xmlup::xpath
