// TCP transport tests: the framed wire protocol must behave identically
// over a loopback TCP connection as over pipes and Unix sockets — the
// 16 MiB cap, the zero-length frame, binary escaping, and torn-frame
// detection — plus the HOST:PORT spec parser's one-line-diagnostic
// contract and a live Server::ServeTcp end-to-end pass on an ephemeral
// port.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/wire.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::concurrency {
namespace {

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

// A connected loopback TCP pair: bind an ephemeral listener, dial it,
// accept. Frames written on either end are read from the other, so the
// boundary tests exercise real socket semantics (partial reads, kernel
// buffering) instead of a rewound file.
class TcpPair {
 public:
  TcpPair() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);

    auto dialed = TcpConnect("127.0.0.1", port_);
    EXPECT_TRUE(dialed.ok()) << dialed.status().ToString();
    client_fd_ = dialed.ok() ? *dialed : -1;
    server_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    EXPECT_GE(server_fd_, 0);
  }

  ~TcpPair() {
    CloseClient();
    if (server_fd_ >= 0) ::close(server_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int client() const { return client_fd_; }
  int server() const { return server_fd_; }
  uint16_t port() const { return port_; }

  void CloseClient() {
    if (client_fd_ >= 0) ::close(client_fd_);
    client_fd_ = -1;
  }

 private:
  int listen_fd_ = -1;
  int client_fd_ = -1;
  int server_fd_ = -1;
  uint16_t port_ = 0;
};

TEST(TcpWireTest, MaxFrameRoundTripsOverLoopback) {
  // A frame of exactly kMaxFrameBytes blows any socket buffer, so the
  // writer must survive partial writes and the reader partial reads.
  TcpPair pair;
  std::string field(kMaxFrameBytes, 'x');
  field[0] = 'a';
  field[kMaxFrameBytes - 1] = 'z';
  std::thread writer([&] {
    EXPECT_TRUE(WriteFrame(pair.client(), {field}).ok());
  });
  auto frame = ReadFrame(pair.server());
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  ASSERT_EQ((*frame)->size(), 1u);
  EXPECT_EQ((**frame)[0], field);
}

TEST(TcpWireTest, OneOverMaxIsRejectedAndTheStreamStaysFramed) {
  TcpPair pair;
  std::string over(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(WriteFrame(pair.client(), {over}).ok());
  // Nothing hit the wire: the next well-formed frame still parses.
  ASSERT_TRUE(WriteFrame(pair.client(), {"still", "framed"}).ok());
  auto frame = ReadFrame(pair.server());
  ASSERT_TRUE(frame.ok() && frame->has_value());
  EXPECT_EQ(**frame, (std::vector<std::string>{"still", "framed"}));
}

TEST(TcpWireTest, ZeroLengthFrameRoundTrips) {
  TcpPair pair;
  ASSERT_TRUE(WriteFrame(pair.client(), {""}).ok());
  auto frame = ReadFrame(pair.server());
  ASSERT_TRUE(frame.ok() && frame->has_value());
  EXPECT_EQ(**frame, std::vector<std::string>{""});
}

TEST(TcpWireTest, EscapedBinarySurvivesTheSocket) {
  TcpPair pair;
  std::string raw;
  for (int b = 0; b < 256; ++b) raw.push_back(static_cast<char>(b));
  ASSERT_TRUE(WriteFrame(pair.client(), {"frames", EscapeBinary(raw)}).ok());
  auto frame = ReadFrame(pair.server());
  ASSERT_TRUE(frame.ok() && frame->has_value());
  ASSERT_EQ((*frame)->size(), 2u);
  auto back = UnescapeBinary((**frame)[1]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(TcpWireTest, CleanCloseVersusTornFrame) {
  {
    TcpPair pair;  // peer closes between frames: clean EOF
    pair.CloseClient();
    auto frame = ReadFrame(pair.server());
    ASSERT_TRUE(frame.ok());
    EXPECT_FALSE(frame->has_value());
  }
  {
    TcpPair pair;  // peer dies mid-payload: an error, not a short frame
    const uint32_t claimed = 8;
    char prefix[4];
    std::memcpy(prefix, &claimed, sizeof(prefix));
    ASSERT_EQ(::write(pair.client(), prefix, sizeof(prefix)), 4);
    ASSERT_EQ(::write(pair.client(), "abc", 3), 3);
    pair.CloseClient();
    EXPECT_FALSE(ReadFrame(pair.server()).ok());
  }
}

// --- ParseHostPort -------------------------------------------------------

TEST(ParseHostPortTest, AcceptsWellFormedSpecs) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  ASSERT_TRUE(ParseHostPort("localhost:65535", &host, &port).ok());
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 65535);
}

TEST(ParseHostPortTest, RejectsMalformedSpecsWithOneLineDiagnostics) {
  std::string host;
  uint16_t port = 0;
  // Each rejection names the offending spec (the CLI prints it verbatim).
  for (const char* bad : {
           "nohostport",      // no colon at all
           ":8080",           // empty host
           "host:",           // empty port
           "host:http",       // non-numeric port
           "host:0",          // port 0: not dialable
           "host:65536",      // out of range
           "host:12x",        // trailing junk
           "host:-1",         // sign
       }) {
    common::Status status = ParseHostPort(bad, &host, &port);
    EXPECT_FALSE(status.ok()) << bad;
    EXPECT_NE(status.ToString().find(bad), std::string::npos)
        << "diagnostic for '" << bad << "' should quote the spec: "
        << status.ToString();
  }
}

// --- Server over TCP -----------------------------------------------------

TEST(TcpServerTest, ServesTheWireGrammarOnAnEphemeralPort) {
  store::MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", ParseOrDie("<root/>"), "ordpath",
                                    options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  Server server(st->get());
  server.set_drain_deadline_ms(200);
  std::thread server_thread([&] {
    common::Status served = server.ServeTcp("127.0.0.1", 0);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });
  uint16_t port = 0;
  for (int i = 0; i < 5000 && port == 0; ++i) {
    port = server.bound_port();
    if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port, 0) << "TCP listener never bound";

  auto ping = TcpRequest("127.0.0.1", port, {"--ping"});
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ((*ping)[0], "ok");

  // An update and a query, through the same pipeline as Unix clients.
  auto update = TcpRequest("127.0.0.1", port,
                           {"-s", ".", "-t", "elem", "-n", "via_tcp"});
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ((*update)[0], "ok");
  auto xml = TcpRequest("127.0.0.1", port, {"--xml"});
  ASSERT_TRUE(xml.ok());
  ASSERT_EQ((*xml)[0], "ok");
  EXPECT_NE((*xml)[1].find("via_tcp"), std::string::npos);

  // The DialEndpoint grammar reaches the same server.
  auto dialed = EndpointRequest(
      "tcp:127.0.0.1:" + std::to_string(port), {"--epoch"});
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  EXPECT_EQ((*dialed)[0], "ok");

  EXPECT_TRUE(TcpRequest("127.0.0.1", port, {"--shutdown"}).ok());
  server_thread.join();
  (*st)->Stop();
}

}  // namespace
}  // namespace xmlup::concurrency
