// The update-script subsystem: the action grammar's move/rename
// extensions, the script compiler (comments, `let` bindings, one-line
// file:line diagnostics), the footprint algebra behind the parallel
// apply stage — including a fuzz of Disjoint against a brute-force
// position-set intersection oracle — and the independence analysis
// (PlanTransaction / Independent / MarkConflicts) that decides which
// transactions may apply from pre-resolved targets.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "store/document_store.h"
#include "store/file.h"
#include "updates/footprint.h"
#include "updates/script.h"
#include "updates/update.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup::updates {
namespace {

using common::SplitMix64;
using core::LabeledDocument;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::string Serialize(const LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

// A store over a MemFileSystem, for exercising apply semantics. The fs
// must outlive the store.
std::unique_ptr<DocumentStore> MakeStore(MemFileSystem* fs,
                                         std::string_view xml) {
  StoreOptions options;
  options.fs = fs;
  auto created = DocumentStore::Create("db", ParseOrDie(xml), "dewey",
                                       options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(*created);
}

common::Status Apply(DocumentStore* store, std::vector<std::string> tokens,
                     size_t* matched = nullptr) {
  auto requests = ParseActionTokens(tokens);
  if (!requests.ok()) return requests.status();
  size_t total = 0;
  for (const UpdateRequest& request : *requests) {
    size_t step = 0;
    common::Status status = ApplyUpdate(store, request, &step);
    if (!status.ok()) return status;
    total += step;
  }
  if (matched != nullptr) *matched = total;
  return common::Status::Ok();
}

// --- Action grammar: move/rename ------------------------------------------

TEST(ActionGrammarTest, MoveAndRenameTokensParse) {
  auto actions = ParseActionTokens(
      {"-m", "/a/x", "/b", "--move", "/c", "/d", "-r", "/e", "-v", "f",
       "--rename", "/g", "-v", "h"});
  ASSERT_TRUE(actions.ok()) << actions.status().ToString();
  ASSERT_EQ(actions->size(), 4u);
  EXPECT_EQ((*actions)[0].op, UpdateRequest::Op::kMove);
  EXPECT_EQ((*actions)[0].xpath, "/a/x");
  EXPECT_EQ((*actions)[0].xpath2, "/b");
  EXPECT_EQ((*actions)[1].op, UpdateRequest::Op::kMove);
  EXPECT_EQ((*actions)[2].op, UpdateRequest::Op::kRename);
  EXPECT_EQ((*actions)[2].value, "f");
  EXPECT_EQ((*actions)[3].op, UpdateRequest::Op::kRename);
  EXPECT_EQ((*actions)[3].value, "h");
}

TEST(ActionGrammarTest, MoveNeedsTwoOperands) {
  auto missing = ParseActionTokens({"-m", "/a"});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("\"-m\""), std::string::npos)
      << missing.status().ToString();
}

TEST(ActionGrammarTest, RenameNeedsAValue) {
  auto missing = ParseActionTokens({"-r", "/a"});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("-v <new-name>"),
            std::string::npos)
      << missing.status().ToString();
}

TEST(ActionGrammarTest, DiagnosticsQuoteTheOffendingToken) {
  // The one-line spec-quoting contract shared by ed, apply and serve.
  auto unknown = ParseActionTokens({"-z"});
  ASSERT_FALSE(unknown.ok());
  const std::string message = unknown.status().ToString();
  EXPECT_EQ(message.find('\n'), std::string::npos) << message;
  EXPECT_NE(message.find("\"-z\""), std::string::npos) << message;
}

// --- Move / rename apply semantics ----------------------------------------

TEST(MoveRenameTest, MoveRelocatesSubtreeUnderDestination) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a><x><y/></x></a><b><k/></b></r>");
  size_t matched = 0;
  ASSERT_TRUE(Apply(store.get(), {"-m", "/a/x", "/b"}, &matched).ok());
  EXPECT_EQ(matched, 1u);
  // The moved subtree appends as the destination's last child.
  EXPECT_EQ(Serialize(store->document()),
            "<r><a/><b><k/><x><y/></x></b></r>");
}

TEST(MoveRenameTest, MoveIsDurableAcrossReopen) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  {
    auto store = MakeStore(&fs, "<r><a><x/></a><b/></r>");
    ASSERT_TRUE(Apply(store.get(), {"-m", "/a/x", "/b"}).ok());
  }
  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Serialize((*reopened)->document()), "<r><a/><b><x/></b></r>");
}

TEST(MoveRenameTest, MoveIntoOwnSubtreeRejectedBeforeAnyMutation) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a><x/></a></r>");
  const std::string before = Serialize(store->document());
  EXPECT_FALSE(Apply(store.get(), {"-m", "/a", "/a/x"}).ok());
  EXPECT_FALSE(Apply(store.get(), {"-m", ".", "/a"}).ok());  // root source
  EXPECT_EQ(Serialize(store->document()), before);
}

TEST(MoveRenameTest, NestedMoveSourcesAreSkippedLikeNestedDeletes) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a><m><m/></m></a><b/></r>");
  // //m matches the outer node and its nested child. The outer move
  // carries the inner one along; by the time the inner source comes up
  // it is dead and must be skipped, not moved a second time.
  size_t matched = 0;
  ASSERT_TRUE(Apply(store.get(), {"-m", "//m", "/b"}, &matched).ok());
  EXPECT_EQ(matched, 2u);
  EXPECT_EQ(Serialize(store->document()), "<r><a/><b><m><m/></m></b></r>");
}

TEST(MoveRenameTest, RenameKeepsChildrenAndPosition) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a><x/></a><b/></r>");
  size_t matched = 0;
  ASSERT_TRUE(Apply(store.get(), {"-r", "/a", "-v", "z"}, &matched).ok());
  EXPECT_EQ(matched, 1u);
  EXPECT_EQ(Serialize(store->document()), "<r><z><x/></z><b/></r>");
}

TEST(MoveRenameTest, RenameNestedMatchesRenamesBoth) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a><a/></a></r>");
  size_t matched = 0;
  ASSERT_TRUE(Apply(store.get(), {"-r", "//a", "-v", "z"}, &matched).ok());
  EXPECT_EQ(matched, 2u);
  EXPECT_EQ(Serialize(store->document()), "<r><z><z/></z></r>");
}

TEST(MoveRenameTest, RenameRejectsRootAndNonNamedNodes) {
  MemFileSystem fs;
  auto store = MakeStore(&fs, "<r><a>text</a></r>");
  const std::string before = Serialize(store->document());
  EXPECT_FALSE(Apply(store.get(), {"-r", ".", "-v", "z"}).ok());
  EXPECT_FALSE(Apply(store.get(), {"-r", "/a/text()", "-v", "z"}).ok());
  EXPECT_EQ(Serialize(store->document()), before);
}

// --- Script compiler -------------------------------------------------------

TEST(UpdateScriptTest, CompilesCommentsLetsAndQuotedTokens) {
  auto script = ParseUpdateScript(
      "# build a greeting\n"
      "let who = world\n"
      "let msg = \"hello ${who}\"\n"
      "\n"
      "-s . -t elem -n greeting -v \"${msg}\"\n"
      "-u /greeting -v ${who} -d /old\n",
      "test.up");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->requests.size(), 3u);
  EXPECT_EQ(script->requests[0].op, UpdateRequest::Op::kInsertChild);
  EXPECT_EQ(script->requests[0].value, "hello world");
  EXPECT_EQ(script->requests[1].op, UpdateRequest::Op::kSetValue);
  EXPECT_EQ(script->requests[1].value, "world");
  EXPECT_EQ(script->requests[2].op, UpdateRequest::Op::kDelete);
}

TEST(UpdateScriptTest, DiagnosticsCarryOriginLineAndQuotedToken) {
  auto script = ParseUpdateScript(
      "# fine\n"
      "-s . -t elem -n ok\n"
      "-z /nope\n",
      "broken.up");
  ASSERT_FALSE(script.ok());
  const std::string message = script.status().ToString();
  EXPECT_EQ(message.find('\n'), std::string::npos) << message;
  EXPECT_NE(message.find("broken.up:3:"), std::string::npos) << message;
  EXPECT_NE(message.find("\"-z\""), std::string::npos) << message;
}

TEST(UpdateScriptTest, UndefinedAndUnterminatedReferencesRejected) {
  auto undefined = ParseUpdateScript("-d ${nope}\n", "s");
  ASSERT_FALSE(undefined.ok());
  EXPECT_NE(undefined.status().ToString().find("\"${nope}\""),
            std::string::npos)
      << undefined.status().ToString();
  auto unterminated = ParseUpdateScript("let a = 1\n-d ${a\n", "s");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().ToString().find("s:2:"), std::string::npos)
      << unterminated.status().ToString();
}

TEST(UpdateScriptTest, LetsChainInDefinitionOrder) {
  auto script = ParseUpdateScript(
      "let base = /inventory\n"
      "let shelf = ${base}/shelf\n"
      "-d ${shelf}/book\n",
      "s");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->requests.size(), 1u);
  EXPECT_EQ(script->requests[0].xpath, "/inventory/shelf/book");
}

TEST(UpdateScriptTest, EmptyScriptCompilesToNoRequests) {
  auto script = ParseUpdateScript("# nothing\n\nlet unused = 1\n", "s");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_TRUE(script->requests.empty());
}

// --- Footprint algebra -----------------------------------------------------

Footprint FromIntervals(
    std::vector<std::pair<size_t, size_t>> intervals) {
  Footprint fp;
  fp.intervals = std::move(intervals);
  fp.Normalize();
  return fp;
}

TEST(FootprintTest, DisjointBasics) {
  const Footprint empty;
  Footprint whole;
  whole.MakeWholeDocument();
  EXPECT_TRUE(Disjoint(empty, empty));
  EXPECT_TRUE(Disjoint(whole, empty));
  EXPECT_TRUE(Disjoint(empty, whole));
  EXPECT_FALSE(Disjoint(whole, whole));
  EXPECT_FALSE(Disjoint(whole, FromIntervals({{3, 4}})));
  EXPECT_TRUE(Disjoint(FromIntervals({{0, 2}, {5, 7}}),
                       FromIntervals({{2, 5}, {7, 9}})));
  EXPECT_FALSE(Disjoint(FromIntervals({{0, 2}, {5, 7}}),
                        FromIntervals({{6, 8}})));
}

TEST(FootprintTest, NormalizeCoalescesTouchingAndOverlapping) {
  Footprint fp = FromIntervals({{5, 7}, {0, 2}, {2, 3}, {6, 9}});
  ASSERT_EQ(fp.intervals.size(), 2u);
  EXPECT_EQ(fp.intervals[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(fp.intervals[1], (std::pair<size_t, size_t>{5, 9}));
}

// Brute-force oracle: expand both footprints to position sets over a
// bounded universe and intersect. Normalize preserves the covered set,
// so the oracle works on the raw intervals.
bool OracleDisjoint(const Footprint& a, const Footprint& b, size_t universe) {
  std::vector<bool> in_a(universe, a.whole_document);
  std::vector<bool> in_b(universe, b.whole_document);
  for (const auto& [begin, end] : a.intervals) {
    for (size_t p = begin; p < end && p < universe; ++p) in_a[p] = true;
  }
  for (const auto& [begin, end] : b.intervals) {
    for (size_t p = begin; p < end && p < universe; ++p) in_b[p] = true;
  }
  for (size_t p = 0; p < universe; ++p) {
    if (in_a[p] && in_b[p]) return false;
  }
  return true;
}

TEST(FootprintTest, DisjointFuzzAgainstBruteForceOracle) {
  static constexpr size_t kUniverse = 48;
  SplitMix64 rng(0xF00D);
  auto random_footprint = [&rng]() {
    Footprint fp;
    if (rng.NextBelow(20) == 0) {
      fp.MakeWholeDocument();
      return fp;
    }
    const size_t count = rng.NextBelow(5);
    for (size_t i = 0; i < count; ++i) {
      const size_t begin = rng.NextBelow(kUniverse - 1);
      const size_t end = begin + 1 + rng.NextBelow(8);
      fp.AddRange(begin, std::min(end, kUniverse));
    }
    fp.Normalize();
    return fp;
  };
  for (int iter = 0; iter < 5000; ++iter) {
    const Footprint a = random_footprint();
    const Footprint b = random_footprint();
    EXPECT_EQ(Disjoint(a, b), OracleDisjoint(a, b, kUniverse))
        << "iteration " << iter;
    EXPECT_EQ(Disjoint(a, b), Disjoint(b, a)) << "asymmetric at " << iter;
  }
}

// --- Independence analysis -------------------------------------------------

constexpr char kSections[] =
    "<corpus>"
    "<s0><item><v>a</v></item></s0>"
    "<s1><item><v>b</v></item></s1>"
    "<s2><item><v>c</v></item></s2>"
    "</corpus>";

// The document must not outlive its scheme; keep both together.
struct DocFixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<LabeledDocument> doc;
  LabeledDocument& operator*() { return *doc; }
};

DocFixture BuildDoc(std::string_view xml) {
  DocFixture fixture;
  auto scheme = labels::CreateScheme("dewey");
  EXPECT_TRUE(scheme.ok());
  fixture.scheme = std::move(*scheme);
  auto doc = LabeledDocument::Build(ParseOrDie(xml), fixture.scheme.get());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  fixture.doc = std::make_unique<LabeledDocument>(std::move(*doc));
  return fixture;
}

std::vector<UpdateRequest> OneAction(std::vector<std::string> tokens) {
  auto actions = ParseActionTokens(std::move(tokens));
  EXPECT_TRUE(actions.ok()) << actions.status().ToString();
  return std::move(*actions);
}

TEST(IndependenceTest, SetValueOnDistinctSectionsIsIndependent) {
  auto doc = BuildDoc(kSections);
  TransactionPlan p0 = PlanTransaction(
      *doc, OneAction({"-u", "/s0/item/v/text()", "-v", "X"}));
  TransactionPlan p1 = PlanTransaction(
      *doc, OneAction({"-u", "/s1/item/v/text()", "-v", "Y"}));
  ASSERT_TRUE(p0.usable);
  ASSERT_TRUE(p1.usable);
  ASSERT_EQ(p0.targets.size(), 1u);
  EXPECT_EQ(p0.targets[0].matches.size(), 1u);
  EXPECT_TRUE(Independent(p0, p1));
  EXPECT_TRUE(Independent(p1, p0));
}

TEST(IndependenceTest, WriterUnderReadersPathConflicts) {
  auto doc = BuildDoc(kSections);
  // Deleting s1's item overlaps a read of anything resolved through s1.
  TransactionPlan del =
      PlanTransaction(*doc, OneAction({"-d", "/s1/item"}));
  TransactionPlan read = PlanTransaction(
      *doc, OneAction({"-u", "/s1/item/v/text()", "-v", "Y"}));
  ASSERT_TRUE(del.usable);
  ASSERT_TRUE(read.usable);
  EXPECT_FALSE(Independent(del, read));
}

TEST(IndependenceTest, InsertSiblingConflictsWithSiblingResolution) {
  auto doc = BuildDoc(kSections);
  // Inserting a sibling of s1 writes subtree(root), which contains the
  // frontier points every other resolution walks through.
  TransactionPlan insert = PlanTransaction(
      *doc, OneAction({"-i", "/s1", "-t", "elem", "-n", "snew"}));
  TransactionPlan other = PlanTransaction(
      *doc, OneAction({"-u", "/s0/item/v/text()", "-v", "X"}));
  ASSERT_TRUE(insert.usable);
  ASSERT_TRUE(other.usable);
  EXPECT_FALSE(Independent(insert, other));
}

TEST(IndependenceTest, InsertChildIntoDistinctSectionsIsIndependent) {
  auto doc = BuildDoc(kSections);
  TransactionPlan a = PlanTransaction(
      *doc, OneAction({"-s", "/s0/item", "-t", "elem", "-n", "extra"}));
  TransactionPlan b = PlanTransaction(
      *doc, OneAction({"-s", "/s2/item", "-t", "elem", "-n", "extra"}));
  ASSERT_TRUE(a.usable);
  ASSERT_TRUE(b.usable);
  EXPECT_TRUE(Independent(a, b));
}

TEST(IndependenceTest, UpwardAxisFallsBackToWholeDocument) {
  auto doc = BuildDoc(kSections);
  TransactionPlan plan =
      PlanTransaction(*doc, OneAction({"-d", "/s0/item/.."}));
  EXPECT_FALSE(plan.usable);
  EXPECT_TRUE(plan.reads.whole_document);
  EXPECT_TRUE(plan.writes.whole_document);
  TransactionPlan other = PlanTransaction(
      *doc, OneAction({"-u", "/s1/item/v/text()", "-v", "Y"}));
  EXPECT_FALSE(Independent(plan, other));
}

TEST(IndependenceTest, DescendantAxisChargesTheSubtreeItScans) {
  auto doc = BuildDoc(kSections);
  TransactionPlan scan = PlanTransaction(
      *doc, OneAction({"-u", "/s0//v/text()", "-v", "X"}));
  ASSERT_TRUE(scan.usable);
  // The scan reads all of s0, so a write inside s0 conflicts...
  TransactionPlan inside = PlanTransaction(
      *doc, OneAction({"-s", "/s0/item", "-t", "elem", "-n", "x"}));
  ASSERT_TRUE(inside.usable);
  EXPECT_FALSE(Independent(scan, inside));
  // ...while a write inside s1 does not.
  TransactionPlan outside = PlanTransaction(
      *doc, OneAction({"-s", "/s1/item", "-t", "elem", "-n", "x"}));
  ASSERT_TRUE(outside.usable);
  EXPECT_TRUE(Independent(scan, outside));
}

TEST(IndependenceTest, IntraTransactionReadAfterWriteIsUnusable) {
  auto doc = BuildDoc(kSections);
  // The second request resolves a path the first request's insert just
  // changed; against the pinned view it would miss the new node.
  TransactionPlan plan = PlanTransaction(
      *doc, OneAction({"-s", "/s0/item", "-t", "elem", "-n", "c", "-u",
                       "/s0/item/v/text()", "-v", "X"}));
  EXPECT_FALSE(plan.usable);
}

TEST(IndependenceTest, ConservativeRelabelsChargesWholeDocumentWrites) {
  auto doc = BuildDoc(kSections);
  PlanOptions conservative;
  conservative.conservative_relabels = true;
  TransactionPlan structural = PlanTransaction(
      *doc, OneAction({"-s", "/s0/item", "-t", "elem", "-n", "x"}),
      conservative);
  ASSERT_TRUE(structural.usable);
  EXPECT_TRUE(structural.writes.whole_document);
  // Value-only updates stay bounded even under the conservative mode.
  TransactionPlan value = PlanTransaction(
      *doc, OneAction({"-u", "/s1/item/v/text()", "-v", "Y"}),
      conservative);
  ASSERT_TRUE(value.usable);
  EXPECT_FALSE(value.writes.whole_document);
  EXPECT_FALSE(Independent(structural, value));
}

TEST(IndependenceTest, MarkConflictsIsPairwiseAndSingletonsNeverConflict) {
  auto doc = BuildDoc(kSections);
  TransactionPlan p0 = PlanTransaction(
      *doc, OneAction({"-u", "/s0/item/v/text()", "-v", "X"}));
  TransactionPlan p1 = PlanTransaction(
      *doc, OneAction({"-u", "/s1/item/v/text()", "-v", "Y"}));
  TransactionPlan clash =
      PlanTransaction(*doc, OneAction({"-d", "/s1/item"}));

  std::vector<TransactionPlan> solo;
  solo.push_back(PlanTransaction(
      *doc, OneAction({"-u", "/s0/item/v/text()", "-v", "X"})));
  EXPECT_EQ(MarkConflicts(solo), std::vector<bool>{false});

  std::vector<TransactionPlan> batch;
  batch.push_back(std::move(p0));
  batch.push_back(std::move(p1));
  batch.push_back(std::move(clash));
  const std::vector<bool> conflicted = MarkConflicts(batch);
  ASSERT_EQ(conflicted.size(), 3u);
  EXPECT_FALSE(conflicted[0]);  // s0 update touches nobody
  EXPECT_TRUE(conflicted[1]);   // s1 update vs s1 delete
  EXPECT_TRUE(conflicted[2]);
}

// Plan-level fuzz: for random pairs of single-request transactions, an
// `Independent` verdict must imply order-insensitive application — the
// final document is bit-identical whichever transaction applies first.
TEST(IndependenceTest, IndependentPairsCommuteUnderApplication) {
  constexpr char kDoc[] =
      "<corpus>"
      "<s0><item><v>a</v></item></s0>"
      "<s1><item><v>b</v></item></s1>"
      "<s2><item><v>c</v></item></s2>"
      "<s3><item><v>d</v></item></s3>"
      "</corpus>";
  const std::vector<std::vector<std::string>> pool = {
      {"-u", "/s0/item/v/text()", "-v", "A"},
      {"-u", "/s1/item/v/text()", "-v", "B"},
      {"-u", "/s2/item/v/text()", "-v", "C"},
      {"-d", "/s0/item"},
      {"-d", "/s2/item"},
      {"-s", "/s1/item", "-t", "elem", "-n", "extra"},
      {"-s", "/s3/item", "-t", "elem", "-n", "extra"},
      {"-r", "/s3/item", "-v", "entry"},
      {"-m", "/s0/item", "/s2"},
  };
  auto doc = BuildDoc(kDoc);
  SplitMix64 rng(0xBEEF);
  size_t independent_pairs = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const auto& ta = pool[rng.NextBelow(pool.size())];
    const auto& tb = pool[rng.NextBelow(pool.size())];
    TransactionPlan pa = PlanTransaction(*doc, OneAction(ta));
    TransactionPlan pb = PlanTransaction(*doc, OneAction(tb));
    if (!Independent(pa, pb)) continue;
    ++independent_pairs;
    MemFileSystem fs_ab;
    MemFileSystem fs_ba;
    auto ab = MakeStore(&fs_ab, kDoc);
    auto ba = MakeStore(&fs_ba, kDoc);
    ASSERT_TRUE(Apply(ab.get(), ta).ok());
    ASSERT_TRUE(Apply(ab.get(), tb).ok());
    ASSERT_TRUE(Apply(ba.get(), tb).ok());
    ASSERT_TRUE(Apply(ba.get(), ta).ok());
    EXPECT_EQ(Serialize(ab->document()), Serialize(ba->document()))
        << "independent pair does not commute: " << ta[1] << " vs " << tb[1];
  }
  EXPECT_GT(independent_pairs, 10u) << "fuzz never exercised the property";
}

}  // namespace
}  // namespace xmlup::updates
