#include <gtest/gtest.h>

#include "xml/tree.h"

namespace xmlup::xml {
namespace {

Tree MakeSmallTree(NodeId* a, NodeId* b, NodeId* c) {
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "root").value();
  *a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  *b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  *c = tree.AppendChild(*a, NodeKind::kElement, "c").value();
  return tree;
}

TEST(TreeTest, CreateRootOnce) {
  Tree tree;
  ASSERT_TRUE(tree.CreateRoot(NodeKind::kElement, "root").ok());
  EXPECT_TRUE(tree.has_root());
  auto again = tree.CreateRoot(NodeKind::kElement, "other");
  EXPECT_FALSE(again.ok());
}

TEST(TreeTest, AppendMaintainsSiblingLinks) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  NodeId root = tree.root();
  EXPECT_EQ(tree.first_child(root), a);
  EXPECT_EQ(tree.last_child(root), b);
  EXPECT_EQ(tree.next_sibling(a), b);
  EXPECT_EQ(tree.prev_sibling(b), a);
  EXPECT_EQ(tree.parent(c), a);
  EXPECT_EQ(tree.node_count(), 4u);
}

TEST(TreeTest, InsertBeforeFirstAndMiddle) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  NodeId root = tree.root();
  NodeId front =
      tree.InsertChild(root, NodeKind::kElement, "front", "", a).value();
  NodeId mid =
      tree.InsertChild(root, NodeKind::kElement, "mid", "", b).value();
  std::vector<NodeId> kids = tree.Children(root);
  ASSERT_EQ(kids.size(), 4u);
  EXPECT_EQ(kids[0], front);
  EXPECT_EQ(kids[1], a);
  EXPECT_EQ(kids[2], mid);
  EXPECT_EQ(kids[3], b);
}

TEST(TreeTest, InsertBeforeRejectsNonChild) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  // c is a child of a, not of root.
  auto result = tree.InsertChild(tree.root(), NodeKind::kElement, "x", "", c);
  EXPECT_FALSE(result.ok());
}

TEST(TreeTest, InsertIntoInvalidParentFails) {
  Tree tree;
  auto result = tree.InsertChild(5, NodeKind::kElement, "x", "");
  EXPECT_FALSE(result.ok());
}

TEST(TreeTest, RemoveSubtreeUnlinksAndKillsDescendants) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  ASSERT_TRUE(tree.RemoveSubtree(a).ok());
  EXPECT_FALSE(tree.IsValid(a));
  EXPECT_FALSE(tree.IsValid(c));
  EXPECT_TRUE(tree.IsValid(b));
  EXPECT_EQ(tree.first_child(tree.root()), b);
  EXPECT_EQ(tree.prev_sibling(b), kInvalidNode);
  EXPECT_EQ(tree.node_count(), 2u);
}

TEST(TreeTest, RemoveMiddleChildRelinksSiblings) {
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId x = tree.AppendChild(root, NodeKind::kElement, "x").value();
  NodeId y = tree.AppendChild(root, NodeKind::kElement, "y").value();
  NodeId z = tree.AppendChild(root, NodeKind::kElement, "z").value();
  ASSERT_TRUE(tree.RemoveSubtree(y).ok());
  EXPECT_EQ(tree.next_sibling(x), z);
  EXPECT_EQ(tree.prev_sibling(z), x);
}

TEST(TreeTest, RemoveRootEmptiesTree) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  ASSERT_TRUE(tree.RemoveSubtree(tree.root()).ok());
  EXPECT_FALSE(tree.has_root());
  EXPECT_EQ(tree.node_count(), 0u);
}

TEST(TreeTest, NodeIdsAreStableAcrossRemoval) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  size_t arena = tree.arena_size();
  ASSERT_TRUE(tree.RemoveSubtree(a).ok());
  EXPECT_EQ(tree.arena_size(), arena);
  EXPECT_EQ(tree.name(b), "b");  // b unaffected.
}

TEST(TreeTest, PreorderMatchesDocumentOrder) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  std::vector<NodeId> order = tree.PreorderNodes();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], tree.root());
  EXPECT_EQ(order[1], a);
  EXPECT_EQ(order[2], c);
  EXPECT_EQ(order[3], b);
}

TEST(TreeTest, DepthAndAncestry) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  EXPECT_EQ(tree.Depth(tree.root()), 0);
  EXPECT_EQ(tree.Depth(a), 1);
  EXPECT_EQ(tree.Depth(c), 2);
  EXPECT_TRUE(tree.IsAncestor(tree.root(), c));
  EXPECT_TRUE(tree.IsAncestor(a, c));
  EXPECT_FALSE(tree.IsAncestor(c, a));
  EXPECT_FALSE(tree.IsAncestor(a, a));
  EXPECT_FALSE(tree.IsAncestor(b, c));
}

TEST(TreeTest, CompareDocumentOrderAgreesWithPreorder) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  std::vector<NodeId> order = tree.PreorderNodes();
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = 0; j < order.size(); ++j) {
      int expected = i < j ? -1 : (i > j ? 1 : 0);
      EXPECT_EQ(tree.CompareDocumentOrder(order[i], order[j]), expected)
          << i << " vs " << j;
    }
  }
}

TEST(TreeTest, ContentUpdates) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  ASSERT_TRUE(tree.SetValue(c, "hello").ok());
  ASSERT_TRUE(tree.SetName(c, "renamed").ok());
  EXPECT_EQ(tree.value(c), "hello");
  EXPECT_EQ(tree.name(c), "renamed");
  EXPECT_FALSE(tree.SetValue(9999, "x").ok());
}

TEST(TreeTest, ChildCountAndChildren) {
  NodeId a, b, c;
  Tree tree = MakeSmallTree(&a, &b, &c);
  EXPECT_EQ(tree.ChildCount(tree.root()), 2u);
  EXPECT_EQ(tree.ChildCount(b), 0u);
  EXPECT_EQ(tree.Children(a), std::vector<NodeId>{c});
}

TEST(NodeKindTest, Names) {
  EXPECT_EQ(NodeKindName(NodeKind::kElement), "Element");
  EXPECT_EQ(NodeKindName(NodeKind::kAttribute), "Attribute");
  EXPECT_EQ(NodeKindName(NodeKind::kText), "Text");
  EXPECT_EQ(NodeKindName(NodeKind::kComment), "Comment");
  EXPECT_EQ(NodeKindName(NodeKind::kProcessingInstruction), "PI");
}

}  // namespace
}  // namespace xmlup::xml
