#include <gtest/gtest.h>

#include "common/biguint.h"
#include "common/op_counters.h"
#include "common/primes.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/varint.h"

namespace xmlup::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOverflow), "Overflow");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  XMLUP_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(VarintTest, RoundTripsBoundaries) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384}, UINT64_MAX}) {
    std::string buf;
    AppendVarint(v, &buf);
    EXPECT_EQ(buf.size(), VarintSize(v));
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(ReadVarint(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  AppendVarint(300, &buf);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_FALSE(ReadVarint(buf, &pos, &out));
}

TEST(RngTest, DeterministicFromSeed) {
  SplitMix64 a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBelowIsInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  SplitMix64 rng(3);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(BigUintTest, ConstructAndRender) {
  EXPECT_EQ(BigUint().ToString(), "0");
  EXPECT_EQ(BigUint(1).ToString(), "1");
  EXPECT_EQ(BigUint(123456789).ToString(), "123456789");
  EXPECT_EQ(BigUint(UINT64_MAX).ToString(), "18446744073709551615");
}

TEST(BigUintTest, MultiplyMatchesKnownProducts) {
  BigUint a(1000000007ULL);
  BigUint b = a.Multiply(a);
  EXPECT_EQ(b.ToString(), "1000000014000000049");
  // (2^64 - 1)^2 = 340282366920938463426481119284349108225
  BigUint c = BigUint(UINT64_MAX).Multiply(BigUint(UINT64_MAX));
  EXPECT_EQ(c.ToString(), "340282366920938463426481119284349108225");
}

TEST(BigUintTest, CompareOrdersValues) {
  BigUint small(7), big(11);
  EXPECT_LT(small.Compare(big), 0);
  EXPECT_GT(big.Compare(small), 0);
  EXPECT_EQ(small.Compare(BigUint(7)), 0);
  BigUint wide = big.Multiply(big).Multiply(big).Multiply(big);
  EXPECT_GT(wide.Compare(big), 0);
}

TEST(BigUintTest, DivisibilityOfPrimeProducts) {
  BigUint product(2);
  for (uint64_t p : {3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 1000003ULL}) {
    product = product.MultiplySmall(p);
  }
  EXPECT_TRUE(product.DivisibleBy(BigUint(7)));
  EXPECT_TRUE(product.DivisibleBy(BigUint(2 * 13)));
  EXPECT_TRUE(product.DivisibleBy(BigUint(1000003)));
  EXPECT_FALSE(product.DivisibleBy(BigUint(17)));
  EXPECT_FALSE(product.DivisibleBy(BigUint(1000033)));
}

TEST(BigUintTest, ModAgainstLargerGivesSelf) {
  BigUint a(5), b(100);
  EXPECT_EQ(a.Mod(b).ToString(), "5");
}

TEST(BigUintTest, BytesRoundTrip) {
  BigUint a = BigUint(987654321).Multiply(BigUint(123456789));
  BigUint b = BigUint::FromBytes(a.ToBytes());
  EXPECT_EQ(a.Compare(b), 0);
  EXPECT_TRUE(BigUint::FromBytes("").is_zero());
}

TEST(BigUintTest, BitLength) {
  EXPECT_EQ(BigUint().BitLength(), 0);
  EXPECT_EQ(BigUint(1).BitLength(), 1);
  EXPECT_EQ(BigUint(255).BitLength(), 8);
  EXPECT_EQ(BigUint(256).BitLength(), 9);
  EXPECT_EQ(BigUint(UINT64_MAX).BitLength(), 64);
}

TEST(PrimeSourceTest, GeneratesPrimesInOrder) {
  PrimeSource source;
  EXPECT_EQ(source.NthPrime(0), 2u);
  EXPECT_EQ(source.NthPrime(1), 3u);
  EXPECT_EQ(source.NthPrime(4), 11u);
  EXPECT_EQ(source.NthPrime(24), 97u);
  EXPECT_EQ(source.NthPrime(99), 541u);
}

TEST(PrimeSourceTest, TakeNextAdvances) {
  PrimeSource source;
  EXPECT_EQ(source.TakeNext(), 2u);
  EXPECT_EQ(source.TakeNext(), 3u);
  EXPECT_EQ(source.TakeNext(), 5u);
  EXPECT_EQ(source.taken(), 3u);
}

TEST(OpCountersTest, AccumulateAndReset) {
  OpCounters a, b;
  a.divisions = 2;
  a.relabels = 5;
  b.divisions = 3;
  b.overflows = 1;
  a += b;
  EXPECT_EQ(a.divisions, 5u);
  EXPECT_EQ(a.relabels, 5u);
  EXPECT_EQ(a.overflows, 1u);
  a.Reset();
  EXPECT_EQ(a.divisions, 0u);
  EXPECT_NE(a.ToString().find("divisions=0"), std::string::npos);
}

}  // namespace
}  // namespace xmlup::common
