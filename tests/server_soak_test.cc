// Server soak: several client threads hammer a live ServeUnixSocket
// endpoint with a mix of update, query, and admin frames — including
// deliberately failing updates — then a final --stats frame must
// reconcile exactly with the client-side tallies: every acknowledged
// update is counted once, every rejected one shows up as a failure, and
// the frame counters account for every request the clients got a reply
// to. Runs under TSan in CI (suite name carries "ServerSoak").

#include "concurrency/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "observability/metrics.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::concurrency {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 24;  // multiple of the 6-way op mix

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::map<std::string, uint64_t> ParseStats(
    const std::vector<std::string>& reply) {
  std::map<std::string, uint64_t> out;
  for (size_t i = 1; i < reply.size(); ++i) {
    size_t eq = reply[i].find('=');
    if (eq == std::string::npos) continue;
    out[reply[i].substr(0, eq)] = std::stoull(reply[i].substr(eq + 1));
  }
  return out;
}

TEST(ServerSoakTest, ConcurrentClientsReconcileWithStats) {
  obs::GlobalMetrics().Reset();
  store::MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", ParseOrDie("<root><seed/></root>"),
                                    "ordpath", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  // The store lives on the in-memory file system; only the socket needs a
  // real path (and a short one — sun_path is ~108 bytes).
  char dir_template[] = "/tmp/xmlup_soak_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/s";

  Server server(st->get());
  std::thread server_thread([&] {
    common::Status served = server.ServeUnixSocket(socket_path);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });

  // Every successful request below is exactly one frame in and one out.
  std::atomic<uint64_t> frames{0};
  bool up = false;
  for (int i = 0; i < 5000 && !up; ++i) {
    if (UnixSocketRequest(socket_path, {"--ping"}).ok()) {
      up = true;
      ++frames;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(up) << "server socket never came up";

  std::atomic<uint64_t> updates_sent{0};
  std::atomic<uint64_t> updates_acked{0};
  std::atomic<uint64_t> updates_rejected{0};
  std::atomic<uint64_t> transport_errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::vector<std::string> request;
        bool is_update = false;
        switch (i % 6) {
          case 0:
          case 1:
          case 2: {
            // Insert a uniquely named child under the root.
            std::string name = "n";
            name += std::to_string(c);
            name += '_';
            name += std::to_string(i);
            request = {"-s", ".", "-t", "elem", "-n", name};
            is_update = true;
            break;
          }
          case 3:
            // Deliberate failure: the target never matches (NotFound).
            request = {"-d", "never_there"};
            is_update = true;
            break;
          case 4:
            request = {"-q", "."};
            break;
          default:
            request = {"--epoch"};
            break;
        }
        auto reply = UnixSocketRequest(socket_path, request);
        if (!reply.ok() || reply->empty()) {
          ++transport_errors;
          continue;
        }
        ++frames;
        if (is_update) {
          ++updates_sent;
          if ((*reply)[0] == "ok") {
            ++updates_acked;
          } else {
            ++updates_rejected;
          }
        } else {
          EXPECT_EQ((*reply)[0], "ok");
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(transport_errors.load(), 0u);
  ASSERT_EQ(updates_sent.load(),
            static_cast<uint64_t>(kClients) * kRequestsPerClient * 4 / 6);

  // frames_out is bumped *after* the reply bytes go out, so a client can
  // observe its reply a beat before the server counts it; poll --stats
  // until the write-side counter settles. Each poll is itself a frame:
  // during poll k the server has seen base+k frames in and written
  // base+k-1 replies out.
  const uint64_t base = frames.load();
  uint64_t polls = 0;
  std::map<std::string, uint64_t> fields;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    auto stats_reply = UnixSocketRequest(socket_path, {"--stats"});
    ASSERT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
    ASSERT_GE(stats_reply->size(), 2u);
    ASSERT_EQ((*stats_reply)[0], "ok");
    ++polls;
    fields = ParseStats(*stats_reply);
    if (!obs::kMetricsEnabled ||
        fields["server.frames_out"] == base + polls - 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Server-side totals must reconcile with the client-side tallies.
  EXPECT_EQ(fields["updates_applied"], updates_acked.load());
  EXPECT_EQ(fields["updates_failed"], updates_rejected.load());
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(fields["server.frames_in"], base + polls);
    EXPECT_EQ(fields["server.frames_out"], base + polls - 1);
    EXPECT_EQ(fields["server.verb.update"], updates_sent.load());
    EXPECT_EQ(fields["server.errors"], updates_rejected.load());
    EXPECT_EQ(fields["cstore.acked"], updates_acked.load());
    EXPECT_EQ(fields["cstore.failed"], updates_rejected.load());
    EXPECT_EQ(fields["cstore.submitted"], updates_sent.load());
  }
  // Each acknowledged insert is exactly one applied update on the store.
  EXPECT_EQ((*st)->stats().updates_applied, updates_acked.load());

  EXPECT_TRUE(UnixSocketRequest(socket_path, {"--shutdown"}).ok());
  server_thread.join();
  (*st)->Stop();
  ::rmdir(dir_template);
}

TEST(ServerSoakTest, ShutdownForciblyDrainsIdleConnections) {
  // A client that connects and then goes silent must not hold shutdown
  // hostage: past the drain deadline the server shuts the connection
  // down itself and ServeUnixSocket returns.
  store::MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", ParseOrDie("<root/>"), "ordpath",
                                    options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  char dir_template[] = "/tmp/xmlup_drain_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/s";

  Server server(st->get());
  server.set_drain_deadline_ms(200);
  std::thread server_thread([&] {
    common::Status served = server.ServeUnixSocket(socket_path);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });
  bool up = false;
  for (int i = 0; i < 5000 && !up; ++i) {
    up = UnixSocketRequest(socket_path, {"--ping"}).ok();
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(up) << "server socket never came up";

  // The idle client: connected, never sends a frame.
  int idle_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(idle_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ASSERT_EQ(::connect(idle_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(UnixSocketRequest(socket_path, {"--shutdown"}).ok());
  server_thread.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Well under test-timeout scale: the 200ms deadline plus slack, not
  // an indefinite wait on the silent client.
  EXPECT_LT(elapsed.count(), 5000);

  ::close(idle_fd);
  (*st)->Stop();
  ::rmdir(dir_template);
}

TEST(ServerSoakTest, ShutdownForciblyDrainsIdleTcpConnections) {
  // The same drain gate covers the TCP transport: a router's pooled
  // connection (connected, idle, never sending) must not hold --shutdown
  // hostage any more than a silent Unix client does.
  store::MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", ParseOrDie("<root/>"), "ordpath",
                                    options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  Server server(st->get());
  server.set_drain_deadline_ms(200);
  std::thread server_thread([&] {
    common::Status served = server.ServeTcp("127.0.0.1", 0);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });
  uint16_t port = 0;
  for (int i = 0; i < 5000 && port == 0; ++i) {
    port = server.bound_port();
    if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(port, 0) << "TCP listener never bound";

  // The idle "pooled" connection: connected, never sends a frame.
  auto idle = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(idle.ok()) << idle.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(TcpRequest("127.0.0.1", port, {"--shutdown"}).ok());
  server_thread.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000);

  ::close(*idle);
  (*st)->Stop();
}

}  // namespace
}  // namespace xmlup::concurrency
