// Differential replication soak: for EVERY registered labelling scheme,
// a primary and two replicas run through a seeded schedule of updates,
// checkpoint rolls, replica kills/restarts (including restarts from a
// journal corrupted mid-frame by a bitflip) and a phase that strands a
// replica across two rolls so catch-up MUST go through a snapshot
// transfer. At quiesce every replica must converge to XML and label
// bytes identical to the primary with zero reported lag. The suite name
// carries "ReplicationSoak" so CI runs it under TSan, where the
// readers-during-catch-up test races query threads against the applier.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/update.h"
#include "labels/registry.h"
#include "replication/applier.h"
#include "replication/source.h"
#include "store/document_store.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::replication {
namespace {

using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;
using concurrency::UpdateRequest;
using store::MemFileSystem;

// Built with += rather than operator+: GCC 12's -Werror=restrict
// misfires on the inlined char*+string concatenation under -fsanitize.
std::string Name(const char* prefix, int i) {
  std::string out = prefix;
  out += std::to_string(i);
  return out;
}

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::vector<std::string> LabelBytes(const core::LabeledDocument& doc) {
  std::vector<std::string> out;
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

// One primary + N replica slots over a real Unix socket, reusable per
// scheme. Replica slots can be killed, corrupted, and restarted.
class Cluster {
 public:
  explicit Cluster(const std::string& scheme) : scheme_(scheme) {
    char dir_template[] = "/tmp/xmlup_rsoak_XXXXXX";
    EXPECT_NE(::mkdtemp(dir_template), nullptr);
    tmp_dir_ = dir_template;
    socket_path_ = tmp_dir_ + "/s";

    ConcurrentStoreOptions options;
    options.store.fs = &primary_fs_;
    // Tiny threshold: generations roll every few records, exercising
    // roll-following constantly and making strand-a-replica cheap.
    options.store.checkpoint.max_journal_records = 7;
    options.commit_hook = &source_;
    auto created = ConcurrentStore::Create(
        "p", ParseOrDie("<root><seed><a/><b/></seed></root>"), scheme_,
        options);
    EXPECT_TRUE(created.ok()) << scheme_ << ": " << created.status().ToString();
    primary_ = std::move(*created);

    server_ = std::make_unique<concurrency::Server>(primary_.get());
    server_->EnableReplication(&source_);
    server_->SetReplStatus([this] { return source_.StatusFields(); });
    server_->set_drain_deadline_ms(200);
    server_thread_ = std::thread([this] {
      EXPECT_TRUE(server_->ServeUnixSocket(socket_path_).ok());
    });
    bool up = false;
    for (int i = 0; i < 5000 && !up; ++i) {
      up = concurrency::UnixSocketRequest(socket_path_, {"--ping"}).ok();
      if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(up) << "server socket never came up";
  }

  ~Cluster() {
    for (auto& r : replicas_) {
      if (r.applier != nullptr) r.applier->Stop();
    }
    replicas_.clear();
    EXPECT_TRUE(
        concurrency::UnixSocketRequest(socket_path_, {"--shutdown"}).ok());
    server_thread_.join();
    primary_->Stop();
    ::rmdir(tmp_dir_.c_str());
  }

  size_t AddReplica() {
    replicas_.emplace_back();
    replicas_.back().fs = std::make_unique<MemFileSystem>();
    StartReplica(replicas_.size() - 1);
    return replicas_.size() - 1;
  }

  void StartReplica(size_t i) {
    ReplicaApplierOptions options;
    options.store.fs = replicas_[i].fs.get();
    auto applier = ReplicaApplier::Start("r", socket_path_, options);
    ASSERT_TRUE(applier.ok()) << applier.status().ToString();
    replicas_[i].applier = std::move(*applier);
  }

  // Stops the applier (its thread joins, so the test thread may touch
  // the replica's MemFileSystem afterwards) and remembers the applied
  // generation for corruption targeting.
  void KillReplica(size_t i) {
    replicas_[i].last_generation =
        replicas_[i].applier->status().applied.generation;
    replicas_[i].applier->Stop();
    replicas_[i].applier.reset();
    ++kills_;
  }

  bool ReplicaRunning(size_t i) const {
    return replicas_[i].applier != nullptr;
  }

  // Mid-frame corruption: flips one journal bit of the (stopped)
  // replica's current generation, somewhere past the file header.
  void CorruptStoppedReplica(size_t i, std::mt19937* rng) {
    MemFileSystem* fs = replicas_[i].fs.get();
    const std::string path =
        "r/" + store::JournalFileName(replicas_[i].last_generation);
    if (!fs->FileExists(path)) return;
    const uint64_t size = fs->FileSize(path);
    if (size <= store::kJournalHeaderSize) return;
    std::uniform_int_distribution<uint64_t> offset(store::kJournalHeaderSize,
                                                   size - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    ASSERT_TRUE(fs->FlipBit(path, offset(*rng), bit(*rng)).ok());
    ++corruptions_;
  }

  void Insert(const std::string& name) {
    UpdateRequest request;
    request.op = UpdateRequest::Op::kInsertChild;
    request.xpath = ".";
    request.kind = xml::NodeKind::kElement;
    request.name = name;
    auto result = primary_->Update(std::move(request));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  }

  void AwaitConverged(size_t i) {
    ReplicaApplier* applier = replicas_[i].applier.get();
    ASSERT_TRUE(applier->WaitForPosition(source_.committed(), 20000))
        << scheme_ << ": replica " << i << " never reached "
        << source_.committed().generation;
    for (int poll = 0; poll < 20000; ++poll) {
      ReplicaStatus s = applier->status();
      if (s.lag_bytes == 0 && s.lag_records == 0 &&
          s.primary == source_.committed()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << scheme_ << ": replica " << i << " lag never reached zero";
  }

  void ExpectIdenticalToPrimary(size_t i) {
    auto replica_view = replicas_[i].applier->PinView();
    ASSERT_NE(replica_view, nullptr);
    auto primary_view = primary_->PinView();
    auto replica_xml = replica_view->SerializeXml();
    auto primary_xml = primary_view->SerializeXml();
    ASSERT_TRUE(replica_xml.ok() && primary_xml.ok());
    EXPECT_EQ(*replica_xml, *primary_xml) << scheme_ << ": replica " << i;
    EXPECT_EQ(LabelBytes(replica_view->document()),
              LabelBytes(primary_view->document()))
        << scheme_ << ": replica " << i;
  }

  ReplicaApplier* applier(size_t i) { return replicas_[i].applier.get(); }
  ReplicationSource& source() { return source_; }
  uint64_t kills() const { return kills_; }
  uint64_t corruptions() const { return corruptions_; }

 private:
  struct ReplicaSlot {
    std::unique_ptr<MemFileSystem> fs;
    std::unique_ptr<ReplicaApplier> applier;
    uint64_t last_generation = 0;
  };

  std::string scheme_;
  std::string tmp_dir_;
  std::string socket_path_;
  MemFileSystem primary_fs_;
  ReplicationSource source_;
  std::unique_ptr<ConcurrentStore> primary_;
  std::unique_ptr<concurrency::Server> server_;
  std::thread server_thread_;
  std::vector<ReplicaSlot> replicas_;
  uint64_t kills_ = 0;
  uint64_t corruptions_ = 0;
};

TEST(ReplicationSoakTest, AllSchemesConvergeBitIdenticalAfterChaos) {
  const std::vector<std::string> schemes = labels::AllSchemeNames();
  ASSERT_FALSE(schemes.empty());
  for (const std::string& scheme : schemes) {
    SCOPED_TRACE(scheme);
    std::mt19937 rng(0xC0FFEE ^ std::hash<std::string>{}(scheme));
    Cluster cluster(scheme);
    const size_t r0 = cluster.AddReplica();
    const size_t r1 = cluster.AddReplica();

    int next_name = 0;
    std::uniform_int_distribution<int> coin(0, 99);
    for (int round = 0; round < 8; ++round) {
      for (int u = 0; u < 3; ++u) {
        cluster.Insert(Name("n", next_name++));
      }
      // Random chaos: kill / corrupt-and-restart / restart one replica.
      const size_t victim = coin(rng) % 2 == 0 ? r0 : r1;
      const int roll = coin(rng);
      if (cluster.ReplicaRunning(victim)) {
        if (roll < 40) {
          cluster.KillReplica(victim);
          if (roll < 20) cluster.CorruptStoppedReplica(victim, &rng);
        }
      } else if (roll < 70) {
        cluster.StartReplica(victim);
      }
    }
    // Strand replica 0 across at least two generation rolls, so its
    // handshake position falls off the retained images and catch-up must
    // ship a snapshot.
    if (cluster.ReplicaRunning(r0)) cluster.KillReplica(r0);
    for (int u = 0; u < 20; ++u) {
      cluster.Insert(Name("s", next_name++));
    }
    cluster.StartReplica(r0);
    if (!cluster.ReplicaRunning(r1)) cluster.StartReplica(r1);

    for (int u = 0; u < 3; ++u) {
      cluster.Insert(Name("t", next_name++));
    }

    // Quiesce: both replicas converge, bit-identical, zero lag.
    cluster.AwaitConverged(r0);
    cluster.AwaitConverged(r1);
    cluster.ExpectIdenticalToPrimary(r0);
    cluster.ExpectIdenticalToPrimary(r1);
    EXPECT_EQ(cluster.applier(r0)->status().lag_bytes, 0u);
    EXPECT_EQ(cluster.applier(r1)->status().lag_bytes, 0u);
    // The stranded restart really did go through a snapshot transfer.
    EXPECT_GE(cluster.applier(r0)->status().snapshots_installed, 1u)
        << "catch-up was expected to require a snapshot";
    EXPECT_GE(cluster.kills(), 1u);
  }
}

TEST(ReplicationSoakTest, ReadersDuringCatchUpSeeOnlyConsistentViews) {
  Cluster cluster("ordpath");
  // Build up history first, so the replica has real catching-up to do.
  for (int i = 0; i < 40; ++i) cluster.Insert(Name("pre", i));

  const size_t r = cluster.AddReplica();
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load()) {
        auto view = cluster.applier(r)->PinView();
        if (view == nullptr) continue;  // still bootstrapping
        // Epochs only move forward, and every view answers reads.
        EXPECT_GE(view->epoch(), last_epoch);
        last_epoch = view->epoch();
        auto nodes = view->Query(".");
        EXPECT_TRUE(nodes.ok());
        EXPECT_TRUE(view->SerializeXml().ok());
      }
    });
  }
  // Keep writing while the readers race the applier's publications.
  for (int i = 0; i < 20; ++i) cluster.Insert(Name("live", i));
  cluster.AwaitConverged(r);
  done.store(true);
  for (auto& t : readers) t.join();
  cluster.ExpectIdenticalToPrimary(r);
}

}  // namespace
}  // namespace xmlup::replication
