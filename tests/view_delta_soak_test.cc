// Differential soak for O(delta) view publication: a delta-publishing
// store and a twin forced through the full snapshot round-trip
// (force_snapshot_views) receive an identical update stream — inserts at
// label-stressing positions, value updates, deletes, and multi-request
// transactions that fail partway (exercising rollback and capture
// truncation). After every few acknowledged steps the two published
// views must be bit-identical: same serialized XML, same label bytes in
// document order, same query answers. Every scheme runs twice: once with
// budgets shrunk until relabels/overflows force the snapshot fallback
// constantly, once with roomy budgets so the delta path carries the run.
// Checkpoints roll every few records (arena compaction → lineage bumps),
// the pipeline audits every delta publication (crosscheck_every = 1),
// and reader threads race publication throughout. Under TSan this is the
// data-race proof for the two-stage write pipeline.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/concurrent_store.h"
#include "concurrency/update.h"
#include "labels/registry.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::concurrency {
namespace {

using store::MemFileSystem;

// LSDX and Com-D reproduce the documented Sans & Laurent collision (see
// lsdx_scheme_test.cc): under front insertions they assign duplicate
// labels, which the snapshot round-trip's uniqueness verification
// rejects at publish time while the delta path faithfully mirrors the
// live document. A differential run can therefore never agree for them;
// every other scheme must match bit for bit.
std::vector<std::string> SoakSchemeNames() {
  std::vector<std::string> names;
  for (const std::string& name : labels::AllSchemeNames()) {
    if (name == "lsdx" || name == "com-d") continue;
    names.push_back(name);
  }
  return names;
}

// Stops and joins the racing readers on every exit path — including the
// early returns ASSERT_* generates — so a soak failure reports cleanly
// instead of terminating in ~thread().
struct ReaderPool {
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  ~ReaderPool() {
    stop.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
  }
};

xml::Tree BaseTree() {
  auto tree = xml::ParseDocument(
      "<root><a>alpha</a><b>beta</b><c>gamma</c></root>");
  EXPECT_TRUE(tree.ok());
  return std::move(*tree);
}

std::vector<std::string> ViewLabels(const ReadView& view) {
  std::vector<std::string> out;
  const core::LabeledDocument& doc = view.document();
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

UpdateRequest Insert(UpdateRequest::Op op, std::string xpath,
                     std::string name, std::string value) {
  UpdateRequest request;
  request.op = op;
  request.xpath = std::move(xpath);
  request.kind = xml::NodeKind::kElement;
  request.name = std::move(name);
  request.value = std::move(value);
  return request;
}

// One deterministic transaction per step; the mix hits every DeltaOp
// kind, front insertions (the label-budget stressor), and — every 11th
// step — a transaction whose second request fails, so the first request
// must be rolled back out of the journal AND the delta capture.
std::vector<UpdateRequest> StepRequests(int step) {
  std::vector<UpdateRequest> requests;
  switch (step % 11) {
    case 0:
    case 1:
    case 2:
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "/a",
                                "n" + std::to_string(step),
                                std::to_string(step)));
      break;
    case 3:
      // Front sibling insertion: the worst case for gap-based budgets.
      requests.push_back(Insert(UpdateRequest::Op::kInsertBefore, "/b",
                                "f" + std::to_string(step), ""));
      break;
    case 4:
      requests.push_back(Insert(UpdateRequest::Op::kInsertAfter, "/a",
                                "g" + std::to_string(step), ""));
      break;
    case 5: {
      UpdateRequest request;
      request.op = UpdateRequest::Op::kSetValue;
      request.xpath = "/c";
      request.value = "v" + std::to_string(step);
      requests.push_back(request);
      break;
    }
    case 6: {
      // Delete a child inserted a few steps ago (step-6 hit case 0..2).
      UpdateRequest request;
      request.op = UpdateRequest::Op::kDelete;
      request.xpath = "/a/n" + std::to_string(step - 6);
      requests.push_back(request);
      break;
    }
    case 7:
      // Two inserts in one all-or-nothing transaction.
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "/b",
                                "p" + std::to_string(step), "x"));
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "/b",
                                "q" + std::to_string(step), "y"));
      break;
    case 8:
    case 9:
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "/c",
                                "m" + std::to_string(step), ""));
      break;
    case 10:
      // Applies an insert, then fails on an unparsable XPath: the whole
      // transaction rolls back on both stores.
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "/a",
                                "dead" + std::to_string(step), ""));
      requests.push_back(Insert(UpdateRequest::Op::kInsertChild, "///",
                                "never", ""));
      break;
  }
  return requests;
}

void ExpectViewsIdentical(const ReadView& delta_view,
                          const ReadView& snap_view, int step) {
  auto delta_xml = delta_view.SerializeXml();
  auto snap_xml = snap_view.SerializeXml();
  ASSERT_TRUE(delta_xml.ok() && snap_xml.ok());
  ASSERT_EQ(*delta_xml, *snap_xml) << "XML diverged at step " << step;
  ASSERT_EQ(ViewLabels(delta_view), ViewLabels(snap_view))
      << "labels diverged at step " << step;
  auto delta_hits = delta_view.Query("//a");
  auto snap_hits = snap_view.Query("//a");
  ASSERT_TRUE(delta_hits.ok() && snap_hits.ok());
  ASSERT_EQ(delta_hits->size(), snap_hits->size())
      << "query diverged at step " << step;
  for (size_t i = 0; i < delta_hits->size(); ++i) {
    ASSERT_EQ(delta_view.StringValue((*delta_hits)[i]),
              snap_view.StringValue((*snap_hits)[i]))
        << "string-value diverged at step " << step;
  }
}

void RunSoak(const std::string& scheme, const labels::SchemeOptions& budgets,
             int steps, ConcurrentStoreStats* delta_stats) {
  MemFileSystem delta_fs;
  ConcurrentStoreOptions delta_options;
  delta_options.store.fs = &delta_fs;
  delta_options.store.scheme_options = budgets;
  // Roll the journal constantly: every checkpoint compacts the arena and
  // bumps the delta lineage, invalidating every recycled view.
  delta_options.store.checkpoint.max_journal_records = 48;
  delta_options.max_batch = 8;
  delta_options.crosscheck_every = 1;  // audit every delta publication

  ConcurrentStoreOptions snap_options = delta_options;
  MemFileSystem snap_fs;
  snap_options.store.fs = &snap_fs;
  snap_options.force_snapshot_views = true;

  auto delta_st =
      ConcurrentStore::Create("db", BaseTree(), scheme, delta_options);
  ASSERT_TRUE(delta_st.ok()) << delta_st.status().ToString();
  auto snap_st =
      ConcurrentStore::Create("db", BaseTree(), scheme, snap_options);
  ASSERT_TRUE(snap_st.ok()) << snap_st.status().ToString();

  // Readers race publication on the delta store: pin, serialize, query.
  // They assert nothing — their job is to hold pins at awkward moments
  // (forcing the recycler down its miss paths) and, under TSan, to
  // witness every load the publication protocol performs.
  ReaderPool pool;
  for (int r = 0; r < 2; ++r) {
    pool.readers.emplace_back([&] {
      while (!pool.stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ReadView> view = (*delta_st)->PinView();
        auto xml = view->SerializeXml();
        auto hits = view->Query("//a");
        if (!xml.ok() || !hits.ok()) std::abort();
      }
    });
  }

  for (int step = 0; step < steps; ++step) {
    std::vector<UpdateRequest> requests = StepRequests(step);
    std::future<UpdateResult> delta_future =
        (*delta_st)->SubmitTransaction(requests);
    std::future<UpdateResult> snap_future =
        (*snap_st)->SubmitTransaction(std::move(requests));
    UpdateResult delta_result = delta_future.get();
    UpdateResult snap_result = snap_future.get();
    ASSERT_EQ(delta_result.status.ok(), snap_result.status.ok())
        << "step " << step << ": delta=" << delta_result.status.ToString()
        << " snap=" << snap_result.status.ToString();
    ASSERT_EQ(delta_result.matched, snap_result.matched) << "step " << step;
    if (step % 5 == 4) {
      std::shared_ptr<const ReadView> delta_view = (*delta_st)->PinView();
      std::shared_ptr<const ReadView> snap_view = (*snap_st)->PinView();
      ExpectViewsIdentical(*delta_view, *snap_view, step);
    }
  }

  std::shared_ptr<const ReadView> delta_view = (*delta_st)->PinView();
  std::shared_ptr<const ReadView> snap_view = (*snap_st)->PinView();
  ExpectViewsIdentical(*delta_view, *snap_view, steps);
  *delta_stats = (*delta_st)->stats();
}

class ViewDeltaSoakTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ViewDeltaSoakTest, MatchesSnapshotTwinWithRoomyBudgets) {
  // Default budgets: most batches delta-apply, so the run proves the
  // O(delta) fast path (and its every-publication cross-check audit)
  // reproduces the snapshot round-trip bit for bit.
  ConcurrentStoreStats stats;
  RunSoak(GetParam(), labels::SchemeOptions{}, 220, &stats);
  EXPECT_GT(stats.views_published, 0u);
  EXPECT_GE(stats.crosschecks, 1u);
  EXPECT_EQ(stats.crosscheck_failures, 0u);
}

TEST_P(ViewDeltaSoakTest, MatchesSnapshotTwinWithTightBudgets) {
  // Budgets shrunk until front insertions overflow/relabel constantly:
  // most batches are dirty, so the run soaks the snapshot-fallback rule
  // and the ring restarts around it.
  labels::SchemeOptions tight;
  tight.dln_max_components = 3;
  tight.ordpath_max_code_bits = 64;
  tight.prime_order_gap = 4;
  tight.prepost_gap = 8;
  ConcurrentStoreStats stats;
  RunSoak(GetParam(), tight, 220, &stats);
  EXPECT_GT(stats.views_published, 0u);
  EXPECT_GE(stats.crosschecks, 1u);
  EXPECT_EQ(stats.crosscheck_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ViewDeltaSoakTest,
                         ::testing::ValuesIn(SoakSchemeNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace xmlup::concurrency
