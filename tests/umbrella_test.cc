// The umbrella header must be self-contained and expose the whole public
// API; this test drives one end-to-end flow through it.

#include "xmlup.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, EndToEndFlow) {
  using namespace xmlup;
  auto tree = xml::ParseDocument("<a><b>x</b><c>y</c></a>");
  ASSERT_TRUE(tree.ok());
  auto scheme = labels::CreateScheme("cdqs");
  ASSERT_TRUE(scheme.ok());
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  // Update.
  auto node = doc->InsertNode(doc->tree().root(), xml::NodeKind::kElement,
                              "d", "",
                              doc->tree().Children(doc->tree().root())[1]);
  ASSERT_TRUE(node.ok());

  // Query.
  xpath::XPathEvaluator eval(&*doc, xpath::EvalMode::kLabels);
  auto result = eval.Query("//d/following-sibling::c");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);

  // Index.
  auto index = core::LabelIndex::Build(&*doc);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->Descendants(doc->tree().root()).size(),
            doc->tree().node_count() - 1);

  // Persist and restore.
  std::string snapshot = core::SaveSnapshot(*doc);
  std::unique_ptr<labels::LabelingScheme> restored_scheme;
  auto restored = core::LoadSnapshot(snapshot, &restored_scheme);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(xml::SerializeDocument(restored->tree()).value(),
            xml::SerializeDocument(doc->tree()).value());

  // Evaluate the scheme against the paper's framework.
  core::EvaluationFramework framework;
  auto eval_row = framework.Evaluate("cdqs");
  ASSERT_TRUE(eval_row.ok());
  EXPECT_EQ(eval_row->persistent.compliance, core::Compliance::kFull);
}

}  // namespace
