// Observability primitives: counter/gauge/histogram semantics, percentile
// approximation bounds, registry get-or-create and render determinism,
// and the trace ring's bounded-overwrite behaviour. Everything here uses
// local Registry/TraceRing instances, not the process globals, so the
// assertions are independent of what other code recorded.

#include "observability/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "observability/trace.h"

namespace xmlup {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;
using obs::TraceRing;
using obs::Unit;

// With the layer compiled out every cell is a stateless no-op; the tests
// below assert real behaviour, so they skip. DisabledBuildContract covers
// the no-op side.
#define SKIP_IF_DISABLED()                                       \
  if (!obs::kMetricsEnabled) {                                   \
    GTEST_SKIP() << "metrics compiled out (XMLUP_METRICS=OFF)"; \
  }

TEST(MetricsTest, CounterAccumulatesAndResets) {
  SKIP_IF_DISABLED();
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeSetAddReset) {
  SKIP_IF_DISABLED();
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, HistogramBucketIndexIsBitWidth) {
  SKIP_IF_DISABLED();
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), 64u);
}

TEST(MetricsTest, HistogramCountSumAndPercentileBounds) {
  SKIP_IF_DISABLED();
  Histogram h;
  // 90 values of 100 (bucket [64,127]) and 10 of 5000 (bucket
  // [4096,8191]): p50 must land in the low bucket, p99 in the high one.
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(5000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 100 + 10u * 5000);
  uint64_t p50 = h.ValueAtPercentile(50);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);
  uint64_t p99 = h.ValueAtPercentile(99);
  EXPECT_GE(p99, 4096u);
  EXPECT_LE(p99, 8191u);
  // Degenerate percentiles stay inside the recorded range's buckets.
  EXPECT_LE(h.ValueAtPercentile(0), 127u);
  EXPECT_LE(h.ValueAtPercentile(100), 8191u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
}

TEST(MetricsTest, HistogramZeroValuesLandInBucketZero) {
  SKIP_IF_DISABLED();
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
}

TEST(MetricsTest, ConcurrentCounterUpdatesAreExact) {
  SKIP_IF_DISABLED();
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  SKIP_IF_DISABLED();
  Registry reg;
  Counter* a = reg.GetCounter("a");
  Counter* b = reg.GetCounter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.GetCounter("a"), a);
  // Creating many more cells must not move the earlier ones.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("a"), a);
}

TEST(MetricsTest, RegistryKindCollisionYieldsDetachedCell) {
  SKIP_IF_DISABLED();
  Registry reg;
  Counter* c = reg.GetCounter("same");
  c->Add(3);
  Gauge* g = reg.GetGauge("same");  // wrong kind: detached dummy
  g->Set(99);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("same=3\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("99"), std::string::npos) << text;
}

TEST(MetricsTest, RenderTextIsSortedAndDeterministic) {
  SKIP_IF_DISABLED();
  Registry reg;
  reg.GetCounter("z.last")->Add(2);
  reg.GetCounter("a.first")->Add(1);
  reg.GetGauge("m.middle")->Set(-5);
  std::string text = reg.RenderText();
  EXPECT_EQ(text, "a.first=1\nm.middle=-5\nz.last=2\n");
  EXPECT_EQ(reg.RenderText(), text);
}

TEST(MetricsTest, NanosHistogramHidesValuesUnlessTimingRequested) {
  SKIP_IF_DISABLED();
  Registry reg;
  Histogram* wall = reg.GetHistogram("lat_ns", Unit::kNanos);
  wall->Record(12345);  // a wall-clock-ish, non-reproducible value
  Histogram* sizes = reg.GetHistogram("batch", Unit::kCount);
  sizes->Record(4);

  std::string text = reg.RenderText(/*include_timing=*/false);
  EXPECT_NE(text.find("lat_ns.count=1\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("lat_ns.sum"), std::string::npos) << text;
  EXPECT_EQ(text.find("lat_ns.p50"), std::string::npos) << text;
  // Value histograms are deterministic and always render fully.
  EXPECT_NE(text.find("batch.count=1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("batch.sum=4\n"), std::string::npos) << text;

  std::string timed = reg.RenderText(/*include_timing=*/true);
  EXPECT_NE(timed.find("lat_ns.sum=12345\n"), std::string::npos) << timed;
  EXPECT_NE(timed.find("lat_ns.p50="), std::string::npos) << timed;
}

TEST(MetricsTest, RenderJsonShape) {
  SKIP_IF_DISABLED();
  Registry reg;
  reg.GetCounter("c")->Add(7);
  reg.GetGauge("g")->Set(-1);
  reg.GetHistogram("h", Unit::kCount)->Record(3);
  std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_NE(json.find("\"c\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\": -1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\": {\"count\": 1"), std::string::npos) << json;
  EXPECT_EQ(reg.RenderJson(), json);
}

TEST(MetricsTest, RegistryResetZeroesButKeepsRegistrations) {
  SKIP_IF_DISABLED();
  Registry reg;
  Counter* c = reg.GetCounter("kept");
  c->Add(5);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("kept"), c);
  EXPECT_NE(reg.RenderText().find("kept=0\n"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerRecordsElapsed) {
  SKIP_IF_DISABLED();
  Histogram h;
  { XMLUP_SCOPED_TIMER(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceTest, RingKeepsMostRecentSpansOldestFirst) {
  SKIP_IF_DISABLED();
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record("span", /*start_ns=*/i, /*dur_ns=*/i * 10);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.capacity(), 4u);
  std::vector<obs::Span> spans = ring.Spans();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 6u + i);  // oldest retained first
    EXPECT_EQ(spans[i].dur_ns, (6u + i) * 10);
  }
  ring.Reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Spans().empty());
}

TEST(TraceTest, RenderTextOmitsWallClockStart) {
  SKIP_IF_DISABLED();
  TraceRing ring(8);
  ring.Record("alpha", /*start_ns=*/123456789, /*dur_ns=*/5);
  std::string text = ring.RenderText();
  EXPECT_NE(text.find("alpha"), std::string::npos) << text;
  EXPECT_NE(text.find("dur_ns=5"), std::string::npos) << text;
  EXPECT_EQ(text.find("123456789"), std::string::npos) << text;
}

TEST(MetricsTest, DisabledBuildContract) {
  if (obs::kMetricsEnabled) {
    GTEST_SKIP() << "covers the XMLUP_METRICS=OFF build only";
  }
  // The whole layer is inert: cells read zero whatever was recorded, and
  // renders are empty — but every call site still compiles and runs.
  Registry reg;
  Counter* c = reg.GetCounter("x");
  c->Add(100);
  EXPECT_EQ(c->value(), 0u);
  Histogram* h = reg.GetHistogram("y");
  h->Record(5);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.RenderText(), "");
  TraceRing ring(4);
  ring.Record("s", 0, 1);
  EXPECT_EQ(ring.recorded(), 0u);
}

}  // namespace
}  // namespace xmlup
