// Failover chaos soak: two TCP shards, each with two sync-replicated
// replica corpora, fronted by a router whose FailoverMonitor watches the
// primaries. A seeded workload with op-boundary retries hammers the
// router while shard 0's primary is killed mid-stream. The suite proves
// the promotion guarantees end to end: zero acknowledged-write loss
// (every acked insert is present, bit-for-bit, on the promoted replica),
// the furthest-ahead replica won the election, the router repointed
// traffic without a single client-visible error, and the restarted old
// primary is demoted back to a replica that reconverges bit-identically.
// Metrics reconcile: cluster.failovers / cluster.promotions /
// cluster.demotions count exactly this one incident. Runs under TSan in
// CI (suite name carries "FailoverSoak").

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/failover.h"
#include "cluster/router.h"
#include "cluster/sharded_service.h"
#include "concurrency/server.h"
#include "observability/metrics.h"
#include "replication/fence.h"
#include "replication/protocol.h"
#include "workload/engine/engine.h"
#include "workload/engine/spec.h"

namespace xmlup::cluster {
namespace {

constexpr int kShards = 2;
constexpr int kReplicasPerShard = 2;
constexpr int kDocsPerShard = 2;
constexpr int kVictimShard = 0;

// Inserts uniquely named elements (thread × op, so every acked line
// names a distinct element) across all documents; reads ride along so
// the replica-facing failover path sees queries too.
constexpr char kChaosSpec[] = R"(workload failover-chaos
var docs = placeholder

node loop for-n
  count 1000000
  do pick
  next finish

node pick random-choice
  choice 70 ins
  choice 30 read

node ins edit
  doc ${choice:docs}
  script -s . -t elem -n a${thread}x${op}e
  next end

node read query
  doc ${choice:docs}
  xpath //a${thread}x${rand:50}e
  next end
)";

class TempDir {
 public:
  TempDir() {
    char dir_template[] = "/tmp/xmlup_fosoak_XXXXXX";
    EXPECT_NE(::mkdtemp(dir_template), nullptr);
    path_ = dir_template;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Picks a port by binding an ephemeral loopback socket and releasing
// it. The tiny claim-it-back race is acceptable for a test, and the
// restart half of the suite needs a port known before the child binds.
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// A primary corpus as a real `xmlup serve --corpus --sync-repl` child
// process, so killing it with SIGKILL is a genuine crash: the ack path
// and the replication ship die in the same instant (bytes already
// written to a replica socket are still flushed by the kernel — which
// is exactly the sync-replication guarantee the suite leans on).
// Restartable over the same directory and port.
struct ChildPrimary {
  std::unique_ptr<TempDir> dir = std::make_unique<TempDir>();
  uint16_t port = 0;
  pid_t pid = -1;

  std::string spec() const { return "tcp:127.0.0.1:" + std::to_string(port); }

  void Start() {
    if (port == 0) port = FreePort();
    const std::string tcp = "127.0.0.1:" + std::to_string(port);
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::execl(XMLUP_BINARY_PATH, "xmlup", "serve", dir->path().c_str(),
              "--corpus", "--tcp", tcp.c_str(), "--sync-repl",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    for (int i = 0; i < 10000; ++i) {
      if (concurrency::EndpointRequest(spec(), {"--ping"}).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "child primary on " << spec() << " never answered --ping";
  }

  void Kill9() {
    ASSERT_GT(pid, 0);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

// One corpus service over TCP — primary or replica depending on its
// options — restartable on its original port over its original dir.
struct Node {
  std::unique_ptr<TempDir> dir = std::make_unique<TempDir>();
  ShardedServiceOptions options;
  std::unique_ptr<ShardedService> service;
  std::unique_ptr<concurrency::Listener> listener;
  std::thread thread;
  uint16_t port = 0;

  std::string spec() const { return "tcp:127.0.0.1:" + std::to_string(port); }

  void Start() {
    auto opened = ShardedService::Open(dir->path(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    service = std::move(*opened);
    listener = std::make_unique<concurrency::Listener>(service.get());
    listener->set_drain_deadline_ms(200);
    const uint16_t bind_port = port;
    concurrency::Listener* raw = listener.get();
    thread = std::thread([raw, bind_port] {
      common::Status served = raw->ServeTcp("127.0.0.1", bind_port);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
    for (int i = 0; i < 5000 && listener->bound_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(listener->bound_port(), 0) << "listener never bound";
    port = listener->bound_port();
  }

  void Kill() {
    listener->Shutdown();
    thread.join();
    service->Stop();
    service.reset();
    listener.reset();
  }
};

struct DocSnapshot {
  store::CommitPoint position;
  bool primary_role = false;
};

// cluster-hello → per-document position + role, or empty on transport
// failure / malformed fields.
std::map<std::string, DocSnapshot> HelloDocs(const std::string& endpoint) {
  std::map<std::string, DocSnapshot> out;
  auto reply = concurrency::EndpointRequest(endpoint, {kClusterHelloVerb});
  if (!reply.ok() || reply->empty() || (*reply)[0] != "ok") return out;
  for (const std::string& field : *reply) {
    const size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    if (field.rfind("doc.", 0) == 0) {
      const std::string key = field.substr(4, eq - 4);
      uint64_t numbers[4] = {0, 0, 0, 0};
      size_t start = eq + 1;
      bool valid = true;
      for (int n = 0; n < 4 && valid; ++n) {
        size_t colon = field.find(':', start);
        if (colon == std::string::npos) colon = field.size();
        valid = replication::ParseU64(field.substr(start, colon - start),
                                      &numbers[n]);
        start = colon + 1;
      }
      if (!valid) continue;
      out[key].position =
          store::CommitPoint{numbers[0], numbers[2], numbers[1]};
    } else if (field.rfind("docrole.", 0) == 0) {
      out[field.substr(8, eq - 8)].primary_role =
          field.substr(eq + 1) == "primary";
    }
  }
  return out;
}

class FailoverSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::GlobalMetrics().Reset();

    // Keys that hash onto each shard under the router's placement.
    HashRouter placement(kShards);
    std::vector<int> assigned(kShards, 0);
    for (int i = 0; static_cast<int>(keys_.size()) < kShards * kDocsPerShard;
         ++i) {
      ASSERT_LT(i, 10000);
      std::string key = "fo" + std::to_string(i);
      const size_t shard = placement.ShardFor(key);
      if (assigned[shard] == kDocsPerShard) continue;
      ++assigned[shard];
      shard_keys_[shard].push_back(key);
      keys_.push_back(std::move(key));
    }

    // Primaries first (child processes with sync replication: commits
    // ship to every connected replica before they are acknowledged),
    // documents created before any replica opens so the upstream hello
    // advertises them.
    primaries_.resize(kShards);
    for (int s = 0; s < kShards; ++s) {
      primaries_[s].Start();
      ASSERT_FALSE(HasFatalFailure());
      for (const std::string& key : shard_keys_[s]) {
        auto created = concurrency::EndpointRequest(
            primaries_[s].spec(), {"--doc", key, "--create", "ordpath"});
        ASSERT_TRUE(created.ok()) << created.status().ToString();
        ASSERT_EQ((*created)[0], "ok") << (*created)[1];
      }
    }

    replicas_.resize(kShards);
    for (int s = 0; s < kShards; ++s) {
      replicas_[s].resize(kReplicasPerShard);
      for (auto& replica : replicas_[s]) {
        replica.options.replicate_from = primaries_[s].spec();
        replica.options.sync_replication = true;  // applies once promoted
        replica.Start();
        ASSERT_FALSE(HasFatalFailure());
      }
    }
    for (int s = 0; s < kShards; ++s) {
      for (auto& replica : replicas_[s]) {
        ASSERT_TRUE(WaitCaughtUp(replica.spec(), primaries_[s].spec(),
                                 shard_keys_[s]))
            << "replica of shard " << s << " never caught up";
      }
    }

    // Router + failover monitor over a Unix socket.
    char dir_template[] = "/tmp/xmlup_fosoak_rt_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    router_dir_ = dir_template;
    router_socket_ = router_dir_ + "/r";
    std::vector<ShardAddress> addresses;
    std::vector<ShardTopology> topology(kShards);
    for (int s = 0; s < kShards; ++s) {
      addresses.push_back(ShardAddress{primaries_[s].spec()});
      topology[s].primary = primaries_[s].spec();
      for (auto& replica : replicas_[s]) {
        topology[s].replicas.push_back(replica.spec());
      }
    }
    coordinator_ = std::make_unique<Coordinator>(
        std::move(addresses), std::make_unique<HashRouter>(kShards));
    FailoverOptions failover_options;
    failover_options.sweep_interval_ms = 25;
    failover_options.failure_threshold = 2;
    monitor_ = std::make_unique<FailoverMonitor>(
        coordinator_.get(), std::move(topology), failover_options);
    coordinator_->SetExtraStatus(
        [raw = monitor_.get()] { return raw->StatusFields(); });
    router_listener_ =
        std::make_unique<concurrency::Listener>(coordinator_.get());
    router_listener_->set_drain_deadline_ms(200);
    router_thread_ = std::thread([this] {
      common::Status served =
          router_listener_->ServeUnixSocket(router_socket_);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
    for (int i = 0; i < 5000; ++i) {
      if (concurrency::UnixSocketRequest(router_socket_, {"--ping"}).ok()) {
        monitor_->Start();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "router socket never came up";
  }

  void TearDown() override {
    if (monitor_ != nullptr) monitor_->Stop();
    if (router_listener_ != nullptr) {
      router_listener_->Shutdown();
      router_thread_.join();
    }
    monitor_.reset();
    coordinator_.reset();
    for (auto& shard_replicas : replicas_) {
      for (auto& replica : shard_replicas) {
        if (replica.service != nullptr) replica.Kill();
      }
    }
    for (auto& primary : primaries_) {
      if (primary.pid > 0) primary.Kill9();
    }
    ::rmdir(router_dir_.c_str());
  }

  // Polls until `endpoint` reports the same commit position as
  // `upstream` for every key in `keys`.
  bool WaitCaughtUp(const std::string& endpoint, const std::string& upstream,
                    const std::vector<std::string>& keys) {
    for (int i = 0; i < 10000; ++i) {
      const std::map<std::string, DocSnapshot> want = HelloDocs(upstream);
      const std::map<std::string, DocSnapshot> got = HelloDocs(endpoint);
      bool all = true;
      for (const std::string& key : keys) {
        auto w = want.find(key);
        auto g = got.find(key);
        all = all && w != want.end() && g != got.end() &&
              w->second.position == g->second.position;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  std::vector<std::string> Route(const std::vector<std::string>& request) {
    auto reply = concurrency::UnixSocketRequest(router_socket_, request);
    if (!reply.ok()) return {};
    return *reply;
  }

  std::map<std::string, uint64_t> RouterStats() {
    std::map<std::string, uint64_t> out;
    auto reply = Route({"--stats"});
    EXPECT_GE(reply.size(), 2u);
    for (size_t i = 1; i < reply.size(); ++i) {
      const size_t eq = reply[i].find('=');
      if (eq == std::string::npos) continue;
      out[reply[i].substr(0, eq)] = std::stoull(reply[i].substr(eq + 1));
    }
    return out;
  }

  // Fetches one document's XML through the router; fails the test on a
  // non-ok reply.
  std::string RoutedXml(const std::string& key) {
    auto reply = Route({"--doc", key, "--xml"});
    EXPECT_GE(reply.size(), 2u);
    if (reply.size() < 2 || reply[0] != "ok") {
      ADD_FAILURE() << "--xml for " << key << " failed: "
                    << (reply.size() > 1 ? reply[1] : "<transport>");
      return {};
    }
    return reply[1];
  }

  std::vector<std::string> keys_;
  std::map<int, std::vector<std::string>> shard_keys_;
  std::vector<ChildPrimary> primaries_;
  std::vector<std::vector<Node>> replicas_;
  std::string router_dir_;
  std::string router_socket_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<FailoverMonitor> monitor_;
  std::unique_ptr<concurrency::Listener> router_listener_;
  std::thread router_thread_;
};

TEST_F(FailoverSoak, PromotionPreservesEveryAckedWriteAndDemotesRejoiner) {
  auto spec = workload::ParseWorkloadSpec(kChaosSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  std::string docs_csv;
  for (const std::string& key : keys_) {
    if (!docs_csv.empty()) docs_csv += ',';
    docs_csv += key;
  }
  workload::EngineOptions engine;
  engine.target = router_socket_;
  engine.threads = 3;
  engine.seed = 42;
  engine.duration_ms = 1500;
  engine.collect_acks = true;
  engine.op_attempts = 100;
  engine.retry_backoff_initial_ms = 5;
  engine.retry_backoff_max_ms = 50;
  engine.retry_routed_errors = true;
  engine.overrides = {{"docs", docs_csv}};

  // The chaos: clients stream through the router while the victim
  // shard's primary dies mid-run. Every op either lands or retries into
  // the promoted replica — the run itself must see zero errors.
  common::Result<workload::WorkloadReport> report =
      common::Status::Internal("workload never ran");
  std::thread driver([&] { report = workload::RunWorkload(*spec, engine); });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  primaries_[kVictimShard].Kill9();
  driver.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors_total, 0u)
      << "a client saw a non-ok reply the retry budget should have hidden";
  EXPECT_GT(report->retries_total, 0u)
      << "the outage window was never observed (kill timing too late?)";
  EXPECT_GT(report->ops_total, 0u);

  // The election: one record per victim document, each won by the
  // furthest-ahead reachable replica.
  const std::vector<ElectionRecord> elections = monitor_->history();
  ASSERT_EQ(elections.size(), static_cast<size_t>(kDocsPerShard));
  std::set<std::string> replica_specs;
  for (const auto& replica : replicas_[kVictimShard]) {
    replica_specs.insert(replica.spec());
  }
  std::set<std::string> promoted_keys;
  for (const ElectionRecord& record : elections) {
    promoted_keys.insert(record.key);
    EXPECT_EQ(replica_specs.count(record.winner), 1u) << record.winner;
    for (const PromotionCandidate& candidate : record.candidates) {
      if (!candidate.reachable || !candidate.has_document) continue;
      EXPECT_FALSE(replication::CommitPointLess(record.winner_position,
                                                candidate.position))
          << record.key << ": " << candidate.replica_id
          << " was ahead of the elected " << record.winner;
    }
  }
  std::set<std::string> victim_keys(shard_keys_[kVictimShard].begin(),
                                    shard_keys_[kVictimShard].end());
  EXPECT_EQ(promoted_keys, victim_keys);

  // The ledger: every acked insert must be present in the authoritative
  // XML the router now serves — for victim keys that is the promoted
  // replica. Retries may duplicate an element; absence is the bug.
  std::map<std::string, std::vector<std::string>> names_by_doc;
  uint64_t acked_inserts = 0;
  for (const auto& thread_lines : report->acked) {
    for (const std::string& line : thread_lines) {
      if (line.rfind("ins ", 0) != 0) continue;
      const size_t doc_at = line.find("doc=");
      ASSERT_NE(doc_at, std::string::npos) << line;
      const size_t doc_end = line.find(' ', doc_at);
      const size_t name_at = line.rfind(' ');
      names_by_doc[line.substr(doc_at + 4, doc_end - doc_at - 4)].push_back(
          line.substr(name_at + 1));
      ++acked_inserts;
    }
  }
  EXPECT_GT(acked_inserts, 0u);
  for (const auto& [key, names] : names_by_doc) {
    const std::string xml = RoutedXml(key);
    ASSERT_FALSE(xml.empty());
    for (const std::string& name : names) {
      EXPECT_NE(xml.find("<" + name + "/"), std::string::npos)
          << "acked insert " << name << " lost from " << key
          << " across the failover";
    }
  }

  if (obs::kMetricsEnabled) {
    const std::map<std::string, uint64_t> stats = RouterStats();
    EXPECT_EQ(stats.at("cluster.failovers"), 1u);
    EXPECT_EQ(stats.at("cluster.promotions"),
              static_cast<uint64_t>(kDocsPerShard));
    EXPECT_EQ(stats.at("cluster.repoints"),
              static_cast<uint64_t>(kDocsPerShard));
    EXPECT_EQ(stats.at("workload.retries"), report->retries_total);
  }

  // The rejoin: the old primary restarts on its port still claiming its
  // documents with a pre-failover fence; the monitor must demote it to a
  // replica of each winner.
  primaries_[kVictimShard].Start();
  ASSERT_FALSE(HasFatalFailure());
  const std::string old_primary = primaries_[kVictimShard].spec();
  bool demoted = false;
  for (int i = 0; i < 10000 && !demoted; ++i) {
    const std::map<std::string, DocSnapshot> docs = HelloDocs(old_primary);
    demoted = docs.size() >= victim_keys.size();
    for (const std::string& key : victim_keys) {
      auto it = docs.find(key);
      demoted = demoted && it != docs.end() && !it->second.primary_role;
    }
    if (!demoted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(demoted) << "rejoined old primary was never demoted";

  // Convergence: once caught up to each winner, the demoted replica's
  // XML is bit-identical to the promoted primary's.
  for (const ElectionRecord& record : elections) {
    ASSERT_TRUE(WaitCaughtUp(old_primary, record.winner, {record.key}))
        << "demoted replica never converged on " << record.key;
    auto winner_xml = concurrency::EndpointRequest(
        record.winner, {"--doc", record.key, "--xml"});
    auto rejoined_xml = concurrency::EndpointRequest(
        old_primary, {"--doc", record.key, "--xml"});
    ASSERT_TRUE(winner_xml.ok() && rejoined_xml.ok());
    ASSERT_EQ((*winner_xml)[0], "ok") << (*winner_xml)[1];
    ASSERT_EQ((*rejoined_xml)[0], "ok") << (*rejoined_xml)[1];
    EXPECT_EQ((*winner_xml)[1], (*rejoined_xml)[1])
        << record.key << " diverged between winner and rejoined replica";
  }

  if (obs::kMetricsEnabled) {
    EXPECT_EQ(RouterStats().at("cluster.demotions"),
              static_cast<uint64_t>(kDocsPerShard));
  }

  // And the monitor's published view agrees with what happened.
  auto status = Route({"--cluster-status"});
  ASSERT_GE(status.size(), 1u);
  ASSERT_EQ(status[0], "ok");
  int promoted_fields = 0;
  for (const std::string& field : status) {
    if (field.rfind("failover.promoted.", 0) == 0) ++promoted_fields;
  }
  EXPECT_EQ(promoted_fields, kDocsPerShard);
}

}  // namespace
}  // namespace xmlup::cluster
