#include <gtest/gtest.h>

#include <string>

#include "core/label_index.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;

class LabelIndexTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto scheme = labels::CreateScheme(GetParam());
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::move(*scheme);
    workload::DocumentShape shape;
    shape.target_nodes = 200;
    shape.seed = 71;
    auto tree = workload::GenerateDocument(shape);
    ASSERT_TRUE(tree.ok());
    auto doc = LabeledDocument::Build(std::move(*tree), scheme_.get());
    ASSERT_TRUE(doc.ok());
    doc_.emplace(std::move(*doc));
  }

  std::unique_ptr<labels::LabelingScheme> scheme_;
  std::optional<LabeledDocument> doc_;
};

TEST_P(LabelIndexTest, BuildVerifiesAndOrders) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->size(), doc_->tree().node_count());
  EXPECT_EQ(index->ordered_nodes(), doc_->tree().PreorderNodes());
}

TEST_P(LabelIndexTest, LookupAndRank) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok());
  std::vector<NodeId> order = doc_->tree().PreorderNodes();
  for (size_t i = 0; i < order.size(); i += 13) {
    EXPECT_EQ(index->Lookup(doc_->label(order[i])), order[i]);
    EXPECT_EQ(index->Rank(doc_->label(order[i])), i);
  }
  // A valid label that is no longer present (its node was removed) must
  // not be found.
  NodeId victim = doc_->tree().last_child(doc_->tree().root());
  labels::Label absent = doc_->label(victim);
  ASSERT_TRUE(doc_->RemoveSubtree(victim).ok());
  ASSERT_TRUE(index->Refresh().ok());
  EXPECT_EQ(index->Lookup(absent), xml::kInvalidNode);
}

TEST_P(LabelIndexTest, DescendantRangeScanMatchesGroundTruth) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok());
  for (NodeId n : doc_->tree().PreorderNodes()) {
    std::vector<NodeId> expected;
    for (NodeId m : doc_->tree().PreorderNodes()) {
      if (doc_->tree().IsAncestor(n, m)) expected.push_back(m);
    }
    EXPECT_EQ(index->Descendants(n), expected) << "node " << n;
  }
}

TEST_P(LabelIndexTest, RangeQueries) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok());
  std::vector<NodeId> order = doc_->tree().PreorderNodes();
  // Everything strictly between the 3rd and 10th node.
  auto range = index->Range(doc_->label(order[3]), doc_->label(order[10]));
  std::vector<NodeId> expected(order.begin() + 4, order.begin() + 10);
  EXPECT_EQ(range, expected);
  // Open bounds.
  EXPECT_EQ(index->Range(labels::Label(), labels::Label()), order);
  auto tail = index->Range(doc_->label(order[order.size() - 3]),
                           labels::Label());
  EXPECT_EQ(tail.size(), 2u);
}

TEST_P(LabelIndexTest, IncrementalInsertKeepsConsistency) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok());
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 9);
  for (int i = 0; i < 40; ++i) {
    auto pos = planner.Next(doc_->tree());
    ASSERT_TRUE(pos.ok());
    UpdateStats stats;
    auto node = doc_->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                 pos->before, &stats);
    ASSERT_TRUE(node.ok());
    if (stats.relabeled > 0) {
      ASSERT_TRUE(index->Refresh().ok());
    } else {
      index->Insert(*node);
    }
  }
  EXPECT_TRUE(index->Verify().ok()) << index->Verify().message();
}

TEST_P(LabelIndexTest, EraseSubtreeKeepsConsistency) {
  auto index = LabelIndex::Build(&*doc_);
  ASSERT_TRUE(index.ok());
  NodeId victim = doc_->tree().Children(doc_->tree().root())[0];
  ASSERT_TRUE(doc_->RemoveSubtree(victim).ok());
  index->EraseSubtree(victim);
  EXPECT_TRUE(index->Verify().ok()) << index->Verify().message();
  EXPECT_EQ(index->size(), doc_->tree().node_count());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LabelIndexTest,
    ::testing::Values("xpath-accelerator", "dewey", "qed", "vector", "dde",
                      "dietz-om"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xmlup::core
