// MemFileSystem fault-injection coverage for TruncateFile: like every
// other metadata mutation, a shrink is visible to the running process at
// once but durable only after a successful fsync of the *file* — and
// Crash(mask) can model the kernel writing it back (or not) regardless
// of what fsync reported.

#include <string>

#include "gtest/gtest.h"
#include "store/file.h"

namespace xmlup::store {
namespace {

TEST(MemFsTruncateTest, SuccessfulTruncateIsDurable) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123456789");
  ASSERT_TRUE(fs.TruncateFile("d/f", 4).ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);  // its fsync committed it

  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/f"), "0123");
}

TEST(MemFsTruncateTest, TruncateToLargerSizeIsANoOp) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123");
  ASSERT_TRUE(fs.TruncateFile("d/f", 100).ok());
  EXPECT_EQ(*fs.GetFile("d/f"), "0123");
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);
  EXPECT_FALSE(fs.TruncateFile("d/missing", 0).ok());
}

TEST(MemFsTruncateTest, TruncateWithFailedSyncIsLostOnCrash) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123456789");
  fs.FailNextSyncs(1);
  EXPECT_FALSE(fs.TruncateFile("d/f", 4).ok());
  // The process still observes its own ftruncate...
  EXPECT_EQ(*fs.GetFile("d/f"), "0123");
  EXPECT_EQ(fs.pending_metadata_ops(), 1u);

  // ...but the kernel never wrote the new length back: the old tail is
  // still on disk.
  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/f"), "0123456789");
}

TEST(MemFsTruncateTest, CrashMaskCanMakeUnsyncedTruncateDurable) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123456789");
  fs.FailNextSyncs(1);
  EXPECT_FALSE(fs.TruncateFile("d/f", 4).ok());

  // fsync failed, but the kernel may flush dirty metadata anyway.
  fs.Crash(0b1);
  EXPECT_EQ(*fs.GetFile("d/f"), "0123");
}

TEST(MemFsTruncateTest, FileSyncCommitsAPendingTruncate) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123456789");
  fs.FailNextSyncs(1);
  EXPECT_FALSE(fs.TruncateFile("d/f", 4).ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 1u);

  // A later successful fsync of the same file flushes the ftruncate too.
  auto file = fs.OpenWritable("d/f", FileSystem::WriteMode::kAppend);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 0u);

  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/f"), "0123");
}

TEST(MemFsTruncateTest, SyncDirDoesNotCommitAPendingTruncate) {
  MemFileSystem fs;
  fs.SetFile("d/f", "0123456789");
  fs.FailNextSyncs(1);
  EXPECT_FALSE(fs.TruncateFile("d/f", 4).ok());

  // Directory fsync orders directory entries, not file lengths.
  ASSERT_TRUE(fs.SyncDir("d").ok());
  EXPECT_EQ(fs.pending_metadata_ops(), 1u);

  fs.Crash();
  EXPECT_EQ(*fs.GetFile("d/f"), "0123456789");
}

TEST(MemFsTruncateTest, StackedTruncatesRestoreConsistently) {
  // Two unsynced shrinks of the same file: 10 -> 6 (bit 0), 6 -> 3
  // (bit 1). Whatever subset the crash writes back, the surviving file
  // must be a prefix the disk could actually have held.
  auto setup = [](MemFileSystem* fs) {
    fs->SetFile("d/f", "0123456789");
    fs->FailNextSyncs(2);
    EXPECT_FALSE(fs->TruncateFile("d/f", 6).ok());
    EXPECT_FALSE(fs->TruncateFile("d/f", 3).ok());
    EXPECT_EQ(*fs->GetFile("d/f"), "012");
    EXPECT_EQ(fs->pending_metadata_ops(), 2u);
  };
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b00);  // neither: the original survives
    EXPECT_EQ(*fs.GetFile("d/f"), "0123456789");
  }
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b01);  // only the first: disk saw length 6
    EXPECT_EQ(*fs.GetFile("d/f"), "012345");
  }
  {
    MemFileSystem fs;
    setup(&fs);
    // Only the second: the disk length went straight to 3, so the first
    // truncate's tail has nothing to attach to.
    fs.Crash(0b10);
    EXPECT_EQ(*fs.GetFile("d/f"), "012");
  }
  {
    MemFileSystem fs;
    setup(&fs);
    fs.Crash(0b11);  // both
    EXPECT_EQ(*fs.GetFile("d/f"), "012");
  }
}

TEST(MemFsTruncateTest, TruncateOfAPendingCreationVanishesWithIt) {
  MemFileSystem fs;
  auto file = fs.OpenWritable("d/f", FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  fs.FailNextSyncs(1);
  EXPECT_FALSE(fs.TruncateFile("d/f", 4).ok());

  // Neither the creation nor the truncate hit disk: no file at all, and
  // no tail resurrected onto a ghost.
  fs.Crash();
  EXPECT_FALSE(fs.FileExists("d/f"));
}

}  // namespace
}  // namespace xmlup::store
