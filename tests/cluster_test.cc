// Cluster subsystem tests: routing policy units (hash and longest-prefix
// placement, shard-list and prefix-rule parsing, document-key
// validation), the ShardedService corpus contract (create / dispatch /
// rediscovery on restart), and an end-to-end pass routing a seeded
// workload across four TCP shards — every document's final XML must be
// bit-identical to a standalone single-document store replaying that
// key's subsequence. Plus the failure half: killing one shard degrades
// exactly the keys it owns, and a restart on the same port recovers
// them. A replica can subscribe to one document of a corpus shard over
// TCP with a --doc hello prefix.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "cluster/sharded_service.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "replication/applier.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::cluster {
namespace {

using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

// --- Routing policy ------------------------------------------------------

TEST(HashRouterTest, IsDeterministicAndCoversEveryShard) {
  HashRouter router(4);
  EXPECT_EQ(router.shard_count(), 4u);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    const std::string key = "doc" + std::to_string(i);
    const size_t shard = router.ShardFor(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(router.ShardFor(key), shard);  // stable
    ++hits[shard];
  }
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 0) << "shard " << shard << " never chosen";
  }
  // Placement is a pure function of (key, shard_count): a second router
  // with the same count agrees on every key.
  HashRouter again(4);
  for (int i = 0; i < 32; ++i) {
    const std::string key = "doc" + std::to_string(i);
    EXPECT_EQ(again.ShardFor(key), router.ShardFor(key));
  }
}

TEST(PrefixRouterTest, LongestPrefixWinsAndUnmatchedKeysHash) {
  PrefixRouter router({{"tenantA/", 2}, {"tenantA/hot", 0}, {"b", 1}}, 4);
  EXPECT_EQ(router.ShardFor("tenantA/doc1"), 2u);
  EXPECT_EQ(router.ShardFor("tenantA/hot17"), 0u);  // longer rule wins
  EXPECT_EQ(router.ShardFor("bills"), 1u);
  HashRouter fallback(4);
  EXPECT_EQ(router.ShardFor("unruled"), fallback.ShardFor("unruled"));
}

TEST(PrefixRouterTest, ParsePrefixRulesRejectsMalformedRules) {
  ASSERT_TRUE(ParsePrefixRules("a=0,b=1", 2).ok());
  EXPECT_FALSE(ParsePrefixRules("=0", 2).ok());        // empty prefix
  EXPECT_FALSE(ParsePrefixRules("a", 2).ok());         // no '='
  EXPECT_FALSE(ParsePrefixRules("a=x", 2).ok());       // non-numeric shard
  EXPECT_FALSE(ParsePrefixRules("a=2", 2).ok());       // index >= count
  EXPECT_FALSE(ParsePrefixRules("a=0,,b=1", 2).ok());  // empty element
}

TEST(ParseShardListTest, NormalisesAndValidates) {
  auto shards = ParseShardList("127.0.0.1:7001,tcp:10.0.0.1:7002,/tmp/s");
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ASSERT_EQ(shards->size(), 3u);
  EXPECT_EQ((*shards)[0].spec, "tcp:127.0.0.1:7001");  // bare HOST:PORT
  EXPECT_EQ((*shards)[1].spec, "tcp:10.0.0.1:7002");
  EXPECT_EQ((*shards)[2].spec, "/tmp/s");  // a Unix path, taken as given

  EXPECT_FALSE(ParseShardList("").ok());
  EXPECT_FALSE(ParseShardList("host:1,,host:2").ok());
  EXPECT_FALSE(ParseShardList("tcp:host:0").ok());     // port 0
  EXPECT_FALSE(ParseShardList("tcp:host:abc").ok());   // non-numeric
  EXPECT_FALSE(ParseShardList("tcp:host").ok());       // missing port
}

TEST(ValidDocumentKeyTest, KeysAreDirectoryNamesSoTheRulesAreStrict) {
  EXPECT_TRUE(ValidDocumentKey("orders"));
  EXPECT_TRUE(ValidDocumentKey("tenant-a_2026.08"));
  EXPECT_FALSE(ValidDocumentKey(""));
  EXPECT_FALSE(ValidDocumentKey("."));
  EXPECT_FALSE(ValidDocumentKey(".."));
  EXPECT_FALSE(ValidDocumentKey(".hidden"));
  EXPECT_FALSE(ValidDocumentKey("a/b"));   // no traversal
  EXPECT_FALSE(ValidDocumentKey("a b"));   // no spaces
  EXPECT_FALSE(ValidDocumentKey(std::string(129, 'k')));
  EXPECT_TRUE(ValidDocumentKey(std::string(128, 'k')));
}

// --- ShardedService ------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char dir_template[] = "/tmp/xmlup_cluster_XXXXXX";
    EXPECT_NE(::mkdtemp(dir_template), nullptr);
    path_ = dir_template;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> Req(ShardedService* service,
                             std::vector<std::string> request) {
  std::vector<std::string> response;
  service->HandleRequest(request, &response);
  return response;
}

TEST(ShardedServiceTest, CreatesDispatchesAndRediscoversOnRestart) {
  TempDir corpus;
  {
    auto service = ShardedService::Open(corpus.path());
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ((*service)->document_count(), 0u);

    auto created = Req(service->get(), {"--doc", "alpha", "--create",
                                        "ordpath"});
    ASSERT_EQ(created[0], "ok") << created[1];
    created = Req(service->get(), {"--doc", "beta", "--create", "ordpath"});
    ASSERT_EQ(created[0], "ok") << created[1];
    EXPECT_EQ((*service)->document_count(), 2u);

    // The full single-document grammar rides behind --doc.
    auto update = Req(service->get(), {"--doc", "alpha", "-s", ".", "-t",
                                       "elem", "-n", "only_in_alpha"});
    ASSERT_EQ(update[0], "ok") << update[1];
    auto alpha = Req(service->get(), {"--doc", "alpha", "--xml"});
    ASSERT_EQ(alpha[0], "ok");
    EXPECT_NE(alpha[1].find("only_in_alpha"), std::string::npos);
    auto beta = Req(service->get(), {"--doc", "beta", "--xml"});
    ASSERT_EQ(beta[0], "ok");
    EXPECT_EQ(beta[1].find("only_in_alpha"), std::string::npos)
        << "documents must be isolated";

    (*service)->Stop();
  }
  // Restart: the corpus scan finds both documents, content intact.
  auto reopened = ShardedService::Open(corpus.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->document_count(), 2u);
  EXPECT_EQ((*reopened)->DocumentKeys(),
            (std::vector<std::string>{"alpha", "beta"}));
  auto alpha = Req(reopened->get(), {"--doc", "alpha", "--xml"});
  ASSERT_EQ(alpha[0], "ok");
  EXPECT_NE(alpha[1].find("only_in_alpha"), std::string::npos);
  (*reopened)->Stop();
}

TEST(ShardedServiceTest, RejectsUnknownDocumentsBadKeysAndDuplicates) {
  TempDir corpus;
  auto service = ShardedService::Open(corpus.path());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto unknown = Req(service->get(), {"--doc", "nosuch", "--xml"});
  ASSERT_EQ(unknown[0], "err");
  EXPECT_EQ(unknown[1].rfind(kUnknownDocumentError, 0), 0u)
      << "unknown-document replies must carry the marker prefix: "
      << unknown[1];

  auto traversal = Req(service->get(), {"--doc", "../etc", "--xml"});
  EXPECT_EQ(traversal[0], "err");
  EXPECT_EQ(traversal[1].rfind(kUnknownDocumentError, 0),
            std::string::npos)
      << "an invalid key is a client error, not a route miss";

  ASSERT_EQ(Req(service->get(),
                {"--doc", "alpha", "--create", "ordpath"})[0],
            "ok");
  auto duplicate =
      Req(service->get(), {"--doc", "alpha", "--create", "ordpath"});
  EXPECT_EQ(duplicate[0], "err");

  // Service-level shutdown must not hide behind a document.
  auto nested = Req(service->get(), {"--doc", "alpha", "--shutdown"});
  EXPECT_EQ(nested[0], "err");
  (*service)->Stop();
}

TEST(ShardedServiceTest, StatsAggregateAcrossTheCorpus) {
  TempDir corpus;
  auto service = ShardedService::Open(corpus.path());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_EQ(Req(service->get(), {"--doc", "a", "--create", "ordpath"})[0],
            "ok");
  ASSERT_EQ(Req(service->get(), {"--doc", "b", "--create", "ordpath"})[0],
            "ok");
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Req(service->get(), {"--doc", "a", "-s", ".", "-t", "elem",
                                   "-n", "x" + std::to_string(i)})[0],
              "ok");
  }
  ASSERT_EQ(Req(service->get(),
                {"--doc", "b", "-s", ".", "-t", "elem", "-n", "y"})[0],
            "ok");

  auto stats = Req(service->get(), {"--stats"});
  ASSERT_EQ(stats[0], "ok");
  std::map<std::string, std::string> fields;
  for (size_t i = 1; i < stats.size(); ++i) {
    const size_t eq = stats[i].find('=');
    if (eq != std::string::npos) {
      fields[stats[i].substr(0, eq)] = stats[i].substr(eq + 1);
    }
  }
  EXPECT_EQ(fields["docs"], "2");
  EXPECT_EQ(fields["updates_applied"], "4");  // summed across documents

  auto hello = Req(service->get(), {kClusterHelloVerb});
  ASSERT_EQ(hello[0], "ok");
  int doc_fields = 0;
  for (const std::string& field : hello) {
    if (field.rfind("doc.", 0) == 0) ++doc_fields;
  }
  EXPECT_EQ(doc_fields, 2);
  (*service)->Stop();
}

// --- End to end: coordinator over TCP shards -----------------------------

// One in-process shard: a corpus directory, its service, and a TCP
// listener on an ephemeral port (rebound to the SAME port on restart, so
// a coordinator's shard list stays valid across the kill).
struct ShardProcess {
  std::unique_ptr<TempDir> dir = std::make_unique<TempDir>();
  std::unique_ptr<ShardedService> service;
  std::unique_ptr<concurrency::Listener> listener;
  std::thread thread;
  uint16_t port = 0;  // fixed after the first Start()

  void Start() {
    auto opened = ShardedService::Open(dir->path());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    service = std::move(*opened);
    listener = std::make_unique<concurrency::Listener>(service.get());
    listener->set_drain_deadline_ms(200);
    const uint16_t bind_port = port;  // 0 first time, pinned after
    concurrency::Listener* raw = listener.get();
    thread = std::thread([raw, bind_port] {
      common::Status served = raw->ServeTcp("127.0.0.1", bind_port);
      EXPECT_TRUE(served.ok()) << served.ToString();
    });
    for (int i = 0; i < 5000 && listener->bound_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_NE(listener->bound_port(), 0) << "shard listener never bound";
    port = listener->bound_port();
  }

  void Kill() {
    listener->Shutdown();
    thread.join();
    service->Stop();
    service.reset();
    listener.reset();
  }

  std::string spec() const {
    return "tcp:127.0.0.1:" + std::to_string(port);
  }
};

class ClusterEndToEnd : public ::testing::Test {
 protected:
  static constexpr int kShards = 4;

  void SetUp() override {
    shards_.resize(kShards);
    std::vector<ShardAddress> addresses;
    for (auto& shard : shards_) {
      shard.Start();
      if (HasFatalFailure()) return;
      addresses.push_back(ShardAddress{shard.spec()});
    }
    coordinator_ = std::make_unique<Coordinator>(
        std::move(addresses), std::make_unique<HashRouter>(kShards));
  }

  void TearDown() override {
    coordinator_.reset();  // closes pooled connections before the drain
    for (auto& shard : shards_) {
      if (shard.service != nullptr) shard.Kill();
    }
  }

  std::vector<std::string> Route(std::vector<std::string> request) {
    std::vector<std::string> response;
    coordinator_->HandleRequest(request, &response);
    return response;
  }

  std::vector<ShardProcess> shards_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(ClusterEndToEnd, RoutedWorkloadMatchesStandaloneReplay) {
  // A seeded workload over 8 keys: every action routed through the
  // coordinator is also recorded per key, and at the end each document
  // must serialize bit-identically to a standalone single-document
  // server replaying exactly that key's subsequence.
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("doc" + std::to_string(i));
  std::map<std::string, std::vector<std::vector<std::string>>> per_key;

  for (const std::string& key : keys) {
    auto created = Route({"--doc", key, "--create", "ordpath"});
    ASSERT_EQ(created[0], "ok") << created[1];
  }
  uint64_t seed = 0x9e3779b97f4a7c15ull;  // fixed: the test is a replay
  for (int step = 0; step < 200; ++step) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const std::string& key = keys[(seed >> 33) % keys.size()];
    std::vector<std::string> action;
    switch ((seed >> 13) % 3) {
      case 0:
        action = {"-s", ".", "-t", "elem",
                  "-n", "n" + std::to_string(step)};
        break;
      case 1:
        action = {"-s", ".", "-t", "attr", "-n",
                  "a" + std::to_string(step), "-v", std::to_string(step)};
        break;
      default:
        action = {"-a", "*[1]", "-t", "comment", "-n", "c",
                  "-v", "step " + std::to_string(step)};
        break;
    }
    std::vector<std::string> request = {"--doc", key};
    request.insert(request.end(), action.begin(), action.end());
    auto reply = Route(request);
    if (reply[0] == "ok") {
      per_key[key].push_back(action);
    }
    // "err" replies (e.g. -a with no children yet) must leave the
    // document untouched — the oracle replays only acknowledged actions.
  }

  const std::vector<std::string> statuses =
      coordinator_->ClusterStatusFields();
  size_t healthy = 0;
  for (const std::string& field : statuses) {
    if (field.find(".healthy=1") != std::string::npos) ++healthy;
  }
  EXPECT_EQ(healthy, static_cast<size_t>(kShards));

  for (const std::string& key : keys) {
    auto routed = Route({"--doc", key, "--xml"});
    ASSERT_EQ(routed[0], "ok") << key << ": " << routed[1];

    // The standalone oracle: same empty <root/>, same scheme, same
    // acknowledged subsequence, one single-document pipeline.
    store::MemFileSystem fs;
    ConcurrentStoreOptions options;
    options.store.fs = &fs;
    auto oracle = ConcurrentStore::Create("oracle", ParseOrDie("<root/>"),
                                          "ordpath", options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    concurrency::Server oracle_server(oracle->get());
    for (const std::vector<std::string>& action : per_key[key]) {
      std::vector<std::string> response;
      oracle_server.HandleRequest(action, &response);
      ASSERT_EQ(response[0], "ok")
          << key << ": oracle rejected an acknowledged action";
    }
    std::vector<std::string> oracle_xml;
    oracle_server.HandleRequest({"--xml"}, &oracle_xml);
    ASSERT_EQ(oracle_xml[0], "ok");
    EXPECT_EQ(routed[1], oracle_xml[1]) << "document " << key;
    (*oracle)->Stop();
  }
}

TEST_F(ClusterEndToEnd, KillingOneShardDegradesOnlyItsKeys) {
  HashRouter placement(kShards);
  // One key per shard, so every side of the failure is observable.
  std::vector<std::string> shard_key(kShards);
  for (int i = 0; shard_key[0].empty() || shard_key[1].empty() ||
                  shard_key[2].empty() || shard_key[3].empty();
       ++i) {
    ASSERT_LT(i, 10000);
    std::string key = "k";
    key += std::to_string(i);
    std::string& slot = shard_key[placement.ShardFor(key)];
    if (slot.empty()) slot = key;
  }
  for (const std::string& key : shard_key) {
    ASSERT_EQ(Route({"--doc", key, "--create", "ordpath"})[0], "ok");
    ASSERT_EQ(Route({"--doc", key, "-s", ".", "-t", "elem", "-n",
                     "before_kill"})[0],
              "ok");
  }

  shards_[2].Kill();

  // The dead shard's key: a routed-error frame naming the shard.
  auto dead = Route({"--doc", shard_key[2], "--xml"});
  ASSERT_EQ(dead[0], "err");
  EXPECT_EQ(dead[1].rfind("routed: shard 2", 0), 0u) << dead[1];
  // Every other key is untouched: reads and writes keep flowing.
  for (int shard = 0; shard < kShards; ++shard) {
    if (shard == 2) continue;
    auto read = Route({"--doc", shard_key[shard], "--xml"});
    ASSERT_EQ(read[0], "ok") << "shard " << shard << " degraded: " << read[1];
    EXPECT_NE(read[1].find("before_kill"), std::string::npos);
    ASSERT_EQ(Route({"--doc", shard_key[shard], "-s", ".", "-t", "elem",
                     "-n", "during_outage"})[0],
              "ok");
  }
  // Health reflects the outage.
  std::vector<std::string> statuses = coordinator_->ClusterStatusFields();
  bool saw_unhealthy = false;
  for (const std::string& field : statuses) {
    if (field == "shard2.healthy=0") saw_unhealthy = true;
    EXPECT_NE(field, "shard0.healthy=0");
  }
  EXPECT_TRUE(saw_unhealthy);

  // Restart on the same port: recovery re-opens the corpus from disk and
  // the coordinator's next dial succeeds (the pooled stale fd costs one
  // retry, not an error).
  shards_[2].Start();
  auto recovered = Route({"--doc", shard_key[2], "--xml"});
  ASSERT_EQ(recovered[0], "ok") << recovered[1];
  EXPECT_NE(recovered[1].find("before_kill"), std::string::npos)
      << "the restarted shard must recover its documents";
  ASSERT_EQ(Route({"--doc", shard_key[2], "-s", ".", "-t", "elem", "-n",
                   "after_restart"})[0],
            "ok");
}

TEST_F(ClusterEndToEnd, ReplicaSubscribesToOneDocumentOverTcp) {
  HashRouter placement(kShards);
  const std::string key = "replicated_doc";
  ASSERT_EQ(Route({"--doc", key, "--create", "ordpath"})[0], "ok");
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(Route({"--doc", key, "-s", ".", "-t", "elem", "-n",
                     "r" + std::to_string(i)})[0],
              "ok");
  }
  ShardProcess& owner = shards_[placement.ShardFor(key)];

  // The owning shard's advertised position for this document is the
  // replica's catch-up target (doc.<key>=<gen>:<records>:<bytes>:<epoch>).
  auto ReadTarget = [&]() -> store::CommitPoint {
    store::CommitPoint target;
    auto hello = concurrency::EndpointRequest(owner.spec(),
                                              {kClusterHelloVerb});
    EXPECT_TRUE(hello.ok()) << hello.status().ToString();
    const std::string prefix = "doc." + key + "=";
    for (const std::string& field : *hello) {
      if (field.rfind(prefix, 0) != 0) continue;
      unsigned long long generation = 0, records = 0, bytes = 0;
      EXPECT_EQ(std::sscanf(field.c_str() + prefix.size(),
                            "%llu:%llu:%llu", &generation, &records, &bytes),
                3)
          << field;
      target.generation = generation;
      target.records = records;
      target.bytes = bytes;
    }
    EXPECT_NE(target.generation, 0u) << "shard never advertised " << key;
    return target;
  };
  const store::CommitPoint target = ReadTarget();

  store::MemFileSystem replica_fs;
  replication::ReplicaApplierOptions options;
  options.store.fs = &replica_fs;
  options.hello_prefix = {"--doc", key};
  auto applier = replication::ReplicaApplier::Start(
      "replica", owner.spec(), options);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  ASSERT_TRUE((*applier)->WaitForPosition(target, 10000))
      << "replica never reached the shard's advertised position";

  auto view = (*applier)->PinView();
  ASSERT_NE(view, nullptr);
  auto replica_xml = view->SerializeXml();
  ASSERT_TRUE(replica_xml.ok());
  auto primary_xml = Route({"--doc", key, "--xml"});
  ASSERT_EQ(primary_xml[0], "ok");
  EXPECT_EQ(*replica_xml, primary_xml[1]);

  // The stream keeps flowing: one more routed update reaches the replica.
  ASSERT_EQ(Route({"--doc", key, "-s", ".", "-t", "elem", "-n", "tail"})[0],
            "ok");
  ASSERT_TRUE((*applier)->WaitForPosition(ReadTarget(), 10000));
  (*applier)->Stop();
}

}  // namespace
}  // namespace xmlup::cluster
