// Wire framing boundary tests: the 16 MiB frame cap must behave
// identically on both sides (a frame of exactly kMaxFrameBytes is the
// largest that round-trips; one byte more is rejected by the writer
// before any bytes hit the fd and by the reader before any allocation),
// plus the degenerate zero-length frame and the binary escaping that
// replication payloads ride on.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "concurrency/wire.h"
#include "gtest/gtest.h"

namespace xmlup::concurrency {
namespace {

// Frames big enough to blow a pipe buffer go through a temp file: write
// the frame, rewind, read it back.
class FrameFile {
 public:
  FrameFile() : file_(std::tmpfile()) {}
  ~FrameFile() {
    if (file_ != nullptr) std::fclose(file_);
  }

  int fd() const { return ::fileno(file_); }
  void Rewind() const { ::lseek(fd(), 0, SEEK_SET); }
  off_t Size() const { return ::lseek(fd(), 0, SEEK_END); }

 private:
  FILE* file_;
};

TEST(WireFrameTest, ZeroLengthFrameIsOneEmptyField) {
  FrameFile f;
  ASSERT_TRUE(WriteFrame(f.fd(), {""}).ok());
  EXPECT_EQ(f.Size(), 4);  // just the length prefix
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(**frame, std::vector<std::string>{""});
}

TEST(WireFrameTest, EmptyFieldListReadsBackAsOneEmptyField) {
  // JoinFields({}) and JoinFields({""}) both produce the empty payload:
  // the framing cannot represent "no fields at all", and readers must
  // not treat the 4-byte zero prefix as anything else.
  FrameFile f;
  ASSERT_TRUE(WriteFrame(f.fd(), {}).ok());
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(**frame, std::vector<std::string>{""});
}

TEST(WireFrameTest, FrameOfExactlyMaxBytesRoundTrips) {
  FrameFile f;
  std::string field(kMaxFrameBytes, 'x');
  field[0] = 'a';
  field[kMaxFrameBytes - 1] = 'z';
  ASSERT_TRUE(WriteFrame(f.fd(), {field}).ok());
  EXPECT_EQ(f.Size(), static_cast<off_t>(4 + kMaxFrameBytes));
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  ASSERT_EQ((*frame)->size(), 1u);
  EXPECT_EQ((**frame)[0], field);
}

TEST(WireFrameTest, SeparatorsCountTowardTheCap) {
  // Two fields whose payload (field + separator + field) is exactly the
  // cap: still fine. One more byte anywhere: rejected.
  FrameFile f;
  std::string big(kMaxFrameBytes - 2, 'x');
  ASSERT_TRUE(WriteFrame(f.fd(), {big, "y"}).ok());
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->size(), 2u);

  FrameFile over;
  EXPECT_FALSE(WriteFrame(over.fd(), {big, "yz"}).ok());
  EXPECT_EQ(over.Size(), 0);
}

TEST(WireFrameTest, FrameOneOverMaxIsRejectedBeforeAnyBytesAreWritten) {
  FrameFile f;
  std::string field(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(WriteFrame(f.fd(), {field}).ok());
  EXPECT_EQ(f.Size(), 0);  // nothing on the wire, stream still framed
}

TEST(WireFrameTest, ReaderRejectsALengthPrefixOneOverMax) {
  // A writer that did not enforce the cap (or garbage on the wire): the
  // reader must refuse before allocating or consuming the payload.
  FrameFile f;
  const uint32_t length = kMaxFrameBytes + 1;
  char prefix[4] = {static_cast<char>(length & 0xFF),
                    static_cast<char>((length >> 8) & 0xFF),
                    static_cast<char>((length >> 16) & 0xFF),
                    static_cast<char>((length >> 24) & 0xFF)};
  ASSERT_EQ(::write(f.fd(), prefix, sizeof(prefix)),
            static_cast<ssize_t>(sizeof(prefix)));
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  EXPECT_FALSE(frame.ok());
}

TEST(WireFrameTest, ReaderAcceptsALengthPrefixOfExactlyMax) {
  FrameFile f;
  std::string field(kMaxFrameBytes, 'q');
  ASSERT_TRUE(WriteFrame(f.fd(), {field}).ok());
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
}

TEST(WireFrameTest, CleanEofVersusTruncatedFrame) {
  {
    FrameFile f;  // empty stream: clean EOF
    auto frame = ReadFrame(f.fd());
    ASSERT_TRUE(frame.ok());
    EXPECT_FALSE(frame->has_value());
  }
  {
    FrameFile f;  // EOF inside the length prefix
    ASSERT_EQ(::write(f.fd(), "\x08\x00", 2), 2);
    f.Rewind();
    EXPECT_FALSE(ReadFrame(f.fd()).ok());
  }
  {
    FrameFile f;  // EOF inside the payload
    ASSERT_TRUE(WriteFrame(f.fd(), {"hello"}).ok());
    ASSERT_EQ(::ftruncate(f.fd(), 6), 0);
    f.Rewind();
    EXPECT_FALSE(ReadFrame(f.fd()).ok());
  }
}

TEST(WireEscapeTest, EveryByteValueRoundTrips) {
  std::string raw;
  for (int round = 0; round < 2; ++round) {
    for (int b = 0; b < 256; ++b) raw.push_back(static_cast<char>(b));
  }
  std::string escaped = EscapeBinary(raw);
  EXPECT_EQ(escaped.find(kFieldSeparator), std::string::npos);
  auto back = UnescapeBinary(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(WireEscapeTest, EscapedBinarySurvivesAFrame) {
  std::string raw = {'\x1f', '\x1e', 'a', '\x00', '\x1f'};
  FrameFile f;
  ASSERT_TRUE(WriteFrame(f.fd(), {"frames", EscapeBinary(raw)}).ok());
  f.Rewind();
  auto frame = ReadFrame(f.fd());
  ASSERT_TRUE(frame.ok() && frame->has_value());
  ASSERT_EQ((*frame)->size(), 2u);
  auto back = UnescapeBinary((**frame)[1]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(WireEscapeTest, MalformedEscapesAreRejected) {
  EXPECT_FALSE(UnescapeBinary("\x1f").ok());    // bare separator
  EXPECT_FALSE(UnescapeBinary("ab\x1e").ok());  // dangling escape
  EXPECT_FALSE(UnescapeBinary("\x1ex").ok());   // unknown code
  auto ok = UnescapeBinary("\x1e" "e" "\x1e" "u");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, std::string("\x1e\x1f"));
}

}  // namespace
}  // namespace xmlup::concurrency
