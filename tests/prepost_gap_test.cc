#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/prepost_gap_scheme.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace xmlup::core {
namespace {

using labels::PrePostGapScheme;
using xml::NodeId;
using xml::NodeKind;

TEST(PrePostGapTest, ModerateInsertionsConsumeGapsWithoutRelabelling) {
  auto scheme = labels::CreateScheme("prepost-gap");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 3);
  for (int i = 0; i < 12; ++i) {
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    UpdateStats stats;
    ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                pos->before, &stats)
                    .ok());
    EXPECT_EQ(stats.relabeled, 0u) << "insert " << i;
  }
  EXPECT_EQ((*scheme)->counters().overflows, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(PrePostGapTest, GapExhaustionOnlyPostponesRelabelling) {
  // A tiny gap exhausts quickly: the §3.1.1 claim that gap extensions
  // "only postpone the relabelling process".
  labels::SchemeOptions options;
  options.prepost_gap = 8;
  auto scheme = labels::CreateScheme("prepost-gap", options);
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();
  workload::InsertionPlanner planner(
      workload::InsertPattern::kSkewedFixed, 5);
  for (int i = 0; i < 30; ++i) {
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                pos->before)
                    .ok());
  }
  EXPECT_GT((*scheme)->counters().overflows, 0u);
  EXPECT_GT((*scheme)->counters().relabels, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(PrePostGapTest, FarFewerRelabelsThanPlainPrePost) {
  auto gapped = labels::CreateScheme("prepost-gap");
  auto plain = labels::CreateScheme("xpath-accelerator");
  ASSERT_TRUE(gapped.ok());
  ASSERT_TRUE(plain.ok());
  uint64_t relabels[2] = {0, 0};
  labels::LabelingScheme* schemes[2] = {gapped->get(), plain->get()};
  for (int s = 0; s < 2; ++s) {
    workload::DocumentShape shape;
    shape.target_nodes = 150;
    shape.seed = 41;
    auto tree = workload::GenerateDocument(shape);
    ASSERT_TRUE(tree.ok());
    auto doc = LabeledDocument::Build(std::move(*tree), schemes[s]);
    ASSERT_TRUE(doc.ok());
    schemes[s]->ResetCounters();
    workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 6);
    for (int i = 0; i < 60; ++i) {
      auto pos = planner.Next(doc->tree());
      ASSERT_TRUE(pos.ok());
      ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                  pos->before)
                      .ok());
    }
    relabels[s] = schemes[s]->counters().relabels;
  }
  EXPECT_LT(relabels[0], relabels[1] / 10)
      << "gapped=" << relabels[0] << " plain=" << relabels[1];
}

TEST(PrePostGapTest, EncodeDecodeRoundTrip) {
  PrePostGapScheme::Ranks ranks{12345678901ULL, 98765432101ULL, 7};
  labels::Label label = PrePostGapScheme::Encode(ranks);
  PrePostGapScheme::Ranks out;
  ASSERT_TRUE(PrePostGapScheme::Decode(label, &out));
  EXPECT_EQ(out.pre, ranks.pre);
  EXPECT_EQ(out.post, ranks.post);
  EXPECT_EQ(out.level, ranks.level);
  EXPECT_FALSE(PrePostGapScheme::Decode(labels::Label("short"), &out));
}

}  // namespace
}  // namespace xmlup::core
