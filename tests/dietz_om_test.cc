// Dietz order-maintenance containment: local (not global) renumbering.

#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/dietz_om_scheme.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;

TEST(DietzOmTest, ModerateInsertionsNeverRelabel) {
  auto scheme = labels::CreateScheme("dietz-om");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 13);
  for (int i = 0; i < 30; ++i) {
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    UpdateStats stats;
    ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                pos->before, &stats)
                    .ok());
    EXPECT_EQ(stats.relabeled, 0u) << "insert " << i;
  }
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(DietzOmTest, SkewedInsertionRenumbersOnlyALocalWindow) {
  auto scheme = labels::CreateScheme("dietz-om");
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 400;
  shape.seed = 15;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();

  workload::InsertionPlanner planner(
      workload::InsertPattern::kSkewedFixed, 16);
  size_t max_relabels_per_insert = 0;
  for (int i = 0; i < 400; ++i) {
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    UpdateStats stats;
    ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                pos->before, &stats)
                    .ok());
    max_relabels_per_insert =
        std::max(max_relabels_per_insert, stats.relabeled);
  }
  EXPECT_GT((*scheme)->counters().overflows, 0u)
      << "skewed inserts must exhaust local gaps";
  // Local renumbering: even the worst respread touches far fewer nodes
  // than the (800-node) document.
  EXPECT_LT(max_relabels_per_insert, doc->tree().node_count() / 2);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(DietzOmTest, SurvivesDeletionsAndReuse) {
  auto scheme = labels::CreateScheme("dietz-om");
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 120;
  shape.seed = 17;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  common::SplitMix64 rng(18);
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 19);
  for (int round = 0; round < 40; ++round) {
    std::vector<NodeId> nodes = doc->tree().PreorderNodes();
    if (nodes.size() > 20) {
      ASSERT_TRUE(
          doc->RemoveSubtree(nodes[1 + rng.NextBelow(nodes.size() - 1)])
              .ok());
    }
    auto pos = planner.Next(doc->tree());
    ASSERT_TRUE(pos.ok());
    ASSERT_TRUE(doc->InsertNode(pos->parent, NodeKind::kElement, "n", "",
                                pos->before)
                    .ok());
  }
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(DietzOmTest, EncodeDecode) {
  labels::DietzOmScheme::Tags tags{42, 99, 3};
  labels::DietzOmScheme::Tags out;
  ASSERT_TRUE(labels::DietzOmScheme::Decode(
      labels::DietzOmScheme::Encode(tags), &out));
  EXPECT_EQ(out.begin, 42u);
  EXPECT_EQ(out.end, 99u);
  EXPECT_EQ(out.level, 3u);
  EXPECT_FALSE(labels::DietzOmScheme::Decode(labels::Label("x"), &out));
}

}  // namespace
}  // namespace xmlup::core
