// Unit tests for the failover election rule. ElectPromotionTarget is a
// pure function over a candidate snapshot, so every property the chaos
// suite relies on — furthest-ahead wins, deterministic tie-break, stale
// or dead replicas never win, no-candidate is an explicit error — is
// checked here without a single socket.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "cluster/failover.h"
#include "store/document_store.h"

namespace xmlup::cluster {
namespace {

PromotionCandidate Candidate(std::string id, uint64_t generation,
                             uint64_t records, uint64_t bytes,
                             bool reachable = true) {
  PromotionCandidate candidate;
  candidate.replica_id = std::move(id);
  candidate.reachable = reachable;
  candidate.has_document = generation > 0;
  candidate.position = store::CommitPoint{generation, bytes, records};
  return candidate;
}

TEST(PromotionElectionTest, HigherGenerationWins) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 5, 100, 9000),
      Candidate("tcp:b:1", 7, 10, 100),  // fewer records, newer generation
      Candidate("tcp:c:1", 6, 500, 50000),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok()) << winner.status().ToString();
  EXPECT_EQ(*winner, 1u);
}

TEST(PromotionElectionTest, RecordsBreakGenerationTie) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 4, 120, 800),
      Candidate("tcp:b:1", 4, 121, 700),  // one record ahead
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, 1u);
}

TEST(PromotionElectionTest, BytesBreakRecordsTie) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 4, 120, 801),
      Candidate("tcp:b:1", 4, 120, 800),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, 0u);
}

TEST(PromotionElectionTest, ExactTieGoesToSmallestReplicaId) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:host:9002", 3, 42, 512),
      Candidate("tcp:host:9001", 3, 42, 512),
      Candidate("tcp:host:9003", 3, 42, 512),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(candidates[*winner].replica_id, "tcp:host:9001");
}

TEST(PromotionElectionTest, UnreachableReplicaNeverWins) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 9, 900, 90000, /*reachable=*/false),
      Candidate("tcp:b:1", 2, 5, 50),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, 1u) << "the far-ahead but dead replica must lose";
}

TEST(PromotionElectionTest, ReplicaWithoutTheDocumentNeverWins) {
  // A replica mid-initial-catch-up reports generation 0: it holds no
  // committed view of the document yet and must not be promoted over
  // one that does.
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 0, 0, 0),
      Candidate("tcp:b:1", 1, 1, 10),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, 1u);
}

TEST(PromotionElectionTest, AllIneligibleIsNotFound) {
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:a:1", 8, 80, 8000, /*reachable=*/false),
      Candidate("tcp:b:1", 0, 0, 0),
  };
  auto winner = ElectPromotionTarget(candidates);
  EXPECT_FALSE(winner.ok());
  EXPECT_EQ(winner.status().code(), common::StatusCode::kNotFound);
}

TEST(PromotionElectionTest, EmptyCandidateListIsNotFound) {
  auto winner = ElectPromotionTarget({});
  EXPECT_FALSE(winner.ok());
  EXPECT_EQ(winner.status().code(), common::StatusCode::kNotFound);
}

TEST(PromotionElectionTest, StaleReplicaLosesToCaughtUpOne) {
  // The zero-acked-loss argument: under sync replication the acked
  // position is on at least one replica, and the election must pick a
  // replica at that position, not one generations behind.
  std::vector<PromotionCandidate> candidates = {
      Candidate("tcp:stale:1", 2, 10, 100),
      Candidate("tcp:caught-up:1", 2, 37, 4096),
  };
  auto winner = ElectPromotionTarget(candidates);
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(candidates[*winner].replica_id, "tcp:caught-up:1");
}

TEST(PromotionElectionTest, WinnerIsInvariantUnderCandidateOrder) {
  // Same snapshot, every permutation of arrival order → same winner by
  // replica_id. A monitor probing replicas in a different order must
  // not elect a different primary.
  std::vector<PromotionCandidate> base = {
      Candidate("tcp:h:9001", 4, 50, 700),
      Candidate("tcp:h:9002", 4, 50, 700),        // exact tie with 9001
      Candidate("tcp:h:9003", 4, 49, 9999),       // behind on records
      Candidate("tcp:h:9004", 5, 1, 8, false),    // ahead but dead
      Candidate("tcp:h:9005", 0, 0, 0),           // no document
  };
  std::string expected;
  {
    auto winner = ElectPromotionTarget(base);
    ASSERT_TRUE(winner.ok());
    expected = base[*winner].replica_id;
  }
  EXPECT_EQ(expected, "tcp:h:9001");
  std::mt19937 rng(1234);
  for (int round = 0; round < 50; ++round) {
    std::vector<PromotionCandidate> shuffled = base;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    auto winner = ElectPromotionTarget(shuffled);
    ASSERT_TRUE(winner.ok());
    EXPECT_EQ(shuffled[*winner].replica_id, expected)
        << "round " << round << " elected a different replica";
  }
}

}  // namespace
}  // namespace xmlup::cluster
