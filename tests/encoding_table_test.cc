// §2.3 / Figure 2: the encoding scheme built on the pre/post labelling,
// and the requirement that it permits full reconstruction of the textual
// document.

#include <gtest/gtest.h>

#include "core/encoding_table.h"
#include "workload/document_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup::core {
namespace {

using xml::NodeKind;
using xml::Tree;

TEST(EncodingTableTest, Figure2RowsForTheSampleBook) {
  Tree tree = workload::SampleBookDocument();
  auto table = EncodingTable::FromTree(tree);
  ASSERT_TRUE(table.ok());
  const std::vector<EncodingRow>& rows = table->rows();
  ASSERT_EQ(rows.size(), 10u);  // The paper's Figure 2 has 10 rows.

  // Row 0: pre=0 post=9 Element book (no parent, no value).
  EXPECT_EQ(rows[0].pre, 0u);
  EXPECT_EQ(rows[0].post, 9u);
  EXPECT_EQ(rows[0].kind, NodeKind::kElement);
  EXPECT_FALSE(rows[0].parent_pre.has_value());
  EXPECT_EQ(rows[0].name, "book");
  EXPECT_EQ(rows[0].value, "");

  // Row 1: pre=1 post=1 Element title, parent 0, value Wayfarer.
  EXPECT_EQ(rows[1].pre, 1u);
  EXPECT_EQ(rows[1].post, 1u);
  EXPECT_EQ(rows[1].name, "title");
  EXPECT_EQ(rows[1].value, "Wayfarer");
  EXPECT_EQ(rows[1].parent_pre.value(), 0u);

  // Row 2: pre=2 post=0 Attribute genre=Fantasy, parent 1.
  EXPECT_EQ(rows[2].pre, 2u);
  EXPECT_EQ(rows[2].post, 0u);
  EXPECT_EQ(rows[2].kind, NodeKind::kAttribute);
  EXPECT_EQ(rows[2].name, "genre");
  EXPECT_EQ(rows[2].value, "Fantasy");
  EXPECT_EQ(rows[2].parent_pre.value(), 1u);

  // Row 3: author with its text folded in.
  EXPECT_EQ(rows[3].pre, 3u);
  EXPECT_EQ(rows[3].post, 2u);
  EXPECT_EQ(rows[3].name, "author");
  EXPECT_EQ(rows[3].value, "Matthew Dickens");

  // Row 4: publisher pre=4 post=8.
  EXPECT_EQ(rows[4].pre, 4u);
  EXPECT_EQ(rows[4].post, 8u);

  // Row 9: year attribute pre=9 post=6 parent 8 (edition).
  EXPECT_EQ(rows[9].pre, 9u);
  EXPECT_EQ(rows[9].post, 6u);
  EXPECT_EQ(rows[9].kind, NodeKind::kAttribute);
  EXPECT_EQ(rows[9].name, "year");
  EXPECT_EQ(rows[9].value, "2004");
  EXPECT_EQ(rows[9].parent_pre.value(), 8u);
}

TEST(EncodingTableTest, ToTextRendersAllRows) {
  Tree tree = workload::SampleBookDocument();
  auto table = EncodingTable::FromTree(tree);
  ASSERT_TRUE(table.ok());
  std::string text = table->ToText();
  EXPECT_NE(text.find("book"), std::string::npos);
  EXPECT_NE(text.find("Fantasy"), std::string::npos);
  EXPECT_NE(text.find("Destiny Image"), std::string::npos);
  EXPECT_NE(text.find("Attribute"), std::string::npos);
}

TEST(EncodingTableTest, ReconstructionRoundTripsTheSampleBook) {
  Tree original = workload::SampleBookDocument();
  auto table = EncodingTable::FromTree(original);
  ASSERT_TRUE(table.ok());
  auto rebuilt = table->ReconstructTree();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(xml::SerializeDocument(*rebuilt).value(),
            xml::SerializeDocument(original).value());
}

TEST(EncodingTableTest, ReconstructionRoundTripsGeneratedDocuments) {
  for (uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    workload::DocumentShape shape;
    shape.target_nodes = 150;
    shape.seed = seed;
    Tree original = workload::GenerateDocument(shape).value();
    auto table = EncodingTable::FromTree(original);
    ASSERT_TRUE(table.ok());
    auto rebuilt = table->ReconstructTree();
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(xml::SerializeDocument(*rebuilt).value(),
              xml::SerializeDocument(original).value())
        << "seed " << seed;
  }
}

TEST(EncodingTableTest, MixedContentKeepsTextRows) {
  auto tree = xml::ParseDocument("<a>one<b/>two</a>");
  ASSERT_TRUE(tree.ok());
  auto table = EncodingTable::FromTree(*tree);
  ASSERT_TRUE(table.ok());
  // a, text, b, text: mixed content is not foldable.
  ASSERT_EQ(table->rows().size(), 4u);
  EXPECT_EQ(table->rows()[1].kind, NodeKind::kText);
  auto rebuilt = table->ReconstructTree();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(xml::SerializeDocument(*rebuilt).value(),
            xml::SerializeDocument(*tree).value());
}

TEST(EncodingTableTest, EmptyInputsRejected) {
  Tree tree;
  EXPECT_FALSE(EncodingTable::FromTree(tree).ok());
  EncodingTable empty;
  EXPECT_FALSE(empty.ReconstructTree().ok());
}

}  // namespace
}  // namespace xmlup::core
