#include <gtest/gtest.h>

#include "workload/document_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree.h"

namespace xmlup::xml {
namespace {

TEST(ParserTest, ParsesSimpleElement) {
  auto tree = ParseDocument("<a/>");
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->name(tree->root()), "a");
  EXPECT_EQ(tree->node_count(), 1u);
}

TEST(ParserTest, ParsesNestedElementsAndText) {
  auto tree = ParseDocument("<a><b>hello</b><c>world</c></a>");
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> kids = tree->Children(tree->root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(tree->name(kids[0]), "b");
  NodeId text = tree->first_child(kids[0]);
  EXPECT_EQ(tree->kind(text), NodeKind::kText);
  EXPECT_EQ(tree->value(text), "hello");
}

TEST(ParserTest, AttributesBecomeLeadingChildren) {
  auto tree = ParseDocument("<a x=\"1\" y='2'><b/></a>");
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> kids = tree->Children(tree->root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(tree->kind(kids[0]), NodeKind::kAttribute);
  EXPECT_EQ(tree->name(kids[0]), "x");
  EXPECT_EQ(tree->value(kids[0]), "1");
  EXPECT_EQ(tree->kind(kids[1]), NodeKind::kAttribute);
  EXPECT_EQ(tree->value(kids[1]), "2");
  EXPECT_EQ(tree->kind(kids[2]), NodeKind::kElement);
}

TEST(ParserTest, DecodesEntities) {
  auto tree = ParseDocument("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;</a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->first_child(tree->root())), "<x> & \"y\" '");
}

TEST(ParserTest, DecodesCharacterReferences) {
  auto tree = ParseDocument("<a>&#65;&#x42;&#x20AC;</a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->first_child(tree->root())),
            "AB\xE2\x82\xAC");  // 'A', 'B', euro sign.
}

TEST(ParserTest, RejectsUnknownEntity) {
  auto tree = ParseDocument("<a>&nope;</a>");
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), common::StatusCode::kParseError);
}

TEST(ParserTest, ParsesCommentsAndPis) {
  auto tree = ParseDocument("<a><!--note--><?target data?></a>");
  ASSERT_TRUE(tree.ok());
  std::vector<NodeId> kids = tree->Children(tree->root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(tree->kind(kids[0]), NodeKind::kComment);
  EXPECT_EQ(tree->value(kids[0]), "note");
  EXPECT_EQ(tree->kind(kids[1]), NodeKind::kProcessingInstruction);
  EXPECT_EQ(tree->name(kids[1]), "target");
  EXPECT_EQ(tree->value(kids[1]), "data");
}

TEST(ParserTest, SkipsCommentsWhenConfigured) {
  ParseOptions options;
  options.keep_comments = false;
  auto tree = ParseDocument("<a><!--note--><b/></a>", options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Children(tree->root()).size(), 1u);
}

TEST(ParserTest, ParsesCData) {
  auto tree = ParseDocument("<a><![CDATA[<raw> & text]]></a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->value(tree->first_child(tree->root())), "<raw> & text");
}

TEST(ParserTest, HandlesDeclarationAndDoctype) {
  auto tree = ParseDocument(
      "<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<a>x</a>\n");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->name(tree->root()), "a");
}

TEST(ParserTest, WhitespaceTextSkippedByDefault) {
  auto tree = ParseDocument("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Children(tree->root()).size(), 1u);
  ParseOptions keep;
  keep.skip_whitespace_text = false;
  auto verbose = ParseDocument("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(verbose.ok());
  EXPECT_EQ(verbose->Children(verbose->root()).size(), 3u);
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto tree = ParseDocument("<a>\n<b></c></a>");
  ASSERT_FALSE(tree.ok());
  EXPECT_NE(tree.status().message().find("2:"), std::string::npos)
      << tree.status().ToString();
}

TEST(ParserTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
}

TEST(ParserTest, RejectsTrailingContent) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

TEST(ParserTest, RejectsUnterminatedConstructs) {
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a x=\"1>").ok());
  EXPECT_FALSE(ParseDocument("<a><!-- nope</a>").ok());
  EXPECT_FALSE(ParseDocument("<a><![CDATA[x</a>").ok());
  EXPECT_FALSE(ParseDocument("").ok());
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "a").value();
  tree.AppendChild(root, NodeKind::kAttribute, "k", "x\"<>&").value();
  tree.AppendChild(root, NodeKind::kText, "", "1 < 2 & 3 > 2").value();
  auto text = SerializeDocument(tree);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "<a k=\"x&quot;&lt;&gt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(SerializerTest, EmptyElementUsesSelfClosingForm) {
  Tree tree;
  tree.CreateRoot(NodeKind::kElement, "a").value();
  EXPECT_EQ(SerializeDocument(tree).value(), "<a/>");
}

TEST(SerializerTest, EmptyTreeFails) {
  Tree tree;
  EXPECT_FALSE(SerializeDocument(tree).ok());
}

TEST(RoundTripTest, SampleBookDocumentSurvivesRoundTrip) {
  Tree original = workload::SampleBookDocument();
  std::string text = SerializeDocument(original).value();
  auto reparsed = ParseDocument(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeDocument(*reparsed).value(), text);
  EXPECT_EQ(reparsed->node_count(), original.node_count());
}

TEST(RoundTripTest, GeneratedDocumentsSurviveRoundTrip) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    workload::DocumentShape shape;
    shape.target_nodes = 200;
    shape.seed = seed;
    Tree original = workload::GenerateDocument(shape).value();
    std::string text = SerializeDocument(original).value();
    auto reparsed = ParseDocument(text);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(SerializeDocument(*reparsed).value(), text) << "seed " << seed;
  }
}

TEST(RoundTripTest, PrettyPrintingReparsesToSameDocument) {
  Tree original = workload::SampleBookDocument();
  SerializeOptions pretty;
  pretty.pretty = true;
  std::string text = SerializeDocument(original, pretty).value();
  auto reparsed = ParseDocument(text);
  ASSERT_TRUE(reparsed.ok());
  // Compact serialization of both must agree.
  EXPECT_EQ(SerializeDocument(*reparsed).value(),
            SerializeDocument(original).value());
}

}  // namespace
}  // namespace xmlup::xml
