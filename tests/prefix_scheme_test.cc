// Unit tests of the PrefixScheme host: label component codec, relabelling
// semantics (subtree prefix rewrite), render styles and predicate edge
// cases.

#include <gtest/gtest.h>

#include "labels/dewey_codec.h"
#include "labels/prefix_scheme.h"
#include "labels/quaternary_codec.h"
#include "labels/registry.h"
#include "xml/tree.h"

namespace xmlup::labels {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(PrefixLabelCodecTest, ComponentsRoundTrip) {
  std::vector<std::string> components = {"a", "", "long-component",
                                         std::string(3, '\0')};
  Label label = PrefixScheme::MakeLabel(components);
  EXPECT_EQ(PrefixScheme::Components(label), components);
  EXPECT_TRUE(PrefixScheme::Components(PrefixScheme::MakeLabel({})).empty());
  EXPECT_FALSE(PrefixScheme::MakeLabel({}).empty())
      << "the root label must have a non-empty byte form";
}

TEST(PrefixLabelCodecTest, MalformedBytesDecodeToEmpty) {
  // A truncated length prefix must not crash.
  Label bogus(std::string("\x05"));
  EXPECT_TRUE(PrefixScheme::Components(bogus).empty());
}

PrefixScheme MakeQedScheme() {
  SchemeTraits traits;
  traits.name = "test-qed";
  traits.display_name = "TestQED";
  return PrefixScheme(traits, std::make_unique<QedCodec>());
}

TEST(PrefixSchemeTest, PredicatesOnHandBuiltLabels) {
  PrefixScheme scheme = MakeQedScheme();
  Label root = PrefixScheme::MakeLabel({});
  Label a = PrefixScheme::MakeLabel({"\x02"});
  Label ab = PrefixScheme::MakeLabel({"\x02", "\x02"});
  Label b = PrefixScheme::MakeLabel({"\x03"});

  EXPECT_TRUE(scheme.IsAncestor(root, a));
  EXPECT_TRUE(scheme.IsAncestor(root, ab));
  EXPECT_TRUE(scheme.IsAncestor(a, ab));
  EXPECT_FALSE(scheme.IsAncestor(ab, a));
  EXPECT_FALSE(scheme.IsAncestor(a, a));
  EXPECT_FALSE(scheme.IsAncestor(b, ab));

  EXPECT_TRUE(scheme.IsParent(root, a));
  EXPECT_FALSE(scheme.IsParent(root, ab));
  EXPECT_TRUE(scheme.IsParent(a, ab));

  EXPECT_TRUE(scheme.IsSibling(a, b));
  EXPECT_FALSE(scheme.IsSibling(a, ab));
  EXPECT_FALSE(scheme.IsSibling(a, a));
  EXPECT_FALSE(scheme.IsSibling(root, root));

  EXPECT_EQ(scheme.Level(root).value(), 0);
  EXPECT_EQ(scheme.Level(ab).value(), 2);

  EXPECT_LT(scheme.Compare(root, a), 0);
  EXPECT_LT(scheme.Compare(a, ab), 0);
  EXPECT_LT(scheme.Compare(ab, b), 0);
}

TEST(PrefixSchemeTest, RelabelRewritesDescendantPrefixes) {
  // Dewey: inserting before the first child shifts following siblings and
  // all their descendants, but descendants keep their own positional ids.
  auto scheme = CreateScheme("dewey");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId a1 = tree.AppendChild(a, NodeKind::kElement, "a1").value();
  NodeId a11 = tree.AppendChild(a1, NodeKind::kElement, "a11").value();
  std::vector<Label> labels;
  ASSERT_TRUE((*scheme)->LabelTree(tree, &labels).ok());
  ASSERT_EQ((*scheme)->Render(labels[a11]), "1.1.1");

  // Structural insert before 'a'.
  NodeId fresh =
      tree.InsertChild(root, NodeKind::kElement, "z", "", a).value();
  labels.resize(tree.arena_size());
  auto outcome = (*scheme)->LabelForInsert(tree, fresh, labels);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->overflow);
  // a -> 2, a1 -> 2.1, a11 -> 2.1.1.
  ASSERT_EQ(outcome->relabeled.size(), 3u);
  for (const auto& [id, label] : outcome->relabeled) {
    labels[id] = label;
  }
  labels[fresh] = outcome->label;
  EXPECT_EQ((*scheme)->Render(labels[fresh]), "1");
  EXPECT_EQ((*scheme)->Render(labels[a]), "2");
  EXPECT_EQ((*scheme)->Render(labels[a1]), "2.1");
  EXPECT_EQ((*scheme)->Render(labels[a11]), "2.1.1");
}

TEST(PrefixSchemeTest, InsertingARootIsRejected) {
  PrefixScheme scheme = MakeQedScheme();
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  std::vector<Label> labels;
  // Root not yet labelled; LabelForInsert on the root must fail cleanly.
  labels.resize(tree.arena_size());
  auto outcome = scheme.LabelForInsert(tree, root, labels);
  EXPECT_FALSE(outcome.ok());
}

TEST(PrefixSchemeTest, StorageBitsSumComponents) {
  PrefixScheme scheme = MakeQedScheme();
  Label ab = PrefixScheme::MakeLabel({"\x02", "\x02\x03"});
  // QED: (2 digits * 0 + ...) code1: 1 digit -> 4 bits; code2: 2 digits
  // -> 6 bits.
  EXPECT_EQ(scheme.StorageBits(ab), 10u);
  EXPECT_EQ(scheme.StorageBits(PrefixScheme::MakeLabel({})), 0u);
}

TEST(PrefixSchemeTest, DottedRenderStyle) {
  PrefixScheme scheme = MakeQedScheme();
  EXPECT_EQ(scheme.Render(PrefixScheme::MakeLabel({})), "<root>");
  EXPECT_EQ(scheme.Render(PrefixScheme::MakeLabel({"\x02", "\x03"})),
            "2.3");
}

TEST(PrefixSchemeTest, TraitsForcePrefixCapabilities) {
  PrefixScheme scheme = MakeQedScheme();
  EXPECT_EQ(scheme.traits().family, "prefix");
  EXPECT_TRUE(scheme.traits().supports_parent);
  EXPECT_TRUE(scheme.traits().supports_sibling);
  EXPECT_TRUE(scheme.traits().supports_level);
}

}  // namespace
}  // namespace xmlup::labels
