// Differential tests for the CRC-32C implementations: whatever hardware
// path the dispatcher picks on this machine must agree bit-for-bit with
// the portable slicing-by-4 reference on every size, alignment and seed.
// The journal's crash-recovery guarantees hinge on one record framed on
// machine A verifying on machine B.

#include "common/crc32c.h"

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace xmlup::common {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 §B.4 test vectors.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  std::string inc(32, '\0');
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(inc), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(""), 0u);
  // "123456789" is the classic check value for CRC-32C.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, SoftwareMatchesKnownVectors) {
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32cSoftware(zeros), 0x8A9136AAu);
  EXPECT_EQ(Crc32cSoftware("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, ImplementationNameIsKnown) {
  const std::string name = Crc32cImplementation();
  EXPECT_TRUE(name == "sse4.2" || name == "armv8-crc" || name == "software")
      << name;
}

TEST(Crc32cTest, DispatchedMatchesSoftwareAcrossSizes) {
  std::mt19937_64 rng(42);
  std::string buf(4096, '\0');
  for (auto& c : buf) c = static_cast<char>(rng());
  // Every length 0..512 plus a spread of larger ones: exercises the
  // scalar prologue/epilogue and the 8-byte-wide loop boundaries.
  for (size_t n = 0; n <= 512; ++n) {
    ASSERT_EQ(Crc32c(buf.data(), n), Crc32cSoftware(buf.data(), n)) << n;
  }
  for (size_t n : {513u, 777u, 1024u, 1025u, 2049u, 4096u}) {
    ASSERT_EQ(Crc32c(buf.data(), n), Crc32cSoftware(buf.data(), n)) << n;
  }
}

TEST(Crc32cTest, DispatchedMatchesSoftwareAcrossAlignments) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> raw(1024 + 16);
  for (auto& b : raw) b = static_cast<uint8_t>(rng());
  // The hardware paths align to 8 bytes before the wide loop; start the
  // buffer at every offset in a 16-byte window to hit each prologue
  // length.
  for (size_t offset = 0; offset < 16; ++offset) {
    for (size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
      ASSERT_EQ(Crc32c(raw.data() + offset, n),
                Crc32cSoftware(raw.data() + offset, n))
          << "offset=" << offset << " n=" << n;
    }
  }
}

TEST(Crc32cTest, DispatchedMatchesSoftwareAcrossSeeds) {
  std::mt19937_64 rng(1234);
  std::string buf(257, '\0');
  for (auto& c : buf) c = static_cast<char>(rng());
  for (int i = 0; i < 64; ++i) {
    const uint32_t seed = static_cast<uint32_t>(rng());
    ASSERT_EQ(Crc32c(buf.data(), buf.size(), seed),
              Crc32cSoftware(buf.data(), buf.size(), seed))
        << seed;
  }
}

TEST(Crc32cTest, IncrementalSplitMatchesOneShot) {
  std::mt19937_64 rng(99);
  std::string buf(300, '\0');
  for (auto& c : buf) c = static_cast<char>(rng());
  const uint32_t whole = Crc32c(buf);
  for (size_t split : {0u, 1u, 7u, 8u, 150u, 299u, 300u}) {
    const uint32_t head = Crc32c(buf.data(), split);
    const uint32_t both = Crc32c(buf.data() + split, buf.size() - split, head);
    EXPECT_EQ(both, whole) << "split=" << split;
    const uint32_t sw_head = Crc32cSoftware(buf.data(), split);
    const uint32_t sw_both =
        Crc32cSoftware(buf.data() + split, buf.size() - split, sw_head);
    EXPECT_EQ(sw_both, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, RandomizedDifferential) {
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t n = rng() % 1500;
    const size_t offset = rng() % 8;
    std::vector<uint8_t> raw(n + offset);
    for (auto& b : raw) b = static_cast<uint8_t>(rng());
    const uint32_t seed = static_cast<uint32_t>(rng());
    ASSERT_EQ(Crc32c(raw.data() + offset, n, seed),
              Crc32cSoftware(raw.data() + offset, n, seed))
        << "trial=" << trial;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string buf(64, 'x');
  const uint32_t clean = Crc32c(buf);
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] = static_cast<char>(buf[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(buf), clean) << "byte=" << byte << " bit=" << bit;
      buf[byte] = static_cast<char>(buf[byte] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace xmlup::common
