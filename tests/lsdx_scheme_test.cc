// E14: regression tests for the LSDX labelling collisions documented by
// Sans & Laurent (PVLDB 2008) — the reason the survey deems LSDX (and its
// derivatives) "unsuitable for use as dynamic labelling schemes".

#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/lsdx_codec.h"
#include "labels/registry.h"
#include "xml/tree.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(LsdxCollisionTest, BetweenFirstChildAndItsSuccessorCollides) {
  // Published rules: siblings "b" and "c"; inserting between them yields
  // "bb". Inserting between "b" and "bb" yields... "bb" again: increment
  // of "b" is "c" >= "bb", so the fallback appends, colliding with the
  // right neighbour.
  labels::LsdxCodec codec;
  auto first = codec.Between("b", "c", nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "bb");
  auto second = codec.Between("b", "bb", nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "bb") << "the documented LSDX duplicate";
}

TEST(LsdxCollisionTest, UniquenessProbeDetectsTheCollision) {
  auto scheme = labels::CreateScheme("lsdx");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  (void)a;
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());

  // Insert between a("b") and b("c") -> "bb"; then between a and the new
  // node -> "bb" again: duplicate labels.
  auto mid = doc->InsertNode(root, NodeKind::kElement, "m", "", b);
  ASSERT_TRUE(mid.ok());
  auto dup = doc->InsertNode(root, NodeKind::kElement, "d", "", *mid);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(doc->label(*mid), doc->label(*dup));
  common::Status integrity = doc->VerifyOrderAndUniqueness();
  EXPECT_FALSE(integrity.ok());
  EXPECT_NE(integrity.message().find("duplicate"), std::string::npos)
      << integrity.message();
}

TEST(LsdxCollisionTest, OrderViolationCase) {
  // Between "b" and "bab": increment gives "c" >= "bab", so the rule
  // appends -> "bb", which sorts *after* "bab": an order violation.
  labels::LsdxCodec codec;
  auto result = codec.Between("b", "bab", nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "bb");
  EXPECT_GT(codec.Compare(*result, "bab"), 0)
      << "the documented LSDX misordering";
}

TEST(LsdxCollisionTest, ComDInheritsTheCollision) {
  labels::ComDCodec codec;
  auto second = codec.Between("b", "bb", nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "bb");
}

TEST(LsdxSchemeTest, WellBehavedOutsideTheCornerCases) {
  auto scheme = labels::CreateScheme("lsdx");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  for (int i = 0; i < 30; ++i) {
    tree.AppendChild(root, NodeKind::kElement, "c").value();
  }
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  // 30 initial children wrap past "z" into "zb".. style codes; appends and
  // prepends keep order.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(doc->InsertNode(root, NodeKind::kElement, "app", "").ok());
    ASSERT_TRUE(doc->InsertNode(root, NodeKind::kElement, "pre", "",
                                doc->tree().first_child(root))
                    .ok());
  }
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(LsdxSchemeTest, LengthBudgetOverflowsLikeOtherVariableSchemes) {
  labels::SchemeOptions options;
  options.lsdx_length_field_bits = 3;  // Max 7 letters.
  auto scheme = labels::CreateScheme("lsdx", options);
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "c").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  scheme->get()->ResetCounters();
  for (int i = 0; i < 20; ++i) {
    auto node = doc->InsertNode(root, NodeKind::kElement, "p", "",
                                doc->tree().first_child(root));
    ASSERT_TRUE(node.ok());
  }
  // Prepends prefix an "a" each time; the 8th exceeds the 7-letter budget
  // and forces a sibling-range relabel.
  EXPECT_GT(scheme->get()->counters().overflows, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

}  // namespace
}  // namespace xmlup::core
