// Readers-versus-writer stress: reader threads continuously pin views and
// re-read them while the writer commits batches and checkpoints (with
// deliberately tiny thresholds, so the journal rolls and the arena
// compacts many times during the run). A pinned view must stay
// bit-identical — same serialized XML, same label bytes — no matter how
// many checkpoints happen underneath it, and every freshly pinned view
// must be internally consistent. Run under TSan this is also the data-race
// proof for the publication protocol.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/concurrent_store.h"
#include "concurrency/update.h"
#include "store/file.h"
#include "xml/parser.h"

namespace xmlup::concurrency {
namespace {

using store::MemFileSystem;

std::string Name(const char* prefix, int i) {
  std::string out = prefix;
  out += std::to_string(i);
  return out;
}

xml::Tree BaseTree() {
  auto tree = xml::ParseDocument(
      "<root><a>alpha</a><b>beta</b><c>gamma</c></root>");
  EXPECT_TRUE(tree.ok());
  return std::move(*tree);
}

std::vector<std::string> ViewLabels(const ReadView& view) {
  std::vector<std::string> out;
  const core::LabeledDocument& doc = view.document();
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

class ConcurrentStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrentStressTest, PinnedViewsStayBitIdenticalAcrossCheckpoints) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  // Roll the journal every few records: the run checkpoints constantly.
  options.store.checkpoint.max_journal_records = 8;
  options.max_batch = 8;
  auto st = ConcurrentStore::Create("db", BaseTree(), GetParam(), options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  constexpr int kReaders = 4;
  constexpr int kWriterOps = 120;
  std::atomic<bool> done{false};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const ReadView> view = (*st)->PinView();
        if (view == nullptr) {
          ++reader_failures;
          return;
        }
        // Epochs never go backwards for a reader pinning repeatedly.
        if (view->epoch() < last_epoch) {
          ++reader_failures;
          return;
        }
        last_epoch = view->epoch();

        // Freeze the view's state, keep the pin across a few writer
        // batches, then re-read: every byte must be unchanged.
        auto xml_before = view->SerializeXml();
        auto labels_before = ViewLabels(*view);
        auto hits_before = view->Query("//*");
        if (!xml_before.ok() || !hits_before.ok()) {
          ++reader_failures;
          return;
        }
        std::this_thread::yield();
        auto xml_after = view->SerializeXml();
        auto hits_after = view->Query("//*");
        if (!xml_after.ok() || *xml_after != *xml_before ||
            ViewLabels(*view) != labels_before || !hits_after.ok() ||
            *hits_after != *hits_before) {
          ++reader_failures;
          return;
        }
      }
    });
  }

  for (int i = 0; i < kWriterOps; ++i) {
    UpdateRequest request;
    if (i % 7 == 3) {
      request.op = UpdateRequest::Op::kDelete;
      request.xpath = Name("/x", i - 3);
    } else {
      request.op = UpdateRequest::Op::kInsertChild;
      request.xpath = ".";
      request.kind = xml::NodeKind::kElement;
      request.name = Name("x", i);
      request.value = "";
    }
    UpdateResult result = (*st)->Update(std::move(request));
    ASSERT_TRUE(result.status.ok())
        << "op " << i << ": " << result.status.ToString();
  }

  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GE((*st)->stats().checkpoints, 2u)
      << "thresholds did not force checkpoints; the test lost its point";

  // And the store survived all of it: restart agrees with the live state.
  std::string live_xml = *(*st)->PinView()->SerializeXml();
  (*st)->Stop();
  auto reopened = ConcurrentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->PinView()->SerializeXml(), live_xml);
}

// Mixed submitters and readers with a small queue: backpressure, group
// commit and view publication all running at once. TSan-clean is the
// main assertion; the counts make it a correctness test as well.
TEST_P(ConcurrentStressTest, SubmittersAndReadersDontTread) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.queue_capacity = 4;
  options.store.checkpoint.max_journal_records = 16;
  auto st = ConcurrentStore::Create("db", BaseTree(), GetParam(), options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 30;
  std::atomic<bool> done{false};
  std::atomic<int> ok_updates{0};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        UpdateRequest request;
        request.op = UpdateRequest::Op::kInsertChild;
        request.xpath = ".";
        request.kind = xml::NodeKind::kElement;
        request.name = Name("s", t) + Name("x", i);
        if ((*st)->Update(std::move(request)).status.ok()) ++ok_updates;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto view = (*st)->PinView();
        auto hits = view->Query("/*");
        if (!hits.ok() || hits->size() < 3) {
          ++reader_failures;
          return;
        }
      }
    });
  }
  for (int t = 0; t < kSubmitters; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kSubmitters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(ok_updates.load(), kSubmitters * kPerThread);
  EXPECT_EQ(reader_failures.load(), 0);
  auto final_hits = (*st)->PinView()->Query("/*");
  ASSERT_TRUE(final_hits.ok());
  EXPECT_EQ(final_hits->size(), 3u + kSubmitters * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ConcurrentStressTest,
                         ::testing::Values("dewey", "ordpath"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace xmlup::concurrency
