// Reproduces the paper's worked examples: the pre/post labelled tree of
// Figure 1(b), the DeweyID tree of Figure 3, the ORDPATH insertions of
// Figure 4, the LSDX insertions of Figure 5 and the ImprovedBinary
// insertions of Figure 6.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace xmlup::core {
namespace {

using labels::CreateScheme;
using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

// Renders node -> label for the whole document.
std::map<std::string, std::string> RenderAll(const LabeledDocument& doc) {
  std::map<std::string, std::string> out;
  for (NodeId n : doc.tree().PreorderNodes()) {
    std::string key = doc.tree().name(n);
    if (key.empty()) key = doc.tree().value(n);
    out[key] = doc.scheme().Render(doc.label(n));
  }
  return out;
}

// The 10-node tree of Figures 3-6: a root with three children, the first
// and third having two children each, the middle one.
Tree FigureTree(NodeId ids[10]) {
  Tree tree;
  ids[0] = tree.CreateRoot(NodeKind::kElement, "r").value();
  ids[1] = tree.AppendChild(ids[0], NodeKind::kElement, "a").value();
  ids[2] = tree.AppendChild(ids[0], NodeKind::kElement, "b").value();
  ids[3] = tree.AppendChild(ids[0], NodeKind::kElement, "c").value();
  ids[4] = tree.AppendChild(ids[1], NodeKind::kElement, "a1").value();
  ids[5] = tree.AppendChild(ids[1], NodeKind::kElement, "a2").value();
  ids[6] = tree.AppendChild(ids[2], NodeKind::kElement, "b1").value();
  ids[7] = tree.AppendChild(ids[3], NodeKind::kElement, "c1").value();
  ids[8] = tree.AppendChild(ids[3], NodeKind::kElement, "c2").value();
  ids[9] = tree.AppendChild(ids[3], NodeKind::kElement, "c3").value();
  return tree;
}

TEST(Figure1Test, PrePostLabelsOfTheSampleBook) {
  auto scheme = CreateScheme("xpath-accelerator");
  ASSERT_TRUE(scheme.ok());
  // Figure 1(b) numbers the folded 10-node tree (text folded into element
  // values); build that via the encoding-table view used by Figure 2 —
  // here we check the raw tree's element/attribute pre ranks instead.
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  std::map<std::string, std::string> labels = RenderAll(*doc);
  EXPECT_EQ(labels["book"].substr(0, 2), "0,");
  EXPECT_EQ(labels["title"].substr(0, 2), "1,");
  EXPECT_EQ(labels["genre"].substr(0, 2), "2,");
  // Attribute before text (Figure 1(b): genre has pre 2 under title).
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(Figure3Test, DeweyIdLabels) {
  NodeId ids[10];
  auto scheme = CreateScheme("dewey");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  // Figure 3 writes the root as "1" and children as 1.1, 1.2, 1.3 etc.;
  // our rendering drops the root prefix ("<root>" + positional ids), so
  // the expected identifiers are the per-level positions.
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[1])), "1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[2])), "2");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[3])), "3");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[4])), "1.1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[5])), "1.2");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[6])), "2.1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[9])), "3.3");
}

TEST(Figure3Test, DeweyInsertionRelabelsFollowingSiblings) {
  NodeId ids[10];
  auto scheme = CreateScheme("dewey");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  UpdateStats stats;
  auto fresh = doc->InsertNode(ids[0], NodeKind::kElement, "new", "", ids[2],
                               &stats);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*fresh)), "2");
  // b (and its subtree) plus c (and its subtree) shift: b->3, b1->3.1,
  // c->4, c1..c3 -> 4.*.
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[2])), "3");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[6])), "3.1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[3])), "4");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[9])), "4.3");
  EXPECT_EQ(stats.relabeled, 6u);
  EXPECT_TRUE(stats.overflow);
  // Preceding sibling a and its children are untouched.
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[1])), "1");
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(Figure4Test, OrdpathInitialLabelsUseOddIntegers) {
  NodeId ids[10];
  auto scheme = CreateScheme("ordpath");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  // Figure 4: root children 1.1, 1.3, 1.5 (root prefix implicit here).
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[1])), "1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[2])), "3");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[3])), "5");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[4])), "1.1");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[8])), "5.3");
}

TEST(Figure4Test, OrdpathInsertionsMatchTheFigure) {
  NodeId ids[10];
  auto scheme = CreateScheme("ordpath");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  UpdateStats stats;

  // Right of all children of b (1.3): new label 3.3 (rightmost 3.1 + 2).
  auto right = doc->InsertNode(ids[2], NodeKind::kElement, "nr", "",
                               xml::kInvalidNode, &stats);
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*right)), "3.3");
  EXPECT_EQ(stats.relabeled, 0u);

  // Left of all children of a (1.1): new label 1.-1.
  auto left =
      doc->InsertNode(ids[1], NodeKind::kElement, "nl", "", ids[4], &stats);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*left)), "1.-1");
  EXPECT_EQ(stats.relabeled, 0u);

  // Between 1.5.1 and 1.5.3 (c1 and c2): careting-in gives 1.5.2.1.
  auto caret =
      doc->InsertNode(ids[3], NodeKind::kElement, "nc", "", ids[8], &stats);
  ASSERT_TRUE(caret.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*caret)), "5.2.1");
  EXPECT_EQ(stats.relabeled, 0u);
  EXPECT_FALSE(stats.overflow);

  // Level is the count of odd components: the caret label is still at
  // depth 2 below the root.
  auto level = doc->scheme().Level(doc->label(*caret));
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, 2);
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  ASSERT_TRUE(doc->VerifyAxes().ok());
}

TEST(Figure5Test, LsdxInitialLabels) {
  NodeId ids[10];
  auto scheme = CreateScheme("lsdx");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  // Figure 5: root 0a; children 1a.b, 1a.c, 1a.d; grandchildren 2ab.b etc.
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[0])), "0a");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[1])), "1a.b");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[2])), "1a.c");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[3])), "1a.d");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[4])), "2ab.b");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[6])), "2ac.b");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[9])), "2ad.d");
}

TEST(Figure5Test, LsdxInsertionsMatchTheFigure) {
  NodeId ids[10];
  auto scheme = CreateScheme("lsdx");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());

  // Before the first child of a: prefix "a" -> 2ab.ab.
  auto before =
      doc->InsertNode(ids[1], NodeKind::kElement, "nb", "", ids[4], nullptr);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*before)), "2ab.ab");

  // After the last child of b: increment -> 2ac.c.
  auto after = doc->InsertNode(ids[2], NodeKind::kElement, "na", "",
                               xml::kInvalidNode, nullptr);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*after)), "2ac.c");

  // Between the first two children of c ("b" and "c"): falls back to
  // appending, giving 2ad.bb (the figure's middle insertion).
  auto mid =
      doc->InsertNode(ids[3], NodeKind::kElement, "nm", "", ids[8], nullptr);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*mid)), "2ad.bb");
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(Figure6Test, ImprovedBinaryInitialLabels) {
  NodeId ids[10];
  auto scheme = CreateScheme("improved-binary");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  // Figure 6: three children labelled 01, 0101, 011.
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[1])), "01");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[2])), "0101");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[3])), "011");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[4])), "01.01");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[5])), "01.011");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[7])), "011.01");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[8])), "011.0101");
  EXPECT_EQ(doc->scheme().Render(doc->label(ids[9])), "011.011");
}

TEST(Figure6Test, ImprovedBinaryInsertionsMatchTheFigure) {
  NodeId ids[10];
  auto scheme = CreateScheme("improved-binary");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(FigureTree(ids), scheme->get());
  ASSERT_TRUE(doc.ok());
  UpdateStats stats;

  // Before the first child of b (0101.01): last 1 becomes 01 -> 0101.001.
  // (b initially has a single child labelled 01.)
  auto before =
      doc->InsertNode(ids[2], NodeKind::kElement, "nb", "", ids[6], &stats);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*before)), "0101.001");
  EXPECT_EQ(stats.relabeled, 0u);

  // After the last child of b: concatenate a 1 -> 0101.011.
  auto after = doc->InsertNode(ids[2], NodeKind::kElement, "na", "",
                               xml::kInvalidNode, &stats);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*after)), "0101.011");

  // Between 011.01 and 011.0101 under c: AssignMiddleSelfLabel.
  auto mid =
      doc->InsertNode(ids[3], NodeKind::kElement, "nm", "", ids[8], &stats);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(doc->scheme().Render(doc->label(*mid)), "011.01001");
  EXPECT_EQ(stats.relabeled, 0u);
  ASSERT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  ASSERT_TRUE(doc->VerifyAxes().ok());
}

}  // namespace
}  // namespace xmlup::core
