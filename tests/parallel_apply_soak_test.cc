// Differential soak for the parallel-apply stage: the same deterministic
// transaction stream is driven — in the same submission order — through
// a store with the parallel-prepare stage on (apply_workers = 4) and a
// forced-serial twin (apply_workers = 1). The pipeline's contract is
// that the prepare stage is invisible: per-transaction outcomes, the
// final XML, every label byte, and the *raw journal bytes* must be
// bit-identical across the pair, for every labelling scheme. A slow
// commit hook keeps the submission queue ahead of the writer so batches
// really form and the prepare stage really runs.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "concurrency/concurrent_store.h"
#include "store/document_store.h"
#include "store/file.h"
#include "updates/update.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup::concurrency {
namespace {

using common::SplitMix64;
using store::DocumentStore;
using store::MemFileSystem;
using updates::UpdateRequest;

constexpr size_t kSections = 8;

// Builds "<prefix><n>" with append instead of operator+: GCC 12's
// -Wrestrict misfires on `const char* + std::string&&` at -O2 (PR
// 105651) and the sanitizer builds run with -Werror.
std::string Tag(const char* prefix, uint64_t n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

std::string CorpusXml() {
  std::string xml = "<corpus>";
  for (size_t i = 0; i < kSections; ++i) {
    xml += Tag("<s", i);
    xml += "><item><v>seed</v></item>";
    xml += Tag("</s", i);
    xml += ">";
  }
  xml += "</corpus>";
  return xml;
}

std::string Section(uint64_t i) { return Tag("/s", i); }

// One wave = the transactions submitted back-to-back before waiting;
// the generator is a pure function of the seed, so both twins (and both
// runs of the test) see the identical stream.
using Wave = std::vector<std::vector<UpdateRequest>>;

std::vector<UpdateRequest> Tokens(std::vector<std::string> tokens) {
  auto requests = updates::ParseActionTokens(std::move(tokens));
  EXPECT_TRUE(requests.ok()) << requests.status().ToString();
  return std::move(*requests);
}

std::vector<Wave> MakeWaves(uint64_t seed, size_t waves, size_t batch) {
  SplitMix64 rng(seed);
  uint64_t counter = 0;
  std::vector<Wave> out;
  out.reserve(waves);
  for (size_t w = 0; w < waves; ++w) {
    Wave wave;
    for (size_t t = 0; t < batch; ++t) {
      const std::string s = Section(rng.NextBelow(kSections));
      const std::string s2 = Section(rng.NextBelow(kSections));
      const std::string value = Tag("w", counter++);
      switch (rng.NextBelow(10)) {
        case 0:
        case 1:
        case 2:
        case 3:
          wave.push_back(
              Tokens({"-u", s + "/item/v/text()", "-v", value}));
          break;
        case 4:
          // Two disjoint edits in one transaction.
          wave.push_back(Tokens({"-u", s + "/item/v/text()", "-v", value,
                                 "-u", s2 + "/item/v/text()", "-v",
                                 value + "b"}));
          break;
        case 5:
          wave.push_back(Tokens({"-s", s + "/item", "-t", "elem", "-n",
                                 "x", "-v", value}));
          break;
        case 6:
          wave.push_back(
              Tokens({"-a", s + "/item", "-t", "elem", "-n", "y"}));
          break;
        case 7:
          // May find nothing: a failing transaction (NotFound) must be
          // reported — and rolled back — identically on both twins.
          wave.push_back(Tokens({"-d", s + "/item/x"}));
          break;
        case 8:
          wave.push_back(Tokens({"-r", s + "/item/x", "-v", "xx"}));
          break;
        default:
          wave.push_back(Tokens({"-m", s + "/item/x", s2 + "/item"}));
          break;
      }
    }
    out.push_back(std::move(wave));
  }
  return out;
}

/// Slows every group commit so the single submitting thread runs ahead
/// of the writer and multi-transaction batches actually form.
class SlowCommitHook : public CommitHook {
 public:
  void OnCommit(store::DocumentStore*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

struct StreamOutcome {
  /// (ok, matched, message) per transaction, in submission order.
  std::vector<std::tuple<bool, size_t, std::string>> results;
  std::string xml;
  std::vector<std::string> labels;
  std::string journal;
  ConcurrentStoreStats stats;
};

std::vector<std::string> LabelBytes(const core::LabeledDocument& doc) {
  std::vector<std::string> out;
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

StreamOutcome RunStream(const std::vector<Wave>& waves,
                        std::string_view scheme, size_t workers) {
  MemFileSystem fs;
  SlowCommitHook hook;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  // Pin the journal: a checkpoint rolls the file at a batch boundary,
  // and batch boundaries are timing-dependent — the one thing the
  // byte-for-byte comparison must not see.
  options.store.checkpoint.max_journal_bytes = 1ull << 40;
  options.store.checkpoint.max_journal_records = 1ull << 40;
  options.commit_hook = &hook;
  options.crosscheck_every = 1;  // audit every published view
  options.apply_workers = workers;

  auto tree = xml::ParseDocument(CorpusXml());
  EXPECT_TRUE(tree.ok());
  auto created =
      ConcurrentStore::Create("db", std::move(*tree), scheme, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  ConcurrentStore& store = **created;

  StreamOutcome outcome;
  for (const Wave& wave : waves) {
    std::vector<std::future<UpdateResult>> futures;
    futures.reserve(wave.size());
    for (const std::vector<UpdateRequest>& txn : wave) {
      futures.push_back(store.SubmitTransaction(txn));
    }
    for (auto& future : futures) {
      UpdateResult result = future.get();
      outcome.results.emplace_back(result.status.ok(), result.matched,
                                   result.status.ToString());
    }
  }
  outcome.stats = store.stats();
  store.Stop();

  // The raw journal bytes, the serial-equivalence witness. The sequence
  // never rolls (checkpoints are pinned off), but scan a few names so a
  // changed initial sequence cannot silently compare empty strings.
  for (uint64_t seq = 0; seq < 8; ++seq) {
    char name[32];
    std::snprintf(name, sizeof(name), "db/journal-%06llu",
                  static_cast<unsigned long long>(seq));
    auto bytes = fs.ReadFile(name);
    if (bytes.ok()) outcome.journal += *bytes;
  }
  EXPECT_FALSE(outcome.journal.empty());

  store::StoreOptions reopen;
  reopen.fs = &fs;
  auto opened = DocumentStore::Open("db", reopen);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  auto serialized = xml::SerializeDocument((*opened)->document().tree());
  EXPECT_TRUE(serialized.ok());
  outcome.xml = *serialized;
  outcome.labels = LabelBytes((*opened)->document());
  return outcome;
}

TEST(ParallelApplySoak, BitIdenticalToForcedSerialTwinAcrossSchemes) {
  const std::vector<Wave> waves = MakeWaves(/*seed=*/0xA11CE, /*waves=*/24,
                                            /*batch=*/6);
  for (const char* scheme : {"dewey", "ordpath", "qed"}) {
    SCOPED_TRACE(scheme);
    StreamOutcome parallel = RunStream(waves, scheme, /*workers=*/4);
    StreamOutcome serial = RunStream(waves, scheme, /*workers=*/1);
    EXPECT_EQ(parallel.results, serial.results);
    EXPECT_EQ(parallel.xml, serial.xml);
    EXPECT_EQ(parallel.labels, serial.labels);
    EXPECT_EQ(parallel.journal, serial.journal)
        << "journal bytes diverged from the serial apply";
    // The serial twin must never have run the prepare stage; the
    // parallel store must actually have exercised it.
    EXPECT_EQ(serial.stats.parallel_batches, 0u);
    EXPECT_GT(parallel.stats.parallel_batches, 0u);
    EXPECT_GT(parallel.stats.txns_fast, 0u);
  }
}

TEST(ParallelApplySoak, DisjointBatchesTakeTheFastPath) {
  // Every transaction edits its own section: all pairwise independent.
  std::vector<Wave> waves;
  uint64_t counter = 0;
  for (size_t w = 0; w < 12; ++w) {
    Wave wave;
    for (size_t s = 0; s < kSections; ++s) {
      wave.push_back(Tokens({"-u", Section(s) + "/item/v/text()", "-v",
                             Tag("d", counter++)}));
    }
    waves.push_back(std::move(wave));
  }
  StreamOutcome out = RunStream(waves, "dewey", /*workers=*/4);
  for (const auto& [ok, matched, message] : out.results) {
    EXPECT_TRUE(ok) << message;
    EXPECT_EQ(matched, 1u);
  }
  ASSERT_GT(out.stats.parallel_batches, 0u);
  EXPECT_GT(out.stats.txns_fast, 0u);
  EXPECT_EQ(out.stats.prepare_fallbacks, 0u);
}

TEST(ParallelApplySoak, ConflictingBatchesDegradeToSerial) {
  // Every transaction edits the same node: no pair is independent, so
  // every prepared transaction must take the live serial path — and the
  // outcome must still match the forced-serial twin exactly.
  std::vector<Wave> waves;
  uint64_t counter = 0;
  for (size_t w = 0; w < 12; ++w) {
    Wave wave;
    for (size_t t = 0; t < 6; ++t) {
      wave.push_back(Tokens({"-u", "/s0/item/v/text()", "-v",
                             Tag("c", counter++)}));
    }
    waves.push_back(std::move(wave));
  }
  StreamOutcome parallel = RunStream(waves, "dewey", /*workers=*/4);
  StreamOutcome serial = RunStream(waves, "dewey", /*workers=*/1);
  EXPECT_EQ(parallel.results, serial.results);
  EXPECT_EQ(parallel.xml, serial.xml);
  EXPECT_EQ(parallel.journal, serial.journal);
  EXPECT_EQ(parallel.stats.txns_fast, 0u);
  ASSERT_GT(parallel.stats.parallel_batches, 0u);
  EXPECT_GT(parallel.stats.txns_conflicted, 0u);
}

}  // namespace
}  // namespace xmlup::concurrency
