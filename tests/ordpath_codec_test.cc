// ORDPATH codec internals: the odd/even careting rules of O'Neil et al.

#include <gtest/gtest.h>

#include "labels/ordpath_codec.h"

namespace xmlup::labels {
namespace {

std::string Code(std::initializer_list<int64_t> components) {
  return OrdpathCodec::Pack(std::vector<int64_t>(components));
}

class OrdpathCodecTest : public ::testing::Test {
 protected:
  OrdpathCodec codec_;
};

TEST_F(OrdpathCodecTest, InitialCodesAreOddIntegers) {
  std::vector<std::string> codes;
  ASSERT_TRUE(codec_.InitialCodes(4, &codes, nullptr).ok());
  EXPECT_EQ(codec_.Render(codes[0]), "1");
  EXPECT_EQ(codec_.Render(codes[1]), "3");
  EXPECT_EQ(codec_.Render(codes[2]), "5");
  EXPECT_EQ(codec_.Render(codes[3]), "7");
}

TEST_F(OrdpathCodecTest, AppendAddsTwoToTheRightmostOdd) {
  auto code = codec_.Between(Code({5}), "", nullptr);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(codec_.Render(*code), "7");
  // After a caret component, the next odd is one above the even.
  auto after_caret = codec_.Between(Code({6, 1}), "", nullptr);
  ASSERT_TRUE(after_caret.ok());
  EXPECT_EQ(codec_.Render(*after_caret), "7");
}

TEST_F(OrdpathCodecTest, PrependSubtractsTwoAndGoesNegative) {
  auto code = codec_.Between("", Code({1}), nullptr);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(codec_.Render(*code), "-1");
  auto again = codec_.Between("", *code, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(codec_.Render(*again), "-3");
}

TEST_F(OrdpathCodecTest, CaretingBetweenConsecutiveOdds) {
  auto code = codec_.Between(Code({1}), Code({3}), nullptr);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(codec_.Render(*code), "2.1");
  // Careting again between the caret and its right neighbour descends.
  auto deeper = codec_.Between(*code, Code({3}), nullptr);
  ASSERT_TRUE(deeper.ok());
  EXPECT_EQ(codec_.Render(*deeper), "2.3");
  auto between_carets = codec_.Between(*code, *deeper, nullptr);
  ASSERT_TRUE(between_carets.ok());
  EXPECT_EQ(codec_.Render(*between_carets), "2.2.1");
}

TEST_F(OrdpathCodecTest, WideGapsPickAnOddWithoutCareting) {
  auto code = codec_.Between(Code({1}), Code({7}), nullptr);
  ASSERT_TRUE(code.ok());
  // 4 is the midpoint; 5 is the odd above it and still below 7.
  EXPECT_EQ(codec_.Render(*code), "5");
}

TEST_F(OrdpathCodecTest, DivisionCounterTracksCareting) {
  common::OpCounters stats;
  ASSERT_TRUE(codec_.Between(Code({1}), Code({3}), &stats).ok());
  EXPECT_EQ(stats.divisions, 1u);
}

TEST_F(OrdpathCodecTest, ComparePrefixAndComponentOrder) {
  EXPECT_LT(codec_.Compare(Code({1}), Code({2, 1})), 0);
  EXPECT_LT(codec_.Compare(Code({2, 1}), Code({2, 3})), 0);
  EXPECT_LT(codec_.Compare(Code({2, 3}), Code({3})), 0);
  EXPECT_LT(codec_.Compare(Code({-1}), Code({1})), 0);
  EXPECT_EQ(codec_.Compare(Code({2, 1}), Code({2, 1})), 0);
}

TEST_F(OrdpathCodecTest, StorageGrowsWithComponentCountAndMagnitude) {
  EXPECT_LT(codec_.StorageBits(Code({1})), codec_.StorageBits(Code({2, 1})));
  EXPECT_LT(codec_.StorageBits(Code({1})),
            codec_.StorageBits(Code({1000001})));
}

TEST_F(OrdpathCodecTest, BudgetOverflow) {
  OrdpathCodec tight(/*max_code_bits=*/16);
  // Deepening caret chains exceed 16 bits quickly.
  std::string left = Code({1});
  std::string right = Code({3});
  bool overflowed = false;
  for (int i = 0; i < 10; ++i) {
    auto mid = tight.Between(left, right, nullptr);
    if (!mid.ok()) {
      EXPECT_EQ(mid.status().code(), common::StatusCode::kOverflow);
      overflowed = true;
      break;
    }
    right = *mid;  // Keep bisecting toward `left`.
    auto mid2 = tight.Between(left, right, nullptr);
    if (!mid2.ok()) {
      overflowed = true;
      break;
    }
    left = *mid2;
  }
  EXPECT_TRUE(overflowed);
}

TEST_F(OrdpathCodecTest, PackUnpackRoundTrip) {
  std::vector<int64_t> components = {1, -5, 1LL << 40, -(1LL << 40)};
  EXPECT_EQ(OrdpathCodec::Unpack(OrdpathCodec::Pack(components)),
            components);
}

}  // namespace
}  // namespace xmlup::labels
