// Integration tests of the evaluation framework (§5): probes grade the
// schemes, and the mechanically derived matrix agrees with the published
// Figure 7 on the behaviourally decidable columns.

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/property_probes.h"

namespace xmlup::core {
namespace {

TEST(PropertyProbesTest, PersistenceGrades) {
  PropertyProbes probes;
  // Overflow-free schemes keep every existing label.
  for (const char* scheme : {"ordpath", "improved-binary", "qed", "cdqs",
                             "vector"}) {
    auto result = probes.Persistence(scheme);
    ASSERT_TRUE(result.ok()) << scheme;
    EXPECT_EQ(result->compliance, Compliance::kFull)
        << scheme << ": " << result->evidence;
  }
  // Gap-free, fixed and collision-prone schemes do not.
  for (const char* scheme : {"xpath-accelerator", "xrel", "sector", "qrs",
                             "dewey", "dln", "lsdx"}) {
    auto result = probes.Persistence(scheme);
    ASSERT_TRUE(result.ok()) << scheme;
    EXPECT_EQ(result->compliance, Compliance::kNone)
        << scheme << ": " << result->evidence;
  }
}

TEST(PropertyProbesTest, OverflowGrades) {
  PropertyProbes probes;
  for (const char* scheme : {"qed", "cdqs", "vector"}) {
    auto result = probes.Overflow(scheme);
    ASSERT_TRUE(result.ok()) << scheme;
    EXPECT_EQ(result->compliance, Compliance::kFull)
        << scheme << ": " << result->evidence;
  }
  for (const char* scheme : {"dewey", "ordpath", "dln", "improved-binary",
                             "lsdx", "cdbs", "xpath-accelerator"}) {
    auto result = probes.Overflow(scheme);
    ASSERT_TRUE(result.ok()) << scheme;
    EXPECT_EQ(result->compliance, Compliance::kNone)
        << scheme << ": " << result->evidence;
  }
}

TEST(PropertyProbesTest, XPathGrades) {
  PropertyProbes probes;
  auto full = probes.XPathEvaluations("qed");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->compliance, Compliance::kFull);
  auto partial = probes.XPathEvaluations("vector");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->compliance, Compliance::kPartial);
}

TEST(PropertyProbesTest, LevelGrades) {
  PropertyProbes probes;
  auto yes = probes.LevelEncoding("xpath-accelerator");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->compliance, Compliance::kFull);
  auto no = probes.LevelEncoding("sector");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->compliance, Compliance::kNone);
}

TEST(PropertyProbesTest, DivisionGrades) {
  PropertyProbes probes;
  for (const char* scheme : {"dewey", "vector", "xpath-accelerator"}) {
    auto result = probes.DivisionComputation(scheme);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->compliance, Compliance::kFull) << scheme;
  }
  for (const char* scheme : {"ordpath", "improved-binary", "qed", "cdqs"}) {
    auto result = probes.DivisionComputation(scheme);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->compliance, Compliance::kNone) << scheme;
  }
}

TEST(PropertyProbesTest, RecursionGrades) {
  PropertyProbes probes;
  for (const char* scheme : {"dewey", "ordpath", "dln", "lsdx", "qrs",
                             "xpath-accelerator"}) {
    auto result = probes.RecursiveLabelling(scheme);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->compliance, Compliance::kFull) << scheme;
  }
  for (const char* scheme : {"sector", "improved-binary", "qed", "cdqs",
                             "vector"}) {
    auto result = probes.RecursiveLabelling(scheme);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->compliance, Compliance::kNone) << scheme;
  }
}

TEST(PaperExpectationTest, AllTwelveRowsPresent) {
  for (const char* scheme :
       {"xpath-accelerator", "xrel", "sector", "qrs", "dewey", "ordpath",
        "dln", "lsdx", "improved-binary", "qed", "cdqs", "vector"}) {
    EXPECT_TRUE(PaperFigure7Row(scheme).has_value()) << scheme;
  }
  EXPECT_FALSE(PaperFigure7Row("prime").has_value());
}

TEST(FrameworkTest, CdqsEvaluationMatchesThePaperRow) {
  // The paper singles out CDQS as satisfying the greatest number of
  // properties (§5.2); verify its full row end-to-end.
  EvaluationFramework framework;
  auto eval = framework.Evaluate("cdqs");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_EQ(eval->order_approach, labels::OrderApproach::kHybrid);
  EXPECT_EQ(eval->encoding_rep, labels::EncodingRep::kVariable);
  EXPECT_EQ(eval->persistent.compliance, Compliance::kFull);
  EXPECT_EQ(eval->xpath.compliance, Compliance::kFull);
  EXPECT_EQ(eval->level.compliance, Compliance::kFull);
  EXPECT_EQ(eval->overflow.compliance, Compliance::kFull);
  EXPECT_EQ(eval->orthogonal.compliance, Compliance::kFull);
  EXPECT_EQ(eval->compact.compliance, Compliance::kFull);
  EXPECT_EQ(eval->division.compliance, Compliance::kNone);
  EXPECT_EQ(eval->recursion.compliance, Compliance::kNone);
}

TEST(FrameworkTest, FormatMatrixRendersRowsAndDiffMarks) {
  EvaluationFramework framework;
  auto eval = framework.Evaluate("xrel");
  ASSERT_TRUE(eval.ok());
  std::string matrix =
      EvaluationFramework::FormatMatrix({*eval}, /*diff_against_paper=*/true);
  EXPECT_NE(matrix.find("XRel"), std::string::npos);
  EXPECT_NE(matrix.find("Global"), std::string::npos);
  std::string evidence = EvaluationFramework::FormatEvidence({*eval});
  EXPECT_NE(evidence.find("Persistent:"), std::string::npos);
}

TEST(ComplianceTest, Chars) {
  EXPECT_EQ(ComplianceChar(Compliance::kFull), 'F');
  EXPECT_EQ(ComplianceChar(Compliance::kPartial), 'P');
  EXPECT_EQ(ComplianceChar(Compliance::kNone), 'N');
}

}  // namespace
}  // namespace xmlup::core
