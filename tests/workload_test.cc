#include <gtest/gtest.h>

#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace xmlup::workload {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(DocumentGeneratorTest, HitsTargetSizeApproximately) {
  DocumentShape shape;
  shape.target_nodes = 500;
  shape.seed = 1;
  auto tree = GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->node_count(), 450u);
  EXPECT_LE(tree->node_count(), 600u);
}

TEST(DocumentGeneratorTest, DeterministicInSeed) {
  DocumentShape shape;
  shape.target_nodes = 120;
  shape.seed = 9;
  Tree a = GenerateDocument(shape).value();
  Tree b = GenerateDocument(shape).value();
  std::vector<NodeId> pa = a.PreorderNodes();
  std::vector<NodeId> pb = b.PreorderNodes();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(a.name(pa[i]), b.name(pb[i]));
    EXPECT_EQ(a.kind(pa[i]), b.kind(pb[i]));
  }
}

TEST(DocumentGeneratorTest, RespectsMaxDepth) {
  DocumentShape shape;
  shape.target_nodes = 400;
  shape.max_depth = 3;
  shape.seed = 2;
  Tree tree = GenerateDocument(shape).value();
  for (NodeId n : tree.PreorderNodes()) {
    EXPECT_LE(tree.Depth(n), 4);  // Elements to depth 3, +1 for leaves.
  }
}

TEST(DocumentGeneratorTest, RejectsZeroTarget) {
  DocumentShape shape;
  shape.target_nodes = 0;
  EXPECT_FALSE(GenerateDocument(shape).ok());
}

TEST(DocumentGeneratorTest, SampleBookMatchesThePaper) {
  Tree tree = SampleBookDocument();
  EXPECT_EQ(tree.name(tree.root()), "book");
  EXPECT_EQ(tree.node_count(), 15u);  // 10 structural + 5 text nodes.
  std::vector<NodeId> kids = tree.Children(tree.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(tree.name(kids[0]), "title");
  EXPECT_EQ(tree.name(kids[1]), "author");
  EXPECT_EQ(tree.name(kids[2]), "publisher");
}

TEST(DocumentGeneratorTest, DeepDocumentReachesDepth) {
  auto tree = GenerateDeepDocument(10, 2, 3);
  ASSERT_TRUE(tree.ok());
  int max_depth = 0;
  for (NodeId n : tree->PreorderNodes()) {
    max_depth = std::max(max_depth, tree->Depth(n));
  }
  EXPECT_GE(max_depth, 8);
  EXPECT_FALSE(GenerateDeepDocument(0, 1, 1).ok());
}

TEST(InsertionPlannerTest, AppendAlwaysTargetsSameParentTail) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kAppend, 1);
  auto pos = planner.Next(tree);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->parent, tree.root());
  EXPECT_EQ(pos->before, xml::kInvalidNode);
}

TEST(InsertionPlannerTest, PrependTargetsFirstChild) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kPrepend, 1);
  auto pos = planner.Next(tree);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->parent, tree.root());
  EXPECT_EQ(pos->before, tree.first_child(tree.root()));
}

TEST(InsertionPlannerTest, SkewedFixedKeepsTheSameAnchor) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kSkewedFixed, 1);
  auto first = planner.Next(tree);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto next = planner.Next(tree);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next->parent, first->parent);
    EXPECT_EQ(next->before, first->before);
  }
}

TEST(InsertionPlannerTest, SkewedRecoversWhenAnchorIsDeleted) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kSkewedFixed, 1);
  auto first = planner.Next(tree);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(tree.RemoveSubtree(first->before).ok());
  auto next = planner.Next(tree);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->before == xml::kInvalidNode ||
              tree.IsValid(next->before));
}

TEST(InsertionPlannerTest, RandomPositionsAreValid) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kRandom, 3);
  for (int i = 0; i < 50; ++i) {
    auto pos = planner.Next(tree);
    ASSERT_TRUE(pos.ok());
    ASSERT_TRUE(tree.IsValid(pos->parent));
    EXPECT_EQ(tree.kind(pos->parent), NodeKind::kElement);
    if (pos->before != xml::kInvalidNode) {
      EXPECT_EQ(tree.parent(pos->before), pos->parent);
    }
  }
}

TEST(InsertionPlannerTest, UniformPositionsAreValid) {
  Tree tree = SampleBookDocument();
  InsertionPlanner planner(InsertPattern::kUniform, 3);
  for (int i = 0; i < 50; ++i) {
    auto pos = planner.Next(tree);
    ASSERT_TRUE(pos.ok());
    ASSERT_TRUE(tree.IsValid(pos->parent));
    if (pos->before != xml::kInvalidNode) {
      EXPECT_EQ(tree.parent(pos->before), pos->parent);
    }
  }
}

TEST(InsertionPlannerTest, EmptyTreeRejected) {
  Tree tree;
  InsertionPlanner planner(InsertPattern::kRandom, 3);
  EXPECT_FALSE(planner.Next(tree).ok());
}

TEST(InsertPatternTest, Names) {
  EXPECT_EQ(InsertPatternName(InsertPattern::kRandom), "random");
  EXPECT_EQ(InsertPatternName(InsertPattern::kUniform), "uniform");
  EXPECT_EQ(InsertPatternName(InsertPattern::kSkewedFixed), "skewed");
  EXPECT_EQ(InsertPatternName(InsertPattern::kAppend), "append");
  EXPECT_EQ(InsertPatternName(InsertPattern::kPrepend), "prepend");
}

}  // namespace
}  // namespace xmlup::workload
