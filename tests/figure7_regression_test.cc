// The headline regression: the mechanically derived Figure 7 matrix must
// match the published one on every cell except the two documented
// divergences (ORDPATH and LSDX on Compact Encoding, see EXPERIMENTS.md),
// whose measured values are also pinned so any drift is caught.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/framework.h"

namespace xmlup::core {
namespace {

char Measured(const PropertyResult& result) {
  return ComplianceChar(result.compliance);
}

TEST(Figure7RegressionTest, MatrixMatchesThePaperModuloDocumentedCells) {
  EvaluationFramework framework;
  auto rows = framework.EvaluateAll(/*matrix_only=*/true);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 12u);

  // (scheme, column) -> measured value for the documented divergences.
  const std::map<std::pair<std::string, std::string>, char> kKnown = {
      {{"ordpath", "compact"}, 'F'},  // Paper: N. See EXPERIMENTS.md E7.
      {{"lsdx", "compact"}, 'F'},     // Paper: N. See EXPERIMENTS.md E7.
  };

  size_t checked = 0;
  for (const SchemeEvaluation& row : *rows) {
    auto paper = PaperFigure7Row(row.name);
    ASSERT_TRUE(paper.has_value()) << row.name;
    EXPECT_EQ(std::string(labels::OrderApproachName(row.order_approach)),
              paper->order)
        << row.name;
    EXPECT_EQ(std::string(labels::EncodingRepName(row.encoding_rep)),
              paper->encoding)
        << row.name;
    checked += 2;

    struct Cell {
      const char* column;
      char measured;
      char published;
    };
    const Cell cells[] = {
        {"persistent", Measured(row.persistent), paper->persistent},
        {"xpath", Measured(row.xpath), paper->xpath},
        {"level", Measured(row.level), paper->level},
        {"overflow", Measured(row.overflow), paper->overflow},
        {"orthogonal", Measured(row.orthogonal), paper->orthogonal},
        {"compact", Measured(row.compact), paper->compact},
        {"division", Measured(row.division), paper->division},
        {"recursion", Measured(row.recursion), paper->recursion},
    };
    for (const Cell& cell : cells) {
      auto known = kKnown.find({row.name, cell.column});
      if (known != kKnown.end()) {
        // A documented divergence: pin the measured value instead.
        EXPECT_EQ(cell.measured, known->second)
            << row.name << " " << cell.column
            << " (documented divergence drifted)";
      } else {
        EXPECT_EQ(cell.measured, cell.published)
            << row.name << " " << cell.column << " — "
            << "probe no longer reproduces the published Figure 7 cell";
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, 12u * 10u);
}

}  // namespace
}  // namespace xmlup::core
