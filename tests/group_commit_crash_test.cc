// Acknowledged-implies-durable under group commit: a batch is
// acknowledged only after its single CommitBatch() fsync, so a crash at
// ANY byte offset of the journal — including every point inside the
// append/fsync window of a later, unacknowledged batch — must recover a
// store that (a) contains every acknowledged batch in full and (b) equals
// the reference replay of exactly the surviving record prefix. Runs for a
// prefix-order scheme (dewey) and a global-order scheme (containment).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "concurrency/update.h"
#include "core/snapshot.h"
#include "store/document_store.h"
#include "store/file.h"
#include "store/journal.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlup {
namespace {

using concurrency::ApplyUpdate;
using concurrency::UpdateRequest;
using core::LabeledDocument;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

constexpr char kBaseDoc[] =
    "<library><shelf id=\"a\"><book><title>Iliad</title></book></shelf>"
    "<shelf id=\"b\"><book><title>Aeneid</title></book></shelf></library>";

UpdateRequest Insert(UpdateRequest::Op op, std::string xpath,
                     xml::NodeKind kind, std::string name,
                     std::string value = "") {
  UpdateRequest request;
  request.op = op;
  request.xpath = std::move(xpath);
  request.kind = kind;
  request.name = std::move(name);
  request.value = std::move(value);
  return request;
}

// The two batches of the scripted session. Batch 1 is committed
// (acknowledged); batch 2 is applied but crashes before its commit.
std::vector<UpdateRequest> BatchOne() {
  std::vector<UpdateRequest> batch;
  batch.push_back(Insert(UpdateRequest::Op::kInsertChild, ".",
                         xml::NodeKind::kElement, "shelf"));
  batch.push_back(Insert(UpdateRequest::Op::kInsertBefore, "/shelf[1]",
                         xml::NodeKind::kComment, "", "front matter"));
  batch.push_back(Insert(UpdateRequest::Op::kInsertChild,
                         "//shelf[@id='a']", xml::NodeKind::kElement,
                         "book"));
  UpdateRequest up;
  up.op = UpdateRequest::Op::kSetValue;
  up.xpath = "//title/text()";
  up.value = "Iliad (rev)";
  batch.push_back(up);
  return batch;
}

std::vector<UpdateRequest> BatchTwo() {
  std::vector<UpdateRequest> batch;
  UpdateRequest del;
  del.op = UpdateRequest::Op::kDelete;
  del.xpath = "//shelf[@id='b']";
  batch.push_back(del);
  batch.push_back(Insert(UpdateRequest::Op::kInsertChild, ".",
                         xml::NodeKind::kElement, "coda", ""));
  batch.push_back(Insert(UpdateRequest::Op::kInsertAfter, "/shelf[1]",
                         xml::NodeKind::kElement, "annex"));
  return batch;
}

// Primitive updates recorded through the observer hook — the reference
// replay never touches the journal code path under test.
struct RecordedOp {
  enum class Kind { kInsert, kRemove, kSetValue };
  Kind kind = Kind::kInsert;
  NodeId node = xml::kInvalidNode;
  NodeId parent = xml::kInvalidNode;
  NodeId before = xml::kInvalidNode;
  xml::NodeKind node_kind = xml::NodeKind::kElement;
  std::string name;
  std::string value;
};

class Recorder : public core::UpdateObserver {
 public:
  void OnInsertNode(const LabeledDocument& doc, NodeId node,
                    const core::UpdateStats&) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kInsert;
    op.node = node;
    op.parent = doc.tree().parent(node);
    op.before = doc.tree().next_sibling(node);
    op.node_kind = doc.tree().kind(node);
    op.name = doc.tree().name(node);
    op.value = doc.tree().value(node);
    ops.push_back(std::move(op));
  }
  void OnRemoveSubtree(const LabeledDocument&, NodeId node) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kRemove;
    op.node = node;
    ops.push_back(std::move(op));
  }
  void OnUpdateValue(const LabeledDocument& doc, NodeId node) override {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kSetValue;
    op.node = node;
    op.value = doc.tree().value(node);
    ops.push_back(std::move(op));
  }

  std::vector<RecordedOp> ops;
};

std::vector<std::string> LabelBytes(const LabeledDocument& doc) {
  std::vector<std::string> out;
  for (NodeId n : doc.tree().PreorderNodes()) {
    out.push_back(doc.label(n).bytes());
  }
  return out;
}

std::string Serialize(const LabeledDocument& doc) {
  auto text = xml::SerializeDocument(doc.tree());
  EXPECT_TRUE(text.ok());
  return *text;
}

struct ReferenceState {
  std::vector<std::string> labels;
  std::string xml;
};

struct GroupedSession {
  std::string snapshot;
  std::string journal;        // full journal: batch 1 + batch 2 records
  uint64_t acked_bytes = 0;   // journal size when batch 1 was committed
  size_t acked_records = 0;   // records covered by that commit
  std::vector<RecordedOp> ops;
};

GroupedSession RunGroupedSession(const std::string& scheme) {
  GroupedSession session;
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;  // group commit owns the barrier
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create("db", [] {
        auto tree = xml::ParseDocument(kBaseDoc);
        EXPECT_TRUE(tree.ok());
        return std::move(*tree);
      }(),
      scheme, options);
  EXPECT_TRUE(st.ok()) << scheme << ": " << st.status().ToString();
  if (!st.ok()) return session;

  Recorder recorder;
  (*st)->mutable_document()->AddUpdateObserver(&recorder);

  for (const UpdateRequest& request : BatchOne()) {
    EXPECT_TRUE(ApplyUpdate(st->get(), request, nullptr).ok());
  }
  EXPECT_TRUE((*st)->CommitBatch().ok());  // batch 1 acknowledged here
  session.acked_bytes = fs.FileSize("db/" + store::JournalFileName(1));
  session.acked_records = (*st)->stats().journal_records;
  EXPECT_EQ((*st)->stats().group_commits, 1u);
  EXPECT_EQ((*st)->stats().group_committed_records, session.acked_records);

  for (const UpdateRequest& request : BatchTwo()) {
    EXPECT_TRUE(ApplyUpdate(st->get(), request, nullptr).ok());
  }
  // Crash happens before batch 2's commit: no fsync, no acknowledgement.

  (*st)->mutable_document()->RemoveUpdateObserver(&recorder);
  session.snapshot = *fs.GetFile("db/" + store::SnapshotFileName(1));
  session.journal = *fs.GetFile("db/" + store::JournalFileName(1));
  session.ops = recorder.ops;
  EXPECT_GT(session.journal.size(), session.acked_bytes);
  EXPECT_GT(session.acked_records, 0u);
  return session;
}

std::vector<ReferenceState> BuildReferenceStates(
    const GroupedSession& session) {
  std::vector<ReferenceState> states;
  std::unique_ptr<labels::LabelingScheme> scheme;
  auto doc = core::LoadSnapshot(session.snapshot, &scheme);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  states.push_back({LabelBytes(*doc), Serialize(*doc)});
  for (const RecordedOp& op : session.ops) {
    switch (op.kind) {
      case RecordedOp::Kind::kInsert: {
        auto node = doc->InsertNode(op.parent, op.node_kind, op.name,
                                    op.value, op.before);
        EXPECT_TRUE(node.ok()) << node.status().ToString();
        EXPECT_EQ(*node, op.node);
        break;
      }
      case RecordedOp::Kind::kRemove:
        EXPECT_TRUE(doc->RemoveSubtree(op.node).ok());
        break;
      case RecordedOp::Kind::kSetValue:
        EXPECT_TRUE(doc->UpdateValue(op.node, op.value).ok());
        break;
    }
    states.push_back({LabelBytes(*doc), Serialize(*doc)});
  }
  return states;
}

void CheckCrashAtOffset(const std::string& scheme,
                        const GroupedSession& session,
                        const std::vector<ReferenceState>& states,
                        size_t cut) {
  SCOPED_TRACE(scheme + " crash at byte " + std::to_string(cut));
  MemFileSystem fs;
  fs.SetFile("db/" + std::string(store::kCurrentFileName), "1\n");
  fs.SetFile("db/" + store::SnapshotFileName(1), session.snapshot);
  fs.SetFile("db/" + store::JournalFileName(1),
             session.journal.substr(0, cut));
  StoreOptions options;
  options.fs = &fs;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Open("db", options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  const size_t k = (*st)->stats().recovered_records;
  ASSERT_LT(k, states.size());

  // The acknowledged batch is all-or-nothing durable: any crash after the
  // commit point keeps at least its records.
  if (cut >= session.acked_bytes) {
    EXPECT_GE(k, session.acked_records)
        << "acknowledged batch lost by a crash after its commit";
  }
  const LabeledDocument& doc = (*st)->document();
  EXPECT_EQ(LabelBytes(doc), states[k].labels)
      << "recovered labels differ from reference replay of " << k
      << " updates";
  EXPECT_EQ(Serialize(doc), states[k].xml);
  ASSERT_TRUE(doc.VerifyOrderAndUniqueness().ok());
}

class GroupCommitCrashTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GroupCommitCrashTest, EveryByteOffsetKeepsTheAcknowledgedBatch) {
  const std::string scheme = GetParam();
  GroupedSession session = RunGroupedSession(scheme);
  ASSERT_FALSE(session.ops.empty());
  std::vector<ReferenceState> states = BuildReferenceStates(session);
  ASSERT_EQ(states.size(), session.ops.size() + 1);
  for (size_t cut = 0; cut <= session.journal.size(); ++cut) {
    CheckCrashAtOffset(scheme, session, states, cut);
  }
}

// A failed group-commit fsync must not acknowledge: the durable journal
// is capped below the batch's records, CommitBatch reports the failure,
// and recovery comes back without the batch — never with a torn piece of
// it counted as acknowledged.
TEST_P(GroupCommitCrashTest, FailedCommitSyncIsNotAcknowledged) {
  const std::string scheme = GetParam();
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create("db", [] {
        auto tree = xml::ParseDocument(kBaseDoc);
        EXPECT_TRUE(tree.ok());
        return std::move(*tree);
      }(),
      scheme, options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  for (const UpdateRequest& request : BatchOne()) {
    ASSERT_TRUE(ApplyUpdate(st->get(), request, nullptr).ok());
  }
  ASSERT_TRUE((*st)->CommitBatch().ok());
  const std::vector<std::string> acked_labels = LabelBytes((*st)->document());
  const std::string acked_xml = Serialize((*st)->document());
  const uint64_t acked_bytes = fs.FileSize("db/" + store::JournalFileName(1));
  const uint64_t acked_records = (*st)->stats().journal_records;

  // Batch 2: the page cache drops everything past the acked prefix and
  // the commit fsync fails — exactly a power loss at the worst moment.
  fs.SetWriteLimit("db/" + store::JournalFileName(1), acked_bytes);
  for (const UpdateRequest& request : BatchTwo()) {
    ASSERT_TRUE(ApplyUpdate(st->get(), request, nullptr).ok());
  }
  fs.FailNextSyncs(1);
  EXPECT_FALSE((*st)->CommitBatch().ok());

  st->reset();
  fs.ClearWriteLimit("db/" + store::JournalFileName(1));
  auto reopened = DocumentStore::Open("db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().recovered_records, acked_records);
  EXPECT_EQ(LabelBytes((*reopened)->document()), acked_labels);
  EXPECT_EQ(Serialize((*reopened)->document()), acked_xml);
}

// "dewey" is the prefix-order representative; "xpath-accelerator" is the
// containment (pre/post interval) representative.
INSTANTIATE_TEST_SUITE_P(Representatives, GroupCommitCrashTest,
                         ::testing::Values("dewey", "xpath-accelerator"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace xmlup
