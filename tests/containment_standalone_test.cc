// Scheme-specific behaviour of the standalone containment schemes:
// XPath Accelerator (pre/post), XRel regions, Sector partitioning and QRS
// floating-point intervals — including each scheme's §3.1.1 failure mode.

#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/prepost_scheme.h"
#include "labels/qrs_scheme.h"
#include "labels/registry.h"
#include "labels/sector_scheme.h"
#include "labels/xrel_scheme.h"
#include "workload/document_generator.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(XRelSchemeTest, RegionsComeFromEntryExitPositions) {
  auto scheme = labels::CreateScheme("xrel");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  labels::XRelScheme::Region region;
  ASSERT_TRUE(labels::XRelScheme::Decode(doc->label(root), &region));
  EXPECT_EQ(region.start, 0u);
  EXPECT_EQ(region.end, 5u);  // Six positions: r a /a b /b /r.
  ASSERT_TRUE(labels::XRelScheme::Decode(doc->label(a), &region));
  EXPECT_EQ(region.start, 1u);
  EXPECT_EQ(region.end, 2u);
  ASSERT_TRUE(labels::XRelScheme::Decode(doc->label(b), &region));
  EXPECT_EQ(region.start, 3u);
  EXPECT_EQ(region.end, 4u);
}

TEST(XRelSchemeTest, EveryInsertRenumbersFollowingRegions) {
  auto scheme = labels::CreateScheme("xrel");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  UpdateStats stats;
  // Append at the very end: only the ancestors' end positions move.
  ASSERT_TRUE(doc->InsertNode(doc->tree().root(), NodeKind::kElement, "z",
                              "", xml::kInvalidNode, &stats)
                  .ok());
  EXPECT_GT(stats.relabeled, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(SectorSchemeTest, ChildSectorsNestStrictlyInsideParents) {
  auto scheme = labels::CreateScheme("sector");
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 100;
  shape.seed = 9;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  for (NodeId n : doc->tree().PreorderNodes()) {
    NodeId parent = doc->tree().parent(n);
    if (parent == xml::kInvalidNode) continue;
    labels::SectorScheme::Sector child, owner;
    ASSERT_TRUE(labels::SectorScheme::Decode(doc->label(n), &child));
    ASSERT_TRUE(labels::SectorScheme::Decode(doc->label(parent), &owner));
    EXPECT_GT(child.lo, owner.lo);
    EXPECT_LT(child.hi, owner.hi);
    EXPECT_LT(child.lo, child.hi);
  }
}

TEST(SectorSchemeTest, LocalisedInsertionExhaustsAndResectors) {
  auto scheme = labels::CreateScheme("sector");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();
  for (int i = 0; i < 80; ++i) {
    auto node = doc->InsertNode(root, NodeKind::kElement, "s", "", b);
    ASSERT_TRUE(node.ok()) << "insert " << i;
  }
  // The fixed 2^62 angle space between two siblings halves per insert and
  // must have been re-sectored at least once.
  EXPECT_GT((*scheme)->counters().overflows, 0u);
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(QrsSchemeTest, FloatingPointPrecisionExhaustsAroundFiftySteps) {
  // §3.1.1: "computers represent floating point numbers with a fixed
  // number of bits and thus in practice the solution is similar to an
  // integer representation with sparse allocation".
  auto scheme = labels::CreateScheme("qrs");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  tree.AppendChild(root, NodeKind::kElement, "a").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());
  (*scheme)->ResetCounters();
  int first_renumber = -1;
  for (int i = 0; i < 120 && first_renumber < 0; ++i) {
    UpdateStats stats;
    ASSERT_TRUE(
        doc->InsertNode(root, NodeKind::kElement, "s", "", b, &stats).ok());
    if (stats.overflow) first_renumber = i;
  }
  EXPECT_GE(first_renumber, 20);
  EXPECT_LE(first_renumber, 60)
      << "double mantissa (52 bits) should exhaust around 50 halvings";
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
}

TEST(QrsSchemeTest, IntervalsNest) {
  auto scheme = labels::CreateScheme("qrs");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  labels::QrsScheme::Interval root_iv;
  ASSERT_TRUE(labels::QrsScheme::Decode(doc->label(doc->tree().root()),
                                        &root_iv));
  EXPECT_EQ(root_iv.lo, 1.0);
  EXPECT_EQ(root_iv.hi, 2.0);
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(PrePostSchemeTest, EncodeDecodeRejectsMalformed) {
  labels::PrePostScheme::Ranks ranks;
  EXPECT_FALSE(
      labels::PrePostScheme::Decode(labels::Label("short"), &ranks));
  labels::XRelScheme::Region region;
  EXPECT_FALSE(labels::XRelScheme::Decode(labels::Label(), &region));
  labels::SectorScheme::Sector sector;
  EXPECT_FALSE(labels::SectorScheme::Decode(labels::Label("x"), &sector));
  labels::QrsScheme::Interval interval;
  EXPECT_FALSE(labels::QrsScheme::Decode(labels::Label("y"), &interval));
}

}  // namespace
}  // namespace xmlup::core
