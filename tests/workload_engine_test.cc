// Workload engine soak: drives the spec interpreter against a live
// ServeUnixSocket endpoint and pins the two contracts the engine
// promises. (1) Determinism: with an ops quota, the client-side op
// sequence — and therefore every deterministic server-side counter —
// is a pure function of (spec, seed, thread count); two runs against
// fresh stores must be bit-identical. (2) Reconciliation: engine-side
// per-node op/error counts must match the server's --stats exactly.
// Runs under TSan in CI (suite name carries "WorkloadSoak").

#include "workload/engine/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "observability/metrics.h"
#include "store/file.h"
#include "workload/engine/spec.h"
#include "xml/parser.h"

namespace xmlup::workload {
namespace {

// Edits insert uniquely tagged elements (so re-running against a fresh
// store rebuilds the same document), queries mix hits and misses, and
// `probe` deletes a never-matching target so server-side rejections are
// exercised on every run.
constexpr char kSoakSpec[] = R"(workload soak
var tag = alpha,beta

node loop for-n
  count 1000000
  do pick
  next finish

node pick random-choice
  choice 60 ins
  choice 25 read
  choice 15 probe

node ins edit
  script -s . -t elem -n i${thread}x${op}${choice:tag}r${rand:97}
  next end

node read query
  xpath //i${thread}x${rand:8}${choice:tag}r${rand:97}
  next end

node probe edit
  script -d gone${rand:13}
  next end
)";

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::map<std::string, uint64_t> ParseStats(
    const std::vector<std::string>& reply) {
  std::map<std::string, uint64_t> out;
  for (size_t i = 1; i < reply.size(); ++i) {
    size_t eq = reply[i].find('=');
    if (eq == std::string::npos) continue;
    out[reply[i].substr(0, eq)] = std::stoull(reply[i].substr(eq + 1));
  }
  return out;
}

struct RunOutcome {
  WorkloadReport report;
  // The deterministic slice of --stats: request-mix counters, not
  // timing-dependent ones (batches, frame pacing).
  std::map<std::string, uint64_t> counters;
};

/// One full run against a fresh store + server on a fresh socket, with
/// the global registry reset first so registry-backed counters start
/// from zero each time.
RunOutcome RunOnce(const WorkloadSpec& spec, uint64_t seed, size_t threads,
                   uint64_t ops_per_thread) {
  using concurrency::ConcurrentStore;
  using concurrency::ConcurrentStoreOptions;
  using concurrency::Server;
  using concurrency::UnixSocketRequest;

  RunOutcome outcome;
  obs::GlobalMetrics().Reset();

  store::MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", ParseOrDie("<root/>"), "ordpath",
                                    options);
  EXPECT_TRUE(st.ok()) << st.status().ToString();
  if (!st.ok()) return outcome;

  char dir_template[] = "/tmp/xmlup_wl_XXXXXX";
  EXPECT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/s";

  Server server(st->get());
  std::thread server_thread([&] {
    common::Status served = server.ServeUnixSocket(socket_path);
    EXPECT_TRUE(served.ok()) << served.ToString();
  });
  bool up = false;
  for (int i = 0; i < 5000 && !up; ++i) {
    up = UnixSocketRequest(socket_path, {"--ping"}).ok();
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(up) << "server socket never came up";

  EngineOptions engine;
  engine.target = socket_path;
  engine.threads = threads;
  engine.seed = seed;
  engine.ops_per_thread = ops_per_thread;
  engine.collect_trace = true;
  auto report = RunWorkload(spec, engine);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) outcome.report = std::move(*report);

  auto stats_reply = UnixSocketRequest(socket_path, {"--stats"});
  EXPECT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
  if (stats_reply.ok()) {
    auto fields = ParseStats(*stats_reply);
    for (const char* key :
         {"updates_applied", "updates_failed", "server.verb.update",
          "server.verb.query", "server.errors", "cstore.submitted",
          "cstore.acked", "cstore.failed"}) {
      auto it = fields.find(key);
      if (it != fields.end()) outcome.counters[key] = it->second;
    }
  }

  EXPECT_TRUE(UnixSocketRequest(socket_path, {"--shutdown"}).ok());
  server_thread.join();
  (*st)->Stop();
  ::rmdir(dir_template);
  return outcome;
}

WorkloadSpec ParseSpecOrDie(std::string_view text) {
  auto spec = ParseWorkloadSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(*spec);
}

TEST(WorkloadSoakTest, SameSeedIsBitReproducible) {
  const WorkloadSpec spec = ParseSpecOrDie(kSoakSpec);
  RunOutcome first = RunOnce(spec, /*seed=*/42, /*threads=*/3,
                             /*ops_per_thread=*/20);
  RunOutcome second = RunOnce(spec, 42, 3, 20);

  // The client-side trace is the bit-reproducibility witness: node
  // order, expanded tokens, everything.
  ASSERT_EQ(first.report.trace.size(), 3u);
  EXPECT_EQ(first.report.trace, second.report.trace);
  for (const auto& thread_trace : first.report.trace) {
    EXPECT_EQ(thread_trace.size(), 20u);
  }

  // Same op mix → same per-node counts and same deterministic
  // server-side counters, even though the interleaving differs.
  ASSERT_EQ(first.report.nodes.size(), second.report.nodes.size());
  for (size_t i = 0; i < first.report.nodes.size(); ++i) {
    EXPECT_EQ(first.report.nodes[i].name, second.report.nodes[i].name);
    EXPECT_EQ(first.report.nodes[i].ops, second.report.nodes[i].ops);
    EXPECT_EQ(first.report.nodes[i].errors, second.report.nodes[i].errors);
  }
  EXPECT_EQ(first.report.ops_total, 60u);
  EXPECT_EQ(first.report.ops_total, second.report.ops_total);
  EXPECT_EQ(first.report.errors_total, second.report.errors_total);
  EXPECT_FALSE(first.counters.empty());
  EXPECT_EQ(first.counters, second.counters);

  // And a different seed is a genuinely different run.
  RunOutcome other = RunOnce(spec, 43, 3, 20);
  EXPECT_NE(first.report.trace, other.report.trace);
}

TEST(WorkloadSoakTest, ReconcilesExactlyWithServerStats) {
  const WorkloadSpec spec = ParseSpecOrDie(kSoakSpec);
  const uint64_t threads = 4;
  const uint64_t ops_per_thread = 25;
  RunOutcome outcome = RunOnce(spec, 7, threads, ops_per_thread);

  // Every client op is accounted to exactly one node; the quota cuts
  // each worker at exactly ops_per_thread client ops.
  uint64_t edit_ops = 0, edit_errors = 0, query_ops = 0, query_errors = 0;
  for (const NodeReport& node : outcome.report.nodes) {
    if (node.type == "edit") {
      edit_ops += node.ops;
      edit_errors += node.errors;
    } else if (node.type == "query") {
      query_ops += node.ops;
      query_errors += node.errors;
    }
    if (obs::kMetricsEnabled) {
      // The registry histogram saw every op the engine counted.
      EXPECT_EQ(node.latency.count, node.ops) << node.name;
    }
  }
  EXPECT_EQ(edit_ops + query_ops, threads * ops_per_thread);
  EXPECT_EQ(outcome.report.ops_total, threads * ops_per_thread);
  EXPECT_EQ(outcome.report.errors_total, edit_errors + query_errors);
  EXPECT_EQ(query_errors, 0u);  // queries can miss, but never error

  // `probe` rejections are the only failures, and every edit frame is
  // exactly one submitted update on the server.
  EXPECT_GT(edit_errors, 0u);  // the probe node fired at least once
  EXPECT_EQ(outcome.counters["updates_applied"], edit_ops - edit_errors);
  EXPECT_EQ(outcome.counters["updates_failed"], edit_errors);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(outcome.counters["server.verb.update"], edit_ops);
    EXPECT_EQ(outcome.counters["server.verb.query"], query_ops);
    EXPECT_EQ(outcome.counters["server.errors"], edit_errors);
    EXPECT_EQ(outcome.counters["cstore.submitted"], edit_ops);
    EXPECT_EQ(outcome.counters["cstore.acked"], edit_ops - edit_errors);
    EXPECT_EQ(outcome.counters["cstore.failed"], edit_errors);
  }

  // The JSON report carries the same exact totals.
  EngineOptions engine;
  engine.target = "unused";
  engine.threads = threads;
  engine.seed = 7;
  engine.ops_per_thread = ops_per_thread;
  const std::string json = RenderWorkloadJson(spec, engine, outcome.report);
  EXPECT_NE(json.find("\"workload\": \"soak\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_total\": " +
                      std::to_string(outcome.report.ops_total)),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"probe\""), std::string::npos);
}

TEST(WorkloadSoakTest, OverridesMustNameSpecVariables) {
  const WorkloadSpec spec = ParseSpecOrDie(kSoakSpec);
  EngineOptions engine;
  engine.target = "/nonexistent";
  engine.overrides = {{"nope", "x"}};
  auto report = RunWorkload(spec, engine);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("does not define"),
            std::string::npos);

  // Emptying a ${choice:...} list is caught before any worker starts.
  engine.overrides = {{"tag", ""}};
  report = RunWorkload(spec, engine);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("empties ${choice:tag}"),
            std::string::npos);
}

}  // namespace
}  // namespace xmlup::workload
