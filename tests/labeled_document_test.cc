#include <gtest/gtest.h>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "xml/tree.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

TEST(LabeledDocumentTest, BuildLabelsEveryNode) {
  auto scheme = labels::CreateScheme("qed");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  for (NodeId n : doc->tree().PreorderNodes()) {
    EXPECT_FALSE(doc->label(n).empty());
  }
}

TEST(LabeledDocumentTest, InsertReportsStats) {
  auto scheme = labels::CreateScheme("dewey");
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "a").value();
  tree.AppendChild(root, NodeKind::kElement, "b").value();
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_TRUE(doc.ok());

  UpdateStats stats;
  // Append: Dewey's free operation.
  ASSERT_TRUE(
      doc->InsertNode(root, NodeKind::kElement, "c", "", xml::kInvalidNode,
                      &stats)
          .ok());
  EXPECT_EQ(stats.relabeled, 0u);
  EXPECT_FALSE(stats.overflow);
  // Prepend: shifts every sibling.
  ASSERT_TRUE(doc->InsertNode(root, NodeKind::kElement, "z", "", a, &stats)
                  .ok());
  EXPECT_GT(stats.relabeled, 0u);
  EXPECT_TRUE(stats.overflow);
}

TEST(LabeledDocumentTest, FailedInsertRollsBackTheTree) {
  labels::SchemeOptions options;
  options.dln_max_components = 2;
  auto scheme = labels::CreateScheme("dln", options);
  ASSERT_TRUE(scheme.ok());
  Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  for (int i = 0; i < 40; ++i) {
    tree.AppendChild(root, NodeKind::kElement, "c").value();
  }
  // 40 children cannot be labelled in 2 sub-values of 4 bits (capacity
  // 30); Build fails with an overflow.
  auto doc = LabeledDocument::Build(std::move(tree), scheme->get());
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), common::StatusCode::kOverflow);
}

TEST(LabeledDocumentTest, InsertSubtreeCopiesStructure) {
  auto scheme = labels::CreateScheme("ordpath");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  size_t before = doc->tree().node_count();

  // Graft a copy of another book's publisher under the root.
  Tree fragment = workload::SampleBookDocument();
  UpdateStats stats;
  auto grafted = doc->InsertSubtree(doc->tree().root(), fragment,
                                    fragment.root(), xml::kInvalidNode,
                                    &stats);
  ASSERT_TRUE(grafted.ok());
  EXPECT_EQ(doc->tree().node_count(), before + fragment.node_count());
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
  // The grafted subtree mirrors the fragment.
  EXPECT_EQ(doc->tree().name(*grafted), "book");
  EXPECT_EQ(doc->tree().ChildCount(*grafted),
            fragment.ChildCount(fragment.root()));
}

TEST(LabeledDocumentTest, InsertSubtreeRejectsBadFragmentRoot) {
  auto scheme = labels::CreateScheme("qed");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  Tree fragment;
  EXPECT_FALSE(doc->InsertSubtree(doc->tree().root(), fragment, 0).ok());
}

TEST(LabeledDocumentTest, RemoveThenVerifyStaysConsistent) {
  auto scheme = labels::CreateScheme("cdqs");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  // Remove "publisher" (the third element child of book).
  std::vector<NodeId> kids = doc->tree().Children(doc->tree().root());
  ASSERT_TRUE(doc->RemoveSubtree(kids.back()).ok());
  EXPECT_TRUE(doc->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(doc->VerifyAxes().ok());
}

TEST(LabeledDocumentTest, ContentUpdateDoesNotTouchLabels) {
  auto scheme = labels::CreateScheme("qed");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  NodeId title = doc->tree().Children(doc->tree().root())[0];
  labels::Label before = doc->label(title);
  ASSERT_TRUE(doc->UpdateValue(title, "renamed").ok());
  EXPECT_EQ(doc->label(title), before);
}

TEST(LabeledDocumentTest, InsertIntoInvalidParentFails) {
  auto scheme = labels::CreateScheme("qed");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(
      doc->InsertNode(9999, NodeKind::kElement, "x", "").ok());
}

TEST(LabeledDocumentTest, AverageBitsConsistentWithTotal) {
  auto scheme = labels::CreateScheme("vector");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  double avg = doc->AverageLabelBits();
  size_t total = doc->TotalLabelBits();
  EXPECT_NEAR(avg * static_cast<double>(doc->tree().node_count()),
              static_cast<double>(total), 1e-6);
}

}  // namespace
}  // namespace xmlup::core
