#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "labels/digit_string.h"

namespace xmlup::labels {
namespace {

// Builds a digit string from human-readable digits, e.g. D("011") for
// binary or D("123") for quaternary (bytes, not chars).
std::string D(const std::string& digits) {
  std::string out;
  for (char c : digits) out.push_back(static_cast<char>(c - '0'));
  return out;
}

constexpr DigitDomain kBinary{0, 1, 1};
constexpr DigitDomain kQuaternary{1, 3, 2};

TEST(DigitCompareTest, LexicographicWithPrefixFirst) {
  EXPECT_LT(DigitCompare(D("01"), D("011")), 0);
  EXPECT_LT(DigitCompare(D("0101"), D("011")), 0);
  EXPECT_GT(DigitCompare(D("1"), D("011")), 0);
  EXPECT_EQ(DigitCompare(D("01"), D("01")), 0);
}

TEST(DigitValidityTest, TerminalConstraint) {
  EXPECT_TRUE(IsValidDigitCode(kBinary, D("01")));
  EXPECT_FALSE(IsValidDigitCode(kBinary, D("010")));
  EXPECT_FALSE(IsValidDigitCode(kBinary, D("")));
  EXPECT_TRUE(IsValidDigitCode(kQuaternary, D("132")));
  EXPECT_FALSE(IsValidDigitCode(kQuaternary, D("131")));
  EXPECT_FALSE(IsValidDigitCode(kQuaternary, D("102")));  // 0 not a digit.
}

// --- Published per-scheme rules reproduced by the generic algebra -------

TEST(DigitAfterTest, BinaryAppendsOne) {
  // ImprovedBinary: insert after the last sibling concatenates an extra 1.
  EXPECT_EQ(DigitAfter(kBinary, D("011")), D("0111"));
  EXPECT_EQ(DigitAfter(kBinary, D("")), D("1"));
}

TEST(DigitAfterTest, QuaternaryIncrementsOrAppends) {
  // QED: ...2 -> ...3; ...3 -> append 2.
  EXPECT_EQ(DigitAfter(kQuaternary, D("2")), D("3"));
  EXPECT_EQ(DigitAfter(kQuaternary, D("3")), D("32"));
  EXPECT_EQ(DigitAfter(kQuaternary, D("12")), D("13"));
}

TEST(DigitBeforeTest, BinaryChangesTrailingOneToZeroOne) {
  // ImprovedBinary: identifier of the first sibling with last 1 -> 01.
  EXPECT_EQ(DigitBefore(kBinary, D("01")).value(), D("001"));
  EXPECT_EQ(DigitBefore(kBinary, D("1")).value(), D("01"));
  EXPECT_EQ(DigitBefore(kBinary, D("011")).value(), D("001"))
      << "drop below at the first 1 (shortest valid form)";
}

TEST(DigitBeforeTest, QuaternaryRules) {
  // QED: before 2 -> 12; before 3 -> 2.
  EXPECT_EQ(DigitBefore(kQuaternary, D("2")).value(), D("12"));
  EXPECT_EQ(DigitBefore(kQuaternary, D("3")).value(), D("2"));
  EXPECT_EQ(DigitBefore(kQuaternary, D("112")).value(), D("1112"));
}

TEST(DigitBeforeTest, FailsOnAllMinimumDigits) {
  EXPECT_FALSE(DigitBefore(kBinary, D("000")).ok());
}

TEST(DigitBetweenTest, ReproducesFigure6MiddleLabel) {
  // Figure 6: the middle child between 01 and 011 is 0101.
  EXPECT_EQ(DigitBetween(kBinary, D("01"), D("011")).value(), D("0101"));
}

TEST(DigitBetweenTest, InvalidBoundsRejected) {
  EXPECT_FALSE(DigitBetween(kBinary, D("011"), D("01")).ok());
  EXPECT_FALSE(DigitBetween(kBinary, D("01"), D("01")).ok());
}

TEST(DigitBetweenTest, EmptyBounds) {
  EXPECT_EQ(DigitBetween(kBinary, "", "").value(), D("1"));
  EXPECT_EQ(DigitBetween(kQuaternary, "", "").value(), D("2"));
}

// --- Property tests -----------------------------------------------------

struct DomainParam {
  const char* name;
  DigitDomain domain;
};

class DigitStringPropertyTest : public ::testing::TestWithParam<DomainParam> {
};

TEST_P(DigitStringPropertyTest, RandomInsertionChainsStayOrderedAndValid) {
  const DigitDomain& domain = GetParam().domain;
  // Start with two codes and repeatedly insert at random gaps, checking
  // strict order and validity throughout.
  std::vector<std::string> codes;
  codes.push_back(DigitBetween(domain, "", "").value());
  codes.push_back(DigitAfter(domain, codes[0]));
  common::SplitMix64 rng(123);
  for (int i = 0; i < 2000; ++i) {
    size_t gap = rng.NextBelow(codes.size() + 1);
    std::string left = gap == 0 ? std::string() : codes[gap - 1];
    std::string right = gap == codes.size() ? std::string() : codes[gap];
    auto fresh = DigitBetween(domain, left, right);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    ASSERT_TRUE(IsValidDigitCode(domain, *fresh))
        << "iteration " << i;
    if (!left.empty()) {
      ASSERT_LT(DigitCompare(left, *fresh), 0) << "iteration " << i;
    }
    if (!right.empty()) {
      ASSERT_LT(DigitCompare(*fresh, right), 0) << "iteration " << i;
    }
    codes.insert(codes.begin() + static_cast<long>(gap), *fresh);
  }
  for (size_t i = 1; i < codes.size(); ++i) {
    ASSERT_LT(DigitCompare(codes[i - 1], codes[i]), 0);
  }
}

TEST_P(DigitStringPropertyTest, SkewedChainsStayOrdered) {
  const DigitDomain& domain = GetParam().domain;
  std::string anchor = DigitAfter(domain, DigitBetween(domain, "", "").value());
  std::string left = DigitBetween(domain, "", anchor).value();
  for (int i = 0; i < 500; ++i) {
    auto fresh = DigitBetween(domain, left, anchor);
    ASSERT_TRUE(fresh.ok());
    ASSERT_LT(DigitCompare(left, *fresh), 0);
    ASSERT_LT(DigitCompare(*fresh, anchor), 0);
    ASSERT_TRUE(IsValidDigitCode(domain, *fresh));
    left = *fresh;
  }
}

TEST_P(DigitStringPropertyTest, PrependChainsStayOrdered) {
  const DigitDomain& domain = GetParam().domain;
  std::string right = DigitBetween(domain, "", "").value();
  for (int i = 0; i < 500; ++i) {
    auto fresh = DigitBefore(domain, right);
    ASSERT_TRUE(fresh.ok());
    ASSERT_LT(DigitCompare(*fresh, right), 0);
    ASSERT_TRUE(IsValidDigitCode(domain, *fresh));
    right = *fresh;
  }
}

TEST_P(DigitStringPropertyTest, AppendChainsStayOrdered) {
  const DigitDomain& domain = GetParam().domain;
  std::string left = DigitBetween(domain, "", "").value();
  for (int i = 0; i < 500; ++i) {
    std::string fresh = DigitAfter(domain, left);
    ASSERT_LT(DigitCompare(left, fresh), 0);
    ASSERT_TRUE(IsValidDigitCode(domain, fresh));
    left = fresh;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DigitStringPropertyTest,
    ::testing::Values(DomainParam{"binary", {0, 1, 1}},
                      DomainParam{"quaternary", {1, 3, 2}},
                      DomainParam{"dln4bit", {0, 15, 1}},
                      DomainParam{"wide", {0, 63, 1}}),
    [](const ::testing::TestParamInfo<DomainParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xmlup::labels
