// The AxisEvaluator answers XPath axes from labels alone; these tests
// compare every axis against tree ground truth for representative schemes
// of each family (containment, prefix, prime).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/axis_evaluator.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace xmlup::core {
namespace {

using xml::NodeId;

class AxisEvaluatorTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto scheme = labels::CreateScheme(GetParam());
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::move(*scheme);
    workload::DocumentShape shape;
    shape.target_nodes = 80;
    shape.seed = 5;
    auto tree = workload::GenerateDocument(shape);
    ASSERT_TRUE(tree.ok());
    auto doc = LabeledDocument::Build(std::move(*tree), scheme_.get());
    ASSERT_TRUE(doc.ok());
    doc_.emplace(std::move(*doc));
  }

  std::vector<NodeId> GroundTruthDescendants(NodeId node) const {
    std::vector<NodeId> out;
    for (NodeId n : doc_->tree().PreorderNodes()) {
      if (doc_->tree().IsAncestor(node, n)) out.push_back(n);
    }
    return out;
  }

  std::vector<NodeId> GroundTruthAncestors(NodeId node) const {
    std::vector<NodeId> out;
    for (NodeId cur = doc_->tree().parent(node); cur != xml::kInvalidNode;
         cur = doc_->tree().parent(cur)) {
      out.push_back(cur);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<labels::LabelingScheme> scheme_;
  std::optional<LabeledDocument> doc_;
};

TEST_P(AxisEvaluatorTest, DescendantAxisMatchesGroundTruth) {
  for (bool use_index : {true, false}) {
    AxisEvaluator eval(&*doc_, use_index);
    for (NodeId n : doc_->tree().PreorderNodes()) {
      EXPECT_EQ(eval.Descendants(n), GroundTruthDescendants(n))
          << "node " << n << (use_index ? " (indexed)" : " (naive)");
    }
  }
}

TEST_P(AxisEvaluatorTest, AncestorAxisMatchesGroundTruth) {
  for (bool use_index : {true, false}) {
    AxisEvaluator eval(&*doc_, use_index);
    for (NodeId n : doc_->tree().PreorderNodes()) {
      EXPECT_EQ(eval.Ancestors(n), GroundTruthAncestors(n))
          << "node " << n << (use_index ? " (indexed)" : " (naive)");
    }
  }
}

TEST_P(AxisEvaluatorTest, ChildAxisMatchesWhereSupported) {
  AxisEvaluator eval(&*doc_);
  for (NodeId n : doc_->tree().PreorderNodes()) {
    auto children = eval.Children(n);
    if (!scheme_->traits().supports_parent) {
      EXPECT_FALSE(children.ok());
      return;
    }
    ASSERT_TRUE(children.ok());
    EXPECT_EQ(*children, doc_->tree().Children(n)) << "node " << n;
  }
}

TEST_P(AxisEvaluatorTest, ParentAxisMatchesWhereSupported) {
  if (!scheme_->traits().supports_parent) GTEST_SKIP();
  // Both execution paths: indexed (default) and naive scan.
  for (bool use_index : {true, false}) {
    AxisEvaluator eval(&*doc_, use_index);
    for (NodeId n : doc_->tree().PreorderNodes()) {
      auto parent = eval.Parent(n);
      ASSERT_TRUE(parent.ok());
      // The parent contract includes document order, like every axis.
      EXPECT_TRUE(std::is_sorted(
          parent->begin(), parent->end(), [&](NodeId a, NodeId b) {
            return scheme_->Compare(doc_->label(a), doc_->label(b)) < 0;
          }));
      if (doc_->tree().parent(n) == xml::kInvalidNode) {
        EXPECT_TRUE(parent->empty());
      } else {
        ASSERT_EQ(parent->size(), 1u) << "node " << n;
        EXPECT_EQ((*parent)[0], doc_->tree().parent(n));
      }
    }
  }
}

TEST_P(AxisEvaluatorTest, SiblingAxisMatchesWhereSupported) {
  if (!scheme_->traits().supports_sibling) GTEST_SKIP();
  AxisEvaluator eval(&*doc_);
  for (NodeId n : doc_->tree().PreorderNodes()) {
    auto siblings = eval.Siblings(n);
    ASSERT_TRUE(siblings.ok());
    std::vector<NodeId> truth;
    NodeId parent = doc_->tree().parent(n);
    if (parent != xml::kInvalidNode) {
      for (NodeId c : doc_->tree().Children(parent)) {
        if (c != n) truth.push_back(c);
      }
    }
    EXPECT_EQ(*siblings, truth) << "node " << n;
  }
}

TEST_P(AxisEvaluatorTest, FollowingAndPrecedingPartitionTheDocument) {
  AxisEvaluator eval(&*doc_);
  std::vector<NodeId> order = doc_->tree().PreorderNodes();
  for (size_t i = 0; i < order.size(); i += 7) {
    NodeId n = order[i];
    std::vector<NodeId> following = eval.Following(n);
    std::vector<NodeId> preceding = eval.Preceding(n);
    // following(n) = nodes after n in document order minus descendants;
    // preceding(n) = nodes before n minus ancestors.
    std::vector<NodeId> expect_following, expect_preceding;
    for (size_t j = 0; j < order.size(); ++j) {
      if (j < i && !doc_->tree().IsAncestor(order[j], n)) {
        expect_preceding.push_back(order[j]);
      }
      if (j > i && !doc_->tree().IsAncestor(n, order[j])) {
        expect_following.push_back(order[j]);
      }
    }
    EXPECT_EQ(following, expect_following) << "node " << n;
    EXPECT_EQ(preceding, expect_preceding) << "node " << n;
  }
}

TEST_P(AxisEvaluatorTest, SortDocumentOrderMatchesPreorder) {
  AxisEvaluator eval(&*doc_);
  std::vector<NodeId> shuffled = doc_->tree().PreorderNodes();
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(eval.SortDocumentOrder(shuffled), doc_->tree().PreorderNodes());
}

INSTANTIATE_TEST_SUITE_P(
    Representatives, AxisEvaluatorTest,
    ::testing::Values("xpath-accelerator", "sector", "dewey", "ordpath",
                      "qed", "vector", "prime", "dde", "prepost-gap",
                      "dietz-om"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xmlup::core
