// Differential oracle for the index-backed axis evaluator: for every
// registered scheme, drive a random insert/delete sequence (including
// budget overflows that relabel the document) and assert at checkpoints
// that the indexed evaluator returns exactly what the naive full-scan
// evaluator returns on every axis, for every live node. The naive path
// uses only the scheme's virtual predicates and is validated against tree
// ground truth elsewhere (axis_evaluator_test), so agreement here proves
// the order-key cache and range queries correct across updates.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/axis_evaluator.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace xmlup::core {
namespace {

using common::SplitMix64;
using xml::NodeId;
using xml::NodeKind;

std::vector<std::string> Schemes() {
  std::vector<std::string> out;
  for (const std::string& scheme : labels::AllSchemeNames()) {
    // lsdx/com-d produce non-unique labels in corner cases and are
    // excluded from randomized batteries repo-wide.
    if (scheme == "lsdx" || scheme == "com-d") continue;
    out.push_back(scheme);
  }
  return out;
}

class AxisOracleTest : public ::testing::TestWithParam<std::string> {};

void ExpectAxesAgree(const LabeledDocument& doc, const char* when) {
  AxisEvaluator indexed(&doc, /*use_index=*/true);
  AxisEvaluator naive(&doc, /*use_index=*/false);
  const labels::LabelingScheme& scheme = doc.scheme();
  std::vector<NodeId> nodes = doc.tree().PreorderNodes();
  auto sorted = [&](const std::vector<NodeId>& v) {
    return std::is_sorted(v.begin(), v.end(), [&](NodeId a, NodeId b) {
      return scheme.Compare(doc.label(a), doc.label(b)) < 0;
    });
  };
  for (NodeId n : nodes) {
    EXPECT_EQ(indexed.Descendants(n), naive.Descendants(n))
        << when << ": descendant axis diverges at node " << n;
    EXPECT_EQ(indexed.Following(n), naive.Following(n))
        << when << ": following axis diverges at node " << n;
    EXPECT_EQ(indexed.Preceding(n), naive.Preceding(n))
        << when << ": preceding axis diverges at node " << n;
    EXPECT_EQ(indexed.Ancestors(n), naive.Ancestors(n))
        << when << ": ancestor axis diverges at node " << n;
    if (scheme.traits().supports_parent) {
      auto pi = indexed.Parent(n);
      auto pn = naive.Parent(n);
      ASSERT_TRUE(pi.ok() && pn.ok());
      EXPECT_EQ(*pi, *pn) << when << ": parent axis diverges at node " << n;
      EXPECT_TRUE(sorted(*pn)) << when << ": naive parent result unsorted";
      auto ci = indexed.Children(n);
      auto cn = naive.Children(n);
      ASSERT_TRUE(ci.ok() && cn.ok());
      EXPECT_EQ(*ci, *cn) << when << ": child axis diverges at node " << n;
    }
    if (scheme.traits().supports_sibling) {
      auto si = indexed.Siblings(n);
      auto sn = naive.Siblings(n);
      ASSERT_TRUE(si.ok() && sn.ok());
      EXPECT_EQ(*si, *sn) << when << ": sibling axis diverges at node " << n;
    }
  }
  // SortDocumentOrder: memcmp-key sort must equal virtual-Compare sort.
  std::vector<NodeId> shuffled = nodes;
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(indexed.SortDocumentOrder(shuffled),
            naive.SortDocumentOrder(shuffled))
      << when << ": SortDocumentOrder diverges";
}

TEST_P(AxisOracleTest, IndexedEvaluatorMatchesNaiveScanAcrossUpdates) {
  auto scheme = labels::CreateScheme(GetParam());
  ASSERT_TRUE(scheme.ok());
  workload::DocumentShape shape;
  shape.target_nodes = 60;
  shape.seed = 11;
  auto tree = workload::GenerateDocument(shape);
  ASSERT_TRUE(tree.ok());
  auto built = LabeledDocument::Build(std::move(*tree), scheme->get());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  LabeledDocument doc = std::move(*built);

  ExpectAxesAgree(doc, "fresh document");

  SplitMix64 rng(4242);
  auto random_element = [&]() -> NodeId {
    std::vector<NodeId> nodes = doc.tree().PreorderNodes();
    for (int tries = 0; tries < 50; ++tries) {
      NodeId n = nodes[rng.NextBelow(nodes.size())];
      if (doc.tree().kind(n) == NodeKind::kElement) return n;
    }
    return doc.tree().root();
  };

  bool saw_relabel = false;
  for (int op = 0; op < 160; ++op) {
    if (rng.NextBelow(10) < 7) {
      // Insert at a random gap — repeated same-gap inserts are what
      // exhausts encoding budgets and triggers overflow relabelling.
      NodeId parent = random_element();
      std::vector<NodeId> kids = doc.tree().Children(parent);
      NodeId before = kids.empty() || rng.NextBool(0.5)
                          ? xml::kInvalidNode
                          : kids[rng.NextBelow(kids.size())];
      UpdateStats stats;
      auto node = doc.InsertNode(parent, NodeKind::kElement, "n", "",
                                 before, &stats);
      if (!node.ok()) {
        ASSERT_EQ(node.status().code(), common::StatusCode::kOverflow)
            << node.status().ToString();
        break;
      }
      if (stats.relabeled > 0) {
        saw_relabel = true;
        // Relabelling must invalidate exactly the touched keys; verify
        // immediately rather than waiting for the next checkpoint.
        ExpectAxesAgree(doc, "after relabel");
      }
    } else {
      std::vector<NodeId> nodes = doc.tree().PreorderNodes();
      if (nodes.size() > 25) {
        NodeId victim = nodes[1 + rng.NextBelow(nodes.size() - 1)];
        ASSERT_TRUE(doc.RemoveSubtree(victim).ok());
      }
    }
    if (op % 40 == 39) ExpectAxesAgree(doc, "checkpoint");
  }
  ExpectAxesAgree(doc, "final document");
  (void)saw_relabel;  // Not all schemes relabel within this budget.
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AxisOracleTest,
                         ::testing::ValuesIn(Schemes()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace xmlup::core
