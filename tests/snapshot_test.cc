#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"
#include "xml/serializer.h"

namespace xmlup::core {
namespace {

using xml::NodeId;
using xml::NodeKind;

TEST(SnapshotTest, RoundTripsTheSampleBook) {
  auto scheme = labels::CreateScheme("cdqs");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  std::string bytes = SaveSnapshot(*doc);

  std::unique_ptr<labels::LabelingScheme> restored_scheme;
  auto restored = LoadSnapshot(bytes, &restored_scheme);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored_scheme->traits().name, "cdqs");
  EXPECT_EQ(xml::SerializeDocument(restored->tree()).value(),
            xml::SerializeDocument(doc->tree()).value());
  // Labels are byte-identical, in document order.
  std::vector<NodeId> a = doc->tree().PreorderNodes();
  std::vector<NodeId> b = restored->tree().PreorderNodes();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(doc->label(a[i]), restored->label(b[i])) << i;
  }
}

TEST(SnapshotTest, RestoredDocumentAcceptsFurtherUpdates) {
  auto scheme = labels::CreateScheme("ordpath");
  ASSERT_TRUE(scheme.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(),
                                    scheme->get());
  ASSERT_TRUE(doc.ok());
  // Mutate before saving so the snapshot carries post-update labels.
  ASSERT_TRUE(doc->InsertNode(doc->tree().root(), NodeKind::kElement,
                              "appendix", "",
                              doc->tree().first_child(doc->tree().root()))
                  .ok());
  std::string bytes = SaveSnapshot(*doc);

  std::unique_ptr<labels::LabelingScheme> restored_scheme;
  auto restored = LoadSnapshot(bytes, &restored_scheme);
  ASSERT_TRUE(restored.ok());
  UpdateStats stats;
  auto node = restored->InsertNode(restored->tree().root(),
                                   NodeKind::kElement, "extra", "",
                                   xml::kInvalidNode, &stats);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(stats.relabeled, 0u);  // ORDPATH stays persistent post-restore.
  EXPECT_TRUE(restored->VerifyOrderAndUniqueness().ok());
  EXPECT_TRUE(restored->VerifyAxes().ok());
}

TEST(SnapshotTest, RoundTripsLargeGeneratedDocuments) {
  for (const char* scheme_name : {"qed", "vector", "dewey"}) {
    auto scheme = labels::CreateScheme(scheme_name);
    ASSERT_TRUE(scheme.ok());
    workload::DocumentShape shape;
    shape.target_nodes = 500;
    shape.seed = 31;
    auto tree = workload::GenerateDocument(shape);
    ASSERT_TRUE(tree.ok());
    auto doc = LabeledDocument::Build(std::move(*tree), scheme->get());
    ASSERT_TRUE(doc.ok());
    std::string bytes = SaveSnapshot(*doc);
    std::unique_ptr<labels::LabelingScheme> restored_scheme;
    auto restored = LoadSnapshot(bytes, &restored_scheme);
    ASSERT_TRUE(restored.ok()) << scheme_name;
    EXPECT_EQ(restored->tree().node_count(), doc->tree().node_count());
    EXPECT_TRUE(restored->VerifyOrderAndUniqueness().ok());
  }
}

TEST(SnapshotTest, RejectsCorruptInput) {
  EXPECT_FALSE(LoadSnapshot("", nullptr).ok());
  std::unique_ptr<labels::LabelingScheme> scheme;
  EXPECT_FALSE(LoadSnapshot("NOPE", &scheme).ok());
  EXPECT_FALSE(LoadSnapshot("XUP1", &scheme).ok());

  // Build a valid snapshot and truncate/corrupt it.
  auto s = labels::CreateScheme("qed");
  ASSERT_TRUE(s.ok());
  auto doc = LabeledDocument::Build(workload::SampleBookDocument(), s->get());
  ASSERT_TRUE(doc.ok());
  std::string bytes = SaveSnapshot(*doc);
  EXPECT_FALSE(
      LoadSnapshot(std::string_view(bytes).substr(0, bytes.size() / 2),
                   &scheme)
          .ok());
  std::string trailing = bytes + "x";
  EXPECT_FALSE(LoadSnapshot(trailing, &scheme).ok());

  // Unknown scheme name.
  std::string bogus = bytes;
  bogus[5] = 'z';  // Corrupt the scheme name's first byte.
  EXPECT_FALSE(LoadSnapshot(bogus, &scheme).ok());
}

TEST(SnapshotTest, RestoreRejectsInconsistentLabels) {
  // Restore (the snapshot loader's last step) must reject label sets that
  // violate order or uniqueness instead of silently accepting them.
  auto s = labels::CreateScheme("qed");
  ASSERT_TRUE(s.ok());
  xml::Tree tree = workload::SampleBookDocument();
  std::vector<labels::Label> good;
  ASSERT_TRUE((*s)->LabelTree(tree, &good).ok());

  // Duplicate: copy the second node's label onto the third.
  std::vector<NodeId> order = tree.PreorderNodes();
  std::vector<labels::Label> duplicated = good;
  duplicated[order[2]] = duplicated[order[1]];
  auto dup = LabeledDocument::Restore(workload::SampleBookDocument(),
                                      s->get(), duplicated);
  EXPECT_FALSE(dup.ok());

  // Misordered: swap two labels.
  std::vector<labels::Label> swapped = good;
  std::swap(swapped[order[1]], swapped[order[2]]);
  auto bad = LabeledDocument::Restore(workload::SampleBookDocument(),
                                      s->get(), swapped);
  EXPECT_FALSE(bad.ok());

  // Under-sized label vector.
  auto small = LabeledDocument::Restore(workload::SampleBookDocument(),
                                        s->get(), {});
  EXPECT_FALSE(small.ok());
}

}  // namespace
}  // namespace xmlup::core
