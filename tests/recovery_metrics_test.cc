// Crash-recovery metrics against ground truth. Each scenario builds the
// same store, tampers with the journal the way a crash (or bit rot)
// would, and checks that the recovery counters — records replayed,
// torn-tail bytes dropped — match expectations computed from the
// pre-crash journal bytes by an independent walk of the frame length
// fields (no CRC logic shared with ScanJournal).

#include "store/document_store.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "observability/metrics.h"
#include "store/file.h"
#include "store/journal.h"
#include "xml/parser.h"

namespace xmlup::store {
namespace {

using xml::NodeId;
using xml::NodeKind;

constexpr char kDoc[] = "<library><shelf><book>Iliad</book></shelf></library>";
constexpr int kInserts = 10;

xml::Tree ParseOrDie(std::string_view text) {
  auto tree = xml::ParseDocument(text);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

StoreOptions Options(MemFileSystem* fs) {
  StoreOptions options;
  options.fs = fs;
  options.auto_checkpoint = false;  // keep the journal in place
  return options;
}

// Creates the store and applies kInserts synced single-record updates
// with growing payloads (so frames differ in size), then closes it.
// Returns the journal bytes as the crash would have left them.
std::string BuildAndClose(MemFileSystem* fs) {
  auto created = DocumentStore::Create("db", ParseOrDie(kDoc), "ordpath",
                                       Options(fs));
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  NodeId root = (*created)->document().tree().root();
  for (int i = 0; i < kInserts; ++i) {
    auto node = (*created)->InsertNode(root, NodeKind::kElement, "entry",
                                       std::string(i + 1, 'x'));
    EXPECT_TRUE(node.ok()) << node.status().ToString();
  }
  auto bytes = fs->ReadFile("db/" + JournalFileName(1));
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

// Byte offsets just past each complete frame, from the length fields only.
std::vector<uint64_t> FrameEnds(const std::string& bytes) {
  std::vector<uint64_t> ends;
  size_t pos = kJournalHeaderSize;
  while (bytes.size() - pos >= kFrameHeaderSize) {
    uint32_t len = 0;
    for (int b = 3; b >= 0; --b) {
      len = (len << 8) | static_cast<uint8_t>(bytes[pos + b]);
    }
    if (bytes.size() - pos - kFrameHeaderSize < len) break;
    pos += kFrameHeaderSize + len;
    ends.push_back(pos);
  }
  return ends;
}

void RewriteJournal(MemFileSystem* fs, const std::string& bytes) {
  auto file = fs->OpenWritable("db/" + JournalFileName(1),
                               FileSystem::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(bytes).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

uint64_t Field(const std::string& name) {
  for (const auto& [key, value] : obs::GlobalMetrics().TextFields(false)) {
    if (key == name) return std::stoull(value);
  }
  return 0;
}

// Opens the tampered store and checks StoreStats and the registry against
// the expected replay/truncation outcome.
void ExpectRecovery(MemFileSystem* fs, uint64_t expect_replayed,
                    uint64_t expect_truncated) {
  obs::GlobalMetrics().Reset();
  auto opened = DocumentStore::Open("db", Options(fs));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const StoreStats& stats = (*opened)->stats();
  EXPECT_EQ(stats.recovered_records, expect_replayed);
  EXPECT_EQ(stats.truncated_bytes, expect_truncated);
  // The surviving document holds exactly the replayed inserts.
  size_t entries = 0;
  for (NodeId n : (*opened)->document().tree().PreorderNodes()) {
    if ((*opened)->document().tree().name(n) == "entry") ++entries;
  }
  EXPECT_EQ(entries, expect_replayed);
  if (!obs::kMetricsEnabled) return;
  EXPECT_EQ(Field("store.recovery.opens"), 1u);
  EXPECT_EQ(Field("store.recovery.replayed_records"), expect_replayed);
  EXPECT_EQ(Field("store.recovery.truncated_bytes"), expect_truncated);
  // Replay drives the document's own counters: every record here is one
  // element insert.
  EXPECT_EQ(Field("doc.ordpath.inserts"), expect_replayed);
  EXPECT_EQ(Field("doc.ordpath.removes"), 0u);
}

TEST(RecoveryMetricsTest, CleanJournalReplaysEverythingDropsNothing) {
  MemFileSystem fs;
  std::string bytes = BuildAndClose(&fs);
  ASSERT_EQ(FrameEnds(bytes).size(), static_cast<size_t>(kInserts));
  ASSERT_EQ(FrameEnds(bytes).back(), bytes.size());
  ExpectRecovery(&fs, kInserts, 0);
}

TEST(RecoveryMetricsTest, CutAtFrameBoundaryDropsNoBytes) {
  for (int keep : {0, 1, 5, kInserts - 1}) {
    MemFileSystem fs;
    std::string bytes = BuildAndClose(&fs);
    std::vector<uint64_t> ends = FrameEnds(bytes);
    uint64_t cut = keep == 0 ? kJournalHeaderSize : ends[keep - 1];
    RewriteJournal(&fs, bytes.substr(0, cut));
    SCOPED_TRACE("keep=" + std::to_string(keep));
    ExpectRecovery(&fs, keep, 0);
  }
}

TEST(RecoveryMetricsTest, TornTailBytesDroppedMatchGroundTruth) {
  // Cut inside the next frame's header, and inside its payload: the torn
  // tail is exactly the bytes past the last complete frame.
  for (uint64_t extra : {uint64_t{1}, uint64_t{kFrameHeaderSize + 1}}) {
    for (int keep : {0, 3, kInserts - 1}) {
      MemFileSystem fs;
      std::string bytes = BuildAndClose(&fs);
      std::vector<uint64_t> ends = FrameEnds(bytes);
      uint64_t base = keep == 0 ? kJournalHeaderSize : ends[keep - 1];
      uint64_t cut = base + extra;
      ASSERT_LT(cut, ends[keep]);  // stays inside the next frame
      RewriteJournal(&fs, bytes.substr(0, cut));
      SCOPED_TRACE("keep=" + std::to_string(keep) +
                   " extra=" + std::to_string(extra));
      ExpectRecovery(&fs, keep, extra);
    }
  }
}

TEST(RecoveryMetricsTest, CorruptPayloadStopsReplayAtTheFlip) {
  // A bit flip inside frame j's payload fails its CRC: frames before j
  // replay, everything from j's header on is dropped.
  for (int flip_frame : {0, 4, kInserts - 1}) {
    MemFileSystem fs;
    std::string bytes = BuildAndClose(&fs);
    std::vector<uint64_t> ends = FrameEnds(bytes);
    uint64_t frame_start =
        flip_frame == 0 ? kJournalHeaderSize : ends[flip_frame - 1];
    std::string tampered = bytes;
    tampered[frame_start + kFrameHeaderSize + 2] ^= 0x40;
    RewriteJournal(&fs, tampered);
    SCOPED_TRACE("flip_frame=" + std::to_string(flip_frame));
    ExpectRecovery(&fs, flip_frame, bytes.size() - frame_start);
  }
}

}  // namespace
}  // namespace xmlup::store
