// E8 — label size growth under the survey's three update scenarios
// (frequent random, frequent uniform, skewed frequent insertions, §5.1),
// reproducing the §3.1.2 claims: under skewed insertions the Vector
// scheme's label growth is much slower than QED's; ORDPATH and
// ImprovedBinary grow a bit per insertion at a fixed position; DeweyID
// stays small only by relabelling.
//
// For every dynamic scheme and N in {250, 1000, 4000} insertions, prints
// the average label bits after the batch, the peak bits of any inserted
// label, and the number of relabelled nodes.

#include <cstdio>
#include <string>
#include <vector>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using workload::InsertPattern;
using xml::NodeId;
using xml::NodeKind;

struct Row {
  size_t inserts = 0;
  double avg_bits = 0;
  size_t peak_inserted_bits = 0;
  uint64_t relabels = 0;
  bool exhausted = false;
};

bool RunBatch(const std::string& scheme_name, InsertPattern pattern,
              size_t inserts, Row* row) {
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return false;
  workload::DocumentShape shape;
  shape.target_nodes = 500;
  shape.seed = 77;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return false;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return false;
  (*scheme)->ResetCounters();

  workload::InsertionPlanner planner(pattern, 78);
  size_t peak = 0;
  size_t done = 0;
  for (size_t i = 0; i < inserts; ++i) {
    auto pos = planner.Next(doc->tree());
    if (!pos.ok()) return false;
    auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "u", "",
                                pos->before);
    if (!node.ok()) {
      row->exhausted = true;
      break;
    }
    peak = std::max(peak, (*scheme)->StorageBits(doc->label(*node)));
    ++done;
  }
  row->inserts = done;
  row->avg_bits = doc->AverageLabelBits();
  row->peak_inserted_bits = peak;
  row->relabels = (*scheme)->counters().relabels;
  return true;
}

}  // namespace

int main() {
  const std::vector<std::string> schemes = {
      "dewey", "ordpath", "dln",  "lsdx",   "improved-binary",
      "qed",   "cdqs",    "cdbs", "vector", "dde"};
  const InsertPattern patterns[] = {InsertPattern::kRandom,
                                    InsertPattern::kUniform,
                                    InsertPattern::kSkewedFixed};

  printf("=== E8: label growth under random / uniform / skewed "
         "insertions ===\n");
  printf("(500-node base document; avg = bits/label after the batch, peak "
         "= largest inserted label)\n\n");
  for (InsertPattern pattern : patterns) {
    printf("--- pattern: %s ---\n",
           std::string(workload::InsertPatternName(pattern)).c_str());
    printf("%-18s %10s %10s %10s %10s %10s\n", "scheme", "inserts", "avg",
           "peak", "relabels", "status");
    for (const std::string& scheme : schemes) {
      for (size_t n : {250u, 1000u, 4000u}) {
        Row row;
        if (!RunBatch(scheme, pattern, n, &row)) {
          printf("%-18s %10zu %10s\n", scheme.c_str(), n, "ERROR");
          continue;
        }
        printf("%-18s %10zu %10.1f %10zu %10llu %10s\n", scheme.c_str(),
               row.inserts, row.avg_bits, row.peak_inserted_bits,
               static_cast<unsigned long long>(row.relabels),
               row.exhausted ? "exhausted" : "ok");
      }
    }
    printf("\n");
  }
  printf("Headline (paper §3.1.2): compare 'vector' vs 'qed' peak bits "
         "under the skewed pattern.\n");
  return 0;
}
