// Concurrency subsystem benchmarks: read scaling across 1..N reader
// threads on pinned snapshot views (with and without a rate-paced
// concurrent writer), and update acknowledgement throughput under
// pipelined group commit versus per-update fsync — the fsync
// amortisation and overlap the two-stage write pipeline exists for. The
// self-timed sweep writes BENCH_concurrency.json; the registered
// microbenchmarks cover PinView and view-query cost.
//
// Methodology notes (hard-won):
//   * Update throughput is driven by *windowed* submitters: each keeps a
//     fixed number of asynchronous submissions in flight instead of
//     waiting for every ack before sending the next. Closed-loop
//     submitters cap offered load at submitters-per-fsync and can never
//     show batches growing under load; a window is how a real client
//     (replication feed, bulk loader, server session) actually drives a
//     group-commit pipeline.
//   * The concurrent writer in the read-scaling sweep is paced at a
//     fixed rate. A closed-loop writer measures reader interference at
//     "whatever the write path happens to sustain", so making the write
//     path faster silently makes the read numbers worse — an artifact,
//     not a regression.
//   * Reader measurement starts after a warmup and the JSON records
//     hardware_concurrency: on boxes with fewer cores than reader
//     threads, the flat (or noisy-degrading) tail is oversubscription,
//     not contention.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "concurrency/concurrent_store.h"
#include "concurrency/update.h"
#include "observability/metrics.h"
#include "store/document_store.h"
#include "store/file.h"
#include "xml/parser.h"

namespace {

using namespace xmlup;
using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;
using concurrency::ConcurrentStoreStats;
using concurrency::ReadView;
using concurrency::UpdateRequest;
using concurrency::UpdateResult;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;

constexpr char kScheme[] = "dewey";

// A moderately sized library: enough structure that queries do real work.
xml::Tree BuildTree(int shelves, int books_per_shelf) {
  std::string text = "<library>";
  for (int s = 0; s < shelves; ++s) {
    text += "<shelf id=\"s";
    text += std::to_string(s);
    text += "\">";
    for (int b = 0; b < books_per_shelf; ++b) {
      text += "<book><title>t";
      text += std::to_string(s * 100 + b);
      text += "</title><year>1900</year></book>";
    }
    text += "</shelf>";
  }
  text += "</library>";
  auto tree = xml::ParseDocument(text);
  if (!tree.ok()) std::abort();
  return std::move(*tree);
}

UpdateRequest InsertBook(int i) {
  UpdateRequest request;
  request.op = UpdateRequest::Op::kInsertChild;
  request.xpath = "/shelf[1]";
  request.kind = xml::NodeKind::kElement;
  request.name = "book";
  request.value = std::to_string(i);
  return request;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

// --- read scaling ----------------------------------------------------------

struct ReadPoint {
  int threads = 0;
  double queries_per_s = 0;         // readers alone
  double queries_per_s_writer = 0;  // same, with a writer paced at kWriterHz
};

// Fixed offered write load for the interference measurement (see the
// methodology note at the top of the file).
constexpr double kWriterHz = 500.0;

double MeasureReaders(ConcurrentStore* st, int threads, double warmup_ms,
                      double duration_ms, bool with_writer) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const ReadView> view = st->PinView();
        auto hits = view->Query("//book/title");
        if (!hits.ok()) std::abort();
        benchmark::DoNotOptimize(hits->size());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      const auto tick =
          std::chrono::microseconds(static_cast<long>(1e6 / kWriterHz));
      auto next = std::chrono::steady_clock::now();
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        next += tick;
        std::this_thread::sleep_until(next);
        if (!st->Update(InsertBook(i++)).status.ok()) std::abort();
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(warmup_ms)));
  const uint64_t before = queries.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  while (MsSince(start) < duration_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double elapsed_ms = MsSince(start);
  const uint64_t after = queries.load(std::memory_order_relaxed);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  if (writer.joinable()) writer.join();
  return static_cast<double>(after - before) / (elapsed_ms / 1000.0);
}

std::vector<ReadPoint> MeasureReadScaling() {
  std::vector<ReadPoint> points;
  // Always sweep 1..4 (plus 8 when the hardware has it): on a small box
  // the flat tail is itself the datum — readers don't degrade each other.
  std::vector<int> counts = {1, 2, 4};
  if (std::thread::hardware_concurrency() >= 8) counts.push_back(8);
  for (int threads : counts) {
    // A fresh store per point so writer-grown documents don't skew the
    // later (larger) thread counts.
    ReadPoint point;
    point.threads = threads;
    {
      MemFileSystem fs;
      ConcurrentStoreOptions options;
      options.store.fs = &fs;
      auto st = ConcurrentStore::Create("db", BuildTree(10, 20), kScheme,
                                        options);
      if (!st.ok()) std::abort();
      point.queries_per_s =
          MeasureReaders(st->get(), threads, 100.0, 400.0, false);
    }
    {
      MemFileSystem fs;
      ConcurrentStoreOptions options;
      options.store.fs = &fs;
      auto st = ConcurrentStore::Create("db", BuildTree(10, 20), kScheme,
                                        options);
      if (!st.ok()) std::abort();
      point.queries_per_s_writer =
          MeasureReaders(st->get(), threads, 100.0, 400.0, true);
    }
    points.push_back(point);
  }
  return points;
}

// --- group commit vs per-update fsync --------------------------------------

// Both sides run on the REAL file system: the whole point is the price of
// fsync(2), which MemFileSystem does not charge.
std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlup_bench_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) std::abort();
  return dir;
}

struct SyncedRates {
  double updates_per_s = 0;
  double fsyncs_per_s = 0;
};

SyncedRates MeasurePerUpdateFsync(double duration_ms) {
  SyncedRates rates;
  const std::string dir = MakeTempDir();
  StoreOptions options;
  options.sync_each_update = true;
  options.auto_checkpoint = false;
  auto st = DocumentStore::Create(dir + "/db", BuildTree(2, 4), kScheme,
                                  options);
  if (!st.ok()) std::abort();
  xml::NodeId root = (*st)->document().tree().root();
  auto start = std::chrono::steady_clock::now();
  uint64_t updates = 0;
  while (MsSince(start) < duration_ms) {
    auto node =
        (*st)->InsertNode(root, xml::NodeKind::kElement, "book", "");
    if (!node.ok()) std::abort();
    ++updates;
  }
  double elapsed_ms = MsSince(start);
  rates.updates_per_s = static_cast<double>(updates) / (elapsed_ms / 1000.0);
  rates.fsyncs_per_s =
      static_cast<double>((*st)->stats().syncs) / (elapsed_ms / 1000.0);
  return rates;
}

struct GroupCommitPoint {
  int submitters = 0;
  size_t window = 1;  ///< In-flight submissions per submitter.
  double updates_per_s = 0;
  double fsyncs_per_s = 0;  // one per batch
  double mean_batch = 0;
  uint64_t views_delta = 0;    ///< Views published by O(delta) replay.
  uint64_t views_rebuilt = 0;  ///< Views published by full rebuild.
  // Stage-to-durable latency of a staged batch (queueing behind earlier
  // barriers + the fsync), from "cstore.commit_ns"; plus the pipeline's
  // per-stage attribution: writer-side view publication
  // ("cstore.publish_ns") and flusher-side barrier ("cstore.fsync_ns").
  // All zero when the metrics layer is compiled out.
  uint64_t commit_p50_ns = 0;
  uint64_t commit_p95_ns = 0;
  uint64_t commit_p99_ns = 0;
  uint64_t publish_p50_ns = 0;
  uint64_t fsync_p50_ns = 0;
};

// max_batch = 1 with window = 1 degrades the pipeline to one fsync per
// update — the apples-to-apples baseline for the group-commit comparison
// (same queue, same writer thread, same ack path; only the fsync
// amortisation differs). The headline group-commit points use a window
// so batches can actually grow under load.
GroupCommitPoint MeasureGroupCommit(int submitters, size_t max_batch,
                                    size_t window, double duration_ms) {
  GroupCommitPoint point;
  point.submitters = submitters;
  point.window = window;
  const std::string dir = MakeTempDir();
  ConcurrentStoreOptions options;
  options.max_batch = max_batch;
  auto st = ConcurrentStore::Create(dir + "/db", BuildTree(2, 4), kScheme,
                                    options);
  if (!st.ok()) std::abort();
  // Reset so the latency quantiles cover exactly this point's run.
  obs::GlobalMetrics().Reset();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      int i = t * 1000000;
      uint64_t local = 0;
      std::deque<std::future<UpdateResult>> inflight;
      while (!stop.load(std::memory_order_acquire)) {
        while (inflight.size() < window) {
          inflight.push_back((*st)->SubmitUpdate(InsertBook(i++)));
        }
        if (!inflight.front().get().status.ok()) std::abort();
        inflight.pop_front();
        ++local;
      }
      while (!inflight.empty()) {
        if (!inflight.front().get().status.ok()) std::abort();
        inflight.pop_front();
        ++local;
      }
      acked.fetch_add(local);
    });
  }
  auto start = std::chrono::steady_clock::now();
  while (MsSince(start) < duration_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  // Elapsed includes the in-flight drain after `stop` — at most
  // submitters*window acks, a few batches' worth.
  double elapsed_ms = MsSince(start);
  ConcurrentStoreStats stats = (*st)->stats();
  point.updates_per_s =
      static_cast<double>(acked.load()) / (elapsed_ms / 1000.0);
  point.fsyncs_per_s =
      static_cast<double>(stats.batches) / (elapsed_ms / 1000.0);
  point.mean_batch =
      stats.batches > 0 ? static_cast<double>(stats.updates_applied) /
                              static_cast<double>(stats.batches)
                        : 0.0;
  point.views_delta = stats.views_delta;
  point.views_rebuilt = stats.views_rebuilt;
  if (obs::kMetricsEnabled) {
    obs::Registry& reg = obs::GlobalMetrics();
    obs::Histogram* commit = reg.GetHistogram("cstore.commit_ns");
    point.commit_p50_ns = commit->ValueAtPercentile(50);
    point.commit_p95_ns = commit->ValueAtPercentile(95);
    point.commit_p99_ns = commit->ValueAtPercentile(99);
    point.publish_p50_ns =
        reg.GetHistogram("cstore.publish_ns")->ValueAtPercentile(50);
    point.fsync_p50_ns =
        reg.GetHistogram("cstore.fsync_ns")->ValueAtPercentile(50);
  }
  return point;
}

// --- self-timed JSON sweep -------------------------------------------------

void WriteJsonSweep() {
  FILE* out = std::fopen("BENCH_concurrency.json", "w");
  if (out == nullptr) return;

  std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"read_scaling_writer_hz\": %.0f,\n", kWriterHz);
  std::fprintf(out, "  \"read_scaling\": [\n");
  std::vector<ReadPoint> reads = MeasureReadScaling();
  for (size_t i = 0; i < reads.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"queries_per_s\": %.0f, "
                 "\"queries_per_s_with_writer\": %.0f}%s\n",
                 reads[i].threads, reads[i].queries_per_s,
                 reads[i].queries_per_s_writer,
                 i + 1 < reads.size() ? "," : "");
    std::fprintf(stderr,
                 "readers=%d: %.0f q/s alone, %.0f q/s with writer\n",
                 reads[i].threads, reads[i].queries_per_s,
                 reads[i].queries_per_s_writer);
  }
  std::fprintf(out, "  ],\n");

  // Raw single-threaded baseline: a plain DocumentStore fsyncing every
  // insert, with no queue or writer thread in the way.
  SyncedRates per_update = MeasurePerUpdateFsync(500.0);
  std::fprintf(out,
               "  \"direct_per_update_fsync\": {\"updates_per_s\": %.0f, "
               "\"fsyncs_per_s\": %.0f},\n",
               per_update.updates_per_s, per_update.fsyncs_per_s);
  std::fprintf(stderr,
               "direct per-update fsync: %.0f updates/s (%.0f fsync/s)\n",
               per_update.updates_per_s, per_update.fsyncs_per_s);

  // Pipeline comparison: max_batch=1/window=1 is one fsync per update
  // through the same queue and writer; group commit proper runs windowed
  // submitters so batches grow under load.
  const std::vector<int> submitter_counts = {1, 2, 4};
  for (int grouped = 0; grouped < 2; ++grouped) {
    std::fprintf(out, "  \"%s\": [\n",
                 grouped ? "group_commit" : "pipeline_per_update_fsync");
    for (size_t i = 0; i < submitter_counts.size(); ++i) {
      GroupCommitPoint point = MeasureGroupCommit(
          submitter_counts[i], grouped ? 256 : 1, grouped ? 32 : 1, 500.0);
      std::fprintf(out,
                   "    {\"submitters\": %d, \"window\": %zu, "
                   "\"updates_per_s\": %.0f, "
                   "\"fsyncs_per_s\": %.0f, \"mean_batch\": %.1f, "
                   "\"views_delta\": %llu, \"views_rebuilt\": %llu, "
                   "\"commit_ns_p50\": %llu, \"commit_ns_p95\": %llu, "
                   "\"commit_ns_p99\": %llu, \"publish_ns_p50\": %llu, "
                   "\"fsync_ns_p50\": %llu}%s\n",
                   point.submitters, point.window, point.updates_per_s,
                   point.fsyncs_per_s, point.mean_batch,
                   static_cast<unsigned long long>(point.views_delta),
                   static_cast<unsigned long long>(point.views_rebuilt),
                   static_cast<unsigned long long>(point.commit_p50_ns),
                   static_cast<unsigned long long>(point.commit_p95_ns),
                   static_cast<unsigned long long>(point.commit_p99_ns),
                   static_cast<unsigned long long>(point.publish_p50_ns),
                   static_cast<unsigned long long>(point.fsync_p50_ns),
                   i + 1 < submitter_counts.size() ? "," : "");
      std::fprintf(stderr,
                   "%s, %d submitters (window %zu): %.0f updates/s "
                   "(%.0f fsync/s, mean batch %.1f, views %llu delta / "
                   "%llu rebuilt, commit p50=%llu ns p99=%llu ns, "
                   "publish p50=%llu ns, fsync p50=%llu ns)\n",
                   grouped ? "group commit" : "pipeline per-update fsync",
                   point.submitters, point.window, point.updates_per_s,
                   point.fsyncs_per_s, point.mean_batch,
                   static_cast<unsigned long long>(point.views_delta),
                   static_cast<unsigned long long>(point.views_rebuilt),
                   static_cast<unsigned long long>(point.commit_p50_ns),
                   static_cast<unsigned long long>(point.commit_p99_ns),
                   static_cast<unsigned long long>(point.publish_p50_ns),
                   static_cast<unsigned long long>(point.fsync_p50_ns));
    }
    std::fprintf(out, "  ]%s\n", grouped ? "" : ",");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
}

// --- registered microbenchmarks --------------------------------------------

void BM_PinView(benchmark::State& state) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BuildTree(10, 20), kScheme,
                                    options);
  if (!st.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*st)->PinView());
  }
}
BENCHMARK(BM_PinView)->MinTime(0.1);

void BM_ViewQuery(benchmark::State& state) {
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BuildTree(10, 20), kScheme,
                                    options);
  if (!st.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  auto view = (*st)->PinView();
  for (auto _ : state) {
    auto hits = view->Query("//book/title");
    if (!hits.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(hits->size());
  }
}
BENCHMARK(BM_ViewQuery)->MinTime(0.1);

void BM_UpdateAckBuffered(benchmark::State& state) {
  // Acknowledgement round-trip through the queue + writer thread + view
  // publication + flusher ack, with MemFS so no fsync dominates.
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  auto st = ConcurrentStore::Create("db", BuildTree(2, 4), kScheme,
                                    options);
  if (!st.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  int i = 0;
  for (auto _ : state) {
    if (!(*st)->Update(InsertBook(i++)).status.ok()) {
      state.SkipWithError("update failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateAckBuffered)->MinTime(0.1);

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
