// E2 — Figure 2: the XML encoding of the sample file (Definition 2), and
// the §2.3 requirement that the encoding permits full reconstruction of
// the textual document.

#include <cstdio>

#include "core/encoding_table.h"
#include "workload/document_generator.h"
#include "xml/serializer.h"

int main() {
  using namespace xmlup;

  xml::Tree tree = workload::SampleBookDocument();
  auto table = core::EncodingTable::FromTree(tree);
  if (!table.ok()) {
    fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  printf("=== Figure 2: an XML encoding of the sample XML file ===\n\n");
  printf("%s\n", table->ToText().c_str());

  auto rebuilt = table->ReconstructTree();
  if (!rebuilt.ok()) {
    fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }
  std::string original = xml::SerializeDocument(tree).value();
  std::string reconstructed = xml::SerializeDocument(*rebuilt).value();
  printf("Reconstruction of the textual document from the encoding: %s\n",
         original == reconstructed ? "EXACT MATCH" : "MISMATCH");
  printf("\n%s\n", reconstructed.c_str());
  return original == reconstructed ? 0 : 1;
}
