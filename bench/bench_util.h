#ifndef XMLUP_BENCH_BENCH_UTIL_H_
#define XMLUP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/labeled_document.h"

namespace xmlup::bench {

/// Prints the labelled tree as an indented listing: one node per line with
/// its rendered label — the textual equivalent of the paper's tree
/// figures.
inline void PrintLabeledTree(const core::LabeledDocument& doc) {
  for (xml::NodeId n : doc.tree().PreorderNodes()) {
    int depth = doc.tree().Depth(n);
    std::string name = doc.tree().name(n);
    if (name.empty()) {
      name.push_back('#');
      name.append(xml::NodeKindName(doc.tree().kind(n)));
    }
    printf("%*s%-12s %s\n", depth * 2, "", name.c_str(),
           doc.scheme().Render(doc.label(n)).c_str());
  }
}

}  // namespace xmlup::bench

#endif  // XMLUP_BENCH_BENCH_UTIL_H_
