// E9 timing counterpart: wall-clock cost per insertion for every scheme
// (the survey's "update costs" dimension). Relabelling schemes pay per
// insertion; persistent schemes pay only the code computation.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using xml::NodeId;
using xml::NodeKind;

void BM_RandomInsert(benchmark::State& state,
                     const std::string& scheme_name) {
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) {
    state.SkipWithError("unknown scheme");
    return;
  }
  workload::DocumentShape shape;
  shape.target_nodes = 1000;
  shape.seed = 47;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) {
    state.SkipWithError("labelling failed");
    return;
  }
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 48);
  size_t relabels = 0;
  for (auto _ : state) {
    auto pos = planner.Next(doc->tree());
    if (!pos.ok()) {
      state.SkipWithError("planner failed");
      return;
    }
    core::UpdateStats stats;
    auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "u", "",
                                pos->before, &stats);
    if (!node.ok()) {
      state.SkipWithError(node.status().ToString().c_str());
      return;
    }
    relabels += stats.relabeled;
  }
  state.counters["relabels_per_insert"] =
      state.iterations() > 0
          ? static_cast<double>(relabels) /
                static_cast<double>(state.iterations())
          : 0.0;
}

void RegisterAll() {
  for (const std::string& name : labels::AllSchemeNames()) {
    benchmark::RegisterBenchmark(("insert/" + name).c_str(),
                                 BM_RandomInsert, name)
        ->MinTime(0.05);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
