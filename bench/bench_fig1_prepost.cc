// E1 — Figure 1: the sample XML file in textual format (1a) and its
// preorder/postorder labelled tree representation (1b).

#include <cstdio>

#include "bench_util.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "xml/serializer.h"

int main() {
  using namespace xmlup;

  printf("=== Figure 1(a): the sample XML file ===\n\n");
  xml::Tree tree = workload::SampleBookDocument();
  xml::SerializeOptions pretty;
  pretty.pretty = true;
  printf("%s\n", xml::SerializeDocument(tree, pretty).value().c_str());

  printf("=== Figure 1(b): preorder/postorder labelled tree ===\n\n");
  auto scheme = labels::CreateScheme("xpath-accelerator");
  if (!scheme.ok()) {
    fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  auto doc = core::LabeledDocument::Build(workload::SampleBookDocument(),
                                          scheme->get());
  if (!doc.ok()) {
    fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  bench::PrintLabeledTree(*doc);

  printf("\nAncestor test via Dietz's pre/post containment: "
         "book is an ancestor of name: %s\n",
         (*scheme)->IsAncestor(
             doc->label(doc->tree().root()),
             doc->label(doc->tree().PreorderNodes()[8]))
             ? "yes"
             : "no");
  return 0;
}
