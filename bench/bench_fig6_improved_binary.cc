// E6 — Figure 6: the ImprovedBinary labelled XML tree with the figure's
// insertions (0101.001 before the first sibling, 0101.011 after the last,
// and an AssignMiddleSelfLabel insertion between two nodes).

#include <cstdio>

#include "bench_util.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/tree.h"

int main() {
  using namespace xmlup;
  using xml::NodeId;
  using xml::NodeKind;

  auto scheme = labels::CreateScheme("improved-binary");
  if (!scheme.ok()) return 1;

  xml::Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "x").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "y").value();
  NodeId c = tree.AppendChild(root, NodeKind::kElement, "z").value();
  tree.AppendChild(a, NodeKind::kElement, "x1").value();
  NodeId b1 = tree.AppendChild(b, NodeKind::kElement, "y1").value();
  tree.AppendChild(c, NodeKind::kElement, "z1").value();
  NodeId c2 = tree.AppendChild(c, NodeKind::kElement, "z2").value();

  auto doc = core::LabeledDocument::Build(std::move(tree), scheme->get());
  if (!doc.ok()) return 1;

  printf("=== Figure 6: ImprovedBinary labelled XML tree ===\n");
  printf("(root children: 01, 0101, 011 — the recursive middle "
         "assignment)\n\n");
  bench::PrintLabeledTree(*doc);

  printf("\n--- The figure's insertions (grey nodes) ---\n\n");
  core::UpdateStats stats;
  size_t relabels = 0;
  // Before the first child of y: last 1 -> 01.
  if (!doc->InsertNode(b, NodeKind::kElement, "before", "", b1, &stats)
           .ok()) {
    return 1;
  }
  relabels += stats.relabeled;
  // After the last child of y: concatenate an extra 1.
  if (!doc->InsertNode(b, NodeKind::kElement, "after", "", xml::kInvalidNode,
                       &stats)
           .ok()) {
    return 1;
  }
  relabels += stats.relabeled;
  // Between z1 and z2: AssignMiddleSelfLabel.
  if (!doc->InsertNode(c, NodeKind::kElement, "between", "", c2, &stats)
           .ok()) {
    return 1;
  }
  relabels += stats.relabeled;
  bench::PrintLabeledTree(*doc);
  printf("\nexisting nodes relabelled: %zu (persistent labels)\n", relabels);
  printf("divisions counted for the published algorithm: %llu\n",
         static_cast<unsigned long long>(
             doc->scheme().counters().divisions));
  return 0;
}
