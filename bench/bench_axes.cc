// E11 — the "XPath Evaluations" property as throughput: label-only axis
// predicate evaluation (ancestor / parent / document order) per scheme,
// measured with google-benchmark over a 2000-node document.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace {

using namespace xmlup;
using xml::NodeId;

struct Fixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<core::LabeledDocument> doc;
  std::vector<NodeId> nodes;
};

Fixture MakeFixture(const std::string& scheme_name) {
  Fixture f;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return f;
  f.scheme = std::move(*scheme);
  workload::DocumentShape shape;
  shape.target_nodes = 2000;
  shape.seed = 13;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return f;
  auto doc = core::LabeledDocument::Build(std::move(*tree), f.scheme.get());
  if (!doc.ok()) return f;
  f.doc = std::make_unique<core::LabeledDocument>(std::move(*doc));
  f.nodes = f.doc->tree().PreorderNodes();
  return f;
}

void BM_AncestorPredicate(benchmark::State& state,
                          const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  size_t i = 0, j = f.nodes.size() / 2;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    j = (j + 7) % f.nodes.size();
    benchmark::DoNotOptimize(f.scheme->IsAncestor(
        f.doc->label(f.nodes[i]), f.doc->label(f.nodes[j])));
  }
}

void BM_OrderComparison(benchmark::State& state,
                        const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  size_t i = 0, j = f.nodes.size() / 3;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    j = (j + 11) % f.nodes.size();
    benchmark::DoNotOptimize(f.scheme->Compare(f.doc->label(f.nodes[i]),
                                               f.doc->label(f.nodes[j])));
  }
}

void BM_ParentPredicate(benchmark::State& state,
                        const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr || !f.scheme->traits().supports_parent) {
    state.SkipWithError("parent evaluation unsupported");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    NodeId parent = f.doc->tree().parent(f.nodes[i]);
    if (parent == xml::kInvalidNode) parent = f.nodes[i];
    benchmark::DoNotOptimize(f.scheme->IsParent(f.doc->label(parent),
                                                f.doc->label(f.nodes[i])));
  }
}

void RegisterAll() {
  for (const std::string& name : labels::AllSchemeNames()) {
    benchmark::RegisterBenchmark(("ancestor/" + name).c_str(),
                                 BM_AncestorPredicate, name)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("order/" + name).c_str(),
                                 BM_OrderComparison, name)
        ->MinTime(0.05);
    auto scheme = labels::CreateScheme(name);
    if (scheme.ok() && (*scheme)->traits().supports_parent) {
      benchmark::RegisterBenchmark(("parent/" + name).c_str(),
                                   BM_ParentPredicate, name)
          ->MinTime(0.05);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
