// E11 — the "XPath Evaluations" property as throughput: label-only axis
// predicate evaluation (ancestor / parent / document order) per scheme,
// measured with google-benchmark over a 2000-node document; plus
// naive-scan vs. index-backed axis queries over a 10k-node document,
// with a self-timed sweep written to BENCH_axes.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/axis_evaluator.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace {

using namespace xmlup;
using xml::NodeId;

struct Fixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<core::LabeledDocument> doc;
  std::vector<NodeId> nodes;
};

Fixture MakeFixture(const std::string& scheme_name, size_t target_nodes = 2000) {
  Fixture f;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return f;
  f.scheme = std::move(*scheme);
  workload::DocumentShape shape;
  shape.target_nodes = target_nodes;
  shape.seed = 13;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return f;
  auto doc = core::LabeledDocument::Build(std::move(*tree), f.scheme.get());
  if (!doc.ok()) return f;
  f.doc = std::make_unique<core::LabeledDocument>(std::move(*doc));
  f.nodes = f.doc->tree().PreorderNodes();
  return f;
}

void BM_AncestorPredicate(benchmark::State& state,
                          const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  size_t i = 0, j = f.nodes.size() / 2;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    j = (j + 7) % f.nodes.size();
    benchmark::DoNotOptimize(f.scheme->IsAncestor(
        f.doc->label(f.nodes[i]), f.doc->label(f.nodes[j])));
  }
}

void BM_OrderComparison(benchmark::State& state,
                        const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  size_t i = 0, j = f.nodes.size() / 3;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    j = (j + 11) % f.nodes.size();
    benchmark::DoNotOptimize(f.scheme->Compare(f.doc->label(f.nodes[i]),
                                               f.doc->label(f.nodes[j])));
  }
}

void BM_ParentPredicate(benchmark::State& state,
                        const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr || !f.scheme->traits().supports_parent) {
    state.SkipWithError("parent evaluation unsupported");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 1) % f.nodes.size();
    NodeId parent = f.doc->tree().parent(f.nodes[i]);
    if (parent == xml::kInvalidNode) parent = f.nodes[i];
    benchmark::DoNotOptimize(f.scheme->IsParent(f.doc->label(parent),
                                                f.doc->label(f.nodes[i])));
  }
}

// --- naive scan vs. index-backed axis queries (10k nodes) ----------------

void BM_DescendantAxis(benchmark::State& state,
                       const std::string& scheme_name, bool use_index) {
  Fixture f = MakeFixture(scheme_name, 10000);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  core::AxisEvaluator eval(f.doc.get(), use_index);
  (void)eval.Descendants(f.nodes[0]);  // Prime the key cache and index.
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 17) % f.nodes.size();
    benchmark::DoNotOptimize(eval.Descendants(f.nodes[i]));
  }
}

void BM_FollowingAxis(benchmark::State& state,
                      const std::string& scheme_name, bool use_index) {
  Fixture f = MakeFixture(scheme_name, 10000);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  core::AxisEvaluator eval(f.doc.get(), use_index);
  (void)eval.Descendants(f.nodes[0]);
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 17) % f.nodes.size();
    benchmark::DoNotOptimize(eval.Following(f.nodes[i]));
  }
}

// Average ns per axis query over a rotating node sample, wall-clocked
// until `min_ms` has elapsed.
template <typename QueryFn>
double TimeNsPerQuery(QueryFn&& query, size_t node_count, double min_ms) {
  using clock = std::chrono::steady_clock;
  auto start = clock::now();
  size_t queries = 0;
  size_t i = 0;
  double elapsed_ns = 0;
  do {
    i = (i + 17) % node_count;
    query(i);
    ++queries;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start)
            .count());
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / static_cast<double>(queries);
}

// Sweeps descendant/following queries for both execution paths and
// writes ns/query plus speedups to BENCH_axes.json in the working
// directory.
void WriteJsonSweep() {
  const std::vector<std::string> schemes = {
      "xpath-accelerator", "dewey", "ordpath", "dln",
      "lsdx",              "qed",   "prime"};
  FILE* out = std::fopen("BENCH_axes.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"document_nodes\": 10000,\n  \"schemes\": {\n");
  bool first = true;
  for (const std::string& name : schemes) {
    Fixture f = MakeFixture(name, 10000);
    if (f.doc == nullptr) continue;
    core::AxisEvaluator indexed(f.doc.get(), /*use_index=*/true);
    core::AxisEvaluator naive(f.doc.get(), /*use_index=*/false);
    (void)indexed.Descendants(f.nodes[0]);  // Prime cache + index.
    size_t n = f.nodes.size();
    double desc_naive = TimeNsPerQuery(
        [&](size_t i) { benchmark::DoNotOptimize(naive.Descendants(f.nodes[i])); },
        n, 200.0);
    double desc_indexed = TimeNsPerQuery(
        [&](size_t i) { benchmark::DoNotOptimize(indexed.Descendants(f.nodes[i])); },
        n, 200.0);
    double foll_naive = TimeNsPerQuery(
        [&](size_t i) { benchmark::DoNotOptimize(naive.Following(f.nodes[i])); },
        n, 200.0);
    double foll_indexed = TimeNsPerQuery(
        [&](size_t i) { benchmark::DoNotOptimize(indexed.Following(f.nodes[i])); },
        n, 200.0);
    std::fprintf(
        out,
        "%s    \"%s\": {\n"
        "      \"descendant_ns_naive\": %.0f,\n"
        "      \"descendant_ns_indexed\": %.0f,\n"
        "      \"descendant_speedup\": %.2f,\n"
        "      \"following_ns_naive\": %.0f,\n"
        "      \"following_ns_indexed\": %.0f,\n"
        "      \"following_speedup\": %.2f\n"
        "    }",
        first ? "" : ",\n", name.c_str(), desc_naive, desc_indexed,
        desc_naive / desc_indexed, foll_naive, foll_indexed,
        foll_naive / foll_indexed);
    first = false;
    std::fprintf(stderr,
                 "%-18s descendant %9.0f -> %7.0f ns (%.1fx)   "
                 "following %9.0f -> %7.0f ns (%.1fx)\n",
                 name.c_str(), desc_naive, desc_indexed,
                 desc_naive / desc_indexed, foll_naive, foll_indexed,
                 foll_naive / foll_indexed);
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
}

void RegisterAll() {
  for (const std::string& name : labels::AllSchemeNames()) {
    benchmark::RegisterBenchmark(("ancestor/" + name).c_str(),
                                 BM_AncestorPredicate, name)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("order/" + name).c_str(),
                                 BM_OrderComparison, name)
        ->MinTime(0.05);
    auto scheme = labels::CreateScheme(name);
    if (scheme.ok() && (*scheme)->traits().supports_parent) {
      benchmark::RegisterBenchmark(("parent/" + name).c_str(),
                                   BM_ParentPredicate, name)
          ->MinTime(0.05);
    }
  }
  for (const std::string& name :
       {std::string("xpath-accelerator"), std::string("dewey"),
        std::string("ordpath"), std::string("qed")}) {
    benchmark::RegisterBenchmark(("descendants-naive/" + name).c_str(),
                                 BM_DescendantAxis, name, false)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("descendants-indexed/" + name).c_str(),
                                 BM_DescendantAxis, name, true)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("following-naive/" + name).c_str(),
                                 BM_FollowingAxis, name, false)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("following-indexed/" + name).c_str(),
                                 BM_FollowingAxis, name, true)
        ->MinTime(0.05);
  }
}

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
