// E9 — relabelling cost: how many existing labels each scheme rewrites
// under insertion streams (§3.1.1's critique of containment schemes and
// DeweyID vs the persistent schemes of §3.1.2/§4).

#include <cstdio>
#include <string>
#include <vector>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

int main() {
  using namespace xmlup;
  using workload::InsertPattern;
  using xml::NodeKind;

  printf("=== E9: relabelling cost per scheme (400 mixed insertions on a "
         "600-node document) ===\n\n");
  printf("%-18s %12s %12s %14s %12s\n", "scheme", "relabels",
         "overflow", "relabels/ins", "labels");

  for (const std::string& name : labels::AllSchemeNames()) {
    auto scheme = labels::CreateScheme(name);
    if (!scheme.ok()) continue;
    workload::DocumentShape shape;
    shape.target_nodes = 600;
    shape.seed = 3;
    auto tree = workload::GenerateDocument(shape);
    if (!tree.ok()) continue;
    auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
    if (!doc.ok()) {
      printf("%-18s build failed: %s\n", name.c_str(),
             doc.status().ToString().c_str());
      continue;
    }
    (*scheme)->ResetCounters();

    size_t done = 0;
    for (InsertPattern pattern :
         {InsertPattern::kRandom, InsertPattern::kUniform,
          InsertPattern::kSkewedFixed, InsertPattern::kAppend}) {
      workload::InsertionPlanner planner(pattern, 4);
      for (int i = 0; i < 100; ++i) {
        auto pos = planner.Next(doc->tree());
        if (!pos.ok()) break;
        auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "u", "",
                                    pos->before);
        if (!node.ok()) break;
        ++done;
      }
    }
    const common::OpCounters& counters = (*scheme)->counters();
    printf("%-18s %12llu %12llu %14.2f %12zu\n", name.c_str(),
           static_cast<unsigned long long>(counters.relabels),
           static_cast<unsigned long long>(counters.overflows),
           done > 0 ? static_cast<double>(counters.relabels) /
                          static_cast<double>(done)
                    : 0.0,
           doc->tree().node_count());
  }
  printf("\nPersistent schemes (ORDPATH, ImprovedBinary, QED, CDQS, "
         "Vector) relabel nothing;\nglobal containment schemes relabel "
         "O(document) per insertion.\n");
  return 0;
}
