// E10 — the overflow problem (§4): under tightened encoding budgets,
// fixed-length schemes (DLN, CDBS) and variable-length schemes with a
// stored size (ORDPATH, ImprovedBinary, LSDX) are driven into
// overflow-forced relabelling by adversarial insertion streams, while the
// separator-based quaternary schemes (QED, CDQS) and the Vector scheme
// never relabel.

#include <cstdio>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using workload::InsertPattern;
using xml::NodeId;
using xml::NodeKind;

struct Outcome {
  size_t inserts = 0;
  uint64_t overflows = 0;
  uint64_t relabels = 0;
  size_t first_overflow_at = 0;
  bool hard_stop = false;
};

bool Run(const std::string& name, const labels::SchemeOptions& options,
         Outcome* out) {
  auto scheme = labels::CreateScheme(name, options);
  if (!scheme.ok()) return false;
  workload::DocumentShape shape;
  shape.target_nodes = 150;
  shape.seed = 21;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return false;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return false;
  (*scheme)->ResetCounters();

  NodeId root = doc->tree().root();
  NodeId right = doc->tree().next_sibling(doc->tree().first_child(root));
  common::SplitMix64 rng(5);
  for (size_t i = 0; i < 600; ++i) {
    // Alternating bisection: the §4 adversary.
    auto node = doc->InsertNode(root, NodeKind::kElement, "u", "", right);
    if (!node.ok()) {
      out->hard_stop = true;
      break;
    }
    if (rng.NextBool(0.5)) right = *node;
    ++out->inserts;
    if (out->first_overflow_at == 0 &&
        (*scheme)->counters().overflows > 0) {
      out->first_overflow_at = out->inserts;
    }
  }
  out->overflows = (*scheme)->counters().overflows;
  out->relabels = (*scheme)->counters().relabels;
  return true;
}

}  // namespace

int main() {
  labels::SchemeOptions tight;
  tight.improved_binary_length_field_bits = 6;
  tight.cdbs_slot_bits = 24;
  tight.dln_max_components = 6;
  tight.ordpath_max_code_bits = 128;
  tight.lsdx_length_field_bits = 5;
  tight.prime_order_gap = 8;

  printf("=== E10: the overflow problem under tightened budgets "
         "(600 bisection insertions) ===\n\n");
  printf("%-18s %10s %12s %12s %16s %10s\n", "scheme", "inserts",
         "overflows", "relabels", "first overflow", "hard stop");
  for (const std::string& name : labels::AllSchemeNames()) {
    Outcome out;
    if (!Run(name, tight, &out)) {
      printf("%-18s ERROR\n", name.c_str());
      continue;
    }
    printf("%-18s %10zu %12llu %12llu %16zu %10s\n", name.c_str(),
           out.inserts, static_cast<unsigned long long>(out.overflows),
           static_cast<unsigned long long>(out.relabels),
           out.first_overflow_at, out.hard_stop ? "yes" : "no");
  }
  printf("\nQED / CDQS avoid overflow entirely via the 2-bit separator.\n"
         "Every length-field or fixed-width scheme is forced to relabel "
         "(§4).\nVector survives the paper's skewed scenario unboundedly "
         "(mediant addition grows components\nlinearly), but deep "
         "*bisection* grows components like Fibonacci numbers and exhausts "
         "64-bit\nstorage — mirroring the survey's question about how the "
         "scheme handles large integers.\n");
  return 0;
}
