// Label-index acceleration: the "rectangular region query in the
// pre/post plane" (Grust) generalised — descendant retrieval by full
// label scan vs. by ordered-index range scan, across document sizes.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/axis_evaluator.h"
#include "core/label_index.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace {

using namespace xmlup;
using xml::NodeId;

struct Fixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<core::LabeledDocument> doc;
  std::unique_ptr<core::LabelIndex> index;
  std::vector<NodeId> targets;  // Mid-size subtree roots to query.
};

Fixture MakeFixture(const std::string& scheme_name, size_t nodes) {
  Fixture f;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return f;
  f.scheme = std::move(*scheme);
  workload::DocumentShape shape;
  shape.target_nodes = nodes;
  shape.seed = 29;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return f;
  auto doc = core::LabeledDocument::Build(std::move(*tree), f.scheme.get());
  if (!doc.ok()) return f;
  f.doc = std::make_unique<core::LabeledDocument>(std::move(*doc));
  auto index = core::LabelIndex::Build(f.doc.get());
  if (!index.ok()) return f;
  f.index = std::make_unique<core::LabelIndex>(std::move(*index));
  for (NodeId n : f.doc->tree().PreorderNodes()) {
    size_t kids = f.doc->tree().ChildCount(n);
    if (kids >= 2 && kids <= 12) f.targets.push_back(n);
  }
  return f;
}

void BM_DescendantsByScan(benchmark::State& state,
                          const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name, static_cast<size_t>(state.range(0)));
  if (f.doc == nullptr || f.targets.empty()) {
    state.SkipWithError("fixture failed");
    return;
  }
  core::AxisEvaluator eval(f.doc.get());
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 1) % f.targets.size();
    benchmark::DoNotOptimize(eval.Descendants(f.targets[i]));
  }
}

void BM_DescendantsByIndex(benchmark::State& state,
                           const std::string& scheme_name) {
  Fixture f = MakeFixture(scheme_name, static_cast<size_t>(state.range(0)));
  if (f.index == nullptr || f.targets.empty()) {
    state.SkipWithError("fixture failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    i = (i + 1) % f.targets.size();
    benchmark::DoNotOptimize(f.index->Descendants(f.targets[i]));
  }
}

void RegisterAll() {
  for (const std::string& name :
       {std::string("xpath-accelerator"), std::string("qed"),
        std::string("vector")}) {
    benchmark::RegisterBenchmark(("descendants_scan/" + name).c_str(),
                                 BM_DescendantsByScan, name)
        ->MinTime(0.05)
        ->Arg(1000)
        ->Arg(10000);
    benchmark::RegisterBenchmark(("descendants_index/" + name).c_str(),
                                 BM_DescendantsByIndex, name)
        ->MinTime(0.05)
        ->Arg(1000)
        ->Arg(10000);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
