// Cluster scaling benchmark: routed acknowledged update throughput at
// 1/2/4 shards versus a direct single-store baseline, all over real
// loopback TCP. The self-timed sweep writes BENCH_cluster.json.
//
// Methodology notes:
//   * Both paths pay exactly one TCP hop per request. Baseline clients
//     hold a persistent connection to a single-document Server; routed
//     clients drive the Coordinator in process, and the coordinator's
//     pooled connections carry the frame to the owning shard. What the
//     sweep isolates is therefore the sharding, not a transport delta.
//   * The single store serializes every update through one writer
//     thread, however many clients offer load — that apply-path core is
//     the ceiling the corpus exists to break. N shards run N independent
//     single-writer pipelines (documents never coordinate), so acked
//     throughput should scale until cores or fsync bandwidth run out.
//   * Clients are synchronous (one frame in flight each); scaling comes
//     from spreading client threads across documents, which is how real
//     corpus traffic (many users, one document each) actually arrives.
//   * hardware_concurrency is recorded: past it, the flat tail is
//     oversubscription, not a sharding defect.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/router.h"
#include "cluster/sharded_service.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/wire.h"
#include "xml/parser.h"

namespace {

using namespace xmlup;

constexpr char kScheme[] = "ordpath";
constexpr int kClients = 16;
constexpr int kKeysPerShard = 4;
constexpr double kPointMs = 1500.0;

double MsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/xmlup_benchcl_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) std::abort();
  return dir;
}

std::vector<std::string> InsertFrame(int step) {
  std::string name = "n";
  name += std::to_string(step);
  return {"-s", ".", "-t", "elem", "-n", std::move(name)};
}

// One in-process shard endpoint: corpus directory + service + TCP
// listener on an ephemeral loopback port.
struct Shard {
  std::string dir;
  std::unique_ptr<cluster::ShardedService> service;
  std::unique_ptr<concurrency::Listener> listener;
  std::thread thread;

  void Start() {
    dir = MakeTempDir();
    auto opened = cluster::ShardedService::Open(dir);
    if (!opened.ok()) std::abort();
    service = std::move(*opened);
    listener = std::make_unique<concurrency::Listener>(service.get());
    listener->set_drain_deadline_ms(200);
    concurrency::Listener* raw = listener.get();
    thread = std::thread([raw] {
      if (!raw->ServeTcp("127.0.0.1", 0).ok()) std::abort();
    });
    while (listener->bound_port() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void Stop() {
    listener->Shutdown();
    thread.join();
    service->Stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

// Acked updates/s through a coordinator fronting `shard_count` TCP
// shards, kClients synchronous client threads spread over
// kKeysPerShard documents per shard.
double MeasureRouted(size_t shard_count) {
  std::vector<Shard> shards(shard_count);
  std::vector<cluster::ShardAddress> addresses;
  for (auto& shard : shards) {
    shard.Start();
    addresses.push_back(cluster::ShardAddress{
        "tcp:127.0.0.1:" + std::to_string(shard.listener->bound_port())});
  }
  cluster::CoordinatorOptions options;
  options.max_pool_idle = kClients;  // no pool churn at full fan-in
  cluster::Coordinator coordinator(
      std::move(addresses), std::make_unique<cluster::HashRouter>(shard_count),
      options);

  // An exactly balanced key set: kKeysPerShard documents on every shard.
  cluster::HashRouter placement(shard_count);
  std::vector<std::string> keys;
  std::vector<int> filled(shard_count, 0);
  for (int i = 0; keys.size() < shard_count * kKeysPerShard; ++i) {
    std::string key = "doc";
    key += std::to_string(i);
    int& count = filled[placement.ShardFor(key)];
    if (count < kKeysPerShard) {
      ++count;
      keys.push_back(std::move(key));
    }
  }
  for (const std::string& key : keys) {
    std::vector<std::string> response;
    coordinator.HandleRequest({"--doc", key, "--create", kScheme}, &response);
    if (response.empty() || response[0] != "ok") std::abort();
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      uint64_t local = 0;
      for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
        const std::string& key = keys[(c + i) % keys.size()];
        std::vector<std::string> request = {"--doc", key};
        const std::vector<std::string> action = InsertFrame(c * 1000000 + i);
        request.insert(request.end(), action.begin(), action.end());
        std::vector<std::string> response;
        coordinator.HandleRequest(request, &response);
        if (response.empty() || response[0] != "ok") std::abort();
        ++local;
      }
      acked.fetch_add(local);
    });
  }
  auto start = std::chrono::steady_clock::now();
  while (MsSince(start) < kPointMs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double elapsed_ms = MsSince(start);

  for (auto& shard : shards) shard.Stop();
  return static_cast<double>(acked.load()) / (elapsed_ms / 1000.0);
}

// The baseline: the same client count and wire protocol against one
// single-document Server over its own TCP listener — one pipeline, one
// writer thread, persistent connections.
double MeasureSingleStore() {
  const std::string dir = MakeTempDir();
  auto tree = xml::ParseDocument("<root/>");
  if (!tree.ok()) std::abort();
  auto st = concurrency::ConcurrentStore::Create(dir + "/db",
                                                 std::move(*tree), kScheme);
  if (!st.ok()) std::abort();
  concurrency::Server server(st->get());
  server.set_drain_deadline_ms(200);
  std::thread server_thread([&] {
    if (!server.ServeTcp("127.0.0.1", 0).ok()) std::abort();
  });
  while (server.bound_port() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint16_t port = server.bound_port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto fd = concurrency::TcpConnect("127.0.0.1", port);
      if (!fd.ok()) std::abort();
      uint64_t local = 0;
      for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
        if (!concurrency::WriteFrame(*fd, InsertFrame(c * 1000000 + i))
                 .ok()) {
          break;
        }
        auto reply = concurrency::ReadFrame(*fd);
        if (!reply.ok() || !reply->has_value() || (**reply)[0] != "ok") {
          std::abort();
        }
        ++local;
      }
      ::close(*fd);
      acked.fetch_add(local);
    });
  }
  auto start = std::chrono::steady_clock::now();
  while (MsSince(start) < kPointMs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double elapsed_ms = MsSince(start);

  auto bye = concurrency::TcpRequest("127.0.0.1", port, {"--shutdown"});
  if (!bye.ok()) std::abort();
  server_thread.join();
  (*st)->Stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return static_cast<double>(acked.load()) / (elapsed_ms / 1000.0);
}

}  // namespace

int main() {
  FILE* out = std::fopen("BENCH_cluster.json", "w");
  if (out == nullptr) return 1;

  std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"clients\": %d,\n", kClients);
  std::fprintf(out, "  \"keys_per_shard\": %d,\n", kKeysPerShard);

  const double single = MeasureSingleStore();
  std::fprintf(out, "  \"single_store\": {\"updates_per_s\": %.0f},\n",
               single);
  std::fprintf(stderr, "single store: %.0f acked updates/s\n", single);

  std::fprintf(out, "  \"sharded\": [\n");
  const std::vector<size_t> shard_counts = {1, 2, 4};
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    const double routed = MeasureRouted(shard_counts[i]);
    const double speedup = single > 0 ? routed / single : 0;
    std::fprintf(out,
                 "    {\"shards\": %zu, \"updates_per_s\": %.0f, "
                 "\"speedup_vs_single\": %.2f}%s\n",
                 shard_counts[i], routed, speedup,
                 i + 1 < shard_counts.size() ? "," : "");
    std::fprintf(stderr, "%zu shards: %.0f acked updates/s (%.2fx single)\n",
                 shard_counts[i], routed, speedup);
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return 0;
}
