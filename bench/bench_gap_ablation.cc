// E9 ablation — §3.1.1's gap extensions: "permit gaps ... to facilitate
// future insertions gracefully. However, these solutions serve to
// increase the label size through the sparse allocation of labels and
// only postpone the relabelling process until the interval gaps have been
// consumed."
//
// Compares plain pre/post against the gapped variant across gap widths:
// relabels per insertion, overflow (renumber) passes, and the label-size
// price of sparse allocation.

#include <cstdio>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using xml::NodeKind;

struct Row {
  uint64_t relabels = 0;
  uint64_t renumber_passes = 0;
  double avg_bits = 0;
};

bool Run(const std::string& scheme_name, uint64_t gap, size_t inserts,
         Row* row) {
  labels::SchemeOptions options;
  options.prepost_gap = gap;
  auto scheme = labels::CreateScheme(scheme_name, options);
  if (!scheme.ok()) return false;
  workload::DocumentShape shape;
  shape.target_nodes = 400;
  shape.seed = 55;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return false;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return false;
  (*scheme)->ResetCounters();
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 56);
  for (size_t i = 0; i < inserts; ++i) {
    auto pos = planner.Next(doc->tree());
    if (!pos.ok()) return false;
    auto node = doc->InsertNode(pos->parent, NodeKind::kElement, "u", "",
                                pos->before);
    if (!node.ok()) return false;
  }
  row->relabels = (*scheme)->counters().relabels;
  row->renumber_passes = (*scheme)->counters().overflows;
  row->avg_bits = doc->AverageLabelBits();
  return true;
}

}  // namespace

int main() {
  constexpr size_t kInserts = 500;
  printf("=== E9 ablation: plain vs gapped pre/post, %zu random "
         "insertions on a 400-node document ===\n\n",
         kInserts);
  printf("%-26s %12s %12s %14s %12s\n", "variant", "relabels",
         "renumbers", "relabels/ins", "bits/label");

  Row plain;
  if (Run("xpath-accelerator", 0, kInserts, &plain)) {
    printf("%-26s %12llu %12llu %14.2f %12.0f\n", "pre/post (plain)",
           static_cast<unsigned long long>(plain.relabels),
           static_cast<unsigned long long>(plain.renumber_passes),
           static_cast<double>(plain.relabels) / kInserts, plain.avg_bits);
  }
  for (uint64_t gap : {16ULL, 256ULL, 1ULL << 12, 1ULL << 20}) {
    Row row;
    if (!Run("prepost-gap", gap, kInserts, &row)) continue;
    std::string name = "pre/post gap=" + std::to_string(gap);
    printf("%-26s %12llu %12llu %14.2f %12.0f\n", name.c_str(),
           static_cast<unsigned long long>(row.relabels),
           static_cast<unsigned long long>(row.renumber_passes),
           static_cast<double>(row.relabels) / kInserts, row.avg_bits);
  }
  Row dietz;
  if (Run("dietz-om", 0, kInserts, &dietz)) {
    printf("%-26s %12llu %12llu %14.2f %12.0f\n",
           "Dietz order-maintenance",
           static_cast<unsigned long long>(dietz.relabels),
           static_cast<unsigned long long>(dietz.renumber_passes),
           static_cast<double>(dietz.relabels) / kInserts, dietz.avg_bits);
  }
  printf("\nThe relabelling spectrum: plain pre/post renumbers the "
         "document per insert; gaps postpone\nthe global pass (§3.1.1: "
         "\"only postpone the relabelling\"); Dietz's order-maintenance\n"
         "structure [6] localises it to a tag window — all at the price "
         "of 144-bit sparse labels.\n");
  return 0;
}
