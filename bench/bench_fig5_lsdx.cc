// E5 — Figure 5: the LSDX labelled XML tree with the figure's insertions
// (2ab.ab, 2ac.c, 2ad.bb), plus the labelling collision documented by
// Sans & Laurent that makes LSDX unsuitable as a dynamic scheme (§3.1.2).

#include <cstdio>

#include "bench_util.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/tree.h"

int main() {
  using namespace xmlup;
  using xml::NodeId;
  using xml::NodeKind;

  auto scheme = labels::CreateScheme("lsdx");
  if (!scheme.ok()) return 1;

  xml::Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "x").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "y").value();
  NodeId c = tree.AppendChild(root, NodeKind::kElement, "z").value();
  NodeId a1 = tree.AppendChild(a, NodeKind::kElement, "x1").value();
  tree.AppendChild(a, NodeKind::kElement, "x2").value();
  tree.AppendChild(b, NodeKind::kElement, "y1").value();
  tree.AppendChild(c, NodeKind::kElement, "z1").value();
  NodeId c2 = tree.AppendChild(c, NodeKind::kElement, "z2").value();
  tree.AppendChild(c, NodeKind::kElement, "z3").value();

  auto doc = core::LabeledDocument::Build(std::move(tree), scheme->get());
  if (!doc.ok()) return 1;

  printf("=== Figure 5: LSDX labelled XML tree ===\n\n");
  bench::PrintLabeledTree(*doc);

  printf("\n--- The figure's insertions (grey nodes) ---\n\n");
  // Before the first child of x -> 2ab.ab.
  if (!doc->InsertNode(a, NodeKind::kElement, "before", "", a1).ok()) return 1;
  // After the last child of y -> 2ac.c.
  if (!doc->InsertNode(b, NodeKind::kElement, "after", "").ok()) return 1;
  // Between the first two children of z -> 2ad.bb.
  if (!doc->InsertNode(c, NodeKind::kElement, "between", "", c2).ok()) {
    return 1;
  }
  bench::PrintLabeledTree(*doc);

  printf("\n--- The documented LSDX collision (Sans & Laurent) ---\n\n");
  // Insert between x1 ("b") and the "bb" node created between x1 and x2.
  auto mid = doc->InsertNode(a, NodeKind::kElement, "m1", "",
                             doc->tree().next_sibling(a1));
  if (!mid.ok()) return 1;
  auto dup = doc->InsertNode(a, NodeKind::kElement, "m2", "", *mid);
  if (!dup.ok()) return 1;
  printf("inserting between 'b' and 'bb' produced: %s and %s\n",
         doc->scheme().Render(doc->label(*mid)).c_str(),
         doc->scheme().Render(doc->label(*dup)).c_str());
  auto integrity = doc->VerifyOrderAndUniqueness();
  printf("uniqueness check: %s\n", integrity.ok()
                                       ? "ok (unexpected!)"
                                       : integrity.message().c_str());
  return 0;
}
