// E4 — Figure 4: the ORDPATH labelled XML tree with the figure's three
// insertions: right of all children (1.3.3), left of all children
// (1.1.-1) and careting-in between two consecutive nodes (1.5.2.1).

#include <cstdio>

#include "bench_util.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/tree.h"

int main() {
  using namespace xmlup;
  using xml::NodeId;
  using xml::NodeKind;

  auto scheme = labels::CreateScheme("ordpath");
  if (!scheme.ok()) return 1;

  xml::Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "n1").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "n3").value();
  NodeId c = tree.AppendChild(root, NodeKind::kElement, "n5").value();
  NodeId a1 = tree.AppendChild(a, NodeKind::kElement, "n1.1").value();
  tree.AppendChild(b, NodeKind::kElement, "n3.1").value();
  tree.AppendChild(c, NodeKind::kElement, "n5.1").value();
  NodeId c2 = tree.AppendChild(c, NodeKind::kElement, "n5.3").value();

  auto doc = core::LabeledDocument::Build(std::move(tree), scheme->get());
  if (!doc.ok()) return 1;

  printf("=== Figure 4: ORDPATH labelled XML tree ===\n\n");
  bench::PrintLabeledTree(*doc);

  printf("\n--- The figure's insertions (grey nodes) ---\n\n");
  core::UpdateStats stats;
  size_t total_relabels = 0;
  // Right of all children of n3 -> 3.3.
  auto right = doc->InsertNode(b, NodeKind::kElement, "right", "",
                               xml::kInvalidNode, &stats);
  if (!right.ok()) return 1;
  total_relabels += stats.relabeled;
  // Left of all children of n1 -> 1.-1.
  auto left = doc->InsertNode(a, NodeKind::kElement, "left", "", a1, &stats);
  if (!left.ok()) return 1;
  total_relabels += stats.relabeled;
  // Between 5.1 and 5.3 -> careting-in gives 5.2.1.
  auto caret =
      doc->InsertNode(c, NodeKind::kElement, "caret", "", c2, &stats);
  if (!caret.ok()) return 1;
  total_relabels += stats.relabeled;

  bench::PrintLabeledTree(*doc);
  printf("\nexisting nodes relabelled by the three insertions: %zu "
         "(ORDPATH inserts without relabelling)\n",
         total_relabels);
  printf("level of the careted node %s (odd components only): %d\n",
         doc->scheme().Render(doc->label(*caret)).c_str(),
         doc->scheme().Level(doc->label(*caret)).value());
  return 0;
}
