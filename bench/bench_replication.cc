// Replication cost model: replica-side apply throughput (replay in
// memory + journal append, the whole AppendFrames path), catch-up time
// as a function of journal length (snapshot install + frame replay +
// durability barrier), and one live end-to-end run over a real Unix
// socket — primary ack rate with a subscribed replica and the replica's
// convergence time at quiesce. Self-timed sweep written to
// BENCH_replication.json.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "concurrency/update.h"
#include "replication/applier.h"
#include "replication/replica_store.h"
#include "replication/source.h"
#include "store/document_store.h"
#include "store/file.h"
#include "store/journal.h"
#include "xml/parser.h"

namespace {

using namespace xmlup;
using store::DocumentStore;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

constexpr char kBaseDoc[] =
    "<library><shelf id=\"a\"><book><title>Iliad</title></book></shelf>"
    "</library>";

double MsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

// A primary's durable artifacts: the snapshot that opens a generation and
// the committed journal built on top of it — exactly what a catching-up
// replica receives.
struct PrimaryImage {
  uint64_t generation = 0;
  std::string snapshot;
  std::string journal;  // Full file, 8-byte header included.
  size_t records = 0;
};

PrimaryImage BuildPrimaryImage(const std::string& scheme, size_t records) {
  PrimaryImage image;
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto tree = xml::ParseDocument(kBaseDoc);
  if (!tree.ok()) return image;
  auto st = DocumentStore::Create("db", std::move(*tree), scheme, options);
  if (!st.ok()) return image;
  NodeId root = (*st)->document().tree().root();
  for (size_t i = 0; i < records; ++i) {
    if (!(*st)->InsertNode(root, xml::NodeKind::kElement, "item", "").ok()) {
      return image;
    }
  }
  if (!(*st)->Sync().ok()) return image;
  image.generation = (*st)->stats().sequence;
  auto snapshot =
      fs.GetFile("db/" + store::SnapshotFileName(image.generation));
  auto journal = fs.GetFile("db/" + store::JournalFileName(image.generation));
  if (!snapshot.ok() || !journal.ok()) return image;
  image.snapshot = *snapshot;
  image.journal = *journal;
  image.records = records;
  return image;
}

// The replica's catch-up sequence against a prepared image: install the
// snapshot, replay every journal frame through AppendFrames, hit the
// durability barrier. Returns total ms (negative on failure).
double ReplayImage(const PrimaryImage& image) {
  MemFileSystem fs;
  replication::ReplicaStoreOptions options;
  options.fs = &fs;
  auto start = std::chrono::steady_clock::now();
  auto replica = replication::ReplicaStore::Open("r", options);
  if (!replica.ok()) return -1;
  if (!(*replica)->InstallSnapshot(image.generation, image.snapshot).ok()) {
    return -1;
  }
  if (!(*replica)
           ->AppendFrames(image.generation, store::kJournalHeaderSize, 0,
                          std::string_view(image.journal)
                              .substr(store::kJournalHeaderSize))
           .ok()) {
    return -1;
  }
  if (!(*replica)->Sync().ok()) return -1;
  if ((*replica)->position().records != image.records) return -1;
  return MsSince(start);
}

// --- google-benchmark micro view ------------------------------------------

void BM_ReplicaApply(benchmark::State& state, const std::string& scheme) {
  PrimaryImage image = BuildPrimaryImage(scheme, 2000);
  if (image.records == 0) {
    state.SkipWithError("image build failed");
    return;
  }
  for (auto _ : state) {
    double ms = ReplayImage(image);
    if (ms < 0) {
      state.SkipWithError("replay failed");
      return;
    }
    benchmark::DoNotOptimize(ms);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(image.records));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(image.journal.size()));
}

// --- self-timed JSON sweep -------------------------------------------------

struct LiveRun {
  size_t inserts = 0;
  double primary_ms = 0;   // Submit + ack of every insert.
  double converge_ms = 0;  // Quiesce to zero lag after the last ack.
  bool ok = false;
};

// One primary + one replica over a real socket: how fast the primary
// acks with a subscriber attached, and how far behind the replica is
// when the writer stops.
LiveRun MeasureLive(const std::string& scheme, size_t inserts) {
  LiveRun run;
  run.inserts = inserts;
  char dir_template[] = "/tmp/xmlup_rbench_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) return run;
  const std::string tmp_dir = dir_template;
  const std::string socket_path = tmp_dir + "/s";

  MemFileSystem primary_fs;
  replication::ReplicationSource source;
  concurrency::ConcurrentStoreOptions options;
  options.store.fs = &primary_fs;
  options.commit_hook = &source;
  auto tree = xml::ParseDocument(kBaseDoc);
  if (!tree.ok()) return run;
  auto primary =
      concurrency::ConcurrentStore::Create("p", std::move(*tree), scheme,
                                           options);
  if (!primary.ok()) return run;

  concurrency::Server server(primary->get());
  server.EnableReplication(&source);
  server.set_drain_deadline_ms(200);
  std::thread server_thread(
      [&] { (void)server.ServeUnixSocket(socket_path); });
  bool up = false;
  for (int i = 0; i < 5000 && !up; ++i) {
    up = concurrency::UnixSocketRequest(socket_path, {"--ping"}).ok();
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  MemFileSystem replica_fs;
  replication::ReplicaApplierOptions applier_options;
  applier_options.store.fs = &replica_fs;
  auto applier =
      replication::ReplicaApplier::Start("r", socket_path, applier_options);

  if (up && applier.ok()) {
    auto write_start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < inserts; ++i) {
      concurrency::UpdateRequest request;
      request.op = concurrency::UpdateRequest::Op::kInsertChild;
      request.xpath = ".";
      request.kind = xml::NodeKind::kElement;
      request.name = "item";
      if (!(*primary)->Update(std::move(request)).status.ok()) break;
    }
    run.primary_ms = MsSince(write_start);

    auto quiesce_start = std::chrono::steady_clock::now();
    if ((*applier)->WaitForPosition(source.committed(), 30000)) {
      for (int poll = 0; poll < 30000; ++poll) {
        replication::ReplicaStatus s = (*applier)->status();
        if (s.lag_bytes == 0 && s.lag_records == 0 &&
            s.primary == source.committed()) {
          run.converge_ms = MsSince(quiesce_start);
          run.ok = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    (*applier)->Stop();
  }
  (void)concurrency::UnixSocketRequest(socket_path, {"--shutdown"});
  server_thread.join();
  (*primary)->Stop();
  ::rmdir(tmp_dir.c_str());
  return run;
}

void WriteJsonSweep() {
  const std::vector<std::string> schemes = {"ordpath", "dewey",
                                            "xpath-accelerator"};
  const std::vector<size_t> lengths = {1000, 2000, 5000, 10000};

  FILE* out = std::fopen("BENCH_replication.json", "w");
  if (out == nullptr) return;

  // Catch-up: snapshot install + full journal replay + sync, per scheme
  // and journal length. The apply rate falls out of the longest run.
  std::fprintf(out, "{\n  \"catchup\": {\n");
  bool first_scheme = true;
  for (const std::string& scheme : schemes) {
    std::fprintf(out, "%s    \"%s\": [\n", first_scheme ? "" : ",\n",
                 scheme.c_str());
    first_scheme = false;
    bool first_point = true;
    for (size_t n : lengths) {
      PrimaryImage image = BuildPrimaryImage(scheme, n);
      double ms = image.records == n ? ReplayImage(image) : -1;
      double rate = ms > 0 ? static_cast<double>(n) / (ms / 1000.0) : 0.0;
      std::fprintf(out,
                   "%s      {\"records\": %zu, \"snapshot_bytes\": %zu, "
                   "\"journal_bytes\": %zu, \"catchup_ms\": %.2f, "
                   "\"apply_records_per_s\": %.0f}",
                   first_point ? "" : ",\n", n, image.snapshot.size(),
                   image.journal.size(), ms, rate);
      first_point = false;
      std::fprintf(stderr,
                   "%-18s %6zu records (%7zu B journal): catch-up %8.2f ms "
                   "(%.0f records/s)\n",
                   scheme.c_str(), n, image.journal.size(), ms, rate);
    }
    std::fprintf(out, "\n    ]");
  }
  std::fprintf(out, "\n  },\n");

  // Live end-to-end over a socket: one subscribed replica, 2000
  // group-committed inserts, convergence at quiesce.
  LiveRun live = MeasureLive("ordpath", 2000);
  std::fprintf(out,
               "  \"live\": {\"scheme\": \"ordpath\", \"inserts\": %zu, "
               "\"ok\": %s, \"primary_ms\": %.2f, "
               "\"primary_inserts_per_s\": %.0f, \"converge_ms\": %.2f}\n}\n",
               live.inserts, live.ok ? "true" : "false", live.primary_ms,
               live.primary_ms > 0
                   ? static_cast<double>(live.inserts) /
                         (live.primary_ms / 1000.0)
                   : 0.0,
               live.converge_ms);
  std::fprintf(stderr,
               "live: %zu inserts acked in %.2f ms, replica converged "
               "%.2f ms after quiesce (%s)\n",
               live.inserts, live.primary_ms, live.converge_ms,
               live.ok ? "ok" : "FAILED");
  std::fclose(out);
}

void RegisterAll() {
  for (const std::string& name :
       {std::string("ordpath"), std::string("dewey"),
        std::string("xpath-accelerator")}) {
    benchmark::RegisterBenchmark(("replica-apply/" + name).c_str(),
                                 BM_ReplicaApply, name)
        ->MinTime(0.1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
