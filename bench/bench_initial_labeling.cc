// E12 — initial labelling cost across schemes and document sizes,
// exercising the "Recursive Labelling Algorithm" column: single-pass
// schemes (pre/post, DeweyID, ORDPATH, ...) vs the recursive assignment
// algorithms (ImprovedBinary, QED, CDQS, Vector, Sector).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"

namespace {

using namespace xmlup;

void BM_LabelTree(benchmark::State& state, const std::string& scheme_name) {
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) {
    state.SkipWithError("unknown scheme");
    return;
  }
  workload::DocumentShape shape;
  shape.target_nodes = static_cast<size_t>(state.range(0));
  shape.seed = 19;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  std::vector<labels::Label> labels;
  for (auto _ : state) {
    auto status = (*scheme)->LabelTree(*tree, &labels);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tree->node_count()));
  state.counters["recursive_calls"] = static_cast<double>(
      (*scheme)->counters().recursive_calls / state.iterations());
  state.counters["divisions"] = static_cast<double>(
      (*scheme)->counters().divisions / state.iterations());
}

void RegisterAll() {
  for (const std::string& name : labels::AllSchemeNames()) {
    auto* bench = benchmark::RegisterBenchmark(("label_tree/" + name).c_str(),
                                               BM_LabelTree, name);
    bench->MinTime(0.05)->Arg(1000)->Arg(10000);
    if (name != "prime") bench->Arg(50000);  // Prime products get large.
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
