// Reproduces Figure 7 of the paper: the evaluation matrix of dynamic XML
// labelling schemes against the ten desirable properties. Every
// behavioural cell is derived by running the property probes (update
// batteries, adversarial overflow workloads, growth measurements,
// instrumentation counters); definitional cells come from scheme traits.
// The output diffs each cell against the published matrix.

#include <cstdio>
#include <string>

#include "core/framework.h"

int main(int argc, char** argv) {
  bool include_extensions = argc > 1 && std::string(argv[1]) == "--all";
  xmlup::core::EvaluationFramework framework;

  printf("=== Figure 7: Evaluation framework for dynamic XML labelling "
         "schemes ===\n\n");
  auto rows = framework.EvaluateAll(/*matrix_only=*/!include_extensions);
  if (!rows.ok()) {
    fprintf(stderr, "evaluation failed: %s\n",
            rows.status().ToString().c_str());
    return 1;
  }
  printf("%s\n",
         xmlup::core::EvaluationFramework::FormatMatrix(*rows, true).c_str());
  printf("=== Probe evidence ===\n\n%s\n",
         xmlup::core::EvaluationFramework::FormatEvidence(*rows).c_str());
  return 0;
}
