// Update-script subsystem benchmarks: acked update throughput through
// the ConcurrentStore's parallel-apply stage (apply_workers 1/2/4) for
// two adversarial streams — pairwise-disjoint transactions, where the
// independence analysis should let the prepare stage parallelise XPath
// resolution, and fully conflicting transactions, where every plan
// overlaps and the pipeline must degrade to the live serial path. The
// self-timed sweep writes BENCH_updates.json (consumed by the CI gate:
// disjoint at 4 workers must beat serial by >= 1.5x on >= 4 cores); the
// registered microbenchmarks cover script compilation and the static
// footprint analysis itself.
//
// Methodology notes:
//   * The submitter is a single windowed thread: it keeps a fixed number
//     of transactions in flight so the queue runs ahead of the writer
//     and multi-transaction batches actually form — the prepare stage
//     only runs on batches of >= 2.
//   * MemFileSystem throughout: fsync is free there, so the measurement
//     isolates the writer-side work (resolution + mutation + journal
//     encode) that the prepare stage exists to take off the critical
//     path. On a real disk the fsync amortisation of group commit
//     dominates both configurations equally (see bench_concurrency).
//   * The corpus is wide (many sections under the root) so each XPath
//     resolution pays a real child scan; that is the serial cost the
//     parallel prepare removes, and it is the same shape the router's
//     per-shard corpora have.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "concurrency/concurrent_store.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "store/file.h"
#include "updates/footprint.h"
#include "updates/script.h"
#include "updates/update.h"
#include "xml/parser.h"

namespace {

using namespace xmlup;
using concurrency::ConcurrentStore;
using concurrency::ConcurrentStoreOptions;
using concurrency::ConcurrentStoreStats;
using store::MemFileSystem;
using updates::UpdateRequest;
using updates::UpdateResult;

constexpr const char* kScheme = "dewey";
constexpr size_t kSections = 512;

std::string CorpusXml(size_t sections) {
  std::string xml = "<corpus>";
  for (size_t i = 0; i < sections; ++i) {
    const std::string tag = "s" + std::to_string(i);
    xml += "<" + tag + "><item><v>seed</v></item></" + tag + ">";
  }
  xml += "</corpus>";
  return xml;
}

xml::Tree BuildCorpus(size_t sections) {
  auto tree = xml::ParseDocument(CorpusXml(sections));
  if (!tree.ok()) std::abort();
  return std::move(*tree);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ApplyPoint {
  size_t workers = 1;
  bool conflicting = false;
  double updates_per_s = 0;
  double mean_batch = 0;
  uint64_t parallel_batches = 0;
  uint64_t txns_fast = 0;
  uint64_t txns_conflicted = 0;
  uint64_t prepare_fallbacks = 0;
};

// One windowed submitter drives set-value transactions for
// `duration_ms`; disjoint mode round-robins the target section (all
// pairwise independent), conflicting mode hammers section 0 (no pair
// independent). Acked throughput is what a client sees: submission to
// durable-commit future resolution.
ApplyPoint MeasureApplyStream(size_t workers, bool conflicting,
                              double duration_ms) {
  ApplyPoint point;
  point.workers = workers;
  point.conflicting = conflicting;
  MemFileSystem fs;
  ConcurrentStoreOptions options;
  options.store.fs = &fs;
  options.apply_workers = workers;
  auto st = ConcurrentStore::Create("db", BuildCorpus(kSections), kScheme,
                                    options);
  if (!st.ok()) std::abort();

  constexpr size_t kWindow = 64;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::thread submitter([&] {
    uint64_t i = 0;
    uint64_t local = 0;
    std::deque<std::future<UpdateResult>> inflight;
    while (!stop.load(std::memory_order_acquire)) {
      while (inflight.size() < kWindow) {
        const uint64_t section = conflicting ? 0 : i % kSections;
        UpdateRequest request;
        request.op = UpdateRequest::Op::kSetValue;
        request.xpath =
            "/s" + std::to_string(section) + "/item/v/text()";
        request.value = "v" + std::to_string(i++);
        std::vector<UpdateRequest> txn;
        txn.push_back(std::move(request));
        inflight.push_back((*st)->SubmitTransaction(txn));
      }
      if (!inflight.front().get().status.ok()) std::abort();
      inflight.pop_front();
      ++local;
    }
    while (!inflight.empty()) {
      if (!inflight.front().get().status.ok()) std::abort();
      inflight.pop_front();
      ++local;
    }
    acked.fetch_add(local);
  });

  auto start = std::chrono::steady_clock::now();
  while (MsSince(start) < duration_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  submitter.join();
  // Elapsed includes the in-flight drain after `stop`: at most kWindow
  // acks, a batch or two.
  const double elapsed_ms = MsSince(start);
  ConcurrentStoreStats stats = (*st)->stats();
  point.updates_per_s =
      static_cast<double>(acked.load()) / (elapsed_ms / 1000.0);
  point.mean_batch =
      stats.batches > 0 ? static_cast<double>(stats.updates_applied) /
                              static_cast<double>(stats.batches)
                        : 0.0;
  point.parallel_batches = stats.parallel_batches;
  point.txns_fast = stats.txns_fast;
  point.txns_conflicted = stats.txns_conflicted;
  point.prepare_fallbacks = stats.prepare_fallbacks;
  return point;
}

void WriteJsonSweep() {
  FILE* out = std::fopen("BENCH_updates.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  const std::vector<size_t> worker_counts = {1, 2, 4};
  for (int conflicting = 0; conflicting < 2; ++conflicting) {
    std::fprintf(out, "  \"%s\": [\n",
                 conflicting ? "conflicting" : "disjoint");
    for (size_t i = 0; i < worker_counts.size(); ++i) {
      ApplyPoint point = MeasureApplyStream(
          worker_counts[i], conflicting != 0, /*duration_ms=*/700.0);
      std::fprintf(out,
                   "    {\"workers\": %zu, \"updates_per_s\": %.0f, "
                   "\"mean_batch\": %.1f, \"parallel_batches\": %llu, "
                   "\"txns_fast\": %llu, \"txns_conflicted\": %llu, "
                   "\"prepare_fallbacks\": %llu}%s\n",
                   point.workers, point.updates_per_s, point.mean_batch,
                   static_cast<unsigned long long>(point.parallel_batches),
                   static_cast<unsigned long long>(point.txns_fast),
                   static_cast<unsigned long long>(point.txns_conflicted),
                   static_cast<unsigned long long>(point.prepare_fallbacks),
                   i + 1 < worker_counts.size() ? "," : "");
      std::fprintf(stderr,
                   "%s, %zu workers: %.0f acked updates/s (mean batch "
                   "%.1f, %llu parallel batches, %llu fast, %llu "
                   "conflicted, %llu fallbacks)\n",
                   conflicting ? "conflicting" : "disjoint", point.workers,
                   point.updates_per_s, point.mean_batch,
                   static_cast<unsigned long long>(point.parallel_batches),
                   static_cast<unsigned long long>(point.txns_fast),
                   static_cast<unsigned long long>(point.txns_conflicted),
                   static_cast<unsigned long long>(point.prepare_fallbacks));
    }
    std::fprintf(out, "  ]%s\n", conflicting ? "" : ",");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
}

// --- registered microbenchmarks --------------------------------------------

void BM_ParseUpdateScript(benchmark::State& state) {
  const std::string script =
      "# seed a section\n"
      "let SECTION = /s3\n"
      "let VALUE = \"hello world\"\n"
      "-u ${SECTION}/item/v/text() -v ${VALUE}\n"
      "-s ${SECTION}/item -t elem -n x -v ${VALUE}\n"
      "-m ${SECTION}/item/x /s4/item\n"
      "-r /s4/item/x -v renamed\n";
  for (auto _ : state) {
    auto compiled = updates::ParseUpdateScript(script, "bench");
    if (!compiled.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize(compiled->requests.size());
  }
}
BENCHMARK(BM_ParseUpdateScript)->MinTime(0.1);

void BM_PlanTransaction(benchmark::State& state) {
  auto scheme = labels::CreateScheme(kScheme);
  if (!scheme.ok()) {
    state.SkipWithError("scheme failed");
    return;
  }
  auto doc = core::LabeledDocument::Build(BuildCorpus(64), scheme->get());
  if (!doc.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  auto requests = updates::ParseActionTokens(
      {"-u", "/s7/item/v/text()", "-v", "x", "-s", "/s9/item", "-t",
       "elem", "-n", "y"});
  if (!requests.ok()) {
    state.SkipWithError("tokens failed");
    return;
  }
  for (auto _ : state) {
    auto plan = updates::PlanTransaction(*doc, *requests);
    benchmark::DoNotOptimize(plan.usable);
  }
}
BENCHMARK(BM_PlanTransaction)->MinTime(0.1);

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
