// XPath query throughput over the labelled document: the practical face
// of the paper's §2 motivation. Measures representative queries in
// label-evaluation mode for a full-support scheme (QED) and a containment
// scheme (XPath Accelerator), against the tree-walking baseline — each
// label-mode query in both the index-backed and the naive-scan execution
// path, with a self-timed sweep written to BENCH_xpath.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "xpath/evaluator.h"

namespace {

using namespace xmlup;

struct Fixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<core::LabeledDocument> doc;
};

Fixture MakeFixture(const std::string& scheme_name) {
  Fixture f;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return f;
  f.scheme = std::move(*scheme);
  workload::DocumentShape shape;
  shape.target_nodes = 1500;
  shape.seed = 37;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return f;
  auto doc = core::LabeledDocument::Build(std::move(*tree), f.scheme.get());
  if (!doc.ok()) return f;
  f.doc = std::make_unique<core::LabeledDocument>(std::move(*doc));
  return f;
}

void BM_Query(benchmark::State& state, const std::string& scheme_name,
              xpath::EvalMode mode, const std::string& query,
              bool use_index = true) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  xpath::XPathEvaluator eval(f.doc.get(), mode, use_index);
  // Fail fast if the query is unsupported for this scheme/mode.
  auto probe = eval.Query(query);
  if (!probe.ok()) {
    state.SkipWithError(probe.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Query(query));
  }
  state.counters["result_nodes"] = static_cast<double>(probe->size());
}

void RegisterAll() {
  struct QueryCase {
    const char* name;
    const char* query;
  };
  const QueryCase queries[] = {
      {"descendant_name", "descendant::item"},
      {"deep_path", "//record/ancestor::*"},
      {"predicate", "//item[@id]"},
  };
  for (const QueryCase& q : queries) {
    benchmark::RegisterBenchmark(
        (std::string("labels/qed/") + q.name).c_str(), BM_Query, "qed",
        xpath::EvalMode::kLabels, q.query, true)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("labels-naive/qed/") + q.name).c_str(), BM_Query, "qed",
        xpath::EvalMode::kLabels, q.query, false)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("labels/prepost/") + q.name).c_str(), BM_Query,
        "xpath-accelerator", xpath::EvalMode::kLabels, q.query, true)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("labels-naive/prepost/") + q.name).c_str(), BM_Query,
        "xpath-accelerator", xpath::EvalMode::kLabels, q.query, false)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("tree-baseline/") + q.name).c_str(), BM_Query, "qed",
        xpath::EvalMode::kTree, q.query, true)
        ->MinTime(0.05);
  }
}

// Times each query for both label-mode execution paths and writes
// ns/query plus speedups to BENCH_xpath.json in the working directory.
void WriteJsonSweep() {
  const char* queries[] = {"descendant::item", "//record/ancestor::*",
                           "//item[@id]"};
  const char* names[] = {"descendant_name", "deep_path", "predicate"};
  const std::string schemes[] = {"xpath-accelerator", "qed"};
  using clock = std::chrono::steady_clock;
  FILE* out = std::fopen("BENCH_xpath.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"document_nodes\": 1500,\n  \"queries\": {\n");
  bool first = true;
  for (const std::string& scheme : schemes) {
    Fixture f = MakeFixture(scheme);
    if (f.doc == nullptr) continue;
    xpath::XPathEvaluator indexed(f.doc.get(), xpath::EvalMode::kLabels,
                                  true);
    xpath::XPathEvaluator naive(f.doc.get(), xpath::EvalMode::kLabels,
                                false);
    for (size_t qi = 0; qi < 3; ++qi) {
      auto time_one = [&](const xpath::XPathEvaluator& eval) {
        (void)eval.Query(queries[qi]);  // Warm the key cache / index.
        auto start = clock::now();
        size_t reps = 0;
        double elapsed_ns = 0;
        do {
          benchmark::DoNotOptimize(eval.Query(queries[qi]));
          ++reps;
          elapsed_ns = static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock::now() - start)
                  .count());
        } while (elapsed_ns < 100e6);
        return elapsed_ns / static_cast<double>(reps);
      };
      double ns_naive = time_one(naive);
      double ns_indexed = time_one(indexed);
      std::fprintf(out,
                   "%s    \"%s/%s\": {\"ns_naive\": %.0f, "
                   "\"ns_indexed\": %.0f, \"speedup\": %.2f}",
                   first ? "" : ",\n", scheme.c_str(), names[qi], ns_naive,
                   ns_indexed, ns_naive / ns_indexed);
      first = false;
    }
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
