// XPath query throughput over the labelled document: the practical face
// of the paper's §2 motivation. Measures representative queries in
// label-evaluation mode for a full-support scheme (QED) and a containment
// scheme (XPath Accelerator), against the tree-walking baseline.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "xpath/evaluator.h"

namespace {

using namespace xmlup;

struct Fixture {
  std::unique_ptr<labels::LabelingScheme> scheme;
  std::unique_ptr<core::LabeledDocument> doc;
};

Fixture MakeFixture(const std::string& scheme_name) {
  Fixture f;
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return f;
  f.scheme = std::move(*scheme);
  workload::DocumentShape shape;
  shape.target_nodes = 1500;
  shape.seed = 37;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return f;
  auto doc = core::LabeledDocument::Build(std::move(*tree), f.scheme.get());
  if (!doc.ok()) return f;
  f.doc = std::make_unique<core::LabeledDocument>(std::move(*doc));
  return f;
}

void BM_Query(benchmark::State& state, const std::string& scheme_name,
              xpath::EvalMode mode, const std::string& query) {
  Fixture f = MakeFixture(scheme_name);
  if (f.doc == nullptr) {
    state.SkipWithError("fixture failed");
    return;
  }
  xpath::XPathEvaluator eval(f.doc.get(), mode);
  // Fail fast if the query is unsupported for this scheme/mode.
  auto probe = eval.Query(query);
  if (!probe.ok()) {
    state.SkipWithError(probe.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Query(query));
  }
  state.counters["result_nodes"] = static_cast<double>(probe->size());
}

void RegisterAll() {
  struct QueryCase {
    const char* name;
    const char* query;
  };
  const QueryCase queries[] = {
      {"descendant_name", "descendant::item"},
      {"deep_path", "//record/ancestor::*"},
      {"predicate", "//item[@id]"},
  };
  for (const QueryCase& q : queries) {
    benchmark::RegisterBenchmark(
        (std::string("labels/qed/") + q.name).c_str(), BM_Query, "qed",
        xpath::EvalMode::kLabels, q.query)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("labels/prepost/") + q.name).c_str(), BM_Query,
        "xpath-accelerator", xpath::EvalMode::kLabels, q.query)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("tree-baseline/") + q.name).c_str(), BM_Query, "qed",
        xpath::EvalMode::kTree, q.query)
        ->MinTime(0.05);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
