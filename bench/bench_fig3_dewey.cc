// E3 — Figure 3: the DeweyID labelled XML tree, plus a demonstration of
// the relabelling cost the survey attributes to DeweyID insertions.

#include <cstdio>

#include "bench_util.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "xml/tree.h"

int main() {
  using namespace xmlup;
  using xml::NodeId;
  using xml::NodeKind;

  auto scheme = labels::CreateScheme("dewey");
  if (!scheme.ok()) return 1;

  // The 10-node tree of Figure 3.
  xml::Tree tree;
  NodeId root = tree.CreateRoot(NodeKind::kElement, "r").value();
  NodeId a = tree.AppendChild(root, NodeKind::kElement, "n1").value();
  NodeId b = tree.AppendChild(root, NodeKind::kElement, "n2").value();
  NodeId c = tree.AppendChild(root, NodeKind::kElement, "n3").value();
  tree.AppendChild(a, NodeKind::kElement, "n1a").value();
  tree.AppendChild(a, NodeKind::kElement, "n1b").value();
  tree.AppendChild(b, NodeKind::kElement, "n2a").value();
  tree.AppendChild(c, NodeKind::kElement, "n3a").value();
  tree.AppendChild(c, NodeKind::kElement, "n3b").value();
  tree.AppendChild(c, NodeKind::kElement, "n3c").value();

  auto doc = core::LabeledDocument::Build(std::move(tree), scheme->get());
  if (!doc.ok()) return 1;

  printf("=== Figure 3: DeweyID labelled XML tree ===\n\n");
  bench::PrintLabeledTree(*doc);

  printf("\n--- Inserting a node before n2: following siblings and their "
         "descendants relabel ---\n\n");
  core::UpdateStats stats;
  auto fresh = doc->InsertNode(root, NodeKind::kElement, "new", "", b,
                               &stats);
  if (!fresh.ok()) return 1;
  bench::PrintLabeledTree(*doc);
  printf("\nrelabelled existing nodes: %zu (overflow pass: %s)\n",
         stats.relabeled, stats.overflow ? "yes" : "no");
  return 0;
}
