// Durability cost of the write-ahead journal: raw frame append
// throughput (records/s, bytes/s), store-level journaled insert rates,
// and recovery time as a function of journal length, with a self-timed
// sweep written to BENCH_journal.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "observability/metrics.h"
#include "store/document_store.h"
#include "store/file.h"
#include "store/journal.h"
#include "xml/parser.h"

namespace {

using namespace xmlup;
using store::DocumentStore;
using store::JournalRecord;
using store::JournalWriter;
using store::MemFileSystem;
using store::StoreOptions;
using xml::NodeId;

constexpr char kBaseDoc[] =
    "<library><shelf id=\"a\"><book><title>Iliad</title></book></shelf>"
    "</library>";

JournalRecord SampleRecord() {
  JournalRecord record;
  record.op = JournalRecord::Op::kInsertNode;
  record.node = 12345;
  record.parent = 678;
  record.before = xml::kInvalidNode;
  record.kind = xml::NodeKind::kElement;
  record.name = "chapter";
  record.value = "a modest run of element content";
  record.relabeled = 2;
  record.overflow = false;
  return record;
}

// --- raw journal frame append (encode + CRC + buffered write) -------------

void BM_JournalAppend(benchmark::State& state) {
  MemFileSystem fs;
  auto writer = JournalWriter::Create(&fs, "j");
  if (!writer.ok()) {
    state.SkipWithError("writer create failed");
    return;
  }
  JournalRecord record = SampleRecord();
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(record));
  }
  state.SetItemsProcessed(static_cast<int64_t>(writer->records()));
  state.SetBytesProcessed(static_cast<int64_t>(writer->bytes()));
}
BENCHMARK(BM_JournalAppend)->MinTime(0.2);

void BM_JournalScan(benchmark::State& state) {
  MemFileSystem fs;
  auto writer = JournalWriter::Create(&fs, "j");
  if (!writer.ok()) {
    state.SkipWithError("writer create failed");
    return;
  }
  JournalRecord record = SampleRecord();
  for (int i = 0; i < 10000; ++i) {
    if (!writer->Append(record).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  std::string bytes = *fs.GetFile("j");
  for (auto _ : state) {
    auto scan = store::ScanJournal(bytes);
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_JournalScan)->MinTime(0.2);

// --- store-level journaled inserts ----------------------------------------

void BM_StoreInsert(benchmark::State& state, const std::string& scheme,
                    bool sync_each_update) {
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = sync_each_update;
  options.auto_checkpoint = false;
  auto tree = xml::ParseDocument(kBaseDoc);
  if (!tree.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  auto st = DocumentStore::Create("db", std::move(*tree), scheme, options);
  if (!st.ok()) {
    state.SkipWithError("store create failed");
    return;
  }
  NodeId root = (*st)->document().tree().root();
  for (auto _ : state) {
    auto node =
        (*st)->InsertNode(root, xml::NodeKind::kElement, "item", "");
    benchmark::DoNotOptimize(node);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>((*st)->stats().journal_records));
  state.SetBytesProcessed(static_cast<int64_t>((*st)->stats().journal_bytes));
}

// --- self-timed JSON sweep -------------------------------------------------

double MsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1000.0;
}

// Builds a store with `records` journaled inserts and reports the time to
// recover it (snapshot load + full journal replay).
struct RecoveryPoint {
  size_t records = 0;
  size_t journal_bytes = 0;
  double build_ms = 0;
  double recover_ms = 0;
};

RecoveryPoint MeasureRecovery(const std::string& scheme, size_t records) {
  RecoveryPoint point;
  point.records = records;
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = false;
  options.auto_checkpoint = false;
  auto tree = xml::ParseDocument(kBaseDoc);
  if (!tree.ok()) return point;
  auto build_start = std::chrono::steady_clock::now();
  {
    auto st = DocumentStore::Create("db", std::move(*tree), scheme, options);
    if (!st.ok()) return point;
    NodeId root = (*st)->document().tree().root();
    for (size_t i = 0; i < records; ++i) {
      auto node =
          (*st)->InsertNode(root, xml::NodeKind::kElement, "item", "");
      if (!node.ok()) return point;
    }
    if (!(*st)->Sync().ok()) return point;
    point.journal_bytes = (*st)->stats().journal_bytes;
  }
  point.build_ms = MsSince(build_start);

  auto recover_start = std::chrono::steady_clock::now();
  auto st = DocumentStore::Open("db", options);
  if (!st.ok()) return point;
  point.recover_ms = MsSince(recover_start);
  if ((*st)->stats().recovered_records != records) {
    point.recover_ms = -1;  // flag a broken run rather than lie
  }
  return point;
}

struct AppendRates {
  double records_per_s = 0;
  double bytes_per_s = 0;
};

AppendRates MeasureAppendRate() {
  AppendRates rates;
  MemFileSystem fs;
  auto writer = JournalWriter::Create(&fs, "j");
  if (!writer.ok()) return rates;
  JournalRecord record = SampleRecord();
  auto start = std::chrono::steady_clock::now();
  double elapsed_ms = 0;
  do {
    for (int i = 0; i < 1000; ++i) {
      if (!writer->Append(record).ok()) return rates;
    }
    elapsed_ms = MsSince(start);
  } while (elapsed_ms < 300.0);
  rates.records_per_s =
      static_cast<double>(writer->records()) / (elapsed_ms / 1000.0);
  rates.bytes_per_s =
      static_cast<double>(writer->bytes()) / (elapsed_ms / 1000.0);
  return rates;
}

// p50/p95/p99 of one registry histogram, read after a measurement run.
struct LatencyQuantiles {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

LatencyQuantiles ReadQuantiles(const char* name) {
  LatencyQuantiles q;
  obs::Histogram* h = obs::GlobalMetrics().GetHistogram(name);
  q.count = h->count();
  q.p50 = h->ValueAtPercentile(50);
  q.p95 = h->ValueAtPercentile(95);
  q.p99 = h->ValueAtPercentile(99);
  return q;
}

void PrintQuantiles(FILE* out, const char* key, const LatencyQuantiles& q,
                    const char* trailer) {
  std::fprintf(out,
               "    \"%s\": {\"count\": %llu, \"p50\": %llu, "
               "\"p95\": %llu, \"p99\": %llu}%s\n",
               key, static_cast<unsigned long long>(q.count),
               static_cast<unsigned long long>(q.p50),
               static_cast<unsigned long long>(q.p95),
               static_cast<unsigned long long>(q.p99), trailer);
}

// Per-record append and fsync latency distributions, from the store's own
// "store.journal.*" histograms: a run of per-update-fsync inserts, with
// the registry reset first so the quantiles cover exactly this run.
// All-zero when the metrics layer is compiled out.
struct StoreLatencies {
  LatencyQuantiles append_ns;
  LatencyQuantiles fsync_ns;
};

StoreLatencies MeasureStoreLatencies(size_t inserts) {
  StoreLatencies lat;
  if (!obs::kMetricsEnabled) return lat;
  obs::GlobalMetrics().Reset();
  MemFileSystem fs;
  StoreOptions options;
  options.fs = &fs;
  options.sync_each_update = true;
  options.auto_checkpoint = false;
  auto tree = xml::ParseDocument(kBaseDoc);
  if (!tree.ok()) return lat;
  auto st = DocumentStore::Create("db", std::move(*tree), "ordpath", options);
  if (!st.ok()) return lat;
  NodeId root = (*st)->document().tree().root();
  for (size_t i = 0; i < inserts; ++i) {
    if (!(*st)->InsertNode(root, xml::NodeKind::kElement, "item", "").ok()) {
      return lat;
    }
  }
  lat.append_ns = ReadQuantiles("store.journal.append_ns");
  lat.fsync_ns = ReadQuantiles("store.journal.fsync_ns");
  return lat;
}

void WriteJsonSweep() {
  const std::vector<std::string> schemes = {"ordpath", "dewey",
                                            "xpath-accelerator"};
  const std::vector<size_t> lengths = {1000, 2000, 5000, 10000};

  FILE* out = std::fopen("BENCH_journal.json", "w");
  if (out == nullptr) return;

  AppendRates rates = MeasureAppendRate();
  std::fprintf(out,
               "{\n  \"append\": {\n"
               "    \"records_per_s\": %.0f,\n"
               "    \"bytes_per_s\": %.0f\n  },\n",
               rates.records_per_s, rates.bytes_per_s);
  std::fprintf(stderr, "journal append: %.0f records/s, %.1f MB/s\n",
               rates.records_per_s, rates.bytes_per_s / 1e6);

  StoreLatencies lat = MeasureStoreLatencies(5000);
  std::fprintf(out, "  \"latency_ns\": {\n");
  PrintQuantiles(out, "journal_append", lat.append_ns, ",");
  PrintQuantiles(out, "journal_fsync", lat.fsync_ns, "");
  std::fprintf(out, "  },\n");
  std::fprintf(stderr,
               "append latency: p50=%llu ns p99=%llu ns; "
               "fsync latency: p50=%llu ns p99=%llu ns (%llu records)\n",
               static_cast<unsigned long long>(lat.append_ns.p50),
               static_cast<unsigned long long>(lat.append_ns.p99),
               static_cast<unsigned long long>(lat.fsync_ns.p50),
               static_cast<unsigned long long>(lat.fsync_ns.p99),
               static_cast<unsigned long long>(lat.append_ns.count));

  std::fprintf(out, "  \"recovery\": {\n");
  bool first_scheme = true;
  for (const std::string& scheme : schemes) {
    std::fprintf(out, "%s    \"%s\": [\n", first_scheme ? "" : ",\n",
                 scheme.c_str());
    first_scheme = false;
    bool first_point = true;
    for (size_t n : lengths) {
      RecoveryPoint point = MeasureRecovery(scheme, n);
      std::fprintf(out,
                   "%s      {\"records\": %zu, \"journal_bytes\": %zu, "
                   "\"recover_ms\": %.2f, \"records_per_s\": %.0f}",
                   first_point ? "" : ",\n", point.records,
                   point.journal_bytes, point.recover_ms,
                   point.recover_ms > 0
                       ? static_cast<double>(point.records) /
                             (point.recover_ms / 1000.0)
                       : 0.0);
      first_point = false;
      std::fprintf(stderr,
                   "%-18s %6zu records (%7zu B journal): recover %8.2f ms\n",
                   scheme.c_str(), point.records, point.journal_bytes,
                   point.recover_ms);
    }
    std::fprintf(out, "\n    ]");
  }
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
}

void RegisterAll() {
  for (const std::string& name :
       {std::string("ordpath"), std::string("dewey"),
        std::string("xpath-accelerator")}) {
    benchmark::RegisterBenchmark(("store-insert-buffered/" + name).c_str(),
                                 BM_StoreInsert, name, false)
        ->MinTime(0.1);
    benchmark::RegisterBenchmark(("store-insert-synced/" + name).c_str(),
                                 BM_StoreInsert, name, true)
        ->MinTime(0.1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  WriteJsonSweep();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
