// §4 orthogonality ablation: the same QED order codec hosted as a prefix
// scheme and as a containment scheme, next to the Vector codec in both
// hosts (as the "vector" and "dde" registry entries). Demonstrates what
// the host choice — not the codec — decides: XPath support surface,
// level encoding, label size and growth.

#include <cstdio>
#include <string>

#include "core/labeled_document.h"
#include "labels/registry.h"
#include "workload/document_generator.h"
#include "workload/insertion_workload.h"

namespace {

using namespace xmlup;
using xml::NodeKind;

struct Row {
  std::string parent_support;
  std::string level_support;
  double avg_bits = 0;
  double avg_bits_after = 0;
  uint64_t relabels = 0;
};

bool Run(const std::string& scheme_name, Row* row) {
  auto scheme = labels::CreateScheme(scheme_name);
  if (!scheme.ok()) return false;
  const labels::SchemeTraits& traits = (*scheme)->traits();
  row->parent_support = traits.supports_parent ? "yes" : "no";
  row->level_support = traits.supports_level ? "yes" : "no";
  workload::DocumentShape shape;
  shape.target_nodes = 1500;
  shape.seed = 91;
  auto tree = workload::GenerateDocument(shape);
  if (!tree.ok()) return false;
  auto doc = core::LabeledDocument::Build(std::move(*tree), scheme->get());
  if (!doc.ok()) return false;
  row->avg_bits = doc->AverageLabelBits();
  (*scheme)->ResetCounters();
  workload::InsertionPlanner planner(workload::InsertPattern::kRandom, 92);
  for (int i = 0; i < 300; ++i) {
    auto pos = planner.Next(doc->tree());
    if (!pos.ok()) return false;
    if (!doc->InsertNode(pos->parent, NodeKind::kElement, "u", "",
                         pos->before)
             .ok()) {
      return false;
    }
  }
  row->avg_bits_after = doc->AverageLabelBits();
  row->relabels = (*scheme)->counters().relabels;
  return true;
}

}  // namespace

int main() {
  printf("=== Orthogonality ablation (§4): one codec, two hosts ===\n\n");
  printf("%-18s %10s %8s %12s %12s %10s\n", "scheme", "parent?", "level?",
         "bits(init)", "bits(+300)", "relabels");
  const char* schemes[] = {"qed", "qed-containment", "vector-prefix", "vector"};
  const char* notes[] = {
      "QED codec, prefix host",
      "QED codec, containment host",
      "Vector codec, prefix host (vector-prefix)",
      "Vector codec, containment host",
  };
  for (int i = 0; i < 4; ++i) {
    Row row;
    if (!Run(schemes[i], &row)) {
      printf("%-18s ERROR\n", schemes[i]);
      continue;
    }
    printf("%-18s %10s %8s %12.1f %12.1f %10llu   (%s)\n", schemes[i],
           row.parent_support.c_str(), row.level_support.c_str(),
           row.avg_bits, row.avg_bits_after,
           static_cast<unsigned long long>(row.relabels), notes[i]);
  }
  printf("\nThe host decides the XPath surface (prefix: parent/sibling/"
         "level; containment:\nancestor-only) while the codec decides "
         "persistence and growth — the factoring that\nmakes QED, CDQS "
         "and Vector 'orthogonal' in Figure 7.\n");
  return 0;
}
