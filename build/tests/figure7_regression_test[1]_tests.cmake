add_test([=[Figure7RegressionTest.MatrixMatchesThePaperModuloDocumentedCells]=]  /root/repo/build/tests/figure7_regression_test [==[--gtest_filter=Figure7RegressionTest.MatrixMatchesThePaperModuloDocumentedCells]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Figure7RegressionTest.MatrixMatchesThePaperModuloDocumentedCells]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  figure7_regression_test_TESTS Figure7RegressionTest.MatrixMatchesThePaperModuloDocumentedCells)
