# Empty dependencies file for digit_string_test.
# This may be replaced when dependencies are built.
