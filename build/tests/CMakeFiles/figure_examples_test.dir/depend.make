# Empty dependencies file for figure_examples_test.
# This may be replaced when dependencies are built.
