file(REMOVE_RECURSE
  "CMakeFiles/figure_examples_test.dir/figure_examples_test.cc.o"
  "CMakeFiles/figure_examples_test.dir/figure_examples_test.cc.o.d"
  "figure_examples_test"
  "figure_examples_test.pdb"
  "figure_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
