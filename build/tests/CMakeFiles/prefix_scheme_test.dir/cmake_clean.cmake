file(REMOVE_RECURSE
  "CMakeFiles/prefix_scheme_test.dir/prefix_scheme_test.cc.o"
  "CMakeFiles/prefix_scheme_test.dir/prefix_scheme_test.cc.o.d"
  "prefix_scheme_test"
  "prefix_scheme_test.pdb"
  "prefix_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
