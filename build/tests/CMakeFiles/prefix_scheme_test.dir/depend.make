# Empty dependencies file for prefix_scheme_test.
# This may be replaced when dependencies are built.
