file(REMOVE_RECURSE
  "CMakeFiles/prime_scheme_test.dir/prime_scheme_test.cc.o"
  "CMakeFiles/prime_scheme_test.dir/prime_scheme_test.cc.o.d"
  "prime_scheme_test"
  "prime_scheme_test.pdb"
  "prime_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
