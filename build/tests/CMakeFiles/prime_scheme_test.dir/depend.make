# Empty dependencies file for prime_scheme_test.
# This may be replaced when dependencies are built.
