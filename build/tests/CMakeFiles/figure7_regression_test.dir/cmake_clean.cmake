file(REMOVE_RECURSE
  "CMakeFiles/figure7_regression_test.dir/figure7_regression_test.cc.o"
  "CMakeFiles/figure7_regression_test.dir/figure7_regression_test.cc.o.d"
  "figure7_regression_test"
  "figure7_regression_test.pdb"
  "figure7_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
