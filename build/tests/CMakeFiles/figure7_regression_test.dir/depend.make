# Empty dependencies file for figure7_regression_test.
# This may be replaced when dependencies are built.
