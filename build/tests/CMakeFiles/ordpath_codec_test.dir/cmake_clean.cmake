file(REMOVE_RECURSE
  "CMakeFiles/ordpath_codec_test.dir/ordpath_codec_test.cc.o"
  "CMakeFiles/ordpath_codec_test.dir/ordpath_codec_test.cc.o.d"
  "ordpath_codec_test"
  "ordpath_codec_test.pdb"
  "ordpath_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordpath_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
