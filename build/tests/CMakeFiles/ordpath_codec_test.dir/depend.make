# Empty dependencies file for ordpath_codec_test.
# This may be replaced when dependencies are built.
