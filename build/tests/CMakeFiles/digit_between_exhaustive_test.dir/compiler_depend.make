# Empty compiler generated dependencies file for digit_between_exhaustive_test.
# This may be replaced when dependencies are built.
