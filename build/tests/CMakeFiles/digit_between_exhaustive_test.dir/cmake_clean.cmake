file(REMOVE_RECURSE
  "CMakeFiles/digit_between_exhaustive_test.dir/digit_between_exhaustive_test.cc.o"
  "CMakeFiles/digit_between_exhaustive_test.dir/digit_between_exhaustive_test.cc.o.d"
  "digit_between_exhaustive_test"
  "digit_between_exhaustive_test.pdb"
  "digit_between_exhaustive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_between_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
