# Empty compiler generated dependencies file for encoding_table_test.
# This may be replaced when dependencies are built.
