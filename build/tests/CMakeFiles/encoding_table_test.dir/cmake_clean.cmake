file(REMOVE_RECURSE
  "CMakeFiles/encoding_table_test.dir/encoding_table_test.cc.o"
  "CMakeFiles/encoding_table_test.dir/encoding_table_test.cc.o.d"
  "encoding_table_test"
  "encoding_table_test.pdb"
  "encoding_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
