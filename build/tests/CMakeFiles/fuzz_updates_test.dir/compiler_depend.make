# Empty compiler generated dependencies file for fuzz_updates_test.
# This may be replaced when dependencies are built.
