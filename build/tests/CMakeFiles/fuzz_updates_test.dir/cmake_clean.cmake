file(REMOVE_RECURSE
  "CMakeFiles/fuzz_updates_test.dir/fuzz_updates_test.cc.o"
  "CMakeFiles/fuzz_updates_test.dir/fuzz_updates_test.cc.o.d"
  "fuzz_updates_test"
  "fuzz_updates_test.pdb"
  "fuzz_updates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
