file(REMOVE_RECURSE
  "CMakeFiles/axis_evaluator_test.dir/axis_evaluator_test.cc.o"
  "CMakeFiles/axis_evaluator_test.dir/axis_evaluator_test.cc.o.d"
  "axis_evaluator_test"
  "axis_evaluator_test.pdb"
  "axis_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axis_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
