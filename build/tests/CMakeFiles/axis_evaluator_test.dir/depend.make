# Empty dependencies file for axis_evaluator_test.
# This may be replaced when dependencies are built.
