# Empty compiler generated dependencies file for lsdx_scheme_test.
# This may be replaced when dependencies are built.
