file(REMOVE_RECURSE
  "CMakeFiles/lsdx_scheme_test.dir/lsdx_scheme_test.cc.o"
  "CMakeFiles/lsdx_scheme_test.dir/lsdx_scheme_test.cc.o.d"
  "lsdx_scheme_test"
  "lsdx_scheme_test.pdb"
  "lsdx_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsdx_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
