file(REMOVE_RECURSE
  "CMakeFiles/xpath_evaluator_test.dir/xpath_evaluator_test.cc.o"
  "CMakeFiles/xpath_evaluator_test.dir/xpath_evaluator_test.cc.o.d"
  "xpath_evaluator_test"
  "xpath_evaluator_test.pdb"
  "xpath_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
