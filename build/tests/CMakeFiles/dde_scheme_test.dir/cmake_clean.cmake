file(REMOVE_RECURSE
  "CMakeFiles/dde_scheme_test.dir/dde_scheme_test.cc.o"
  "CMakeFiles/dde_scheme_test.dir/dde_scheme_test.cc.o.d"
  "dde_scheme_test"
  "dde_scheme_test.pdb"
  "dde_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
