# Empty compiler generated dependencies file for dde_scheme_test.
# This may be replaced when dependencies are built.
