file(REMOVE_RECURSE
  "CMakeFiles/prepost_gap_test.dir/prepost_gap_test.cc.o"
  "CMakeFiles/prepost_gap_test.dir/prepost_gap_test.cc.o.d"
  "prepost_gap_test"
  "prepost_gap_test.pdb"
  "prepost_gap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepost_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
