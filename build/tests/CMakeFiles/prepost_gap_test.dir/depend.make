# Empty dependencies file for prepost_gap_test.
# This may be replaced when dependencies are built.
