# Empty dependencies file for label_index_test.
# This may be replaced when dependencies are built.
