file(REMOVE_RECURSE
  "CMakeFiles/containment_scheme_test.dir/containment_scheme_test.cc.o"
  "CMakeFiles/containment_scheme_test.dir/containment_scheme_test.cc.o.d"
  "containment_scheme_test"
  "containment_scheme_test.pdb"
  "containment_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
