# Empty dependencies file for containment_scheme_test.
# This may be replaced when dependencies are built.
