
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml_tree_test.cc" "tests/CMakeFiles/xml_tree_test.dir/xml_tree_test.cc.o" "gcc" "tests/CMakeFiles/xml_tree_test.dir/xml_tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xpath/CMakeFiles/xmlup_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xmlup_core.dir/DependInfo.cmake"
  "/root/repo/build/src/labels/CMakeFiles/xmlup_labels.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlup_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xmlup_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
