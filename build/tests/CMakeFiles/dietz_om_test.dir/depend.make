# Empty dependencies file for dietz_om_test.
# This may be replaced when dependencies are built.
