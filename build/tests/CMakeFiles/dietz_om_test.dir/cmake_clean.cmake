file(REMOVE_RECURSE
  "CMakeFiles/dietz_om_test.dir/dietz_om_test.cc.o"
  "CMakeFiles/dietz_om_test.dir/dietz_om_test.cc.o.d"
  "dietz_om_test"
  "dietz_om_test.pdb"
  "dietz_om_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dietz_om_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
