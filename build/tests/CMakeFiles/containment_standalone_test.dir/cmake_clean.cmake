file(REMOVE_RECURSE
  "CMakeFiles/containment_standalone_test.dir/containment_standalone_test.cc.o"
  "CMakeFiles/containment_standalone_test.dir/containment_standalone_test.cc.o.d"
  "containment_standalone_test"
  "containment_standalone_test.pdb"
  "containment_standalone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_standalone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
