# Empty dependencies file for containment_standalone_test.
# This may be replaced when dependencies are built.
