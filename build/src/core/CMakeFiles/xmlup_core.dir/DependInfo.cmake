
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/axis_evaluator.cc" "src/core/CMakeFiles/xmlup_core.dir/axis_evaluator.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/axis_evaluator.cc.o.d"
  "/root/repo/src/core/encoding_table.cc" "src/core/CMakeFiles/xmlup_core.dir/encoding_table.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/encoding_table.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/xmlup_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/framework.cc.o.d"
  "/root/repo/src/core/label_index.cc" "src/core/CMakeFiles/xmlup_core.dir/label_index.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/label_index.cc.o.d"
  "/root/repo/src/core/labeled_document.cc" "src/core/CMakeFiles/xmlup_core.dir/labeled_document.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/labeled_document.cc.o.d"
  "/root/repo/src/core/property_probes.cc" "src/core/CMakeFiles/xmlup_core.dir/property_probes.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/property_probes.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/xmlup_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/xmlup_core.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlup_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/labels/CMakeFiles/xmlup_labels.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xmlup_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
