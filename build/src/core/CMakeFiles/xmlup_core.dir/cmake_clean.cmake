file(REMOVE_RECURSE
  "CMakeFiles/xmlup_core.dir/axis_evaluator.cc.o"
  "CMakeFiles/xmlup_core.dir/axis_evaluator.cc.o.d"
  "CMakeFiles/xmlup_core.dir/encoding_table.cc.o"
  "CMakeFiles/xmlup_core.dir/encoding_table.cc.o.d"
  "CMakeFiles/xmlup_core.dir/framework.cc.o"
  "CMakeFiles/xmlup_core.dir/framework.cc.o.d"
  "CMakeFiles/xmlup_core.dir/label_index.cc.o"
  "CMakeFiles/xmlup_core.dir/label_index.cc.o.d"
  "CMakeFiles/xmlup_core.dir/labeled_document.cc.o"
  "CMakeFiles/xmlup_core.dir/labeled_document.cc.o.d"
  "CMakeFiles/xmlup_core.dir/property_probes.cc.o"
  "CMakeFiles/xmlup_core.dir/property_probes.cc.o.d"
  "CMakeFiles/xmlup_core.dir/snapshot.cc.o"
  "CMakeFiles/xmlup_core.dir/snapshot.cc.o.d"
  "libxmlup_core.a"
  "libxmlup_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
