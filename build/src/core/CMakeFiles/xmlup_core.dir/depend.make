# Empty dependencies file for xmlup_core.
# This may be replaced when dependencies are built.
