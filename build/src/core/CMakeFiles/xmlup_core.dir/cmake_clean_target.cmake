file(REMOVE_RECURSE
  "libxmlup_core.a"
)
