# Empty dependencies file for xmlup_xml.
# This may be replaced when dependencies are built.
