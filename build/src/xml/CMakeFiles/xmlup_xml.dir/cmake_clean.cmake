file(REMOVE_RECURSE
  "CMakeFiles/xmlup_xml.dir/parser.cc.o"
  "CMakeFiles/xmlup_xml.dir/parser.cc.o.d"
  "CMakeFiles/xmlup_xml.dir/serializer.cc.o"
  "CMakeFiles/xmlup_xml.dir/serializer.cc.o.d"
  "CMakeFiles/xmlup_xml.dir/tree.cc.o"
  "CMakeFiles/xmlup_xml.dir/tree.cc.o.d"
  "libxmlup_xml.a"
  "libxmlup_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
