file(REMOVE_RECURSE
  "libxmlup_xml.a"
)
