file(REMOVE_RECURSE
  "libxmlup_xpath.a"
)
