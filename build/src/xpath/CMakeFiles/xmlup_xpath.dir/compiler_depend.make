# Empty compiler generated dependencies file for xmlup_xpath.
# This may be replaced when dependencies are built.
