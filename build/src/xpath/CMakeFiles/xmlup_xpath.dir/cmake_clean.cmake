file(REMOVE_RECURSE
  "CMakeFiles/xmlup_xpath.dir/ast.cc.o"
  "CMakeFiles/xmlup_xpath.dir/ast.cc.o.d"
  "CMakeFiles/xmlup_xpath.dir/evaluator.cc.o"
  "CMakeFiles/xmlup_xpath.dir/evaluator.cc.o.d"
  "CMakeFiles/xmlup_xpath.dir/parser.cc.o"
  "CMakeFiles/xmlup_xpath.dir/parser.cc.o.d"
  "libxmlup_xpath.a"
  "libxmlup_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
