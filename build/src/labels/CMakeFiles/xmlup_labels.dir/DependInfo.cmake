
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labels/binary_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/binary_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/binary_codec.cc.o.d"
  "/root/repo/src/labels/containment_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/containment_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/containment_scheme.cc.o.d"
  "/root/repo/src/labels/dde_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/dde_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/dde_scheme.cc.o.d"
  "/root/repo/src/labels/dewey_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/dewey_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/dewey_codec.cc.o.d"
  "/root/repo/src/labels/dietz_om_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/dietz_om_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/dietz_om_scheme.cc.o.d"
  "/root/repo/src/labels/digit_string.cc" "src/labels/CMakeFiles/xmlup_labels.dir/digit_string.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/digit_string.cc.o.d"
  "/root/repo/src/labels/dln_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/dln_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/dln_codec.cc.o.d"
  "/root/repo/src/labels/lsdx_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/lsdx_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/lsdx_codec.cc.o.d"
  "/root/repo/src/labels/ordpath_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/ordpath_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/ordpath_codec.cc.o.d"
  "/root/repo/src/labels/prefix_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/prefix_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/prefix_scheme.cc.o.d"
  "/root/repo/src/labels/prepost_gap_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/prepost_gap_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/prepost_gap_scheme.cc.o.d"
  "/root/repo/src/labels/prepost_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/prepost_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/prepost_scheme.cc.o.d"
  "/root/repo/src/labels/prime_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/prime_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/prime_scheme.cc.o.d"
  "/root/repo/src/labels/qrs_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/qrs_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/qrs_scheme.cc.o.d"
  "/root/repo/src/labels/quaternary_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/quaternary_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/quaternary_codec.cc.o.d"
  "/root/repo/src/labels/registry.cc" "src/labels/CMakeFiles/xmlup_labels.dir/registry.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/registry.cc.o.d"
  "/root/repo/src/labels/scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/scheme.cc.o.d"
  "/root/repo/src/labels/sector_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/sector_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/sector_scheme.cc.o.d"
  "/root/repo/src/labels/vector_codec.cc" "src/labels/CMakeFiles/xmlup_labels.dir/vector_codec.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/vector_codec.cc.o.d"
  "/root/repo/src/labels/xrel_scheme.cc" "src/labels/CMakeFiles/xmlup_labels.dir/xrel_scheme.cc.o" "gcc" "src/labels/CMakeFiles/xmlup_labels.dir/xrel_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlup_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
