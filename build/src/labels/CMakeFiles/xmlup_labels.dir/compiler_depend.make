# Empty compiler generated dependencies file for xmlup_labels.
# This may be replaced when dependencies are built.
