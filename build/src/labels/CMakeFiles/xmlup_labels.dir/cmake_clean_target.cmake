file(REMOVE_RECURSE
  "libxmlup_labels.a"
)
