
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/document_generator.cc" "src/workload/CMakeFiles/xmlup_workload.dir/document_generator.cc.o" "gcc" "src/workload/CMakeFiles/xmlup_workload.dir/document_generator.cc.o.d"
  "/root/repo/src/workload/insertion_workload.cc" "src/workload/CMakeFiles/xmlup_workload.dir/insertion_workload.cc.o" "gcc" "src/workload/CMakeFiles/xmlup_workload.dir/insertion_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlup_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
