# Empty dependencies file for xmlup_workload.
# This may be replaced when dependencies are built.
