file(REMOVE_RECURSE
  "libxmlup_workload.a"
)
