file(REMOVE_RECURSE
  "CMakeFiles/xmlup_workload.dir/document_generator.cc.o"
  "CMakeFiles/xmlup_workload.dir/document_generator.cc.o.d"
  "CMakeFiles/xmlup_workload.dir/insertion_workload.cc.o"
  "CMakeFiles/xmlup_workload.dir/insertion_workload.cc.o.d"
  "libxmlup_workload.a"
  "libxmlup_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
