file(REMOVE_RECURSE
  "libxmlup_common.a"
)
