file(REMOVE_RECURSE
  "CMakeFiles/xmlup_common.dir/biguint.cc.o"
  "CMakeFiles/xmlup_common.dir/biguint.cc.o.d"
  "CMakeFiles/xmlup_common.dir/op_counters.cc.o"
  "CMakeFiles/xmlup_common.dir/op_counters.cc.o.d"
  "CMakeFiles/xmlup_common.dir/primes.cc.o"
  "CMakeFiles/xmlup_common.dir/primes.cc.o.d"
  "CMakeFiles/xmlup_common.dir/status.cc.o"
  "CMakeFiles/xmlup_common.dir/status.cc.o.d"
  "libxmlup_common.a"
  "libxmlup_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
