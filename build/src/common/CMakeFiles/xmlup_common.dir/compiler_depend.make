# Empty compiler generated dependencies file for xmlup_common.
# This may be replaced when dependencies are built.
