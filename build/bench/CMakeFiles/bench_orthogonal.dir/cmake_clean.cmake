file(REMOVE_RECURSE
  "CMakeFiles/bench_orthogonal.dir/bench_orthogonal.cc.o"
  "CMakeFiles/bench_orthogonal.dir/bench_orthogonal.cc.o.d"
  "bench_orthogonal"
  "bench_orthogonal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orthogonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
