# Empty compiler generated dependencies file for bench_orthogonal.
# This may be replaced when dependencies are built.
