file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_prepost.dir/bench_fig1_prepost.cc.o"
  "CMakeFiles/bench_fig1_prepost.dir/bench_fig1_prepost.cc.o.d"
  "bench_fig1_prepost"
  "bench_fig1_prepost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_prepost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
