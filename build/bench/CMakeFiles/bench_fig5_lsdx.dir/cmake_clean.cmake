file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lsdx.dir/bench_fig5_lsdx.cc.o"
  "CMakeFiles/bench_fig5_lsdx.dir/bench_fig5_lsdx.cc.o.d"
  "bench_fig5_lsdx"
  "bench_fig5_lsdx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lsdx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
