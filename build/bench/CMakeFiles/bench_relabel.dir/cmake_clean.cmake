file(REMOVE_RECURSE
  "CMakeFiles/bench_relabel.dir/bench_relabel.cc.o"
  "CMakeFiles/bench_relabel.dir/bench_relabel.cc.o.d"
  "bench_relabel"
  "bench_relabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
