# Empty compiler generated dependencies file for bench_relabel.
# This may be replaced when dependencies are built.
