file(REMOVE_RECURSE
  "CMakeFiles/bench_gap_ablation.dir/bench_gap_ablation.cc.o"
  "CMakeFiles/bench_gap_ablation.dir/bench_gap_ablation.cc.o.d"
  "bench_gap_ablation"
  "bench_gap_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gap_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
