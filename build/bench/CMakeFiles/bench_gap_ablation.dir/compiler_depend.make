# Empty compiler generated dependencies file for bench_gap_ablation.
# This may be replaced when dependencies are built.
