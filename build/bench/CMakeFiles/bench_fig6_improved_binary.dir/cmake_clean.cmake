file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_improved_binary.dir/bench_fig6_improved_binary.cc.o"
  "CMakeFiles/bench_fig6_improved_binary.dir/bench_fig6_improved_binary.cc.o.d"
  "bench_fig6_improved_binary"
  "bench_fig6_improved_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_improved_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
