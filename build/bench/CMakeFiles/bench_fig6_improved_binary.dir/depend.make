# Empty dependencies file for bench_fig6_improved_binary.
# This may be replaced when dependencies are built.
