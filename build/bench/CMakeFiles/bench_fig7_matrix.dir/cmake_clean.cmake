file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_matrix.dir/bench_fig7_matrix.cc.o"
  "CMakeFiles/bench_fig7_matrix.dir/bench_fig7_matrix.cc.o.d"
  "bench_fig7_matrix"
  "bench_fig7_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
