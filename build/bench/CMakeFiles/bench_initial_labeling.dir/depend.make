# Empty dependencies file for bench_initial_labeling.
# This may be replaced when dependencies are built.
