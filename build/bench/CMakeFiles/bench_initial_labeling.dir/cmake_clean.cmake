file(REMOVE_RECURSE
  "CMakeFiles/bench_initial_labeling.dir/bench_initial_labeling.cc.o"
  "CMakeFiles/bench_initial_labeling.dir/bench_initial_labeling.cc.o.d"
  "bench_initial_labeling"
  "bench_initial_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_initial_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
