file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dewey.dir/bench_fig3_dewey.cc.o"
  "CMakeFiles/bench_fig3_dewey.dir/bench_fig3_dewey.cc.o.d"
  "bench_fig3_dewey"
  "bench_fig3_dewey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dewey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
