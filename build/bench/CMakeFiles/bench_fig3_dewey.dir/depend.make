# Empty dependencies file for bench_fig3_dewey.
# This may be replaced when dependencies are built.
