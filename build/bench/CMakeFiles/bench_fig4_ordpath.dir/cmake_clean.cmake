file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ordpath.dir/bench_fig4_ordpath.cc.o"
  "CMakeFiles/bench_fig4_ordpath.dir/bench_fig4_ordpath.cc.o.d"
  "bench_fig4_ordpath"
  "bench_fig4_ordpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ordpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
