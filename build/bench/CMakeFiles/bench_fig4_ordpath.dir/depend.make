# Empty dependencies file for bench_fig4_ordpath.
# This may be replaced when dependencies are built.
