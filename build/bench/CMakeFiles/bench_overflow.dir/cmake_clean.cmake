file(REMOVE_RECURSE
  "CMakeFiles/bench_overflow.dir/bench_overflow.cc.o"
  "CMakeFiles/bench_overflow.dir/bench_overflow.cc.o.d"
  "bench_overflow"
  "bench_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
