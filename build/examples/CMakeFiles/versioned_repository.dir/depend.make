# Empty dependencies file for versioned_repository.
# This may be replaced when dependencies are built.
