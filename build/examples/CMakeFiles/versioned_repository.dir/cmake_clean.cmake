file(REMOVE_RECURSE
  "CMakeFiles/versioned_repository.dir/versioned_repository.cpp.o"
  "CMakeFiles/versioned_repository.dir/versioned_repository.cpp.o.d"
  "versioned_repository"
  "versioned_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
