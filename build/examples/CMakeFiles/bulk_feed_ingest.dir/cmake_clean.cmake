file(REMOVE_RECURSE
  "CMakeFiles/bulk_feed_ingest.dir/bulk_feed_ingest.cpp.o"
  "CMakeFiles/bulk_feed_ingest.dir/bulk_feed_ingest.cpp.o.d"
  "bulk_feed_ingest"
  "bulk_feed_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_feed_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
