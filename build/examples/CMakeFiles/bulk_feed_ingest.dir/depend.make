# Empty dependencies file for bulk_feed_ingest.
# This may be replaced when dependencies are built.
