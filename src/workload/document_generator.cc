#include "workload/document_generator.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace xmlup::workload {

using common::Result;
using common::SplitMix64;
using common::Status;
using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

namespace {

const char* const kElementNames[] = {"item",    "record", "entry",  "person",
                                     "address", "order",  "product", "note",
                                     "section", "para"};
const char* const kAttributeNames[] = {"id", "type", "lang", "version"};

std::string PickName(SplitMix64* rng, const char* const* names, size_t n) {
  return names[rng->NextBelow(n)];
}

}  // namespace

Result<Tree> GenerateDocument(const DocumentShape& shape) {
  if (shape.target_nodes == 0) {
    return Status::InvalidArgument("target_nodes must be positive");
  }
  SplitMix64 rng(shape.seed);
  Tree tree;
  XMLUP_ASSIGN_OR_RETURN(NodeId root,
                         tree.CreateRoot(NodeKind::kElement, "root"));

  // Frontier of elements that can still take children, with their depth.
  struct Slot {
    NodeId node;
    int depth;
  };
  std::vector<Slot> frontier = {{root, 0}};
  while (tree.node_count() < shape.target_nodes && !frontier.empty()) {
    size_t pick = rng.NextBelow(frontier.size());
    Slot slot = frontier[pick];
    int fanout =
        1 + static_cast<int>(rng.NextBelow(
                static_cast<uint64_t>(shape.max_fanout)));
    for (int i = 0; i < fanout && tree.node_count() < shape.target_nodes;
         ++i) {
      XMLUP_ASSIGN_OR_RETURN(
          NodeId child,
          tree.AppendChild(slot.node, NodeKind::kElement,
                           PickName(&rng, kElementNames, 10)));
      if (rng.NextBool(shape.attribute_probability)) {
        XMLUP_RETURN_NOT_OK(
            tree.InsertChild(child, NodeKind::kAttribute,
                             PickName(&rng, kAttributeNames, 4),
                             std::to_string(rng.NextBelow(10000)),
                             tree.first_child(child))
                .status());
      }
      if (rng.NextBool(shape.text_probability)) {
        std::string text = "v";
        text += std::to_string(rng.NextBelow(100000));
        XMLUP_RETURN_NOT_OK(
            tree.AppendChild(child, NodeKind::kText, "", std::move(text))
                .status());
      }
      if (slot.depth + 1 < shape.max_depth) {
        frontier.push_back({child, slot.depth + 1});
      }
    }
    frontier[pick] = frontier.back();
    frontier.pop_back();
  }
  return tree;
}

Tree SampleBookDocument() {
  // Figure 1(a) of the paper.
  Tree tree;
  NodeId book = tree.CreateRoot(NodeKind::kElement, "book").value();
  NodeId title =
      tree.AppendChild(book, NodeKind::kElement, "title").value();
  tree.AppendChild(title, NodeKind::kAttribute, "genre", "Fantasy")
      .value();
  tree.AppendChild(title, NodeKind::kText, "", "Wayfarer").value();
  NodeId author =
      tree.AppendChild(book, NodeKind::kElement, "author").value();
  tree.AppendChild(author, NodeKind::kText, "", "Matthew Dickens").value();
  NodeId publisher =
      tree.AppendChild(book, NodeKind::kElement, "publisher").value();
  NodeId editor =
      tree.AppendChild(publisher, NodeKind::kElement, "editor").value();
  NodeId name = tree.AppendChild(editor, NodeKind::kElement, "name").value();
  tree.AppendChild(name, NodeKind::kText, "", "Destiny Image").value();
  NodeId address =
      tree.AppendChild(editor, NodeKind::kElement, "address").value();
  tree.AppendChild(address, NodeKind::kText, "", "USA").value();
  NodeId edition =
      tree.AppendChild(publisher, NodeKind::kElement, "edition").value();
  tree.AppendChild(edition, NodeKind::kAttribute, "year", "2004").value();
  tree.AppendChild(edition, NodeKind::kText, "", "1.0").value();
  return tree;
}

Result<Tree> GenerateDeepDocument(int depth, int fanout, uint64_t seed) {
  if (depth < 1 || fanout < 1) {
    return Status::InvalidArgument("depth and fanout must be positive");
  }
  SplitMix64 rng(seed);
  Tree tree;
  XMLUP_ASSIGN_OR_RETURN(NodeId root,
                         tree.CreateRoot(NodeKind::kElement, "root"));
  NodeId spine = root;
  for (int d = 1; d < depth; ++d) {
    NodeId next = spine;
    for (int i = 0; i < fanout; ++i) {
      XMLUP_ASSIGN_OR_RETURN(
          NodeId child,
          tree.AppendChild(spine, NodeKind::kElement, "level"));
      if (i == 0 || rng.NextBool(0.5)) next = child;
    }
    if (next == spine) break;
    spine = next;
  }
  return tree;
}

}  // namespace xmlup::workload
