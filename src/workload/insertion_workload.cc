#include "workload/insertion_workload.h"

#include <vector>

namespace xmlup::workload {

using common::Result;
using common::Status;
using xml::NodeId;
using xml::NodeKind;
using xml::Tree;

std::string_view InsertPatternName(InsertPattern pattern) {
  switch (pattern) {
    case InsertPattern::kRandom:
      return "random";
    case InsertPattern::kUniform:
      return "uniform";
    case InsertPattern::kSkewedFixed:
      return "skewed";
    case InsertPattern::kAppend:
      return "append";
    case InsertPattern::kPrepend:
      return "prepend";
  }
  return "unknown";
}

namespace {

// All element nodes of the tree in preorder.
std::vector<NodeId> ElementNodes(const Tree& tree) {
  std::vector<NodeId> out;
  for (NodeId n : tree.PreorderNodes()) {
    if (tree.kind(n) == NodeKind::kElement) out.push_back(n);
  }
  return out;
}

}  // namespace

Result<InsertionPlanner::Position> InsertionPlanner::FixedAnchor(
    const Tree& tree) {
  if (anchor_ == xml::kInvalidNode || !tree.IsValid(anchor_)) {
    // Pick a stable anchor: the second child of the root if present,
    // otherwise the first, otherwise the root itself becomes the parent.
    NodeId root = tree.root();
    NodeId first = tree.first_child(root);
    if (first == xml::kInvalidNode) {
      fixed_parent_ = root;
      anchor_ = xml::kInvalidNode;
      return Position{root, xml::kInvalidNode};
    }
    NodeId second = tree.next_sibling(first);
    anchor_ = second != xml::kInvalidNode ? second : first;
    fixed_parent_ = root;
  }
  return Position{fixed_parent_, anchor_};
}

Result<InsertionPlanner::Position> InsertionPlanner::Next(const Tree& tree) {
  if (!tree.has_root()) {
    return Status::InvalidArgument("cannot plan insertions in an empty tree");
  }
  switch (pattern_) {
    case InsertPattern::kSkewedFixed:
      return FixedAnchor(tree);
    case InsertPattern::kAppend: {
      if (fixed_parent_ == xml::kInvalidNode ||
          !tree.IsValid(fixed_parent_)) {
        fixed_parent_ = tree.root();
      }
      return Position{fixed_parent_, xml::kInvalidNode};
    }
    case InsertPattern::kPrepend: {
      if (fixed_parent_ == xml::kInvalidNode ||
          !tree.IsValid(fixed_parent_)) {
        fixed_parent_ = tree.root();
      }
      return Position{fixed_parent_, tree.first_child(fixed_parent_)};
    }
    case InsertPattern::kRandom: {
      std::vector<NodeId> elements = ElementNodes(tree);
      NodeId parent = elements[rng_.NextBelow(elements.size())];
      size_t gaps = tree.ChildCount(parent) + 1;
      size_t gap = rng_.NextBelow(gaps);
      NodeId before = tree.first_child(parent);
      for (size_t i = 0; i < gap && before != xml::kInvalidNode; ++i) {
        before = tree.next_sibling(before);
      }
      return Position{parent, before};
    }
    case InsertPattern::kUniform: {
      // Enumerate every (parent, gap) pair and choose uniformly.
      std::vector<Position> positions;
      for (NodeId parent : ElementNodes(tree)) {
        positions.push_back({parent, tree.first_child(parent)});
        for (NodeId c = tree.first_child(parent); c != xml::kInvalidNode;
             c = tree.next_sibling(c)) {
          positions.push_back({parent, tree.next_sibling(c)});
        }
      }
      return positions[rng_.NextBelow(positions.size())];
    }
  }
  return Status::Internal("unknown insertion pattern");
}

}  // namespace xmlup::workload
