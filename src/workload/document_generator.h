#ifndef XMLUP_WORKLOAD_DOCUMENT_GENERATOR_H_
#define XMLUP_WORKLOAD_DOCUMENT_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "xml/tree.h"

namespace xmlup::workload {

/// Shape parameters for synthetic XML documents. The generator emulates
/// data-centric documents (record collections with attributes and text
/// leaves) — the paper specifies no corpus, so the probes and benchmarks
/// characterise schemes across these parameterised shapes plus the paper's
/// own Figure 1 sample.
struct DocumentShape {
  /// Approximate number of nodes to generate (the generator stops adding
  /// elements when this is reached; attributes/text may slightly exceed).
  size_t target_nodes = 1000;
  /// Maximum element nesting depth.
  int max_depth = 6;
  /// Maximum children per element.
  int max_fanout = 10;
  /// Probability that an element carries a text child.
  double text_probability = 0.4;
  /// Probability that an element carries an attribute.
  double attribute_probability = 0.3;
  uint64_t seed = 42;
};

/// Generates a random document with the given shape. Deterministic in the
/// seed.
common::Result<xml::Tree> GenerateDocument(const DocumentShape& shape);

/// The paper's Figure 1(a) sample document (the <book> example).
xml::Tree SampleBookDocument();

/// A deep, narrow document (chain-heavy) for depth-sensitive probes.
common::Result<xml::Tree> GenerateDeepDocument(int depth, int fanout,
                                               uint64_t seed);

}  // namespace xmlup::workload

#endif  // XMLUP_WORKLOAD_DOCUMENT_GENERATOR_H_
