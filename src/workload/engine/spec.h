#ifndef XMLUP_WORKLOAD_ENGINE_SPEC_H_
#define XMLUP_WORKLOAD_ENGINE_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xmlup::workload {

/// A declarative workload: a graph of operation nodes driven against a
/// running server over the wire protocol (Genny-style — see DESIGN.md
/// §11). The spec is a small line-oriented text format with no external
/// dependencies:
///
///   # comment
///   workload <name>                    optional title
///   var <name> <value...>              workload variable (rest of line)
///   start <node>                       entry node (default: first node)
///   node <name> <type>                 starts a node block; fields follow
///     <field> <value...>
///
/// Node types and their fields:
///
///   edit           doc <template>?  script <action tokens...>  next <node>
///                  one wire frame in the CLI action grammar
///                  (-i/-a/-s/-d/-u/-m/-r), all-or-nothing server side
///   apply          doc <template>?  line <script line>  (repeated)
///                  next <node>
///                  one --apply wire frame: the `line` fields joined with
///                  newlines form an update script in the `xmlup apply`
///                  grammar (comments, `let` bindings, action lines),
///                  compiled and run server side as one all-or-nothing
///                  transaction
///   query          doc <template>?  xpath <expr>  next <node>
///                  one -q frame evaluated on the latest snapshot view
///   random-choice  choice <weight> <node>  (repeated)
///                  picks the next node with probability weight/sum
///   for-n          count <n>  do <node>  next <node>
///                  runs the chain starting at `do` n times (a body chain
///                  ends with `next end`), then proceeds to `next`
///   think-time     ms <n> | ms <lo> <hi>  next <node>
///                  sleeps a fixed or uniformly drawn duration
///   finish         ends one pass through the graph
///
/// Two node names are built in: `finish` (an implicit finish node, so
/// every spec can say `next finish`) and `end` (valid only as a `next`
/// target inside a for-n body: return to the loop). Templates in doc
/// keys, script tokens and xpaths expand per operation:
///
///   ${thread}      worker thread index
///   ${op}          per-thread count of client ops issued so far
///   ${rand:N}      uniform integer in [0, N) from the thread's RNG
///   ${choice:VAR}  uniform element of the comma-separated variable VAR
///   ${VAR}         the workload variable VAR
///
/// Every structural error — unknown node type, weights that do not
/// normalize, a dangling next-node reference, an unreachable finish, an
/// `end` outside any for-n body, a malformed edit script — is rejected
/// at parse time with a one-line diagnostic quoting the offending spec
/// line, so `xmlup workload check` can gate a spec before any traffic.
enum class SpecNodeType : uint8_t {
  kEdit,
  kApply,
  kQuery,
  kRandomChoice,
  kForN,
  kThinkTime,
  kFinish,
};

std::string_view SpecNodeTypeName(SpecNodeType type);

/// `next` sentinel meaning "return to the innermost enclosing for-n".
inline constexpr int kNextEnd = -2;

struct SpecNode {
  std::string name;
  SpecNodeType type = SpecNodeType::kFinish;

  /// edit/query: document key template; empty targets a single-document
  /// server (no --doc prefix on the frame).
  std::string doc_template;
  /// edit: templated tokens in the CLI action grammar.
  std::vector<std::string> script;
  /// apply: templated update-script lines, joined with newlines into the
  /// --apply frame's one script field.
  std::vector<std::string> lines;
  /// query: templated XPath expression.
  std::string xpath;
  /// think-time: uniform sleep range in milliseconds (min == max for a
  /// fixed sleep).
  uint64_t think_min_ms = 0;
  uint64_t think_max_ms = 0;
  /// for-n: iteration count.
  uint64_t count = 0;

  /// Resolved successor indices into WorkloadSpec::nodes. `next` is
  /// kNextEnd for an `end` reference; -1 where the type has no such edge.
  int next = -1;
  int body = -1;
  /// random-choice: (weight, node index), weights > 0 summing > 0.
  std::vector<std::pair<double, int>> choices;

  /// The `node` declaration line (1-based) and its text, for diagnostics.
  size_t line = 0;
  std::string line_text;
};

struct WorkloadSpec {
  std::string name;
  /// Ordered (name, value) pairs; later definitions override earlier.
  std::vector<std::pair<std::string, std::string>> variables;
  int start = -1;
  std::vector<SpecNode> nodes;

  const std::string* FindVariable(std::string_view var) const;
};

/// Parses and validates a workload spec. The returned spec is fully
/// resolved (indices, not names) and safe to hand to the engine; any
/// defect fails with a one-line diagnostic quoting the spec.
common::Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text);

/// Expands `${...}` template references (see the grammar above) that can
/// be checked statically: variable references must name a defined
/// variable, `${choice:VAR}` additionally a non-empty one. Used by the
/// parser; exposed for tests.
common::Status ValidateTemplate(const WorkloadSpec& spec,
                                std::string_view tpl);

}  // namespace xmlup::workload

#endif  // XMLUP_WORKLOAD_ENGINE_SPEC_H_
