#include "workload/engine/engine.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "concurrency/server.h"
#include "concurrency/wire.h"

namespace xmlup::workload {

namespace {

using common::Result;
using common::SplitMix64;
using common::Status;

/// Workload variables after overrides, with ${choice:VAR} lists
/// pre-split so the per-op path never re-parses.
struct VariableTable {
  std::map<std::string, std::string> values;
  std::map<std::string, std::vector<std::string>> choice_lists;
};

Result<VariableTable> BuildVariables(const WorkloadSpec& spec,
                                     const EngineOptions& options) {
  VariableTable table;
  for (const auto& [name, value] : spec.variables) {
    table.values[name] = value;
  }
  for (const auto& [name, value] : options.overrides) {
    auto it = table.values.find(name);
    if (it == table.values.end()) {
      return Status::InvalidArgument(
          "override names a variable the spec does not define: " + name);
    }
    it->second = value;
  }
  for (const auto& [name, value] : table.values) {
    std::vector<std::string> items;
    std::string item;
    std::istringstream in(value);
    while (std::getline(in, item, ',')) {
      // trim
      size_t b = item.find_first_not_of(" \t");
      size_t e = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      items.push_back(item.substr(b, e - b + 1));
    }
    if (!items.empty()) table.choice_lists[name] = std::move(items);
  }
  return table;
}

/// Expands one template. The spec was statically validated, so every
/// reference resolves; RNG draws happen in textual order (part of the
/// determinism contract).
std::string Expand(std::string_view tpl, const VariableTable& vars,
                   uint64_t thread, uint64_t op, SplitMix64& rng) {
  std::string out;
  out.reserve(tpl.size());
  size_t i = 0;
  while (i < tpl.size()) {
    if (tpl[i] != '$' || i + 1 >= tpl.size() || tpl[i + 1] != '{') {
      out.push_back(tpl[i]);
      ++i;
      continue;
    }
    size_t close = tpl.find('}', i + 2);
    std::string_view ref = tpl.substr(i + 2, close - i - 2);
    if (ref == "thread") {
      out.append(std::to_string(thread));
    } else if (ref == "op") {
      out.append(std::to_string(op));
    } else if (ref.rfind("rand:", 0) == 0) {
      uint64_t bound = std::strtoull(std::string(ref.substr(5)).c_str(),
                                     nullptr, 10);
      out.append(std::to_string(rng.NextBelow(bound)));
    } else if (ref.rfind("choice:", 0) == 0) {
      const auto& list = vars.choice_lists.at(std::string(ref.substr(7)));
      out.append(list[rng.NextBelow(list.size())]);
    } else {
      out.append(vars.values.at(std::string(ref)));
    }
    i = close + 1;
  }
  return out;
}

/// Shared per-node cells: registry histogram + counters (resolved once,
/// before any worker starts — the hot path is lock-free), plus exact
/// engine-side totals that survive a metrics-off build.
struct NodeRuntime {
  obs::Histogram* latency_ns = nullptr;
  obs::Counter* ops_cell = nullptr;
  obs::Counter* errors_cell = nullptr;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
};

/// A router reply saying the shard behind it is down — retryable only
/// when the run opted in (a failover window, not a steady-state error).
bool IsRoutedUnavailable(const std::vector<std::string>& reply) {
  return reply.size() >= 2 && reply[0] == "err" &&
         reply[1].rfind("routed: ", 0) == 0 &&
         reply[1].find("unavailable: ") != std::string::npos;
}

/// One worker's persistent connection: each client op gets up to
/// `op_attempts` transport attempts, sleeping a doubling backoff between
/// them (the server may be restarting, or a failover may be electing a
/// new primary under the target). Exhausting the budget aborts the run
/// loudly. Retries consume no RNG draws — determinism of --ops traces
/// does not depend on how flaky the transport was.
class WireClient {
 public:
  WireClient(const EngineOptions& options, obs::Counter* retries_cell,
             std::atomic<uint64_t>* retries)
      : options_(options),
        target_(options.target),
        retries_cell_(retries_cell),
        retries_(retries) {}
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::vector<std::string>> Request(
      const std::vector<std::string>& frame) {
    const int attempts = std::max(1, options_.op_attempts);
    uint64_t backoff_ms = options_.retry_backoff_initial_ms;
    Status last = Status::Ok();
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        retries_cell_->Add();
        retries_->fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, options_.retry_backoff_max_ms);
      }
      if (fd_ < 0) {
        auto dialed = concurrency::DialEndpoint(target_);
        if (!dialed.ok()) {
          last = dialed.status();
          continue;
        }
        fd_ = *dialed;
      }
      Status wrote = concurrency::WriteFrame(fd_, frame);
      if (wrote.ok()) {
        auto reply = concurrency::ReadFrame(fd_);
        if (reply.ok() && reply->has_value()) {
          if (options_.retry_routed_errors && IsRoutedUnavailable(**reply)) {
            // The router answered — keep the connection — but the shard
            // behind it is down; spend another attempt on the window.
            last = Status::Internal((**reply)[1]);
            continue;
          }
          return std::move(**reply);
        }
        last = reply.ok() ? Status::Internal("connection closed mid-request")
                          : reply.status();
      } else {
        last = wrote;
      }
      ::close(fd_);
      fd_ = -1;
    }
    return Status::Internal("workload: request to " + target_ +
                            " failed after " + std::to_string(attempts) +
                            " attempts: " + last.ToString());
  }

 private:
  const EngineOptions& options_;
  std::string target_;
  obs::Counter* retries_cell_;
  std::atomic<uint64_t>* retries_;
  int fd_ = -1;
};

struct SharedRun {
  const WorkloadSpec* spec;
  const EngineOptions* options;
  const VariableTable* vars;
  std::vector<NodeRuntime>* nodes;
  obs::Counter* retries_cell = nullptr;
  std::atomic<uint64_t>* retries_total = nullptr;
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point deadline;  // meaningful iff timed
  bool timed = false;
  bool single_pass = false;
};

Status RunWorker(const SharedRun& run, size_t thread_index, uint64_t rng_seed,
                 std::vector<std::string>* trace,
                 std::vector<std::string>* acked) {
  const WorkloadSpec& spec = *run.spec;
  const EngineOptions& options = *run.options;
  SplitMix64 rng(rng_seed);
  WireClient client(options, run.retries_cell, run.retries_total);
  uint64_t ops_done = 0;

  // (for-n node, iterations remaining) — `end` pops back here.
  std::vector<std::pair<const SpecNode*, uint64_t>> loops;

  int node_index = spec.start;
  while (true) {
    // Follow a chain of `end` edges through finished loop frames.
    while (node_index == kNextEnd) {
      auto& [forn, remaining] = loops.back();
      if (--remaining > 0) {
        node_index = forn->body;
      } else {
        node_index = forn->next;
        loops.pop_back();
      }
    }
    const SpecNode& node = spec.nodes[node_index];
    switch (node.type) {
      case SpecNodeType::kFinish:
        if (run.single_pass) return Status::Ok();
        loops.clear();
        node_index = spec.start;
        continue;
      case SpecNodeType::kForN:
        loops.emplace_back(&node, node.count);
        node_index = node.body;
        continue;
      case SpecNodeType::kRandomChoice: {
        double total = 0;
        for (const auto& [weight, target] : node.choices) total += weight;
        // 53 uniform bits, the SplitMix64 double idiom.
        double u = static_cast<double>(rng.Next() >> 11) *
                   (1.0 / 9007199254740992.0) * total;
        node_index = node.choices.back().second;
        for (const auto& [weight, target] : node.choices) {
          if (u < weight) {
            node_index = target;
            break;
          }
          u -= weight;
        }
        continue;
      }
      case SpecNodeType::kThinkTime: {
        NodeRuntime& cells = (*run.nodes)[node_index];
        uint64_t ms = node.think_min_ms;
        if (node.think_max_ms > node.think_min_ms) {
          ms = rng.NextInRange(node.think_min_ms, node.think_max_ms);
        }
        const uint64_t t0 = obs::MonotonicNanos();
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        cells.latency_ns->Record(obs::MonotonicNanos() - t0);
        cells.ops_cell->Add();
        cells.ops.fetch_add(1, std::memory_order_relaxed);
        node_index = node.next;
        continue;
      }
      case SpecNodeType::kEdit:
      case SpecNodeType::kApply:
      case SpecNodeType::kQuery:
        break;  // a client op, handled below
    }

    // Stop checks happen only at client-op boundaries, so an ops quota
    // cuts every worker at exactly the same op count on every run.
    if (options.ops_per_thread > 0 && ops_done >= options.ops_per_thread) {
      return Status::Ok();
    }
    if (run.timed && std::chrono::steady_clock::now() >= run.deadline) {
      return Status::Ok();
    }
    if (options.rate_hz > 0) {
      // Open loop: op k is scheduled at start + k/rate, independent of
      // how long earlier ops took (coordinated-omission-free pacing).
      auto due = run.start + std::chrono::nanoseconds(static_cast<uint64_t>(
                                 static_cast<double>(ops_done) * 1e9 /
                                 options.rate_hz));
      std::this_thread::sleep_until(due);
    }

    NodeRuntime& cells = (*run.nodes)[node_index];
    std::string doc_key;
    std::vector<std::string> frame;
    if (!node.doc_template.empty()) {
      doc_key = Expand(node.doc_template, *run.vars, thread_index, ops_done,
                       rng);
      frame = {"--doc", doc_key};
    }
    if (node.type == SpecNodeType::kEdit) {
      for (const std::string& token : node.script) {
        frame.push_back(
            Expand(token, *run.vars, thread_index, ops_done, rng));
      }
    } else if (node.type == SpecNodeType::kApply) {
      // One script field: expanded lines joined with newlines (the frame
      // separator is 0x1F, so embedded newlines survive the wire).
      std::string script;
      for (const std::string& script_line : node.lines) {
        if (!script.empty()) script.push_back('\n');
        script.append(
            Expand(script_line, *run.vars, thread_index, ops_done, rng));
      }
      frame.push_back("--apply");
      frame.push_back(std::move(script));
    } else {
      frame.push_back("-q");
      frame.push_back(Expand(node.xpath, *run.vars, thread_index, ops_done,
                             rng));
    }
    std::string line;
    if (trace != nullptr || acked != nullptr) {
      line = node.name;
      if (!doc_key.empty()) {
        line += " doc=";
        line += doc_key;
      }
      for (size_t i = doc_key.empty() ? 0 : 2; i < frame.size(); ++i) {
        line += ' ';
        line += frame[i];
      }
    }
    // The trace records the *attempt*, before any outcome: it witnesses
    // the deterministic client-side op sequence, retries and all.
    if (trace != nullptr) trace->push_back(line);

    const uint64_t t0 = obs::MonotonicNanos();
    auto reply = client.Request(frame);
    if (!reply.ok()) return reply.status();
    cells.latency_ns->Record(obs::MonotonicNanos() - t0);
    cells.ops_cell->Add();
    cells.ops.fetch_add(1, std::memory_order_relaxed);
    if (reply->empty() || (*reply)[0] != "ok") {
      cells.errors_cell->Add();
      cells.errors.fetch_add(1, std::memory_order_relaxed);
    } else if (acked != nullptr) {
      // The ack ledger records only what the server acknowledged — the
      // set of ops a failover must preserve.
      acked->push_back(std::move(line));
    }
    ++ops_done;
    node_index = node.next;
  }
}

}  // namespace

common::Result<WorkloadReport> RunWorkload(const WorkloadSpec& spec,
                                           const EngineOptions& options) {
  if (options.threads == 0) {
    return Status::InvalidArgument("workload: --threads must be positive");
  }
  if (options.ops_per_thread > 0 && options.duration_ms > 0) {
    return Status::InvalidArgument(
        "workload: --ops and --duration are mutually exclusive");
  }
  auto vars = BuildVariables(spec, options);
  if (!vars.ok()) return vars.status();
  // Overridden ${choice:...} lists must stay non-empty (the parser only
  // saw the spec's own values).
  for (const SpecNode& node : spec.nodes) {
    auto recheck = [&](const std::string& tpl) -> Status {
      size_t at = 0;
      while ((at = tpl.find("${choice:", at)) != std::string::npos) {
        size_t close = tpl.find('}', at);
        std::string var = tpl.substr(at + 9, close - at - 9);
        if (vars->choice_lists.count(var) == 0) {
          return Status::InvalidArgument(
              "workload: override empties ${choice:" + var + "}");
        }
        at = close;
      }
      return Status::Ok();
    };
    XMLUP_RETURN_NOT_OK(recheck(node.doc_template));
    for (const std::string& token : node.script) {
      XMLUP_RETURN_NOT_OK(recheck(token));
    }
    for (const std::string& script_line : node.lines) {
      XMLUP_RETURN_NOT_OK(recheck(script_line));
    }
    XMLUP_RETURN_NOT_OK(recheck(node.xpath));
  }

  obs::Registry& reg = obs::GlobalMetrics();
  std::vector<NodeRuntime> nodes(spec.nodes.size());
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const SpecNode& node = spec.nodes[i];
    if (node.type != SpecNodeType::kEdit &&
        node.type != SpecNodeType::kApply &&
        node.type != SpecNodeType::kQuery &&
        node.type != SpecNodeType::kThinkTime) {
      continue;
    }
    const std::string base = "workload.node." + node.name;
    nodes[i].latency_ns = reg.GetHistogram(base + ".ns", obs::Unit::kNanos);
    nodes[i].ops_cell = reg.GetCounter(base + ".ops");
    nodes[i].errors_cell = reg.GetCounter(base + ".errors");
  }

  std::atomic<uint64_t> retries_total{0};
  SharedRun run;
  run.spec = &spec;
  run.options = &options;
  run.vars = &*vars;
  run.nodes = &nodes;
  run.retries_cell = reg.GetCounter("workload.retries");
  run.retries_total = &retries_total;
  run.start = std::chrono::steady_clock::now();
  run.timed = options.duration_ms > 0;
  run.deadline = run.start + std::chrono::milliseconds(options.duration_ms);
  run.single_pass = options.ops_per_thread == 0 && options.duration_ms == 0;

  // Thread t's RNG stream depends only on (seed, t): reseeding through
  // one SplitMix64 stream decorrelates neighbouring seeds.
  std::vector<uint64_t> worker_seeds(options.threads);
  SplitMix64 seeder(options.seed);
  for (auto& s : worker_seeds) s = seeder.Next();

  std::vector<std::vector<std::string>> traces(
      options.collect_trace ? options.threads : 0);
  std::vector<std::vector<std::string>> acks(
      options.collect_acks ? options.threads : 0);
  std::vector<Status> outcomes(options.threads);
  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (size_t t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      outcomes[t] = RunWorker(run, t, worker_seeds[t],
                              options.collect_trace ? &traces[t] : nullptr,
                              options.collect_acks ? &acks[t] : nullptr);
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - run.start)
              .count()) /
      1000.0;
  for (const Status& outcome : outcomes) {
    if (!outcome.ok()) return outcome;
  }

  WorkloadReport report;
  report.elapsed_ms = elapsed_ms;
  report.retries_total = retries_total.load();
  report.trace = std::move(traces);
  report.acked = std::move(acks);
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    const SpecNode& node = spec.nodes[i];
    if (nodes[i].latency_ns == nullptr) continue;
    NodeReport nr;
    nr.name = node.name;
    nr.type = std::string(SpecNodeTypeName(node.type));
    nr.ops = nodes[i].ops.load();
    nr.errors = nodes[i].errors.load();
    nr.latency = obs::Snapshot(*nodes[i].latency_ns);
    if (node.type != SpecNodeType::kThinkTime) {
      report.ops_total += nr.ops;
      report.errors_total += nr.errors;
    }
    report.nodes.push_back(std::move(nr));
  }
  report.ops_per_s = elapsed_ms > 0
                         ? static_cast<double>(report.ops_total) /
                               (elapsed_ms / 1000.0)
                         : 0;
  return report;
}

std::string RenderWorkloadJson(const WorkloadSpec& spec,
                               const EngineOptions& options,
                               const WorkloadReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"workload\": \"" << spec.name << "\",\n";
  out << "  \"target\": \"" << options.target << "\",\n";
  out << "  \"threads\": " << options.threads << ",\n";
  out << "  \"seed\": " << options.seed << ",\n";
  const char* mode = options.ops_per_thread > 0
                         ? "ops"
                         : (options.duration_ms > 0 ? "duration"
                                                    : "single-pass");
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"ops_per_thread\": " << options.ops_per_thread << ",\n";
  out << "  \"duration_ms\": " << options.duration_ms << ",\n";
  out << "  \"rate_hz\": " << options.rate_hz << ",\n";
  out << "  \"metrics_enabled\": "
      << (obs::kMetricsEnabled ? "true" : "false") << ",\n";
  out << "  \"elapsed_ms\": " << report.elapsed_ms << ",\n";
  out << "  \"ops_total\": " << report.ops_total << ",\n";
  out << "  \"errors_total\": " << report.errors_total << ",\n";
  out << "  \"retries_total\": " << report.retries_total << ",\n";
  out << "  \"ops_per_s\": " << report.ops_per_s << ",\n";
  out << "  \"nodes\": [\n";
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeReport& node = report.nodes[i];
    out << "    {\"name\": \"" << node.name << "\", \"type\": \""
        << node.type << "\", \"ops\": " << node.ops
        << ", \"errors\": " << node.errors
        << ", \"p50_ns\": " << node.latency.p50
        << ", \"p95_ns\": " << node.latency.p95
        << ", \"p99_ns\": " << node.latency.p99 << "}"
        << (i + 1 < report.nodes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace xmlup::workload
