#ifndef XMLUP_WORKLOAD_ENGINE_ENGINE_H_
#define XMLUP_WORKLOAD_ENGINE_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "observability/metrics.h"
#include "workload/engine/spec.h"

namespace xmlup::workload {

/// How a run decides it is done. Exactly one of `ops_per_thread` and
/// `duration_ms` may be nonzero; with both zero every worker runs the
/// graph start→finish once ("single pass").
///
/// Determinism contract: with `ops_per_thread` set, the client-side op
/// sequence of every worker — node order, document keys, expanded
/// tokens — is a pure function of (spec, seed, thread count). Each
/// worker owns a SplitMix64 seeded from `seed` and its thread index and
/// stops after exactly `ops_per_thread` client ops, so two runs against
/// fresh stores produce bit-identical traces and server-side counters.
/// Duration-based runs are for throughput measurement and are not
/// reproducible op-for-op.
struct EngineOptions {
  /// DialEndpoint spec: a Unix socket path or "tcp:HOST:PORT" — a
  /// single-document server, a corpus shard, or a router.
  std::string target;
  size_t threads = 1;
  uint64_t seed = 1;
  /// Client ops (edit + query frames) per worker; 0 = unlimited.
  uint64_t ops_per_thread = 0;
  /// Wall-clock stop; 0 = no time limit.
  uint64_t duration_ms = 0;
  /// Open-loop pacing: client ops per second per worker. 0 = closed
  /// loop (each worker keeps exactly one frame in flight, as fast as
  /// the server acknowledges).
  double rate_hz = 0.0;
  /// Collect the per-thread client-side op trace (one line per client
  /// op) into the report. The trace is server-independent, so it is the
  /// bit-reproducibility witness.
  bool collect_trace = false;
  /// Variable overrides applied over the spec's `var` lines. Every
  /// override must name a variable the spec defines (the static
  /// template validation stays sound).
  std::vector<std::pair<std::string, std::string>> overrides;
  /// Transport attempts per client op (each attempt is one dial-if-needed
  /// + request). The default keeps the historical behaviour — one redial
  /// per op, then fail the run. Raise it for chaos runs whose target is
  /// allowed to die mid-stream: a failover window is survived by ops
  /// that retry until the promoted primary answers. Retries draw no RNG
  /// and the trace line is emitted before the first attempt, so an
  /// --ops run's trace is bit-identical however many retries any op
  /// needed.
  int op_attempts = 2;
  /// Sleep between attempts: doubles from initial to max. No sleep
  /// before the first attempt.
  uint64_t retry_backoff_initial_ms = 10;
  uint64_t retry_backoff_max_ms = 500;
  /// Treat a router's "routed: shard <i> (...) unavailable: ..." error
  /// reply as retryable within the same attempt budget. Off, it counts
  /// as a server-side error like any other "err" (in a steady-state run
  /// a routed error is a real finding; in a failover run it is the
  /// window itself).
  bool retry_routed_errors = false;
  /// Record every *acknowledged* client op ("ok" reply) per thread into
  /// WorkloadReport::acked, same line shape as the trace. The chaos
  /// suite's ledger: every line here must survive a failover.
  bool collect_acks = false;
};

/// Per-node outcome. Latency percentiles come from the node's
/// obs::Registry bit-width histogram ("workload.node.<name>.ns"), so
/// they are zero in a -DXMLUP_METRICS=OFF build; op and error counts
/// are engine-side and exact in every build.
struct NodeReport {
  std::string name;
  std::string type;
  uint64_t ops = 0;
  uint64_t errors = 0;
  obs::HistogramSnapshot latency;  ///< nanoseconds
};

struct WorkloadReport {
  uint64_t ops_total = 0;     ///< client ops (edit + query frames)
  uint64_t errors_total = 0;  ///< "err" replies across client nodes
  uint64_t retries_total = 0;  ///< transport/routed retries across workers
  double elapsed_ms = 0;
  double ops_per_s = 0;
  /// edit/query/think-time nodes in spec order (control nodes —
  /// random-choice, for-n, finish — have no operation to measure).
  std::vector<NodeReport> nodes;
  /// Per-thread client op traces (EngineOptions::collect_trace).
  std::vector<std::vector<std::string>> trace;
  /// Per-thread acknowledged-op ledgers (EngineOptions::collect_acks).
  std::vector<std::vector<std::string>> acked;
};

/// Runs `spec` against `options.target` with `options.threads` workers,
/// each holding one persistent wire-protocol connection (redialed with
/// backoff up to `op_attempts` per op). Server-side "err" replies are
/// counted per node and the run continues; transport failure after the
/// attempt budget fails the whole run. Per-node latency is recorded into
/// the global
/// obs::Registry ("workload.node.<name>.ns" plus ".ops"/".errors"
/// counters), alongside the engine-side exact counts in the report.
common::Result<WorkloadReport> RunWorkload(const WorkloadSpec& spec,
                                           const EngineOptions& options);

/// Renders the report as the BENCH_workload.json document: run
/// configuration, totals, throughput, and per-node p50/p95/p99.
std::string RenderWorkloadJson(const WorkloadSpec& spec,
                               const EngineOptions& options,
                               const WorkloadReport& report);

}  // namespace xmlup::workload

#endif  // XMLUP_WORKLOAD_ENGINE_ENGINE_H_
