#include "workload/engine/spec.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "concurrency/update.h"
#include "updates/script.h"
#include "xpath/parser.h"

namespace xmlup::workload {

namespace {

using common::Result;
using common::Status;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// One-line spec-quoting diagnostic: every parse/validation error names
/// the line and repeats it, so a failing `workload check` is actionable
/// from the message alone.
Status SpecError(size_t line_no, std::string_view line_text,
                 const std::string& what) {
  std::ostringstream out;
  out << "spec line " << line_no << ": " << what << " in \""
      << Trim(line_text) << "\"";
  return Status::ParseError(out.str());
}

/// Splits a field value into whitespace-separated tokens; double quotes
/// group a token containing spaces ("bought used"). No escape sequences
/// — the wire grammar never needs a literal double quote.
Result<std::vector<std::string>> SplitTokens(std::string_view text,
                                             size_t line_no,
                                             std::string_view line_text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    std::string token;
    if (text[i] == '"') {
      size_t close = text.find('"', i + 1);
      if (close == std::string_view::npos) {
        return SpecError(line_no, line_text, "unterminated quote");
      }
      token.assign(text, i + 1, close - i - 1);
      i = close + 1;
    } else {
      size_t end = i;
      while (end < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      token.assign(text, i, end - i);
      i = end;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  std::string copy(text);
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

bool ParseWeight(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string copy(text);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

/// An unresolved node reference (next/do/choice target), kept with its
/// source line so a dangling name is reported against the line that
/// wrote it.
struct NodeRef {
  size_t node_index;
  enum class Kind { kNext, kBody, kChoice } kind;
  size_t choice_index = 0;
  std::string target;
  size_t line_no;
  std::string line_text;
};

/// Replaces every ${...} reference with "1" so the edit script can be
/// structurally checked by the real action-grammar parser before any
/// traffic is generated (flag shape, node types, -n/-v requirements).
std::string NeutralizeTemplates(std::string_view tpl) {
  std::string out;
  size_t i = 0;
  while (i < tpl.size()) {
    if (tpl[i] == '$' && i + 1 < tpl.size() && tpl[i + 1] == '{') {
      size_t close = tpl.find('}', i + 2);
      if (close == std::string_view::npos) {
        out.append(tpl.substr(i));
        break;
      }
      out.push_back('1');
      i = close + 1;
    } else {
      out.push_back(tpl[i]);
      ++i;
    }
  }
  return out;
}

bool HasTemplate(std::string_view text) {
  return text.find("${") != std::string_view::npos;
}

}  // namespace

std::string_view SpecNodeTypeName(SpecNodeType type) {
  switch (type) {
    case SpecNodeType::kEdit:
      return "edit";
    case SpecNodeType::kApply:
      return "apply";
    case SpecNodeType::kQuery:
      return "query";
    case SpecNodeType::kRandomChoice:
      return "random-choice";
    case SpecNodeType::kForN:
      return "for-n";
    case SpecNodeType::kThinkTime:
      return "think-time";
    case SpecNodeType::kFinish:
      return "finish";
  }
  return "?";
}

const std::string* WorkloadSpec::FindVariable(std::string_view var) const {
  const std::string* found = nullptr;
  for (const auto& [name, value] : variables) {
    if (name == var) found = &value;
  }
  return found;
}

common::Status ValidateTemplate(const WorkloadSpec& spec,
                                std::string_view tpl) {
  size_t i = 0;
  while (i < tpl.size()) {
    if (tpl[i] != '$' || i + 1 >= tpl.size() || tpl[i + 1] != '{') {
      ++i;
      continue;
    }
    size_t close = tpl.find('}', i + 2);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated ${ in template '" +
                                std::string(tpl) + "'");
    }
    std::string_view ref = tpl.substr(i + 2, close - i - 2);
    if (ref == "thread" || ref == "op") {
      // always defined
    } else if (ref.rfind("rand:", 0) == 0) {
      uint64_t bound = 0;
      if (!ParseUint(ref.substr(5), &bound) || bound == 0) {
        return Status::ParseError("${rand:N} needs a positive integer in '" +
                                  std::string(tpl) + "'");
      }
    } else if (ref.rfind("choice:", 0) == 0) {
      const std::string* value = spec.FindVariable(ref.substr(7));
      if (value == nullptr || Trim(*value).empty()) {
        return Status::ParseError(
            "${choice:...} names an undefined or empty variable in '" +
            std::string(tpl) + "'");
      }
    } else {
      if (spec.FindVariable(ref) == nullptr) {
        return Status::ParseError("undefined variable ${" + std::string(ref) +
                                  "} in '" + std::string(tpl) + "'");
      }
    }
    i = close + 1;
  }
  return Status::Ok();
}

common::Result<WorkloadSpec> ParseWorkloadSpec(std::string_view text) {
  WorkloadSpec spec;
  std::vector<NodeRef> refs;
  std::map<std::string, size_t> by_name;
  std::string start_name;
  size_t start_line = 0;
  std::string start_line_text;

  SpecNode* current = nullptr;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') {
      if (eol == text.size()) break;
      continue;
    }
    const std::string line_text(line);

    size_t space = line.find_first_of(" \t");
    std::string_view keyword = line.substr(0, space);
    std::string_view rest =
        space == std::string_view::npos ? "" : Trim(line.substr(space + 1));

    if (keyword == "workload") {
      spec.name = std::string(rest);
      current = nullptr;
    } else if (keyword == "var") {
      size_t name_end = rest.find_first_of(" \t=");
      if (rest.empty() || name_end == std::string_view::npos) {
        return SpecError(line_no, line_text, "var needs a name and a value");
      }
      // Both `var k = v` and `var k v` are accepted; the `=` is sugar.
      std::string_view value = Trim(rest.substr(name_end));
      if (!value.empty() && value.front() == '=') {
        value = Trim(value.substr(1));
      }
      if (value.empty()) {
        return SpecError(line_no, line_text, "var needs a name and a value");
      }
      spec.variables.emplace_back(std::string(rest.substr(0, name_end)),
                                  std::string(value));
      current = nullptr;
    } else if (keyword == "start") {
      if (rest.empty()) {
        return SpecError(line_no, line_text, "start needs a node name");
      }
      start_name = std::string(rest);
      start_line = line_no;
      start_line_text = line_text;
      current = nullptr;
    } else if (keyword == "node") {
      auto parts = SplitTokens(rest, line_no, line_text);
      if (!parts.ok()) return parts.status();
      if (parts->size() != 2) {
        return SpecError(line_no, line_text, "node needs a name and a type");
      }
      const std::string& name = (*parts)[0];
      const std::string& type_name = (*parts)[1];
      if (name == "end" || name == "finish") {
        return SpecError(line_no, line_text,
                         "node name '" + name + "' is reserved");
      }
      if (by_name.count(name) != 0) {
        return SpecError(line_no, line_text, "duplicate node '" + name + "'");
      }
      SpecNode node;
      node.name = name;
      node.line = line_no;
      node.line_text = line_text;
      if (type_name == "edit") {
        node.type = SpecNodeType::kEdit;
      } else if (type_name == "apply") {
        node.type = SpecNodeType::kApply;
      } else if (type_name == "query") {
        node.type = SpecNodeType::kQuery;
      } else if (type_name == "random-choice") {
        node.type = SpecNodeType::kRandomChoice;
      } else if (type_name == "for-n") {
        node.type = SpecNodeType::kForN;
      } else if (type_name == "think-time") {
        node.type = SpecNodeType::kThinkTime;
      } else if (type_name == "finish") {
        node.type = SpecNodeType::kFinish;
      } else {
        return SpecError(line_no, line_text,
                         "unknown node type '" + type_name + "'");
      }
      by_name[name] = spec.nodes.size();
      spec.nodes.push_back(std::move(node));
      current = &spec.nodes.back();
    } else {
      // A field line: belongs to the node block being declared.
      if (current == nullptr) {
        return SpecError(line_no, line_text,
                         "field outside a node block (unknown directive '" +
                             std::string(keyword) + "')");
      }
      const size_t node_index = static_cast<size_t>(current - &spec.nodes[0]);
      const SpecNodeType type = current->type;
      if (keyword == "next" &&
          (type == SpecNodeType::kEdit || type == SpecNodeType::kApply ||
           type == SpecNodeType::kQuery || type == SpecNodeType::kForN ||
           type == SpecNodeType::kThinkTime)) {
        if (rest.empty()) {
          return SpecError(line_no, line_text, "next needs a node name");
        }
        refs.push_back({node_index, NodeRef::Kind::kNext, 0,
                        std::string(rest), line_no, line_text});
      } else if (keyword == "doc" && (type == SpecNodeType::kEdit ||
                                      type == SpecNodeType::kApply ||
                                      type == SpecNodeType::kQuery)) {
        if (rest.empty()) {
          return SpecError(line_no, line_text, "doc needs a key template");
        }
        current->doc_template = std::string(rest);
      } else if (keyword == "script" && type == SpecNodeType::kEdit) {
        auto tokens = SplitTokens(rest, line_no, line_text);
        if (!tokens.ok()) return tokens.status();
        if (tokens->empty()) {
          return SpecError(line_no, line_text, "script needs action tokens");
        }
        current->script = std::move(*tokens);
      } else if (keyword == "line" && type == SpecNodeType::kApply) {
        // The rest of the line verbatim: the update-script grammar owns
        // its own tokenization (quotes, comments, `let`).
        if (rest.empty()) {
          return SpecError(line_no, line_text, "line needs script text");
        }
        current->lines.emplace_back(rest);
      } else if (keyword == "xpath" && type == SpecNodeType::kQuery) {
        if (rest.empty()) {
          return SpecError(line_no, line_text, "xpath needs an expression");
        }
        current->xpath = std::string(rest);
      } else if (keyword == "ms" && type == SpecNodeType::kThinkTime) {
        auto parts = SplitTokens(rest, line_no, line_text);
        if (!parts.ok()) return parts.status();
        uint64_t lo = 0, hi = 0;
        if (parts->size() == 1 && ParseUint((*parts)[0], &lo)) {
          hi = lo;
        } else if (parts->size() == 2 && ParseUint((*parts)[0], &lo) &&
                   ParseUint((*parts)[1], &hi) && lo <= hi) {
          // uniform range
        } else {
          return SpecError(line_no, line_text,
                           "ms needs <n> or <lo> <hi> (lo <= hi)");
        }
        current->think_min_ms = lo;
        current->think_max_ms = hi;
      } else if (keyword == "count" && type == SpecNodeType::kForN) {
        uint64_t count = 0;
        if (!ParseUint(rest, &count) || count == 0) {
          return SpecError(line_no, line_text,
                           "count needs a positive integer");
        }
        current->count = count;
      } else if (keyword == "do" && type == SpecNodeType::kForN) {
        if (rest.empty()) {
          return SpecError(line_no, line_text, "do needs a node name");
        }
        refs.push_back({node_index, NodeRef::Kind::kBody, 0,
                        std::string(rest), line_no, line_text});
      } else if (keyword == "choice" && type == SpecNodeType::kRandomChoice) {
        auto parts = SplitTokens(rest, line_no, line_text);
        if (!parts.ok()) return parts.status();
        double weight = 0;
        if (parts->size() != 2 || !ParseWeight((*parts)[0], &weight) ||
            weight < 0) {
          return SpecError(line_no, line_text,
                           "choice needs <weight >= 0> <node>");
        }
        refs.push_back({node_index, NodeRef::Kind::kChoice,
                        current->choices.size(), (*parts)[1], line_no,
                        line_text});
        current->choices.emplace_back(weight, -1);
      } else {
        return SpecError(line_no, line_text,
                         "unknown field '" + std::string(keyword) +
                             "' for node type '" +
                             std::string(SpecNodeTypeName(type)) + "'");
      }
    }
    if (eol == text.size()) break;
  }

  // The implicit finish node: `next finish` always has a target, exactly
  // as Genny's implicit absorbing Finish state.
  {
    SpecNode finish;
    finish.name = "finish";
    finish.type = SpecNodeType::kFinish;
    by_name["finish"] = spec.nodes.size();
    spec.nodes.push_back(std::move(finish));
  }

  if (spec.nodes.size() == 1) {
    return Status::ParseError("spec declares no nodes");
  }

  // Required fields per type.
  for (const SpecNode& node : spec.nodes) {
    switch (node.type) {
      case SpecNodeType::kEdit:
        if (node.script.empty()) {
          return SpecError(node.line, node.line_text,
                           "edit node '" + node.name + "' needs a script");
        }
        break;
      case SpecNodeType::kApply:
        if (node.lines.empty()) {
          return SpecError(node.line, node.line_text,
                           "apply node '" + node.name +
                               "' needs at least one line");
        }
        break;
      case SpecNodeType::kQuery:
        if (node.xpath.empty()) {
          return SpecError(node.line, node.line_text,
                           "query node '" + node.name + "' needs an xpath");
        }
        break;
      case SpecNodeType::kForN:
        if (node.count == 0) {
          return SpecError(node.line, node.line_text,
                           "for-n node '" + node.name + "' needs a count");
        }
        break;
      case SpecNodeType::kRandomChoice:
        if (node.choices.empty()) {
          return SpecError(node.line, node.line_text,
                           "random-choice node '" + node.name +
                               "' needs at least one choice");
        }
        break;
      case SpecNodeType::kThinkTime:
      case SpecNodeType::kFinish:
        break;
    }
  }

  // Resolve references; `end` is legal only as a `next` target.
  for (const NodeRef& ref : refs) {
    SpecNode& node = spec.nodes[ref.node_index];
    int resolved;
    if (ref.target == "end") {
      if (ref.kind != NodeRef::Kind::kNext) {
        return SpecError(ref.line_no, ref.line_text,
                         "'end' is only valid as a next target");
      }
      resolved = kNextEnd;
    } else {
      auto it = by_name.find(ref.target);
      if (it == by_name.end()) {
        return SpecError(ref.line_no, ref.line_text,
                         "dangling reference: node '" + ref.target +
                             "' is not defined");
      }
      resolved = static_cast<int>(it->second);
    }
    switch (ref.kind) {
      case NodeRef::Kind::kNext:
        node.next = resolved;
        break;
      case NodeRef::Kind::kBody:
        node.body = resolved;
        break;
      case NodeRef::Kind::kChoice:
        node.choices[ref.choice_index].second = resolved;
        break;
    }
  }

  // Every non-terminal node must have somewhere to go.
  for (const SpecNode& node : spec.nodes) {
    if ((node.type == SpecNodeType::kEdit ||
         node.type == SpecNodeType::kApply ||
         node.type == SpecNodeType::kQuery ||
         node.type == SpecNodeType::kThinkTime) &&
        node.next == -1) {
      return SpecError(node.line, node.line_text,
                       "node '" + node.name + "' needs a next");
    }
    if (node.type == SpecNodeType::kForN &&
        (node.body == -1 || node.next == -1)) {
      return SpecError(node.line, node.line_text,
                       "for-n node '" + node.name + "' needs do and next");
    }
  }

  // Weights must normalize to a probability distribution.
  for (const SpecNode& node : spec.nodes) {
    if (node.type != SpecNodeType::kRandomChoice) continue;
    double total = 0;
    for (const auto& [weight, target] : node.choices) total += weight;
    if (!(total > 0)) {
      return SpecError(node.line, node.line_text,
                       "random-choice node '" + node.name +
                           "' weights are not normalizable (sum is 0)");
    }
  }

  // Resolve the start node.
  if (start_name.empty()) {
    spec.start = 0;
  } else {
    auto it = by_name.find(start_name);
    if (it == by_name.end() || start_name == "end") {
      return SpecError(start_line, start_line_text,
                       "dangling reference: start node '" + start_name +
                           "' is not defined");
    }
    spec.start = static_cast<int>(it->second);
  }

  // Reachability sweep from start, tracking whether each node is reached
  // inside a for-n body. Catches the two whole-graph defects: a finish
  // no execution can reach, and an `end` with no enclosing loop.
  {
    std::set<std::pair<int, bool>> visited;
    std::vector<std::pair<int, bool>> frontier = {{spec.start, false}};
    bool finish_reached = false;
    while (!frontier.empty()) {
      auto [index, in_body] = frontier.back();
      frontier.pop_back();
      if (!visited.insert({index, in_body}).second) continue;
      const SpecNode& node = spec.nodes[index];
      auto follow = [&](int target, bool body_flag) -> Status {
        if (target == kNextEnd) {
          if (!body_flag) {
            return SpecError(node.line, node.line_text,
                             "node '" + node.name +
                                 "' reaches 'end' outside any for-n body");
          }
          return Status::Ok();  // returns to the loop; loop exit is `next`
        }
        frontier.emplace_back(target, body_flag);
        return Status::Ok();
      };
      switch (node.type) {
        case SpecNodeType::kFinish:
          finish_reached = true;
          break;
        case SpecNodeType::kEdit:
        case SpecNodeType::kApply:
        case SpecNodeType::kQuery:
        case SpecNodeType::kThinkTime:
          XMLUP_RETURN_NOT_OK(follow(node.next, in_body));
          break;
        case SpecNodeType::kForN:
          XMLUP_RETURN_NOT_OK(follow(node.body, true));
          XMLUP_RETURN_NOT_OK(follow(node.next, in_body));
          break;
        case SpecNodeType::kRandomChoice:
          for (const auto& [weight, target] : node.choices) {
            XMLUP_RETURN_NOT_OK(follow(target, in_body));
          }
          break;
      }
    }
    if (!finish_reached) {
      const SpecNode& start_node = spec.nodes[spec.start];
      return SpecError(start_node.line, start_node.line_text,
                       "no finish node is reachable from start '" +
                           start_node.name + "'");
    }
  }

  // Static template and grammar checks: every ${...} must be resolvable,
  // every edit script must parse under the real action grammar (with
  // templates neutralized), and a template-free query xpath must parse.
  for (const SpecNode& node : spec.nodes) {
    auto check_template = [&](const std::string& tpl) -> Status {
      Status status = ValidateTemplate(spec, tpl);
      if (!status.ok()) {
        return SpecError(node.line, node.line_text, status.message());
      }
      return Status::Ok();
    };
    if (!node.doc_template.empty()) {
      XMLUP_RETURN_NOT_OK(check_template(node.doc_template));
    }
    if (node.type == SpecNodeType::kEdit) {
      std::vector<std::string> neutral;
      for (const std::string& token : node.script) {
        XMLUP_RETURN_NOT_OK(check_template(token));
        neutral.push_back(NeutralizeTemplates(token));
      }
      auto parsed = concurrency::ParseActionTokens(neutral);
      if (!parsed.ok()) {
        return SpecError(node.line, node.line_text,
                         "edit node '" + node.name + "' script: " +
                             parsed.status().ToString());
      }
    }
    if (node.type == SpecNodeType::kApply) {
      std::string neutral;
      for (const std::string& script_line : node.lines) {
        XMLUP_RETURN_NOT_OK(check_template(script_line));
        if (!neutral.empty()) neutral.push_back('\n');
        neutral.append(NeutralizeTemplates(script_line));
      }
      auto compiled = updates::ParseUpdateScript(neutral, "script");
      if (!compiled.ok()) {
        return SpecError(node.line, node.line_text,
                         "apply node '" + node.name + "' script: " +
                             compiled.status().ToString());
      }
    }
    if (node.type == SpecNodeType::kQuery) {
      XMLUP_RETURN_NOT_OK(check_template(node.xpath));
      if (!HasTemplate(node.xpath)) {
        auto parsed = xpath::ParseUnion(node.xpath);
        if (!parsed.ok()) {
          return SpecError(node.line, node.line_text,
                           "query node '" + node.name + "' xpath: " +
                               parsed.status().ToString());
        }
      }
    }
  }

  return spec;
}

}  // namespace xmlup::workload
