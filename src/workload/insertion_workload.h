#ifndef XMLUP_WORKLOAD_INSERTION_WORKLOAD_H_
#define XMLUP_WORKLOAD_INSERTION_WORKLOAD_H_

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"
#include "xml/tree.h"

namespace xmlup::workload {

/// The three update scenarios the survey's Compact Encoding property names
/// (§5.1) plus directed append/prepend probes.
enum class InsertPattern {
  /// Each insertion picks a random element and a random gap among its
  /// children.
  kRandom,
  /// Gaps are chosen uniformly across the whole document (round-robin over
  /// a shuffled enumeration of gaps).
  kUniform,
  /// Frequent insertions at a fixed position: always immediately before
  /// the same anchor node, so every new node lands between the previous
  /// insertion and the anchor — the worst case for label growth.
  kSkewedFixed,
  /// Always append after the last child of a fixed parent.
  kAppend,
  /// Always insert before the first child of a fixed parent.
  kPrepend,
};

std::string_view InsertPatternName(InsertPattern pattern);

/// Produces a stream of insertion positions for a given pattern against an
/// evolving tree. Deterministic in the seed.
class InsertionPlanner {
 public:
  InsertionPlanner(InsertPattern pattern, uint64_t seed)
      : pattern_(pattern), rng_(seed) {}

  struct Position {
    xml::NodeId parent = xml::kInvalidNode;
    /// Insert immediately before this child; kInvalidNode appends.
    xml::NodeId before = xml::kInvalidNode;
  };

  /// Picks the next insertion position for the current tree state.
  common::Result<Position> Next(const xml::Tree& tree);

 private:
  common::Result<Position> FixedAnchor(const xml::Tree& tree);

  InsertPattern pattern_;
  common::SplitMix64 rng_;
  xml::NodeId anchor_ = xml::kInvalidNode;
  xml::NodeId fixed_parent_ = xml::kInvalidNode;
};

}  // namespace xmlup::workload

#endif  // XMLUP_WORKLOAD_INSERTION_WORKLOAD_H_
