#ifndef XMLUP_XPATH_EVALUATOR_H_
#define XMLUP_XPATH_EVALUATOR_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/labeled_document.h"
#include "xpath/ast.h"

namespace xmlup::xpath {

/// How axes are resolved during evaluation.
enum class EvalMode {
  /// Resolve every axis from node labels alone (the paper's "XPath
  /// Evaluations" property in action). Axes that need parent or sibling
  /// information fail with kUnsupported when the scheme does not encode
  /// it — exactly the Partial grade of Figure 7.
  kLabels,
  /// Resolve axes from tree structure (ground truth; used to validate the
  /// label-based evaluation and as the fallback an encoding scheme's
  /// auxiliary tables would provide).
  kTree,
};

/// Evaluates XPath location paths against a labelled document. Result
/// node sets are returned in document order with duplicates removed, as
/// the XPath data model requires (§2.2 of the paper: "node labels must be
/// unique because XPath requires all its operators to eliminate duplicate
/// nodes ... based on node identity" and results are in document order).
class XPathEvaluator {
 public:
  /// `use_index` selects the index-backed axis path for label mode
  /// (binary search over the document's cached order keys); pass false to
  /// force the naive full-scan path, the oracle the benchmarks and
  /// differential tests compare against.
  XPathEvaluator(const core::LabeledDocument* doc, EvalMode mode,
                 bool use_index = true)
      : doc_(doc), mode_(mode), use_index_(use_index) {}

  /// Parses and evaluates `expression` with the document root as context.
  /// There is no separate document node in the tree model: absolute paths
  /// start at the root *element*, so "/title" selects the root's <title>
  /// child.
  common::Result<std::vector<xml::NodeId>> Query(
      std::string_view expression) const;

  /// Evaluates a parsed path from an explicit context node.
  common::Result<std::vector<xml::NodeId>> Evaluate(
      const LocationPath& path, xml::NodeId context) const;

  /// Convenience: the string-value (concatenated text) of a node.
  std::string StringValue(xml::NodeId node) const;

  /// Applies a predicate comparison: numeric when both sides parse as
  /// numbers, string comparison otherwise.
  static bool CompareValues(const std::string& lhs, CompareOp op,
                            const std::string& rhs);

 private:
  common::Result<std::vector<xml::NodeId>> EvaluateStep(
      const Step& step, const std::vector<xml::NodeId>& context) const;
  common::Result<std::vector<xml::NodeId>> AxisNodes(Axis axis,
                                                     xml::NodeId node) const;
  common::Result<std::vector<xml::NodeId>> AxisNodesFromLabels(
      Axis axis, xml::NodeId node) const;
  std::vector<xml::NodeId> AxisNodesFromTree(Axis axis,
                                             xml::NodeId node) const;
  bool MatchesTest(const NodeTest& test, Axis axis, xml::NodeId node) const;
  common::Result<bool> MatchesPredicate(const Predicate& pred,
                                        xml::NodeId node, size_t position,
                                        size_t set_size) const;
  std::vector<xml::NodeId> SortUnique(std::vector<xml::NodeId> nodes) const;

  const core::LabeledDocument* doc_;
  EvalMode mode_;
  bool use_index_;
};

}  // namespace xmlup::xpath

#endif  // XMLUP_XPATH_EVALUATOR_H_
