#include "xpath/evaluator.h"

#include <algorithm>
#include <cstdlib>

#include "core/axis_evaluator.h"
#include "xpath/parser.h"

namespace xmlup::xpath {

using common::Result;
using common::Status;
using xml::NodeId;
using xml::NodeKind;

Result<std::vector<NodeId>> XPathEvaluator::Query(
    std::string_view expression) const {
  XMLUP_ASSIGN_OR_RETURN(UnionExpr expr, ParseUnion(expression));
  if (!doc_->tree().has_root()) {
    return Status::InvalidArgument("empty document");
  }
  std::vector<NodeId> merged;
  for (const LocationPath& path : expr.branches) {
    XMLUP_ASSIGN_OR_RETURN(std::vector<NodeId> branch,
                           Evaluate(path, doc_->tree().root()));
    merged.insert(merged.end(), branch.begin(), branch.end());
  }
  return SortUnique(std::move(merged));
}

std::string XPathEvaluator::StringValue(NodeId node) const {
  const xml::Tree& tree = doc_->tree();
  switch (tree.kind(node)) {
    case NodeKind::kText:
    case NodeKind::kAttribute:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      return tree.value(node);
    case NodeKind::kElement: {
      // Concatenated descendant text.
      std::string out;
      std::vector<NodeId> stack = {node};
      // Depth-first in document order.
      std::vector<NodeId> ordered;
      while (!stack.empty()) {
        NodeId cur = stack.back();
        stack.pop_back();
        ordered.push_back(cur);
        std::vector<NodeId> kids = tree.Children(cur);
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          stack.push_back(*it);
        }
      }
      for (NodeId n : ordered) {
        if (tree.kind(n) == NodeKind::kText) out += tree.value(n);
      }
      return out;
    }
  }
  return "";
}

bool XPathEvaluator::CompareValues(const std::string& lhs, CompareOp op,
                                   const std::string& rhs) {
  // Numeric comparison when both sides parse fully as numbers; string
  // comparison otherwise (XPath 1.0 attribute-comparison idiom).
  char* lhs_end = nullptr;
  char* rhs_end = nullptr;
  double lv = std::strtod(lhs.c_str(), &lhs_end);
  double rv = std::strtod(rhs.c_str(), &rhs_end);
  bool numeric = !lhs.empty() && !rhs.empty() && *lhs_end == '\0' &&
                 *rhs_end == '\0';
  int cmp;
  if (numeric) {
    cmp = lv < rv ? -1 : (lv > rv ? 1 : 0);
  } else {
    int c = lhs.compare(rhs);
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::vector<NodeId> XPathEvaluator::SortUnique(
    std::vector<NodeId> nodes) const {
  const labels::LabelingScheme& scheme = doc_->scheme();
  if (mode_ == EvalMode::kLabels && use_index_) {
    // Cached memcmp keys replace virtual Compare in the merge sort.
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return doc_->order_key(a) < doc_->order_key(b);
    });
  } else if (mode_ == EvalMode::kLabels) {
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return scheme.Compare(doc_->label(a), doc_->label(b)) < 0;
    });
  } else {
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return doc_->tree().CompareDocumentOrder(a, b) < 0;
    });
  }
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

Result<std::vector<NodeId>> XPathEvaluator::Evaluate(
    const LocationPath& path, NodeId context) const {
  std::vector<NodeId> current;
  if (path.absolute) {
    current.push_back(doc_->tree().root());
  } else {
    current.push_back(context);
  }
  for (const Step& step : path.steps) {
    XMLUP_ASSIGN_OR_RETURN(current, EvaluateStep(step, current));
    if (current.empty()) break;
  }
  return current;
}

Result<std::vector<NodeId>> XPathEvaluator::EvaluateStep(
    const Step& step, const std::vector<NodeId>& context) const {
  std::vector<NodeId> produced;
  for (NodeId node : context) {
    XMLUP_ASSIGN_OR_RETURN(std::vector<NodeId> axis_nodes,
                           AxisNodes(step.axis, node));
    // Node-test filter, preserving axis order (needed for positional
    // predicates, which count within this context node's axis result).
    std::vector<NodeId> tested;
    for (NodeId n : axis_nodes) {
      if (MatchesTest(step.test, step.axis, n)) tested.push_back(n);
    }
    // Predicates, applied in sequence.
    for (const Predicate& pred : step.predicates) {
      std::vector<NodeId> kept;
      for (size_t i = 0; i < tested.size(); ++i) {
        XMLUP_ASSIGN_OR_RETURN(
            bool keep, MatchesPredicate(pred, tested[i], i + 1,
                                        tested.size()));
        if (keep) kept.push_back(tested[i]);
      }
      tested = std::move(kept);
    }
    produced.insert(produced.end(), tested.begin(), tested.end());
  }
  return SortUnique(std::move(produced));
}

Result<std::vector<NodeId>> XPathEvaluator::AxisNodes(Axis axis,
                                                      NodeId node) const {
  if (mode_ == EvalMode::kTree) return AxisNodesFromTree(axis, node);
  return AxisNodesFromLabels(axis, node);
}

std::vector<NodeId> XPathEvaluator::AxisNodesFromTree(Axis axis,
                                                      NodeId node) const {
  const xml::Tree& tree = doc_->tree();
  std::vector<NodeId> out;
  auto subtree = [&](NodeId top, bool include_top) {
    std::vector<NodeId> stack = {top};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      if (cur != top || include_top) out.push_back(cur);
      std::vector<NodeId> kids = tree.Children(cur);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  };
  switch (axis) {
    case Axis::kSelf:
      out.push_back(node);
      break;
    case Axis::kChild:
    case Axis::kAttribute:
      out = tree.Children(node);
      break;
    case Axis::kParent:
      if (tree.parent(node) != xml::kInvalidNode) {
        out.push_back(tree.parent(node));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Reverse axes are produced in proximity order (nearest first) so
      // positional predicates count as XPath specifies; the final node
      // set is re-sorted into document order afterwards.
      if (axis == Axis::kAncestorOrSelf) out.push_back(node);
      for (NodeId cur = tree.parent(node); cur != xml::kInvalidNode;
           cur = tree.parent(cur)) {
        out.push_back(cur);
      }
      break;
    }
    case Axis::kDescendant:
      subtree(node, /*include_top=*/false);
      break;
    case Axis::kDescendantOrSelf:
      subtree(node, /*include_top=*/true);
      break;
    case Axis::kFollowingSibling:
      for (NodeId cur = tree.next_sibling(node); cur != xml::kInvalidNode;
           cur = tree.next_sibling(cur)) {
        out.push_back(cur);
      }
      break;
    case Axis::kPrecedingSibling:
      // Proximity order (nearest sibling first).
      for (NodeId cur = tree.prev_sibling(node); cur != xml::kInvalidNode;
           cur = tree.prev_sibling(cur)) {
        out.push_back(cur);
      }
      break;
    case Axis::kFollowing:
    case Axis::kPreceding: {
      std::vector<NodeId> order = tree.PreorderNodes();
      size_t self = 0;
      while (self < order.size() && order[self] != node) ++self;
      for (size_t i = 0; i < order.size(); ++i) {
        if (axis == Axis::kFollowing && i > self &&
            !tree.IsAncestor(node, order[i])) {
          out.push_back(order[i]);
        }
        if (axis == Axis::kPreceding && i < self &&
            !tree.IsAncestor(order[i], node)) {
          out.push_back(order[i]);
        }
      }
      // Proximity order for the reverse axis.
      if (axis == Axis::kPreceding) std::reverse(out.begin(), out.end());
      break;
    }
  }
  return out;
}

Result<std::vector<NodeId>> XPathEvaluator::AxisNodesFromLabels(
    Axis axis, NodeId node) const {
  const labels::SchemeTraits& traits = doc_->scheme().traits();
  core::AxisEvaluator eval(doc_, use_index_);
  switch (axis) {
    case Axis::kSelf:
      return std::vector<NodeId>{node};
    case Axis::kChild:
    case Axis::kAttribute:
      return eval.Children(node);
    case Axis::kParent:
      return eval.Parent(node);
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // AxisEvaluator returns document order; reverse into proximity
      // order for positional predicates (re-sorted at step end).
      std::vector<NodeId> out = eval.Ancestors(node);
      std::reverse(out.begin(), out.end());
      if (axis == Axis::kAncestorOrSelf) {
        out.insert(out.begin(), node);
      }
      return out;
    }
    case Axis::kDescendant:
      return eval.Descendants(node);
    case Axis::kDescendantOrSelf: {
      std::vector<NodeId> out = eval.Descendants(node);
      out.insert(out.begin(), node);
      return out;
    }
    case Axis::kFollowing:
      return eval.Following(node);
    case Axis::kPreceding: {
      std::vector<NodeId> out = eval.Preceding(node);
      std::reverse(out.begin(), out.end());  // Proximity order.
      return out;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      if (!traits.supports_sibling) {
        return Status::Unsupported(traits.display_name +
                                   " cannot evaluate sibling axes from "
                                   "labels");
      }
      XMLUP_ASSIGN_OR_RETURN(std::vector<NodeId> siblings,
                             eval.Siblings(node));
      std::vector<NodeId> out;
      const labels::LabelingScheme& scheme = doc_->scheme();
      for (NodeId s : siblings) {
        int cmp = scheme.Compare(doc_->label(s), doc_->label(node));
        if (axis == Axis::kFollowingSibling ? cmp > 0 : cmp < 0) {
          out.push_back(s);
        }
      }
      if (axis == Axis::kPrecedingSibling) {
        std::reverse(out.begin(), out.end());  // Proximity order.
      }
      return out;
    }
  }
  return Status::Internal("unknown axis");
}

bool XPathEvaluator::MatchesTest(const NodeTest& test, Axis axis,
                                 NodeId node) const {
  const xml::Tree& tree = doc_->tree();
  NodeKind kind = tree.kind(node);
  switch (test.kind) {
    case NodeTestKind::kNode:
      return true;
    case NodeTestKind::kText:
      return kind == NodeKind::kText;
    case NodeTestKind::kComment:
      return kind == NodeKind::kComment;
    case NodeTestKind::kName: {
      // The principal node kind of the attribute axis is attributes;
      // of every other axis, elements.
      NodeKind principal = axis == Axis::kAttribute ? NodeKind::kAttribute
                                                    : NodeKind::kElement;
      if (kind != principal) return false;
      return test.name == "*" || tree.name(node) == test.name;
    }
  }
  return false;
}

Result<bool> XPathEvaluator::MatchesPredicate(const Predicate& pred,
                                              NodeId node, size_t position,
                                              size_t set_size) const {
  switch (pred.kind) {
    case Predicate::Kind::kPosition:
      return position == static_cast<size_t>(pred.position);
    case Predicate::Kind::kLast:
      return position == set_size;
    case Predicate::Kind::kExists: {
      XMLUP_ASSIGN_OR_RETURN(std::vector<NodeId> found,
                             Evaluate(*pred.path, node));
      return !found.empty();
    }
    case Predicate::Kind::kEquals: {
      XMLUP_ASSIGN_OR_RETURN(std::vector<NodeId> found,
                             Evaluate(*pred.path, node));
      for (NodeId n : found) {
        if (CompareValues(StringValue(n), pred.op, pred.literal)) {
          return true;
        }
      }
      return false;
    }
  }
  return Status::Internal("unknown predicate kind");
}

}  // namespace xmlup::xpath
