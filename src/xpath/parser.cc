#include "xpath/parser.h"

#include <cctype>
#include <map>

namespace xmlup::xpath {

using common::Result;
using common::Status;

namespace {

const std::map<std::string, Axis>& AxisTable() {
  static const auto& table = *new std::map<std::string, Axis>{
      {"child", Axis::kChild},
      {"descendant", Axis::kDescendant},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"parent", Axis::kParent},
      {"ancestor", Axis::kAncestor},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"self", Axis::kSelf},
      {"following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
      {"following-sibling", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"attribute", Axis::kAttribute},
  };
  return table;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<LocationPath> Parse() {
    XMLUP_ASSIGN_OR_RETURN(LocationPath path, ParseLocationPath());
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing input at offset " +
                                std::to_string(pos_));
    }
    return path;
  }

  Result<UnionExpr> ParseUnionExpr() {
    UnionExpr expr;
    while (true) {
      XMLUP_ASSIGN_OR_RETURN(LocationPath path, ParseLocationPath());
      expr.branches.push_back(std::move(path));
      SkipSpace();
      if (!Consume('|')) break;
    }
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing input at offset " +
                                std::to_string(pos_));
    }
    return expr;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<std::string> ParseName() {
    SkipSpace();
    if (AtEnd() || (!std::isalpha(static_cast<unsigned char>(Peek())) &&
                    Peek() != '_')) {
      return Status::ParseError("expected a name at offset " +
                                std::to_string(pos_));
    }
    std::string name;
    // Names may contain '-' but an axis spec "name::" must not swallow
    // the colons; handled by the axis lookahead in ParseStep.
    while (!AtEnd() && IsNameChar(Peek()) && Peek() != ':') {
      name.push_back(Peek());
      ++pos_;
    }
    return name;
  }

  Result<LocationPath> ParseLocationPath() {
    LocationPath path;
    SkipSpace();
    if (Peek() == '/') {
      path.absolute = true;
      if (PeekAt(1) == '/') {
        pos_ += 2;
        path.steps.push_back(DescendantOrSelfNode());
      } else {
        ++pos_;
        SkipSpace();
        if (AtEnd()) return path;  // "/" alone selects the root.
      }
    }
    XMLUP_RETURN_NOT_OK(ParseSteps(&path));
    return path;
  }

  Status ParseSteps(LocationPath* path) {
    while (true) {
      XMLUP_ASSIGN_OR_RETURN(Step step, ParseStep());
      path->steps.push_back(std::move(step));
      SkipSpace();
      if (Peek() != '/') return Status::Ok();
      if (PeekAt(1) == '/') {
        pos_ += 2;
        path->steps.push_back(DescendantOrSelfNode());
      } else {
        ++pos_;
      }
    }
  }

  static Step DescendantOrSelfNode() {
    Step step;
    step.axis = Axis::kDescendantOrSelf;
    step.test.kind = NodeTestKind::kNode;
    return step;
  }

  Result<Step> ParseStep() {
    SkipSpace();
    Step step;
    if (ConsumeWord("..")) {
      step.axis = Axis::kParent;
      step.test.kind = NodeTestKind::kNode;
      return step;
    }
    if (Peek() == '.' ) {
      ++pos_;
      step.axis = Axis::kSelf;
      step.test.kind = NodeTestKind::kNode;
      return step;
    }
    if (Consume('@')) {
      step.axis = Axis::kAttribute;
      XMLUP_RETURN_NOT_OK(ParseNodeTest(&step.test));
      XMLUP_RETURN_NOT_OK(ParsePredicates(&step.predicates));
      return step;
    }
    // Axis lookahead: name '::'.
    size_t save = pos_;
    SkipSpace();
    if (std::isalpha(static_cast<unsigned char>(Peek()))) {
      std::string word;
      size_t scan = pos_;
      while (scan < text_.size() &&
             (IsNameChar(text_[scan]) && text_[scan] != ':')) {
        word.push_back(text_[scan++]);
      }
      if (scan + 1 < text_.size() && text_[scan] == ':' &&
          text_[scan + 1] == ':') {
        auto it = AxisTable().find(word);
        if (it == AxisTable().end()) {
          return Status::ParseError("unknown axis '" + word + "'");
        }
        step.axis = it->second;
        pos_ = scan + 2;
      } else {
        pos_ = save;
      }
    }
    XMLUP_RETURN_NOT_OK(ParseNodeTest(&step.test));
    XMLUP_RETURN_NOT_OK(ParsePredicates(&step.predicates));
    return step;
  }

  Status ParseNodeTest(NodeTest* test) {
    SkipSpace();
    if (Consume('*')) {
      test->kind = NodeTestKind::kName;
      test->name.assign(1, '*');
      return Status::Ok();
    }
    XMLUP_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (Peek() == '(') {
      if (name == "text" && ConsumeWord("()")) {
        test->kind = NodeTestKind::kText;
        return Status::Ok();
      }
      if (name == "node" && ConsumeWord("()")) {
        test->kind = NodeTestKind::kNode;
        return Status::Ok();
      }
      if (name == "comment" && ConsumeWord("()")) {
        test->kind = NodeTestKind::kComment;
        return Status::Ok();
      }
      return Status::ParseError("unknown node test '" + name + "()'");
    }
    test->kind = NodeTestKind::kName;
    test->name = std::move(name);
    return Status::Ok();
  }

  Status ParsePredicates(std::vector<Predicate>* predicates) {
    while (Consume('[')) {
      Predicate pred;
      SkipSpace();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        pred.kind = Predicate::Kind::kPosition;
        int value = 0;
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          value = value * 10 + (Peek() - '0');
          ++pos_;
        }
        pred.position = value;
      } else if (ConsumeWord("last()")) {
        pred.kind = Predicate::Kind::kLast;
      } else {
        XMLUP_ASSIGN_OR_RETURN(LocationPath inner, ParsePredicatePath());
        pred.path = std::make_unique<LocationPath>(std::move(inner));
        SkipSpace();
        bool has_op = true;
        if (Consume('=')) {
          pred.op = CompareOp::kEq;
        } else if (ConsumeWord("!=")) {
          pred.op = CompareOp::kNe;
        } else if (ConsumeWord("<=")) {
          pred.op = CompareOp::kLe;
        } else if (ConsumeWord(">=")) {
          pred.op = CompareOp::kGe;
        } else if (Consume('<')) {
          pred.op = CompareOp::kLt;
        } else if (Consume('>')) {
          pred.op = CompareOp::kGt;
        } else {
          has_op = false;
        }
        if (has_op) {
          pred.kind = Predicate::Kind::kEquals;
          XMLUP_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
        } else {
          pred.kind = Predicate::Kind::kExists;
        }
      }
      SkipSpace();
      if (!Consume(']')) {
        return Status::ParseError("expected ']' at offset " +
                                  std::to_string(pos_));
      }
      predicates->push_back(std::move(pred));
    }
    return Status::Ok();
  }

  // A relative path inside a predicate (no leading '/').
  Result<LocationPath> ParsePredicatePath() {
    LocationPath path;
    XMLUP_RETURN_NOT_OK(ParseSteps(&path));
    return path;
  }

  Result<std::string> ParseLiteral() {
    SkipSpace();
    char quote = Peek();
    if (quote != '\'' && quote != '"') {
      return Status::ParseError("expected a quoted literal at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    std::string out;
    while (!AtEnd() && Peek() != quote) {
      out.push_back(Peek());
      ++pos_;
    }
    if (AtEnd()) return Status::ParseError("unterminated literal");
    ++pos_;
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<LocationPath> ParsePath(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty XPath expression");
  return Parser(text).Parse();
}

Result<UnionExpr> ParseUnion(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty XPath expression");
  return Parser(text).ParseUnionExpr();
}

}  // namespace xmlup::xpath
