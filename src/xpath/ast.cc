#include "xpath/ast.h"

#include <sstream>

namespace xmlup::xpath {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "unknown";
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

void AppendNodeTest(const NodeTest& test, std::ostringstream* os) {
  switch (test.kind) {
    case NodeTestKind::kName:
      *os << test.name;
      break;
    case NodeTestKind::kText:
      *os << "text()";
      break;
    case NodeTestKind::kNode:
      *os << "node()";
      break;
    case NodeTestKind::kComment:
      *os << "comment()";
      break;
  }
}

void AppendPredicate(const Predicate& pred, std::ostringstream* os) {
  *os << "[";
  switch (pred.kind) {
    case Predicate::Kind::kPosition:
      *os << pred.position;
      break;
    case Predicate::Kind::kLast:
      *os << "last()";
      break;
    case Predicate::Kind::kExists:
      *os << ToString(*pred.path);
      break;
    case Predicate::Kind::kEquals:
      *os << ToString(*pred.path) << CompareOpName(pred.op) << "'"
          << pred.literal << "'";
      break;
  }
  *os << "]";
}

}  // namespace

std::string ToString(const UnionExpr& expr) {
  std::ostringstream os;
  for (size_t i = 0; i < expr.branches.size(); ++i) {
    if (i > 0) os << " | ";
    os << ToString(expr.branches[i]);
  }
  return os.str();
}

std::string ToString(const LocationPath& path) {
  std::ostringstream os;
  if (path.absolute) os << "/";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) os << "/";
    const Step& step = path.steps[i];
    os << AxisName(step.axis) << "::";
    AppendNodeTest(step.test, &os);
    for (const Predicate& pred : step.predicates) {
      AppendPredicate(pred, &os);
    }
  }
  return os.str();
}

}  // namespace xmlup::xpath
