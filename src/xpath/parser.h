#ifndef XMLUP_XPATH_PARSER_H_
#define XMLUP_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace xmlup::xpath {

/// Parses an XPath location path (abbreviated or unabbreviated syntax)
/// into an AST.
///
/// Supported grammar:
///   path       := '/'? relative | '//' relative
///   relative   := step (('/' | '//') step)*
///   step       := axis '::' nodetest preds | '@' name preds
///               | nodetest preds | '.' | '..'
///   nodetest   := NAME | '*' | 'text()' | 'node()' | 'comment()'
///   preds      := ('[' predicate ']')*
///   predicate  := INTEGER | 'last()' | path | path '=' STRING
///
/// '//' expands to /descendant-or-self::node()/ as in the spec.
/// Predicates also accept the comparison operators != < <= > >=.
common::Result<LocationPath> ParsePath(std::string_view text);

/// Parses a union expression: `path ('|' path)*`.
common::Result<UnionExpr> ParseUnion(std::string_view text);

}  // namespace xmlup::xpath

#endif  // XMLUP_XPATH_PARSER_H_
