#ifndef XMLUP_XPATH_AST_H_
#define XMLUP_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xmlup::xpath {

/// The XPath axes supported by the engine — the major axes the paper's
/// §2/§3 discuss, each evaluable from node labels for schemes that
/// support the corresponding predicate.
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
  kAttribute,
};

std::string_view AxisName(Axis axis);

/// Node tests: name test (possibly "*"), text() or node().
enum class NodeTestKind {
  kName,   ///< element/attribute name, or "*".
  kText,   ///< text()
  kNode,   ///< node()
  kComment,  ///< comment()
};

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kName;
  /// For kName: the name, or "*" for any.
  std::string name;
};

struct LocationPath;

/// Comparison operators usable in predicates. Values compare numerically
/// when both sides parse as numbers, lexicographically otherwise (the
/// XPath 1.0 attribute-comparison idiom).
enum class CompareOp {
  kEq,   ///< =
  kNe,   ///< !=
  kLt,   ///< <
  kLe,   ///< <=
  kGt,   ///< >
  kGe,   ///< >=
};

std::string_view CompareOpName(CompareOp op);

/// A predicate inside [...]: a positional index, last(), a relative path
/// whose non-emptiness is tested, or a comparison `path op "literal"`.
struct Predicate {
  enum class Kind {
    kPosition,   ///< [3]
    kLast,       ///< [last()]
    kExists,     ///< [author]
    kEquals,     ///< [@id='b1'], [title='Dune'], [@year>'1965'], ...
  };
  Kind kind = Kind::kExists;
  int position = 0;
  std::unique_ptr<LocationPath> path;
  CompareOp op = CompareOp::kEq;
  std::string literal;
};

/// One location step: axis :: node-test [predicates...].
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<Predicate> predicates;
};

/// A location path: absolute (from the root) or relative (from the
/// context node), as a sequence of steps.
struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

/// A union expression: `path | path | ...` — node sets merged in document
/// order with duplicates removed.
struct UnionExpr {
  std::vector<LocationPath> branches;
};

/// Renders the parsed path back into canonical (unabbreviated) syntax —
/// handy for diagnostics and tested against round-trips.
std::string ToString(const LocationPath& path);
std::string ToString(const UnionExpr& expr);

}  // namespace xmlup::xpath

#endif  // XMLUP_XPATH_AST_H_
