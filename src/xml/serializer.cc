#include "xml/serializer.h"

#include <sstream>

namespace xmlup::xml {

using common::Result;
using common::Status;

std::string EscapeText(const std::string& text, bool attribute_context) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += attribute_context ? "&quot;" : "\"";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

class Serializer {
 public:
  Serializer(const Tree& tree, const SerializeOptions& options)
      : tree_(tree), options_(options) {}

  Status EmitNode(NodeId node, int depth) {
    switch (tree_.kind(node)) {
      case NodeKind::kElement:
        return EmitElement(node, depth);
      case NodeKind::kText:
        Indent(depth);
        out_ << EscapeText(tree_.value(node), /*attribute_context=*/false);
        Newline();
        return Status::Ok();
      case NodeKind::kComment:
        Indent(depth);
        out_ << "<!--" << tree_.value(node) << "-->";
        Newline();
        return Status::Ok();
      case NodeKind::kProcessingInstruction:
        Indent(depth);
        out_ << "<?" << tree_.name(node);
        if (!tree_.value(node).empty()) out_ << " " << tree_.value(node);
        out_ << "?>";
        Newline();
        return Status::Ok();
      case NodeKind::kAttribute:
        return Status::Internal(
            "attribute node outside an element start tag");
    }
    return Status::Internal("unknown node kind");
  }

  std::string TakeOutput() { return out_.str(); }

 private:
  void Indent(int depth) {
    if (options_.pretty) {
      for (int i = 0; i < depth * options_.indent_width; ++i) out_ << ' ';
    }
  }
  void Newline() {
    if (options_.pretty) out_ << '\n';
  }

  Status EmitElement(NodeId node, int depth) {
    Indent(depth);
    out_ << "<" << tree_.name(node);
    // Leading attribute children become attributes of the start tag.
    std::vector<NodeId> content;
    for (NodeId c = tree_.first_child(node); c != kInvalidNode;
         c = tree_.next_sibling(c)) {
      if (tree_.kind(c) == NodeKind::kAttribute) {
        out_ << " " << tree_.name(c) << "=\""
             << EscapeText(tree_.value(c), /*attribute_context=*/true)
             << "\"";
      } else {
        content.push_back(c);
      }
    }
    if (content.empty()) {
      out_ << "/>";
      Newline();
      return Status::Ok();
    }
    out_ << ">";
    // Compact single-text-child form: <a>text</a>.
    if (content.size() == 1 && tree_.kind(content[0]) == NodeKind::kText) {
      out_ << EscapeText(tree_.value(content[0]),
                         /*attribute_context=*/false);
      out_ << "</" << tree_.name(node) << ">";
      Newline();
      return Status::Ok();
    }
    Newline();
    for (NodeId c : content) {
      XMLUP_RETURN_NOT_OK(EmitNode(c, depth + 1));
    }
    Indent(depth);
    out_ << "</" << tree_.name(node) << ">";
    Newline();
    return Status::Ok();
  }

  const Tree& tree_;
  SerializeOptions options_;
  std::ostringstream out_;
};

}  // namespace

Result<std::string> SerializeDocument(const Tree& tree,
                                      const SerializeOptions& options) {
  if (!tree.has_root()) {
    return Status::InvalidArgument("tree has no root");
  }
  Serializer serializer(tree, options);
  XMLUP_RETURN_NOT_OK(serializer.EmitNode(tree.root(), 0));
  return serializer.TakeOutput();
}

}  // namespace xmlup::xml
