#include "xml/parser.h"

#include <cctype>
#include <sstream>

namespace xmlup::xml {

using common::Result;
using common::Status;

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<Tree> Parse();

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(std::string_view expected) {
    if (text_.substr(pos_, expected.size()) != expected) return false;
    for (size_t i = 0; i < expected.size(); ++i) Advance();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string_view what) const {
    std::ostringstream os;
    os << what << " at " << line_ << ":" << col_;
    return Status::ParseError(os.str());
  }

  Result<std::string> ParseName();
  Result<std::string> ParseAttrValue();
  // Decodes entities in raw character data.
  Result<std::string> DecodeText(std::string_view raw) const;

  Status ParseMisc(Tree* tree, NodeId parent);
  Status ParseElement(Tree* tree, NodeId parent);
  Status ParseContent(Tree* tree, NodeId element);
  Status ParseAttributes(Tree* tree, NodeId element);
  Status ParseComment(Tree* tree, NodeId parent);
  Status ParsePI(Tree* tree, NodeId parent);
  Status ParseCData(Tree* tree, NodeId parent);
  Status AddText(Tree* tree, NodeId parent, std::string text);

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

Result<std::string> Parser::ParseName() {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected a name");
  }
  std::string name;
  while (!AtEnd() && IsNameChar(Peek())) {
    name.push_back(Peek());
    Advance();
  }
  return name;
}

Result<std::string> Parser::DecodeText(std::string_view raw) const {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out.push_back(raw[i++]);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string_view digits = entity.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Status::ParseError("empty character ref");
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return Status::ParseError("bad character reference");
        }
        code = code * base + static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) return Status::ParseError("char ref too large");
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity '&" + std::string(entity) +
                                ";'");
    }
    i = semi + 1;
  }
  return out;
}

Result<std::string> Parser::ParseAttrValue() {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = Peek();
  Advance();
  size_t start = pos_;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '<') return Error("'<' in attribute value");
    Advance();
  }
  if (AtEnd()) return Error("unterminated attribute value");
  std::string_view raw = text_.substr(start, pos_ - start);
  Advance();  // Closing quote.
  return DecodeText(raw);
}

Status Parser::AddText(Tree* tree, NodeId parent, std::string text) {
  if (options_.skip_whitespace_text && IsAllWhitespace(text)) {
    return Status::Ok();
  }
  return tree->AppendChild(parent, NodeKind::kText, "", std::move(text))
      .status();
}

Status Parser::ParseComment(Tree* tree, NodeId parent) {
  // "<!--" already consumed.
  size_t end = text_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  std::string body(text_.substr(pos_, end - pos_));
  while (pos_ < end + 3) Advance();
  if (options_.keep_comments && parent != kInvalidNode) {
    return tree->AppendChild(parent, NodeKind::kComment, "", std::move(body))
        .status();
  }
  return Status::Ok();
}

Status Parser::ParsePI(Tree* tree, NodeId parent) {
  // "<?" already consumed.
  XMLUP_ASSIGN_OR_RETURN(std::string target, ParseName());
  size_t end = text_.find("?>", pos_);
  if (end == std::string_view::npos) return Error("unterminated PI");
  std::string body(text_.substr(pos_, end - pos_));
  while (pos_ < end + 2) Advance();
  // Trim leading whitespace of the body.
  size_t first = body.find_first_not_of(" \t\r\n");
  body = first == std::string::npos ? "" : body.substr(first);
  if (target == "xml") return Status::Ok();  // XML declaration: ignore.
  if (options_.keep_processing_instructions && parent != kInvalidNode) {
    return tree
        ->AppendChild(parent, NodeKind::kProcessingInstruction,
                      std::move(target), std::move(body))
        .status();
  }
  return Status::Ok();
}

Status Parser::ParseCData(Tree* tree, NodeId parent) {
  // "<![CDATA[" already consumed.
  size_t end = text_.find("]]>", pos_);
  if (end == std::string_view::npos) return Error("unterminated CDATA");
  std::string body(text_.substr(pos_, end - pos_));
  while (pos_ < end + 3) Advance();
  // CDATA is never whitespace-skipped: it is explicit character data.
  return tree->AppendChild(parent, NodeKind::kText, "", std::move(body))
      .status();
}

Status Parser::ParseAttributes(Tree* tree, NodeId element) {
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>' || Peek() == '/') return Status::Ok();
    XMLUP_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (!Consume("=")) return Error("expected '=' after attribute name");
    SkipWhitespace();
    XMLUP_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
    XMLUP_RETURN_NOT_OK(tree
                            ->AppendChild(element, NodeKind::kAttribute,
                                          std::move(name), std::move(value))
                            .status());
  }
}

Status Parser::ParseContent(Tree* tree, NodeId element) {
  std::string pending_text;
  while (true) {
    if (AtEnd()) return Error("unexpected end of input inside element");
    if (Peek() == '<') {
      if (!pending_text.empty()) {
        XMLUP_ASSIGN_OR_RETURN(std::string decoded, DecodeText(pending_text));
        XMLUP_RETURN_NOT_OK(AddText(tree, element, std::move(decoded)));
        pending_text.clear();
      }
      if (PeekAt(1) == '/') {
        return Status::Ok();  // Caller consumes the end tag.
      }
      if (Consume("<!--")) {
        XMLUP_RETURN_NOT_OK(ParseComment(tree, element));
      } else if (Consume("<![CDATA[")) {
        XMLUP_RETURN_NOT_OK(ParseCData(tree, element));
      } else if (Consume("<?")) {
        XMLUP_RETURN_NOT_OK(ParsePI(tree, element));
      } else {
        XMLUP_RETURN_NOT_OK(ParseElement(tree, element));
      }
    } else {
      pending_text.push_back(Peek());
      Advance();
    }
  }
}

Status Parser::ParseElement(Tree* tree, NodeId parent) {
  if (!Consume("<")) return Error("expected '<'");
  XMLUP_ASSIGN_OR_RETURN(std::string name, ParseName());

  NodeId element;
  if (parent == kInvalidNode) {
    XMLUP_ASSIGN_OR_RETURN(element,
                           tree->CreateRoot(NodeKind::kElement, name));
  } else {
    XMLUP_ASSIGN_OR_RETURN(
        element, tree->AppendChild(parent, NodeKind::kElement, name));
  }
  XMLUP_RETURN_NOT_OK(ParseAttributes(tree, element));

  if (Consume("/>")) return Status::Ok();
  if (!Consume(">")) return Error("expected '>' to close start tag");

  XMLUP_RETURN_NOT_OK(ParseContent(tree, element));

  if (!Consume("</")) return Error("expected end tag");
  XMLUP_ASSIGN_OR_RETURN(std::string end_name, ParseName());
  if (end_name != name) {
    return Error("mismatched end tag </" + end_name + "> for <" + name + ">");
  }
  SkipWhitespace();
  if (!Consume(">")) return Error("expected '>' to close end tag");
  return Status::Ok();
}

Status Parser::ParseMisc(Tree* tree, NodeId parent) {
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Status::Ok();
    if (Consume("<!--")) {
      XMLUP_RETURN_NOT_OK(ParseComment(tree, parent));
    } else if (text_.substr(pos_, 2) == "<?") {
      Consume("<?");
      XMLUP_RETURN_NOT_OK(ParsePI(tree, parent));
    } else {
      return Status::Ok();
    }
  }
}

Result<Tree> Parser::Parse() {
  Tree tree;
  // Prolog: declaration, comments, PIs (dropped when before the root).
  XMLUP_RETURN_NOT_OK(ParseMisc(&tree, kInvalidNode));
  if (AtEnd() || Peek() != '<') {
    return Error("expected root element");
  }
  if (text_.substr(pos_, 2) == "<!") {
    // Skip a DOCTYPE declaration if present (not modelled).
    size_t end = text_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated DOCTYPE");
    while (pos_ <= end) Advance();
    XMLUP_RETURN_NOT_OK(ParseMisc(&tree, kInvalidNode));
  }
  XMLUP_RETURN_NOT_OK(ParseElement(&tree, kInvalidNode));
  // Trailing misc.
  XMLUP_RETURN_NOT_OK(ParseMisc(&tree, kInvalidNode));
  SkipWhitespace();
  if (!AtEnd()) return Error("content after document element");
  return tree;
}

}  // namespace

Result<Tree> ParseDocument(std::string_view text, const ParseOptions& options) {
  Parser parser(text, options);
  return parser.Parse();
}

}  // namespace xmlup::xml
