#ifndef XMLUP_XML_NODE_H_
#define XMLUP_XML_NODE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xmlup::xml {

/// Dense node identifier: an index into the owning tree's node arena.
/// Identifiers are stable across structural updates (removals leave holes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Node kinds of the XPath data model subset the paper works with (§2.1).
/// Attributes are represented as ordinary tree nodes ordered before the
/// element's children, matching the pre/post numbering of Figure 1(b).
enum class NodeKind : uint8_t {
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// Returns a short human-readable kind name ("Element", "Attribute", ...).
std::string_view NodeKindName(NodeKind kind);

/// A node in the XML tree arena. Passive data; the Tree class maintains all
/// invariants (sibling links, parent/child consistency, liveness).
struct Node {
  NodeKind kind = NodeKind::kElement;
  bool alive = false;
  NodeId parent = kInvalidNode;
  NodeId first_child = kInvalidNode;
  NodeId last_child = kInvalidNode;
  NodeId prev_sibling = kInvalidNode;
  NodeId next_sibling = kInvalidNode;
  /// Element/attribute/PI name; empty for text and comments.
  std::string name;
  /// Attribute value, text content, comment body or PI data.
  std::string value;
};

}  // namespace xmlup::xml

#endif  // XMLUP_XML_NODE_H_
