#ifndef XMLUP_XML_PARSER_H_
#define XMLUP_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/tree.h"

namespace xmlup::xml {

/// Parser configuration.
struct ParseOptions {
  /// Drop text nodes that contain only whitespace (typical for
  /// data-centric documents such as the paper's Figure 1 sample).
  bool skip_whitespace_text = true;
  /// Keep comments and processing instructions as tree nodes.
  bool keep_comments = true;
  bool keep_processing_instructions = true;
};

/// Parses a textual XML document into a Tree (§2.1: the tree representation
/// an XPath processor actually operates on).
///
/// Supported: elements, attributes, character data with the five predefined
/// entities plus decimal/hex character references, CDATA sections, comments,
/// processing instructions and an optional XML declaration. Not supported
/// (out of the paper's scope): DTDs and namespaces-aware validation.
///
/// Errors carry 1-based line:column positions.
common::Result<Tree> ParseDocument(std::string_view text,
                                   const ParseOptions& options = {});

}  // namespace xmlup::xml

#endif  // XMLUP_XML_PARSER_H_
