#ifndef XMLUP_XML_TREE_H_
#define XMLUP_XML_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace xmlup::xml {

/// An ordered rooted tree over an arena of nodes — the abstract datatype
/// underlying an XML document (§2.1 of the paper). The tree supports the
/// structural updates the survey classifies: leaf-node, internal-node and
/// subtree insertion, and subtree deletion. Content updates are plain
/// mutations of a node's name/value.
///
/// NodeIds are stable: removal marks nodes dead but never reuses or moves
/// ids, so label maps indexed by NodeId stay valid across updates.
class Tree {
 public:
  Tree() = default;

  // Movable but not copyable: label maps hold NodeIds into a specific tree.
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  /// Explicit deep copy preserving the arena exactly: the clone has the
  /// same NodeIds (live and dead), so label maps indexed by NodeId apply
  /// to it unchanged and future insertions allocate the same ids as they
  /// would on the original.
  Tree Clone() const {
    Tree copy;
    copy.nodes_ = nodes_;
    copy.root_ = root_;
    copy.live_count_ = live_count_;
    return copy;
  }

  /// Creates the root element. Fails if a root already exists.
  common::Result<NodeId> CreateRoot(NodeKind kind, std::string name,
                                    std::string value = "");

  /// Inserts a new node under `parent`, immediately before `before`.
  /// Pass kInvalidNode as `before` to append as the last child.
  common::Result<NodeId> InsertChild(NodeId parent, NodeKind kind,
                                     std::string name, std::string value,
                                     NodeId before = kInvalidNode);

  /// Convenience: append as last child.
  common::Result<NodeId> AppendChild(NodeId parent, NodeKind kind,
                                     std::string name,
                                     std::string value = "") {
    return InsertChild(parent, kind, std::move(name), std::move(value));
  }

  /// Removes `node` and its entire subtree. Removing the root empties the
  /// tree. Ids of removed nodes become dead and are never reused.
  common::Status RemoveSubtree(NodeId node);

  /// Replaces the text/value content of a node (a content update, §3.1).
  common::Status SetValue(NodeId node, std::string value);
  /// Renames an element/attribute (a content update, §3.1).
  common::Status SetName(NodeId node, std::string name);

  bool has_root() const { return root_ != kInvalidNode; }
  NodeId root() const { return root_; }

  bool IsValid(NodeId id) const {
    return id < nodes_.size() && nodes_[id].alive;
  }

  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  const std::string& name(NodeId id) const { return nodes_[id].name; }
  const std::string& value(NodeId id) const { return nodes_[id].value; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId last_child(NodeId id) const { return nodes_[id].last_child; }
  NodeId prev_sibling(NodeId id) const { return nodes_[id].prev_sibling; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }

  /// Number of live nodes.
  size_t node_count() const { return live_count_; }
  /// Arena size (one past the largest NodeId ever allocated). Label maps
  /// indexed by NodeId should be sized to this.
  size_t arena_size() const { return nodes_.size(); }

  /// Children of `node` in sibling order.
  std::vector<NodeId> Children(NodeId node) const;
  /// Number of children.
  size_t ChildCount(NodeId node) const;

  /// All live nodes in document (preorder) order.
  std::vector<NodeId> PreorderNodes() const;

  /// Nesting depth: root is 0.
  int Depth(NodeId node) const;

  /// Ground-truth ancestor test by parent-chain walk (used to validate the
  /// label-based predicates). A node is not its own ancestor.
  bool IsAncestor(NodeId ancestor, NodeId descendant) const;

  /// Ground-truth document-order comparison (<0, 0, >0) by root-path walk.
  int CompareDocumentOrder(NodeId a, NodeId b) const;

 private:
  NodeId Allocate(NodeKind kind, std::string name, std::string value);
  // Root path from the root down to `node` (inclusive).
  std::vector<NodeId> RootPath(NodeId node) const;

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
  size_t live_count_ = 0;
};

}  // namespace xmlup::xml

#endif  // XMLUP_XML_TREE_H_
