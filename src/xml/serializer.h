#ifndef XMLUP_XML_SERIALIZER_H_
#define XMLUP_XML_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "xml/tree.h"

namespace xmlup::xml {

/// Serializer configuration.
struct SerializeOptions {
  /// Pretty-print with newlines and `indent_width` spaces per level.
  bool pretty = false;
  int indent_width = 2;
};

/// Serializes the tree back to textual XML (§2.3 requires that an encoding
/// permits full reconstruction of the textual document). Attribute nodes
/// become attributes of their parent element; text/comment/PI nodes are
/// emitted in document order with the predefined entities re-escaped.
common::Result<std::string> SerializeDocument(
    const Tree& tree, const SerializeOptions& options = {});

/// Escapes &, <, > (and in attribute context, the quote) for output.
std::string EscapeText(const std::string& text, bool attribute_context);

}  // namespace xmlup::xml

#endif  // XMLUP_XML_SERIALIZER_H_
