#include "xml/tree.h"

#include <algorithm>

namespace xmlup::xml {

using common::Result;
using common::Status;

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kElement:
      return "Element";
    case NodeKind::kAttribute:
      return "Attribute";
    case NodeKind::kText:
      return "Text";
    case NodeKind::kComment:
      return "Comment";
    case NodeKind::kProcessingInstruction:
      return "PI";
  }
  return "Unknown";
}

NodeId Tree::Allocate(NodeKind kind, std::string name, std::string value) {
  Node n;
  n.kind = kind;
  n.alive = true;
  n.name = std::move(name);
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  ++live_count_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<NodeId> Tree::CreateRoot(NodeKind kind, std::string name,
                                std::string value) {
  if (root_ != kInvalidNode) {
    return Status::InvalidArgument("tree already has a root");
  }
  root_ = Allocate(kind, std::move(name), std::move(value));
  return root_;
}

Result<NodeId> Tree::InsertChild(NodeId parent, NodeKind kind,
                                 std::string name, std::string value,
                                 NodeId before) {
  if (!IsValid(parent)) {
    return Status::InvalidArgument("invalid parent node");
  }
  if (before != kInvalidNode) {
    if (!IsValid(before) || nodes_[before].parent != parent) {
      return Status::InvalidArgument("'before' is not a child of 'parent'");
    }
  }
  NodeId id = Allocate(kind, std::move(name), std::move(value));
  Node& n = nodes_[id];
  Node& p = nodes_[parent];
  n.parent = parent;
  if (before == kInvalidNode) {
    n.prev_sibling = p.last_child;
    if (p.last_child != kInvalidNode) nodes_[p.last_child].next_sibling = id;
    p.last_child = id;
    if (p.first_child == kInvalidNode) p.first_child = id;
  } else {
    Node& b = nodes_[before];
    n.next_sibling = before;
    n.prev_sibling = b.prev_sibling;
    if (b.prev_sibling != kInvalidNode) {
      nodes_[b.prev_sibling].next_sibling = id;
    } else {
      p.first_child = id;
    }
    b.prev_sibling = id;
  }
  return id;
}

Status Tree::RemoveSubtree(NodeId node) {
  if (!IsValid(node)) return Status::InvalidArgument("invalid node");
  // Unlink from parent.
  Node& n = nodes_[node];
  if (n.parent != kInvalidNode) {
    Node& p = nodes_[n.parent];
    if (n.prev_sibling != kInvalidNode) {
      nodes_[n.prev_sibling].next_sibling = n.next_sibling;
    } else {
      p.first_child = n.next_sibling;
    }
    if (n.next_sibling != kInvalidNode) {
      nodes_[n.next_sibling].prev_sibling = n.prev_sibling;
    } else {
      p.last_child = n.prev_sibling;
    }
  } else {
    root_ = kInvalidNode;
  }
  // Mark the whole subtree dead (iterative DFS).
  std::vector<NodeId> stack = {node};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    for (NodeId c = nodes_[cur].first_child; c != kInvalidNode;
         c = nodes_[c].next_sibling) {
      stack.push_back(c);
    }
    nodes_[cur].alive = false;
    --live_count_;
  }
  return Status::Ok();
}

Status Tree::SetValue(NodeId node, std::string value) {
  if (!IsValid(node)) return Status::InvalidArgument("invalid node");
  nodes_[node].value = std::move(value);
  return Status::Ok();
}

Status Tree::SetName(NodeId node, std::string name) {
  if (!IsValid(node)) return Status::InvalidArgument("invalid node");
  nodes_[node].name = std::move(name);
  return Status::Ok();
}

std::vector<NodeId> Tree::Children(NodeId node) const {
  std::vector<NodeId> out;
  if (!IsValid(node)) return out;
  for (NodeId c = nodes_[node].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

size_t Tree::ChildCount(NodeId node) const {
  size_t count = 0;
  if (!IsValid(node)) return 0;
  for (NodeId c = nodes_[node].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    ++count;
  }
  return count;
}

std::vector<NodeId> Tree::PreorderNodes() const {
  std::vector<NodeId> out;
  if (root_ == kInvalidNode) return out;
  out.reserve(live_count_);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    // Push children in reverse so the leftmost is visited first.
    std::vector<NodeId> kids = Children(cur);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

int Tree::Depth(NodeId node) const {
  int depth = 0;
  for (NodeId cur = nodes_[node].parent; cur != kInvalidNode;
       cur = nodes_[cur].parent) {
    ++depth;
  }
  return depth;
}

bool Tree::IsAncestor(NodeId ancestor, NodeId descendant) const {
  if (!IsValid(ancestor) || !IsValid(descendant)) return false;
  for (NodeId cur = nodes_[descendant].parent; cur != kInvalidNode;
       cur = nodes_[cur].parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

std::vector<NodeId> Tree::RootPath(NodeId node) const {
  std::vector<NodeId> path;
  for (NodeId cur = node; cur != kInvalidNode; cur = nodes_[cur].parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int Tree::CompareDocumentOrder(NodeId a, NodeId b) const {
  if (a == b) return 0;
  std::vector<NodeId> pa = RootPath(a);
  std::vector<NodeId> pb = RootPath(b);
  size_t i = 0;
  while (i < pa.size() && i < pb.size() && pa[i] == pb[i]) ++i;
  if (i == pa.size()) return -1;  // a is an ancestor of b: a comes first.
  if (i == pb.size()) return 1;   // b is an ancestor of a.
  // pa[i] and pb[i] are distinct siblings; walk the sibling chain.
  for (NodeId cur = pa[i]; cur != kInvalidNode;
       cur = nodes_[cur].next_sibling) {
    if (cur == pb[i]) return -1;
  }
  return 1;
}

}  // namespace xmlup::xml
