#ifndef XMLUP_UPDATES_SCRIPT_H_
#define XMLUP_UPDATES_SCRIPT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "updates/update.h"

namespace xmlup::updates {

/// A compiled update script: the typed op list an `xmlup apply` file (or
/// a wire-protocol `--apply` frame) lowers to. The whole script is one
/// all-or-nothing transaction — the same contract as an `xmlup ed` argv
/// tail — so it can ride the group-commit pipeline as a single unit and
/// be footprint-analysed as one (footprint.h).
struct UpdateScript {
  std::vector<UpdateRequest> requests;
};

/// Compiles a script in the line-oriented `xmlup apply` grammar:
///
///   # comment                       (blank lines and comments skipped)
///   let NAME = <value>              (script-level variable binding;
///                                    <value> may be "double quoted" and
///                                    may reference earlier lets)
///   <action tokens...>              (the ed action grammar, one or more
///                                    actions per line; tokens may be
///                                    "double quoted" and may reference
///                                    bindings as ${NAME})
///
/// Every diagnostic is one line in the spec-quoting style the workload
/// parser set: `<origin>:<line>: <message>` with the offending token or
/// text quoted — `script.up:3: unknown action token "-z"`. `origin` is
/// the file name (CLI) or a frame tag (serve mode).
common::Result<UpdateScript> ParseUpdateScript(std::string_view text,
                                               std::string_view origin);

/// Tokenizes one script line shell-style: whitespace splits, double
/// quotes group (no escapes — the workload spec's convention). Exposed
/// for the CLI tests and the workload engine's apply nodes.
std::vector<std::string> SplitScriptTokens(std::string_view line);

}  // namespace xmlup::updates

#endif  // XMLUP_UPDATES_SCRIPT_H_
