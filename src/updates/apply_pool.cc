#include "updates/apply_pool.h"

namespace xmlup::updates {

ApplyPool::ApplyPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ApplyPool::~ApplyPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ApplyPool::WorkerMain() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    RunSlice(lock);  // lock held between claims, released around fn
  }
}

void ApplyPool::RunSlice(std::unique_lock<std::mutex>& lock) {
  // Caller holds mutex_ via `lock`. Claim under the lock, run unlocked.
  while (next_ < count_) {
    const size_t index = next_++;
    lock.unlock();
    (*fn_)(index);
    lock.lock();
    if (++completed_ == count_) work_done_.notify_all();
  }
}

void ApplyPool::ParallelFor(size_t count,
                            const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  completed_ = 0;
  ++generation_;
  work_ready_.notify_all();
  RunSlice(lock);
  work_done_.wait(lock, [&] { return completed_ == count_; });
  fn_ = nullptr;
}

}  // namespace xmlup::updates
