#include "updates/footprint.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/label_index.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlup::updates {

namespace {

using core::LabelIndex;
using xml::NodeId;

// The AST is move-only (predicates hold unique_ptr paths); the planner
// needs prefix copies to evaluate path prefixes step by step.
xpath::LocationPath CopyPath(const xpath::LocationPath& path);

xpath::Predicate CopyPredicate(const xpath::Predicate& pred) {
  xpath::Predicate copy;
  copy.kind = pred.kind;
  copy.position = pred.position;
  copy.op = pred.op;
  copy.literal = pred.literal;
  if (pred.path != nullptr) {
    copy.path = std::make_unique<xpath::LocationPath>(CopyPath(*pred.path));
  }
  return copy;
}

xpath::Step CopyStep(const xpath::Step& step) {
  xpath::Step copy;
  copy.axis = step.axis;
  copy.test = step.test;
  copy.predicates.reserve(step.predicates.size());
  for (const xpath::Predicate& pred : step.predicates) {
    copy.predicates.push_back(CopyPredicate(pred));
  }
  return copy;
}

xpath::LocationPath CopyPath(const xpath::LocationPath& path) {
  xpath::LocationPath copy;
  copy.absolute = path.absolute;
  copy.steps.reserve(path.steps.size());
  for (const xpath::Step& step : path.steps) {
    copy.steps.push_back(CopyStep(step));
  }
  return copy;
}

// Axes whose evaluation from a frontier node reads only that node's point
// and the matched nodes' points (the per-prefix frontier points cover
// everything a later writer could perturb — see AddBranchRead).
bool SimpleAxis(xpath::Axis axis) {
  return axis == xpath::Axis::kChild || axis == xpath::Axis::kAttribute ||
         axis == xpath::Axis::kSelf;
}

bool DescendingAxis(xpath::Axis axis) {
  return axis == xpath::Axis::kDescendant ||
         axis == xpath::Axis::kDescendantOrSelf;
}

// A predicate path whose every result (and string-value read) provably
// stays inside the candidate node's subtree: relative, downward axes
// only, recursively.
bool PredicatePathContained(const xpath::LocationPath& path) {
  if (path.absolute) return false;
  for (const xpath::Step& step : path.steps) {
    if (!SimpleAxis(step.axis) && !DescendingAxis(step.axis)) return false;
    for (const xpath::Predicate& pred : step.predicates) {
      if (pred.path != nullptr && !PredicatePathContained(*pred.path)) {
        return false;
      }
    }
  }
  return true;
}

// Footprint construction against one pinned document. Every Add* method
// returns false when the position algebra cannot bound the access — the
// caller then abandons the plan (whole-document, unusable).
class Planner {
 public:
  Planner(const core::LabeledDocument& doc, const LabelIndex& index)
      : doc_(doc), index_(index), eval_(&doc, xpath::EvalMode::kTree) {}

  const xpath::XPathEvaluator& eval() const { return eval_; }

  bool AddPoint(NodeId node, Footprint* fp) const {
    const size_t pos = index_.PositionOf(node);
    if (pos >= index_.size()) return false;
    fp->AddPoint(pos);
    return true;
  }

  bool AddSubtree(NodeId node, Footprint* fp) const {
    const size_t pos = index_.PositionOf(node);
    if (pos >= index_.size()) return false;
    const std::pair<size_t, size_t> range = index_.DescendantRange(node);
    fp->AddRange(pos, std::max(range.second, pos + 1));
    return true;
  }

  // Walks one union branch from the root, recording what its resolution
  // reads. The invariant that makes the point-based rule sound: every
  // frontier node of every prefix gets a point, so any write that could
  // change a later re-resolution (insert/rename/move under a frontier
  // node — all of which carry a subtree(parent-or-target) write that
  // contains the frontier point) intersects the read footprint. Steps
  // with predicates or descending axes read the whole frontier subtree
  // and are charged subtree ranges instead.
  bool AddBranchRead(const xpath::LocationPath& path, Footprint* reads) {
    if (!doc_.tree().has_root()) return false;
    const NodeId root = doc_.tree().root();
    std::vector<NodeId> frontier{root};
    if (!AddPoint(root, reads)) return false;
    xpath::LocationPath prefix;
    prefix.absolute = path.absolute;
    for (const xpath::Step& step : path.steps) {
      const bool simple = SimpleAxis(step.axis);
      const bool descending = DescendingAxis(step.axis);
      if (!simple && !descending) return false;
      if (descending || !step.predicates.empty()) {
        for (const xpath::Predicate& pred : step.predicates) {
          if (pred.path != nullptr && !PredicatePathContained(*pred.path)) {
            return false;
          }
        }
        for (NodeId node : frontier) {
          if (!AddSubtree(node, reads)) return false;
        }
      }
      prefix.steps.push_back(CopyStep(step));
      common::Result<std::vector<NodeId>> next = eval_.Evaluate(prefix, root);
      if (!next.ok()) return false;
      frontier = std::move(*next);
      for (NodeId node : frontier) {
        if (!AddPoint(node, reads)) return false;
      }
    }
    return true;
  }

  // Records the positions request's apply can touch, given its resolved
  // targets. Insert-sibling and rename are charged the parent's subtree
  // (they change the parent's child list / a child's name, which sibling
  // resolutions read); move is charged source and destination subtrees.
  bool AddWrites(const UpdateRequest& request, const ResolvedTargets& targets,
                 const PlanOptions& options, Footprint* writes) const {
    using Op = UpdateRequest::Op;
    if (options.conservative_relabels && request.op != Op::kSetValue) {
      // Structural ops may relabel or overflow under label-at-rest
      // analyses; charge everything.
      writes->MakeWholeDocument();
      return true;
    }
    const xml::Tree& tree = doc_.tree();
    switch (request.op) {
      case Op::kSetValue:
        for (NodeId m : targets.matches) {
          if (!AddPoint(m, writes)) return false;
        }
        return true;
      case Op::kDelete:
      case Op::kInsertChild:
        for (NodeId m : targets.matches) {
          if (!AddSubtree(m, writes)) return false;
        }
        return true;
      case Op::kInsertBefore:
      case Op::kInsertAfter:
      case Op::kRename:
        for (NodeId m : targets.matches) {
          const NodeId parent = tree.parent(m);
          if (!tree.IsValid(parent)) return false;  // root target
          if (!AddSubtree(parent, writes)) return false;
        }
        return true;
      case Op::kMove: {
        for (NodeId m : targets.matches) {
          if (!AddSubtree(m, writes)) return false;
        }
        // An empty destination set fails the whole transaction at apply
        // time, on both paths, before any mutation — no writes to charge.
        if (!targets.matches2.empty() &&
            !AddSubtree(targets.matches2.front(), writes)) {
          return false;
        }
        return true;
      }
    }
    return false;
  }

 private:
  const core::LabeledDocument& doc_;
  const LabelIndex& index_;
  xpath::XPathEvaluator eval_;
};

}  // namespace

void Footprint::AddRange(size_t begin, size_t end) {
  if (whole_document || begin >= end) return;
  intervals.emplace_back(begin, end);
}

void Footprint::MakeWholeDocument() {
  whole_document = true;
  intervals.clear();
}

void Footprint::Unite(const Footprint& other) {
  if (other.whole_document) {
    MakeWholeDocument();
    return;
  }
  if (whole_document) return;
  intervals.insert(intervals.end(), other.intervals.begin(),
                   other.intervals.end());
}

void Footprint::Normalize() {
  if (whole_document) {
    intervals.clear();
    return;
  }
  std::sort(intervals.begin(), intervals.end());
  size_t out = 0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (out > 0 && intervals[i].first <= intervals[out - 1].second) {
      intervals[out - 1].second =
          std::max(intervals[out - 1].second, intervals[i].second);
    } else {
      intervals[out++] = intervals[i];
    }
  }
  intervals.resize(out);
}

bool Disjoint(const Footprint& a, const Footprint& b) {
  if (a.whole_document) return b.empty();
  if (b.whole_document) return a.empty();
  size_t i = 0;
  size_t j = 0;
  while (i < a.intervals.size() && j < b.intervals.size()) {
    if (a.intervals[i].second <= b.intervals[j].first) {
      ++i;
    } else if (b.intervals[j].second <= a.intervals[i].first) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

TransactionPlan PlanTransaction(const core::LabeledDocument& doc,
                                const std::vector<UpdateRequest>& requests,
                                const PlanOptions& options) {
  TransactionPlan plan;
  const auto fail = [&plan]() -> TransactionPlan& {
    plan.usable = false;
    plan.reads.MakeWholeDocument();
    plan.writes.MakeWholeDocument();
    plan.targets.clear();
    return plan;
  };
  common::Result<const LabelIndex*> index = doc.query_index();
  if (!index.ok() || *index == nullptr) return fail();
  Planner planner(doc, **index);

  for (const UpdateRequest& request : requests) {
    Footprint reads;
    common::Result<xpath::UnionExpr> parsed = xpath::ParseUnion(request.xpath);
    if (!parsed.ok()) return fail();
    for (const xpath::LocationPath& branch : parsed->branches) {
      if (!planner.AddBranchRead(branch, &reads)) return fail();
    }
    ResolvedTargets targets;
    common::Result<std::vector<NodeId>> matches =
        planner.eval().Query(request.xpath);
    if (!matches.ok()) return fail();
    targets.matches = std::move(*matches);
    if (request.op == UpdateRequest::Op::kMove) {
      common::Result<xpath::UnionExpr> parsed2 =
          xpath::ParseUnion(request.xpath2);
      if (!parsed2.ok()) return fail();
      for (const xpath::LocationPath& branch : parsed2->branches) {
        if (!planner.AddBranchRead(branch, &reads)) return fail();
      }
      common::Result<std::vector<NodeId>> matches2 =
          planner.eval().Query(request.xpath2);
      if (!matches2.ok()) return fail();
      targets.matches2 = std::move(*matches2);
    }
    reads.Normalize();
    // Intra-transaction dependency: a request that reads what an earlier
    // request wrote would resolve differently against the pinned view than
    // against the live document mid-transaction. (Targets are part of the
    // read footprint, so stale-target chains are always caught here.)
    if (!Disjoint(reads, plan.writes)) return fail();
    plan.reads.Unite(reads);

    Footprint writes;
    if (!planner.AddWrites(request, targets, options, &writes)) return fail();
    writes.Normalize();
    plan.writes.Unite(writes);
    plan.writes.Normalize();
    plan.targets.push_back(std::move(targets));
  }
  plan.reads.Normalize();
  plan.usable = true;
  return plan;
}

bool Independent(const TransactionPlan& a, const TransactionPlan& b) {
  if (!a.usable || !b.usable) return false;
  return Disjoint(a.reads, b.writes) && Disjoint(a.writes, b.reads);
}

std::vector<bool> MarkConflicts(const std::vector<TransactionPlan>& plans) {
  // Batches are small (<= the group-commit cap), so the O(n^2) pairwise
  // check — each a linear interval merge — is cheaper than anything
  // cleverer and obviously order-insensitive.
  std::vector<bool> conflicted(plans.size(), false);
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = i + 1; j < plans.size(); ++j) {
      if (!Independent(plans[i], plans[j])) {
        conflicted[i] = true;
        conflicted[j] = true;
      }
    }
  }
  return conflicted;
}

}  // namespace xmlup::updates
