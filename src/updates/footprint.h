#ifndef XMLUP_UPDATES_FOOTPRINT_H_
#define XMLUP_UPDATES_FOOTPRINT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/labeled_document.h"
#include "updates/update.h"

namespace xmlup::updates {

/// A set of half-open intervals of document-order positions (ranks in the
/// pinned view's LabelIndex — the label algebra's coordinate system: a
/// node's subtree is exactly [PositionOf(n), DescendantRange(n).second)).
/// The unit the independence analysis reasons in: a transaction's *read*
/// footprint covers every position its XPath resolution consulted, its
/// *write* footprint every position its edits can affect.
struct Footprint {
  /// Conservative top element: the footprint may touch any position.
  /// Used for transactions the analysis cannot bound (unsupported axes,
  /// parse failures) and, under PlanOptions::conservative_relabels, for
  /// relabel/overflow-risky structural ops.
  bool whole_document = false;
  /// Normalized after Normalize(): sorted, pairwise disjoint, non-empty.
  std::vector<std::pair<size_t, size_t>> intervals;

  void AddPoint(size_t position) { AddRange(position, position + 1); }
  void AddRange(size_t begin, size_t end);
  void MakeWholeDocument();
  void Unite(const Footprint& other);
  /// Sorts and coalesces intervals. Disjoint() requires normalized inputs.
  void Normalize();
  /// True when the footprint provably covers nothing.
  bool empty() const { return !whole_document && intervals.empty(); }
};

/// Pure disjointness over normalized footprints: no position is covered
/// by both. A whole-document footprint is disjoint only from an empty
/// one. O(|a| + |b|) two-pointer merge.
bool Disjoint(const Footprint& a, const Footprint& b);

struct PlanOptions {
  /// Charge every structural op (insert/delete/move/rename) a whole-
  /// document write footprint, modelling the relabel/overflow risk the
  /// label algebra would expose if positions were read from labels that
  /// a neighbouring update can rewrite. The pipeline runs with this off:
  /// mutation is strictly serial there, so document-order positions — not
  /// label bytes — are the coordinate system and relabelling cannot
  /// invalidate a disjointness verdict (DESIGN.md §13). Analyses that
  /// reason about labels at rest (e.g. cross-shard script scheduling)
  /// turn it on.
  bool conservative_relabels = false;
};

/// Everything the static analysis derives from one transaction against a
/// pinned view: per-request resolved targets, read/write footprints, and
/// whether the pre-resolved targets may be applied directly (`usable`).
/// A plan is unusable when any XPath needs more than the simple footprint
/// algebra (non-downward axes, failed parses) or when a later request
/// reads what an earlier one writes (its resolution against the pinned
/// view would not see its own transaction's effects); unusable plans get
/// whole-document footprints, so they also conflict with everything.
struct TransactionPlan {
  bool usable = false;
  Footprint reads;
  Footprint writes;
  /// One entry per request, in request order (empty when !usable).
  std::vector<ResolvedTargets> targets;
};

/// Statically analyses one transaction against `doc` (a pinned, prewarmed
/// view sharing the live arena): resolves every target XPath once and
/// computes the footprints. Pure reads of `doc`; safe to run for many
/// transactions concurrently against the same view.
TransactionPlan PlanTransaction(const core::LabeledDocument& doc,
                                const std::vector<UpdateRequest>& requests,
                                const PlanOptions& options = {});

/// True when the two plans commute with live resolution: neither reads
/// what the other writes. Write-write overlap alone is allowed — the
/// pipeline mutates serially in submission order, so overlapping writes
/// land exactly as a serial apply would; only resolution moves early.
bool Independent(const TransactionPlan& a, const TransactionPlan& b);

/// Pairwise independence over a batch: conflicted[i] is true when txn i
/// overlaps any other txn (or could not be analysed) and must take the
/// live resolve-at-apply path, in submission order. A singleton batch is
/// never conflicted.
std::vector<bool> MarkConflicts(const std::vector<TransactionPlan>& plans);

}  // namespace xmlup::updates

#endif  // XMLUP_UPDATES_FOOTPRINT_H_
