#ifndef XMLUP_UPDATES_UPDATE_H_
#define XMLUP_UPDATES_UPDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/document_store.h"
#include "xml/node.h"

namespace xmlup::updates {

/// One XPath-addressed structural edit, the unit the update pipeline
/// accepts. This is exactly the xmlup CLI's xmlstar-style action grammar
/// (-i/-a/-s/-d/-u/-m/-r) lifted into a struct: targets are XPath
/// expressions, resolved by the writer against its live document at apply
/// time — never NodeIds, which go stale whenever a checkpoint compacts the
/// arena. (The parallel-apply stage resolves once against a pinned view
/// and carries ResolvedTargets, but only for transactions proven
/// independent of everything else in their batch — see footprint.h.)
struct UpdateRequest {
  enum class Op : uint8_t {
    kInsertBefore,  ///< -i: new sibling before each match
    kInsertAfter,   ///< -a: new sibling after each match
    kInsertChild,   ///< -s: new child of each match
    kDelete,        ///< -d: delete each matched subtree
    kSetValue,      ///< -u: replace the value/text of each match
    kMove,          ///< -m: move each match under xpath2's first match
    kRename,        ///< -r: rename each matched element/attribute to value
  };

  Op op = Op::kInsertChild;
  std::string xpath;
  /// kMove only: the destination XPath; matches of `xpath` are re-inserted
  /// as the last children of its first match.
  std::string xpath2;
  xml::NodeKind kind = xml::NodeKind::kElement;
  std::string name;
  std::string value;
};

/// Outcome of one request, delivered once the whole batch it rode in is
/// durable (acknowledged implies durable — see ConcurrentStore).
struct UpdateResult {
  common::Status status;
  size_t matched = 0;  ///< Nodes the XPath resolved to (and were edited).
  uint64_t epoch = 0;  ///< First published view that shows the change.
};

/// The match sets of one request, resolved ahead of apply against a
/// pinned view whose arena the live document shares (NodeIds transfer).
struct ResolvedTargets {
  std::vector<xml::NodeId> matches;   ///< Matches of xpath.
  std::vector<xml::NodeId> matches2;  ///< kMove: matches of xpath2.
};

/// Maps an xmlup CLI node-type token ("elem", "attr", "text", "comment")
/// to a NodeKind.
common::Result<xml::NodeKind> NodeKindForToken(const std::string& type);

/// Parses a token stream in the CLI action grammar into requests:
///
///   -i|-a|-s|-d|-u|-r <xpath> [-t elem|attr|text|comment] [-n <name>]
///   [-v <value>] | -m <src-xpath> <dst-xpath> ...
///
/// (--move and --rename are accepted as synonyms of -m/-r, xmlstar
/// style.) Used verbatim by `xmlup ed` argv tails, by compiled update
/// scripts, and by the serve-mode wire protocol, so the front ends cannot
/// drift apart. All structural constraints that need no document (missing
/// operands, unknown types, -t elem/attr without -n, -u/-r without -v)
/// are rejected here — before anything touches the store — with the
/// offending token quoted, one line, in the spec-diagnostic style.
common::Result<std::vector<UpdateRequest>> ParseActionTokens(
    const std::vector<std::string>& tokens);

/// Resolves `request.xpath` (and xpath2 for moves) against the store's
/// live document and applies the edit to every match, journalling through
/// the store. The XPath is fully resolved before the first mutation, so a
/// request that fails to parse or match writes nothing; `*matched`
/// reports the match count. A failure *after* the first mutation (a later
/// match rejected, a journal append error) leaves partial records in the
/// unsynced journal tail — callers that promise all-or-nothing (the
/// group-commit writer, `xmlup ed`/`apply`) take a DocumentStore::Mark()
/// first and RollbackTail() to it on failure, before any sync barrier.
common::Status ApplyUpdate(store::DocumentStore* store,
                           const UpdateRequest& request, size_t* matched);

/// Applies `request` to pre-resolved targets instead of re-resolving its
/// XPaths — the parallel-apply fast path. Byte-for-byte the same journal
/// records as ApplyUpdate when the targets equal what a live resolution
/// would produce (which the independence analysis guarantees).
common::Status ApplyResolved(store::DocumentStore* store,
                             const UpdateRequest& request,
                             const ResolvedTargets& targets, size_t* matched);

/// Defensive gate in front of ApplyResolved: true when every pre-resolved
/// target is still live in the store's document (deletes tolerate dead
/// matches by design). False means the resolution is stale — the
/// independence analysis was wrong or the arena changed — and the caller
/// must fall back to a live ApplyUpdate.
bool TargetsStillValid(const core::LabeledDocument& doc,
                       const UpdateRequest& request,
                       const ResolvedTargets& targets);

}  // namespace xmlup::updates

#endif  // XMLUP_UPDATES_UPDATE_H_
