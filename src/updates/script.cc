#include "updates/script.h"

#include <cctype>
#include <map>
#include <utility>

namespace xmlup::updates {

using common::Result;
using common::Status;

namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

/// One-line spec-quoting diagnostic: `<origin>:<line>: <message>`.
Status ScriptError(std::string_view origin, size_t line,
                   const std::string& message) {
  return Status::InvalidArgument(std::string(origin) + ":" +
                                 std::to_string(line) + ": " + message);
}

bool ValidVarName(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name.front())) &&
      name.front() != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

/// Expands every ${NAME} in `text` from `bindings`; an unknown name is a
/// compile error (quoted), not a silent empty string.
Result<std::string> ExpandBindings(
    std::string_view text, const std::map<std::string, std::string>& bindings,
    std::string_view origin, size_t line) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '$' || i + 1 >= text.size() || text[i + 1] != '{') {
      out.push_back(text[i]);
      continue;
    }
    const size_t close = text.find('}', i + 2);
    if (close == std::string_view::npos) {
      return ScriptError(origin, line,
                         "unterminated variable reference in \"" +
                             std::string(text.substr(i)) + "\"");
    }
    const std::string name(text.substr(i + 2, close - (i + 2)));
    auto it = bindings.find(name);
    if (it == bindings.end()) {
      return ScriptError(origin, line,
                         "undefined variable \"${" + name + "}\"");
    }
    out.append(it->second);
    i = close;
  }
  return out;
}

}  // namespace

std::vector<std::string> SplitScriptTokens(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    std::string token;
    bool quoted = false;
    while (i < line.size()) {
      const char c = line[i];
      if (c == '"') {
        quoted = !quoted;
        ++i;
        continue;
      }
      if (!quoted && std::isspace(static_cast<unsigned char>(c))) break;
      token.push_back(c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

Result<UpdateScript> ParseUpdateScript(std::string_view text,
                                       std::string_view origin) {
  UpdateScript script;
  std::map<std::string, std::string> bindings;
  size_t line_number = 0;
  size_t cursor = 0;
  while (cursor <= text.size()) {
    const size_t eol = text.find('\n', cursor);
    std::string_view raw =
        text.substr(cursor, eol == std::string_view::npos ? std::string_view::npos
                                                          : eol - cursor);
    cursor = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.rfind("let", 0) == 0 &&
        (line.size() == 3 ||
         std::isspace(static_cast<unsigned char>(line[3])))) {
      const size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return ScriptError(origin, line_number,
                           "let needs NAME = <value> in \"" +
                               std::string(line) + "\"");
      }
      const std::string name(Trim(line.substr(3, eq - 3)));
      if (!ValidVarName(name)) {
        return ScriptError(origin, line_number,
                           "bad variable name \"" + name + "\"");
      }
      XMLUP_ASSIGN_OR_RETURN(
          std::string value,
          ExpandBindings(Trim(line.substr(eq + 1)), bindings, origin,
                         line_number));
      // A quoted value keeps its inner spacing; SplitScriptTokens would
      // also merge adjacent quoted runs, which a single binding is not.
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      bindings[name] = std::move(value);
      continue;
    }

    std::vector<std::string> tokens;
    for (std::string& token : SplitScriptTokens(line)) {
      XMLUP_ASSIGN_OR_RETURN(
          std::string expanded,
          ExpandBindings(token, bindings, origin, line_number));
      tokens.push_back(std::move(expanded));
    }
    Result<std::vector<UpdateRequest>> actions = ParseActionTokens(tokens);
    if (!actions.ok()) {
      // ParseActionTokens already quotes the offending token; prefix the
      // script position so the author can jump straight to the line.
      return ScriptError(origin, line_number, actions.status().message());
    }
    for (UpdateRequest& request : *actions) {
      script.requests.push_back(std::move(request));
    }
  }
  return script;
}

}  // namespace xmlup::updates
