#ifndef XMLUP_UPDATES_APPLY_POOL_H_
#define XMLUP_UPDATES_APPLY_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xmlup::updates {

/// A small persistent worker pool for the parallel-prepare stage: the
/// writer fans transaction planning out over `workers` threads, then
/// continues alone. ParallelFor is a synchronous fork-join — the calling
/// thread participates, so a pool of w threads gives w+1 lanes and a
/// 1-item loop never context-switches. Tasks must not throw.
class ApplyPool {
 public:
  /// Spawns `workers` threads (0 is allowed: ParallelFor then runs
  /// entirely on the calling thread).
  explicit ApplyPool(size_t workers);
  ~ApplyPool();

  ApplyPool(const ApplyPool&) = delete;
  ApplyPool& operator=(const ApplyPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Runs fn(0) ... fn(count - 1), work-stealing over a shared atomic
  /// cursor; returns after every index completed. Not reentrant and not
  /// thread-safe: one ParallelFor at a time (the writer loop is the only
  /// caller).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerMain();
  // Claims indices until the cursor passes count_. `lock` must hold
  // mutex_; it is released around each task invocation.
  void RunSlice(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t count_ = 0;
  size_t next_ = 0;       // next unclaimed index
  size_t completed_ = 0;  // indices fully executed
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace xmlup::updates

#endif  // XMLUP_UPDATES_APPLY_POOL_H_
