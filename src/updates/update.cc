#include "updates/update.h"

#include <utility>

#include "xpath/evaluator.h"

namespace xmlup::updates {

using common::Result;
using common::Status;
using xml::NodeId;

Result<xml::NodeKind> NodeKindForToken(const std::string& type) {
  if (type == "elem") return xml::NodeKind::kElement;
  if (type == "attr") return xml::NodeKind::kAttribute;
  if (type == "text") return xml::NodeKind::kText;
  if (type == "comment") return xml::NodeKind::kComment;
  return Status::InvalidArgument("unknown node type \"" + type + "\"");
}

Result<std::vector<UpdateRequest>> ParseActionTokens(
    const std::vector<std::string>& tokens) {
  std::vector<UpdateRequest> requests;
  std::vector<bool> has_value;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "-i" || tok == "-a" || tok == "-s" || tok == "-d" ||
        tok == "-u" || tok == "-r" || tok == "--rename") {
      if (i + 1 >= tokens.size()) {
        return Status::InvalidArgument("missing XPath operand after \"" + tok +
                                       "\"");
      }
      UpdateRequest request;
      switch (tok[1]) {
        case 'i': request.op = UpdateRequest::Op::kInsertBefore; break;
        case 'a': request.op = UpdateRequest::Op::kInsertAfter; break;
        case 's': request.op = UpdateRequest::Op::kInsertChild; break;
        case 'd': request.op = UpdateRequest::Op::kDelete; break;
        case 'u': request.op = UpdateRequest::Op::kSetValue; break;
        default: request.op = UpdateRequest::Op::kRename; break;
      }
      request.xpath = tokens[++i];
      requests.push_back(std::move(request));
      has_value.push_back(false);
    } else if (tok == "-m" || tok == "--move") {
      if (i + 2 >= tokens.size()) {
        return Status::InvalidArgument(
            "missing <src-xpath> <dst-xpath> operands after \"" + tok + "\"");
      }
      UpdateRequest request;
      request.op = UpdateRequest::Op::kMove;
      request.xpath = tokens[++i];
      request.xpath2 = tokens[++i];
      requests.push_back(std::move(request));
      has_value.push_back(false);
    } else if (tok == "-t" || tok == "-n" || tok == "-v") {
      if (requests.empty()) {
        return Status::InvalidArgument("\"" + tok + "\" before any action");
      }
      if (i + 1 >= tokens.size()) {
        return Status::InvalidArgument("missing operand after \"" + tok +
                                       "\"");
      }
      UpdateRequest& request = requests.back();
      if (tok == "-t") {
        XMLUP_ASSIGN_OR_RETURN(request.kind, NodeKindForToken(tokens[++i]));
      } else if (tok == "-n") {
        request.name = tokens[++i];
      } else {
        request.value = tokens[++i];
        has_value.back() = true;
      }
    } else {
      return Status::InvalidArgument("unknown action token \"" + tok + "\"");
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const UpdateRequest& request = requests[i];
    if (request.op == UpdateRequest::Op::kSetValue && !has_value[i]) {
      return Status::InvalidArgument("-v <value> required after \"-u " +
                                     request.xpath + "\"");
    }
    if (request.op == UpdateRequest::Op::kRename && !has_value[i]) {
      return Status::InvalidArgument("-v <new-name> required after \"-r " +
                                     request.xpath + "\"");
    }
    bool inserts = request.op == UpdateRequest::Op::kInsertBefore ||
                   request.op == UpdateRequest::Op::kInsertAfter ||
                   request.op == UpdateRequest::Op::kInsertChild;
    if (inserts &&
        (request.kind == xml::NodeKind::kElement ||
         request.kind == xml::NodeKind::kAttribute) &&
        request.name.empty()) {
      return Status::InvalidArgument(
          "-n <name> required for this -t in insert at \"" + request.xpath +
          "\"");
    }
  }
  return requests;
}

namespace {

/// Deep-copies `source`'s subtree into a fresh fragment tree, optionally
/// renaming the copied root. The explicit stack keeps the copy safe for
/// pathologically deep documents.
Result<std::pair<xml::Tree, NodeId>> CopyFragment(
    const xml::Tree& tree, NodeId source, const std::string& rename_to) {
  xml::Tree fragment;
  XMLUP_ASSIGN_OR_RETURN(
      NodeId fragment_root,
      fragment.CreateRoot(tree.kind(source),
                          rename_to.empty() ? tree.name(source) : rename_to,
                          tree.value(source)));
  std::vector<std::pair<NodeId, NodeId>> stack;  // (source, copy) pairs
  stack.emplace_back(source, fragment_root);
  while (!stack.empty()) {
    auto [from, to] = stack.back();
    stack.pop_back();
    for (NodeId child = tree.first_child(from); child != xml::kInvalidNode;
         child = tree.next_sibling(child)) {
      XMLUP_ASSIGN_OR_RETURN(
          NodeId copy, fragment.AppendChild(to, tree.kind(child),
                                            tree.name(child),
                                            tree.value(child)));
      stack.emplace_back(child, copy);
    }
  }
  return std::make_pair(std::move(fragment), fragment_root);
}

Status ApplyMove(store::DocumentStore* store, const UpdateRequest& request,
                 const ResolvedTargets& targets) {
  const core::LabeledDocument& doc = store->document();
  if (targets.matches2.empty()) {
    return Status::NotFound("no match for " + request.xpath2);
  }
  const NodeId dst = targets.matches2.front();
  // Every structural constraint is checked before the first mutation, so
  // a rejected move writes nothing.
  for (NodeId src : targets.matches) {
    if (!doc.tree().IsValid(src)) continue;
    if (src == doc.tree().root()) {
      return Status::InvalidArgument("cannot move the document root");
    }
    if (src == dst || doc.tree().IsAncestor(src, dst)) {
      return Status::InvalidArgument(
          "cannot move a node into its own subtree: " + request.xpath +
          " -> " + request.xpath2);
    }
  }
  // Document order; a source match inside an already-moved subtree is
  // dead by the time it comes up and is skipped, like nested deletes.
  for (NodeId src : targets.matches) {
    if (!doc.tree().IsValid(src)) continue;
    XMLUP_ASSIGN_OR_RETURN(auto fragment,
                           CopyFragment(doc.tree(), src, /*rename_to=*/""));
    // Attributes keep the Figure 1(b) layout: they re-enter before the
    // destination's first non-attribute child; everything else appends.
    NodeId before = xml::kInvalidNode;
    if (doc.tree().kind(src) == xml::NodeKind::kAttribute) {
      before = doc.tree().first_child(dst);
      while (before != xml::kInvalidNode &&
             doc.tree().kind(before) == xml::NodeKind::kAttribute) {
        before = doc.tree().next_sibling(before);
      }
    }
    XMLUP_RETURN_NOT_OK(
        store->InsertSubtree(dst, fragment.first, fragment.second, before)
            .status());
    XMLUP_RETURN_NOT_OK(store->RemoveSubtree(src));
  }
  return Status::Ok();
}

Status ApplyRename(store::DocumentStore* store, const UpdateRequest& request,
                   const ResolvedTargets& targets) {
  const core::LabeledDocument& doc = store->document();
  for (NodeId target : targets.matches) {
    if (!doc.tree().IsValid(target)) continue;
    if (doc.tree().kind(target) != xml::NodeKind::kElement &&
        doc.tree().kind(target) != xml::NodeKind::kAttribute) {
      return Status::InvalidArgument(
          "can only rename elements and attributes: " + request.xpath);
    }
    if (target == doc.tree().root()) {
      return Status::InvalidArgument("cannot rename the document root");
    }
  }
  // Reverse document order: renaming re-creates the subtree, so a nested
  // match must be renamed before its ancestor's copy orphans it.
  for (auto it = targets.matches.rbegin(); it != targets.matches.rend();
       ++it) {
    const NodeId target = *it;
    if (!doc.tree().IsValid(target)) continue;
    XMLUP_ASSIGN_OR_RETURN(auto fragment,
                           CopyFragment(doc.tree(), target, request.value));
    const NodeId parent = doc.tree().parent(target);
    XMLUP_RETURN_NOT_OK(
        store->InsertSubtree(parent, fragment.first, fragment.second, target)
            .status());
    XMLUP_RETURN_NOT_OK(store->RemoveSubtree(target));
  }
  return Status::Ok();
}

}  // namespace

Status ApplyResolved(store::DocumentStore* store, const UpdateRequest& request,
                     const ResolvedTargets& targets, size_t* matched) {
  if (matched != nullptr) *matched = 0;
  const core::LabeledDocument& doc = store->document();
  if (targets.matches.empty()) {
    return Status::NotFound("no match for " + request.xpath);
  }
  if (matched != nullptr) *matched = targets.matches.size();

  switch (request.op) {
    case UpdateRequest::Op::kDelete:
      // Reverse document order, so a match inside an already-deleted
      // subtree is simply skipped.
      for (auto it = targets.matches.rbegin(); it != targets.matches.rend();
           ++it) {
        if (!doc.tree().IsValid(*it)) continue;
        XMLUP_RETURN_NOT_OK(store->RemoveSubtree(*it));
      }
      return Status::Ok();
    case UpdateRequest::Op::kSetValue:
      for (NodeId target : targets.matches) {
        XMLUP_RETURN_NOT_OK(store->UpdateValue(target, request.value));
      }
      return Status::Ok();
    case UpdateRequest::Op::kMove:
      return ApplyMove(store, request, targets);
    case UpdateRequest::Op::kRename:
      return ApplyRename(store, request, targets);
    default:
      break;
  }

  for (NodeId target : targets.matches) {
    NodeId parent, before;
    if (request.op == UpdateRequest::Op::kInsertChild) {
      parent = target;
      before = xml::kInvalidNode;
      if (request.kind == xml::NodeKind::kAttribute) {
        // Attributes order before element children (Figure 1(b) layout):
        // insert before the first non-attribute child.
        before = doc.tree().first_child(target);
        while (before != xml::kInvalidNode &&
               doc.tree().kind(before) == xml::NodeKind::kAttribute) {
          before = doc.tree().next_sibling(before);
        }
      }
    } else {
      parent = doc.tree().parent(target);
      if (parent == xml::kInvalidNode) {
        return Status::InvalidArgument(
            "cannot insert a sibling of the document root");
      }
      before = request.op == UpdateRequest::Op::kInsertBefore
                   ? target
                   : doc.tree().next_sibling(target);
    }
    XMLUP_RETURN_NOT_OK(
        store->InsertNode(parent, request.kind, request.name, request.value,
                          before)
            .status());
  }
  return Status::Ok();
}

Status ApplyUpdate(store::DocumentStore* store, const UpdateRequest& request,
                   size_t* matched) {
  if (matched != nullptr) *matched = 0;
  const core::LabeledDocument& doc = store->document();
  // Resolve the target set completely before the first mutation: a
  // malformed or unmatched XPath must not leave a partially applied
  // request in the journal.
  xpath::XPathEvaluator eval(&doc, xpath::EvalMode::kTree);
  ResolvedTargets targets;
  XMLUP_ASSIGN_OR_RETURN(targets.matches, eval.Query(request.xpath));
  if (request.op == UpdateRequest::Op::kMove) {
    XMLUP_ASSIGN_OR_RETURN(targets.matches2, eval.Query(request.xpath2));
  }
  return ApplyResolved(store, request, targets, matched);
}

bool TargetsStillValid(const core::LabeledDocument& doc,
                       const UpdateRequest& request,
                       const ResolvedTargets& targets) {
  // Deletes (and the delete half of moves/renames) skip dead matches by
  // design; every other op requires each target live.
  const bool tolerate_dead = request.op == UpdateRequest::Op::kDelete ||
                             request.op == UpdateRequest::Op::kMove ||
                             request.op == UpdateRequest::Op::kRename;
  if (!tolerate_dead) {
    for (NodeId target : targets.matches) {
      if (!doc.tree().IsValid(target)) return false;
    }
  }
  if (request.op == UpdateRequest::Op::kMove) {
    // The move destination is resolved to the *first* match and must be
    // live (a dead first match would silently retarget the move).
    if (targets.matches2.empty() ||
        !doc.tree().IsValid(targets.matches2.front())) {
      return false;
    }
  }
  return true;
}

}  // namespace xmlup::updates
