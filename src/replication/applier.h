#ifndef XMLUP_REPLICATION_APPLIER_H_
#define XMLUP_REPLICATION_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "concurrency/read_view.h"
#include "observability/metrics.h"
#include "replication/replica_store.h"
#include "store/document_store.h"
#include "store/file.h"

namespace xmlup::replication {

struct ReplicaApplierOptions {
  /// Options for the ReplicaStore underneath (file system, scheme knobs).
  ReplicaStoreOptions store;
  /// Reconnect backoff: doubles from initial to max on every failed
  /// attempt, resets after a successfully applied message.
  uint64_t backoff_initial_ms = 10;
  uint64_t backoff_max_ms = 1000;
  /// Tokens prepended to the repl-hello frame on every (re)connect.
  /// A replica of one document on a sharded corpus endpoint subscribes
  /// with {"--doc", "<key>"} so the shard can route the handshake to
  /// that document's streamer. Empty for a single-document primary.
  std::vector<std::string> hello_prefix;
};

/// A point-in-time picture of the applier, for `repl-status` and tests.
struct ReplicaStatus {
  bool connected = false;
  bool has_view = false;
  store::CommitPoint applied;  ///< Local position (durable after sync).
  store::CommitPoint primary;  ///< Last commit-point heard from upstream.
  uint64_t lag_bytes = 0;      ///< primary.bytes - applied.bytes (same gen).
  uint64_t lag_records = 0;
  uint64_t reconnects = 0;
  uint64_t snapshots_installed = 0;
  uint64_t rolls = 0;
  uint64_t commit_points = 0;
  /// Highest fence epoch persisted (learned from the primary's hello
  /// reply, or recovered from the FENCE file). See fence.h.
  uint64_t fence_epoch = 0;
  std::string last_error;
};

/// The replica side of journal-shipping replication: a background thread
/// that connects to the primary's Unix socket, handshakes with the
/// durable position its ReplicaStore recovered to, and applies the
/// snapshot/frames/roll/commit-point stream. After every applied message
/// that changes the document it publishes a fresh ReadView, so reader
/// threads (the replica's Server) always see a consistent snapshot —
/// including DURING catch-up, when views advance batch by batch exactly
/// as the primary's advance commit by commit.
///
/// Connection loss, a primary that checkpointed the subscribed
/// generation away, or a local apply failure all funnel into the same
/// recovery: reopen the store from disk (crash recovery truncates any
/// torn tail), reconnect with exponential backoff, re-handshake from the
/// recovered position. The primary decides frames-vs-snapshot; the
/// applier carries no resync-specific state.
class ReplicaApplier : public concurrency::ViewProvider {
 public:
  /// Opens (recovering) the replica store at `dir` and starts the
  /// applier thread connecting to `primary_socket` — a Unix socket path
  /// or "tcp:HOST:PORT" (the DialEndpoint grammar). If the directory
  /// already holds a replicated generation, an initial view is published
  /// before Start returns — a restarting replica serves stale-but-
  /// consistent reads immediately, catch-up freshness arrives behind it.
  static common::Result<std::unique_ptr<ReplicaApplier>> Start(
      const std::string& dir, const std::string& primary_socket,
      const ReplicaApplierOptions& options = {});

  ~ReplicaApplier() override;
  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// ViewProvider: the latest published view, or null while an empty
  /// replica is still waiting for its first snapshot.
  std::shared_ptr<const concurrency::ReadView> PinView() const override;

  ReplicaStatus status() const;
  /// key=value fields for `--repl-status` on the replica.
  std::vector<std::string> StatusFields() const;

  /// The store directory this applier replicates into. Promotion opens a
  /// full pipeline over the same directory after Stop().
  const std::string& dir() const { return dir_; }

  /// Blocks until the applied position reaches `target` (same generation
  /// and at least its bytes, or any later generation) or `timeout_ms`
  /// expires. Returns whether the target was reached. Quiesce helper for
  /// tests and the soak suite.
  bool WaitForPosition(const store::CommitPoint& target,
                       uint64_t timeout_ms) const;

  /// Stops the applier thread (shutting down any open connection) and
  /// syncs the store. Idempotent; the destructor calls it.
  void Stop();

 private:
  ReplicaApplier(std::string dir, std::string primary_socket,
                 ReplicaApplierOptions options);

  void Run();
  /// One connect + handshake + stream session. Returns when the
  /// connection drops, an error forces a reopen, or stopping_.
  /// `*connected_once` tracks whether any session ever connected, for
  /// the reconnect counter.
  void RunSession(bool* connected_once);
  /// Applies one stream message; false = session over (reconnect).
  bool ApplyMessage(const std::vector<std::string>& message);
  common::Status PublishView();
  void RecordError(const common::Status& status);
  void ReopenStore();

  struct MetricCells {
    obs::Histogram* apply_ns = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* records_applied = nullptr;
    obs::Counter* snapshots_installed = nullptr;
    obs::Counter* rolls = nullptr;
    obs::Counter* commit_points = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Gauge* lag_bytes = nullptr;
    obs::Gauge* lag_records = nullptr;
  };

  const std::string dir_;
  const std::string primary_socket_;
  const ReplicaApplierOptions options_;
  MetricCells metrics_;

  /// Owned by the applier thread (and Start(), before the thread runs).
  std::unique_ptr<ReplicaStore> store_;
  /// Partial snapshot transfer: chunks received so far.
  std::string snapshot_buffer_;
  uint64_t next_epoch_ = 1;
  /// Fence epoch (applier thread only; mirrored into status_). Loaded
  /// from the FENCE file at Start, advanced when a hello reply carries a
  /// higher one.
  uint64_t fence_epoch_ = 0;
  /// Whether the current session applied anything (resets backoff).
  bool session_progress_ = false;

  mutable std::mutex view_mu_;
  std::shared_ptr<const concurrency::ReadView> view_;

  mutable std::mutex status_mu_;
  mutable std::condition_variable status_changed_;
  ReplicaStatus status_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> conn_fd_{-1};
  std::thread thread_;
};

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_APPLIER_H_
