#ifndef XMLUP_REPLICATION_FENCE_H_
#define XMLUP_REPLICATION_FENCE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "store/document_store.h"
#include "store/file.h"

namespace xmlup::replication {

/// Fencing state of one store directory, persisted in a `FENCE` file next
/// to the journal.
///
/// `epoch` counts promotions of the replication group the store belongs
/// to: it starts at 0 (a store that has never seen a failover has no
/// FENCE file), and every promotion writes epoch+1 together with `point`,
/// the promoted store's commit position at the instant it took over.
///
/// The pair is what makes the old primary safe to rejoin. After a
/// failover the old primary's journal and the new primary's agree up to
/// `point` (everything the new primary had when it was elected) but may
/// diverge beyond it — the old primary can hold acknowledged-but-never-
/// shipped frames that exist nowhere else. A subscriber that hellos with
/// an older epoch is therefore served incremental frames only while its
/// position is at or before the fence point; past it, the primary forces
/// snapshot catch-up, which erases the divergent tail. A subscriber with
/// a *newer* epoch proves the local store is the stale one, and its
/// hello is rejected outright.
struct FenceToken {
  uint64_t epoch = 0;
  store::CommitPoint point;

  friend bool operator==(const FenceToken&, const FenceToken&) = default;
};

inline constexpr char kFenceFileName[] = "FENCE";

/// Commit-order comparison: (generation, records, bytes) lexicographic.
/// Within a generation records and bytes advance together, so this agrees
/// with byte order; across generations only the triple orders correctly.
inline bool CommitPointLess(const store::CommitPoint& a,
                            const store::CommitPoint& b) {
  if (a.generation != b.generation) return a.generation < b.generation;
  if (a.records != b.records) return a.records < b.records;
  return a.bytes < b.bytes;
}

inline bool CommitPointLessEq(const store::CommitPoint& a,
                              const store::CommitPoint& b) {
  return !CommitPointLess(b, a);
}

/// Reads `dir`'s fence. A missing FENCE file is epoch 0 (never fenced),
/// not an error; a present-but-corrupt one is an error — promotion state
/// must never be guessed. `fs` null means the real POSIX file system.
common::Result<FenceToken> ReadFence(store::FileSystem* fs,
                                     const std::string& dir);

/// Durably replaces `dir`'s fence (write-temp, rename, SyncDir).
common::Status WriteFence(store::FileSystem* fs, const std::string& dir,
                          const FenceToken& token);

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_FENCE_H_
