#ifndef XMLUP_REPLICATION_SOURCE_H_
#define XMLUP_REPLICATION_SOURCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "observability/metrics.h"
#include "store/document_store.h"
#include "store/journal_cursor.h"

namespace xmlup::replication {

/// The primary side of journal-shipping replication.
///
/// Plugged into a ConcurrentStore as its CommitHook, the source tails the
/// store's journal with a JournalCursor on the store's pipeline threads
/// (the flusher after every durable group commit, the writer around
/// checkpoints — never concurrently): after every
/// group commit it copies the newly committed frame bytes into an
/// in-memory image of the current generation's journal (offsets match the
/// primary's file offsets exactly), and on a checkpoint roll it keeps the
/// finished generation's image around so a subscriber mid-stream can
/// drain it before following the roll. Because the cursor never reads
/// past DocumentStore::LastCommitPoint(), nothing un-fsynced is ever
/// buffered, let alone shipped — acknowledged implies durable implies
/// (eventually) shipped, never the reverse.
///
/// Plugged into a Server as its ReplicationStreamer, each replica
/// connection runs ServeReplica on its own connection thread: it
/// validates the hello against the buffered images (frame-boundary
/// check), streams `snapshot` chunks when the replica needs full
/// catch-up, then `frames`/`roll`/`commit-point` messages composed under
/// the source mutex and sent outside it — a slow replica never blocks the
/// writer thread, only its own connection.
class ReplicationSource : public concurrency::CommitHook,
                          public concurrency::ReplicationStreamer {
 public:
  struct Options {
    /// Largest `frames` payload per message (cut at a frame boundary; a
    /// single oversized frame still ships whole).
    uint64_t max_batch_bytes = 1u << 20;
    /// Snapshot chunk size for catch-up transfers.
    uint64_t snapshot_chunk_bytes = 1u << 20;
    /// Caught-up subscribers get a commit-point heartbeat this often.
    uint64_t heartbeat_ms = 500;
  };

  ReplicationSource();
  explicit ReplicationSource(Options options);

  /// CommitHook: called on the store's pipeline threads — priming and
  /// post-roll on the writer (with the flusher drained), post-commit on
  /// the flusher at the durability barrier — but never from two threads
  /// at once. Never blocks on subscribers.
  void OnCommit(store::DocumentStore* store) override;

  /// ReplicationStreamer: serves one replica subscription until the
  /// connection breaks, `stop` turns true, or the stream position falls
  /// off the retained images.
  void ServeReplica(const std::vector<std::string>& request, int out_fd,
                    const std::atomic<bool>& stop) override;

  /// Latest commit point buffered (== shippable). Test/quiesce helper.
  store::CommitPoint committed() const;

  /// key=value fields for `--repl-status` on the primary.
  std::vector<std::string> StatusFields() const;

 private:
  /// Everything a generation needs to feed a subscriber: the snapshot
  /// that opens it and the journal image accumulated so far. `journal`
  /// always starts with the 8-byte file header, so offsets within it are
  /// the primary's journal *file* offsets.
  struct GenerationImage {
    uint64_t generation = 0;
    std::string snapshot;
    std::string journal;
    uint64_t records = 0;
  };

  /// True iff (bytes, records) is a frame boundary of `image.journal`
  /// with exactly `records` complete frames before it.
  static bool ValidBoundary(const GenerationImage& image, uint64_t bytes,
                            uint64_t records);

  /// Extends [begin, *end) over whole frames of `journal` until adding
  /// the next frame would exceed max_batch_bytes (always takes at least
  /// one frame); counts the frames taken into *records.
  static void SliceFrames(const std::string& journal, uint64_t begin,
                          uint64_t max_batch_bytes, uint64_t* end,
                          uint64_t* records);

  struct MetricCells {
    obs::Gauge* subscribers = nullptr;
    obs::Counter* snapshots_shipped = nullptr;
    obs::Counter* frames_shipped = nullptr;
    obs::Counter* bytes_shipped = nullptr;
    obs::Counter* commit_points = nullptr;
  };

  Options options_;
  MetricCells metrics_;

  mutable std::mutex mu_;
  std::condition_variable data_ready_;
  std::unique_ptr<store::JournalCursor> cursor_;  ///< Null until primed.
  std::string scheme_name_;
  GenerationImage current_;
  GenerationImage prev_;  ///< The last finished generation.
  bool prev_valid_ = false;
  store::CommitPoint committed_;
  common::Status error_;  ///< First cursor/snapshot failure; terminal.
  uint64_t subscribers_ = 0;
  uint64_t snapshots_shipped_ = 0;
};

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_SOURCE_H_
