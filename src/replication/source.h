#ifndef XMLUP_REPLICATION_SOURCE_H_
#define XMLUP_REPLICATION_SOURCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "concurrency/concurrent_store.h"
#include "concurrency/server.h"
#include "observability/metrics.h"
#include "replication/fence.h"
#include "store/document_store.h"
#include "store/journal_cursor.h"

namespace xmlup::replication {

/// The primary side of journal-shipping replication.
///
/// Plugged into a ConcurrentStore as its CommitHook, the source tails the
/// store's journal with a JournalCursor on the store's pipeline threads
/// (the flusher after every durable group commit, the writer around
/// checkpoints — never concurrently): after every
/// group commit it copies the newly committed frame bytes into an
/// in-memory image of the current generation's journal (offsets match the
/// primary's file offsets exactly), and on a checkpoint roll it keeps the
/// finished generation's image around so a subscriber mid-stream can
/// drain it before following the roll. Because the cursor never reads
/// past DocumentStore::LastCommitPoint(), nothing un-fsynced is ever
/// buffered, let alone shipped — acknowledged implies durable implies
/// (eventually) shipped, never the reverse.
///
/// Plugged into a Server as its ReplicationStreamer, each replica
/// connection runs ServeReplica on its own connection thread: it
/// validates the hello against the buffered images (frame-boundary
/// check) and the fence (see fence.h), streams `snapshot` chunks when the
/// replica needs full catch-up, then `frames`/`roll`/`commit-point`
/// messages composed under the source mutex and sent outside it — a slow
/// replica never blocks the writer thread, only its own connection.
///
/// With Options::sync_ship set, caught-up subscribers instead register
/// with the hook and OnCommit writes their frames inline, *before* the
/// store resolves the batch's futures — acknowledged then implies
/// already-written-to-every-connected-replica-socket, which is what lets
/// a failover after `kill -9` of the primary promote a replica that holds
/// every acknowledged write. The price is the inverse of the async
/// contract: a slow or wedged replica socket backpressures the commit
/// path. Off by default.
class ReplicationSource : public concurrency::CommitHook,
                          public concurrency::ReplicationStreamer {
 public:
  struct Options {
    /// Largest `frames` payload per message (cut at a frame boundary; a
    /// single oversized frame still ships whole).
    uint64_t max_batch_bytes = 1u << 20;
    /// Snapshot chunk size for catch-up transfers.
    uint64_t snapshot_chunk_bytes = 1u << 20;
    /// Caught-up subscribers get a commit-point heartbeat this often.
    uint64_t heartbeat_ms = 500;
    /// Fencing state the primary serves under (ReadFence of its store
    /// dir). Subscribers from older epochs are frame-fed only up to the
    /// fence point; subscribers from newer epochs are rejected.
    FenceToken fence;
    /// Semi-synchronous shipping: OnCommit writes committed frames to
    /// every registered subscriber socket before returning (see class
    /// comment). Off = classic async streaming on connection threads.
    bool sync_ship = false;
  };

  ReplicationSource();
  explicit ReplicationSource(Options options);

  /// CommitHook: called on the store's pipeline threads — priming and
  /// post-roll on the writer (with the flusher drained), post-commit on
  /// the flusher at the durability barrier — but never from two threads
  /// at once. Never blocks on subscribers unless sync_ship is set.
  void OnCommit(store::DocumentStore* store) override;

  /// ReplicationStreamer: serves one replica subscription until the
  /// connection breaks, `stop` turns true, the source is Close()d, or
  /// the stream position falls off the retained images.
  void ServeReplica(const std::vector<std::string>& request, int out_fd,
                    const std::atomic<bool>& stop) override;

  /// Terminates every subscription with a stream error and refuses new
  /// hellos — the demotion path: the caller is about to re-open the store
  /// directory as a replica and this source must never ship again.
  /// Connection threads may still be inside ServeReplica when this
  /// returns; keep the source alive until they drain (retire, don't
  /// delete).
  void Close();

  /// Latest commit point buffered (== shippable). Test/quiesce helper.
  store::CommitPoint committed() const;

  /// The fence epoch this source serves under.
  uint64_t fence_epoch() const;

  /// Installs a new fence (an idempotent re-promotion bumped the epoch on
  /// disk; keep serving decisions consistent with it).
  void SetFence(const FenceToken& fence);

  /// key=value fields for `--repl-status` on the primary.
  std::vector<std::string> StatusFields() const;

 private:
  /// Everything a generation needs to feed a subscriber: the snapshot
  /// that opens it and the journal image accumulated so far. `journal`
  /// always starts with the 8-byte file header, so offsets within it are
  /// the primary's journal *file* offsets.
  struct GenerationImage {
    uint64_t generation = 0;
    std::string snapshot;
    std::string journal;
    uint64_t records = 0;
  };

  /// One subscriber's position in the stream (journal file offsets).
  struct StreamPos {
    uint64_t generation = 0;
    uint64_t bytes = 0;
    uint64_t records = 0;
  };

  /// A subscriber registered for sync_ship: OnCommit owns writes to `fd`
  /// (under mu_) from registration until `failed` flips or the entry is
  /// removed; the connection thread just waits.
  struct SyncSubscriber {
    int fd = -1;
    StreamPos pos;
    store::CommitPoint last_commit;
    bool have_sent_commit = false;
    bool failed = false;
  };

  /// True iff (bytes, records) is a frame boundary of `image.journal`
  /// with exactly `records` complete frames before it.
  static bool ValidBoundary(const GenerationImage& image, uint64_t bytes,
                            uint64_t records);

  /// Extends [begin, *end) over whole frames of `journal` until adding
  /// the next frame would exceed max_batch_bytes (always takes at least
  /// one frame); counts the frames taken into *records.
  static void SliceFrames(const std::string& journal, uint64_t begin,
                          uint64_t max_batch_bytes, uint64_t* end,
                          uint64_t* records);

  /// Composes the next frames/roll message for `pos` and advances it.
  /// Returns false when the subscriber is caught up (no message). On a
  /// terminal condition (source error, closed, position fell off the
  /// retained images) composes an err message and sets *terminal. Caller
  /// holds mu_.
  bool ComposeNextLocked(StreamPos* pos, std::vector<std::string>* message,
                         bool* terminal, uint64_t* payload_bytes);

  /// Ships everything pending to one registered sync subscriber,
  /// inline on the caller's thread. Caller holds mu_. Marks the
  /// subscriber failed on a write error or terminal stream condition.
  void ShipSyncLocked(SyncSubscriber* sub);

  /// Records send metrics for one stream message.
  void CountSend(const std::vector<std::string>& message,
                 uint64_t payload_bytes);

  struct MetricCells {
    obs::Gauge* subscribers = nullptr;
    obs::Counter* snapshots_shipped = nullptr;
    obs::Counter* frames_shipped = nullptr;
    obs::Counter* bytes_shipped = nullptr;
    obs::Counter* commit_points = nullptr;
  };

  Options options_;
  MetricCells metrics_;

  mutable std::mutex mu_;
  std::condition_variable data_ready_;
  std::unique_ptr<store::JournalCursor> cursor_;  ///< Null until primed.
  std::string scheme_name_;
  GenerationImage current_;
  GenerationImage prev_;  ///< The last finished generation.
  bool prev_valid_ = false;
  store::CommitPoint committed_;
  common::Status error_;  ///< First cursor/snapshot failure; terminal.
  bool closed_ = false;   ///< Close() called; all streams terminate.
  FenceToken fence_;
  uint64_t subscribers_ = 0;
  uint64_t snapshots_shipped_ = 0;
  std::vector<SyncSubscriber*> sync_subs_;  ///< Registered sync_ship fds.
};

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_SOURCE_H_
