#ifndef XMLUP_REPLICATION_PROTOCOL_H_
#define XMLUP_REPLICATION_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xmlup::replication {

/// Journal-shipping replication, protocol version 1.
///
/// A replica opens a normal wire.h connection to the primary and sends
/// one handshake frame:
///
///   repl-hello <version> <scheme|-> <generation> <bytes> <records> [<epoch>]
///
/// where (generation, bytes, records) is the replica's durable position —
/// the store::CommitPoint it recovered to — and <scheme> is its store's
/// labelling scheme ("-" when the replica has no document yet). The
/// trailing <epoch> is the replica's fence epoch (see fence.h): how many
/// promotions of the replication group it has heard of. A hello without
/// the epoch field is accepted as epoch 0. The primary replies
/// "ok frames <epoch>" (the offset is a live frame boundary it still
/// retains and the position is not fenced off) or "ok snapshot <epoch>"
/// (the replica is behind the oldest retained generation, mid-frame,
/// empty, or past the fence point of an older epoch — full catch-up
/// required), where <epoch> is the primary's fence epoch (the replica
/// persists it if higher than its own); or "err <why>" (version/scheme
/// mismatch, or the hello's epoch is *newer* than the primary's — the
/// primary is a stale pre-failover survivor and must not serve). After
/// the reply the connection is a one-way stream of messages from the
/// primary:
///
///   snapshot <generation> <index> <count> <chunk>
///       One chunk of the generation-opening snapshot image, chunked to
///       stay under the wire frame cap. After chunk count-1 the replica
///       installs the image and starts a fresh journal.
///   frames <generation> <base_bytes> <base_records> <records> <payload>
///       Raw CRC-framed journal bytes, cut at frame boundaries, starting
///       at file offset base_bytes. Applied in memory first, then
///       appended verbatim to the replica's journal — the replica's
///       journal file is bit-identical to the primary's committed prefix.
///   roll <generation>
///       The primary checkpointed. The replica has (by stream order)
///       applied every frame of the previous generation, so its document
///       equals the primary's at the roll; it self-checkpoints — writes
///       its own snapshot, which is deterministic and therefore
///       bit-identical to the primary's — instead of downloading one.
///   commit-point <generation> <bytes> <records>
///       The primary's durable position: everything before it has been
///       streamed. Sent when the stream catches up and as a periodic
///       heartbeat; the replica fsyncs its journal and publishes the
///       position, so `repl.lag == 0` is observable at quiesce.
///   err <message>
///       The stream cannot continue (e.g. the subscribed generation was
///       checkpointed away mid-stream); reconnect and re-handshake.
///
/// Binary fields (snapshot chunks, frame payloads) travel through
/// wire.h's EscapeBinary, since 0x1F bytes inside them would otherwise
/// split fields.
inline constexpr uint64_t kReplProtocolVersion = 1;

inline constexpr char kReplVerbSnapshot[] = "snapshot";
inline constexpr char kReplVerbFrames[] = "frames";
inline constexpr char kReplVerbRoll[] = "roll";
inline constexpr char kReplVerbCommitPoint[] = "commit-point";

inline constexpr char kReplModeFrames[] = "frames";
inline constexpr char kReplModeSnapshot[] = "snapshot";

/// Scheme placeholder in a hello from a replica with no document yet.
inline constexpr char kReplNoScheme[] = "-";

/// Strict decimal uint64 parse (no sign, no leading '+', fits uint64).
inline bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_PROTOCOL_H_
