#ifndef XMLUP_REPLICATION_REPLICA_STORE_H_
#define XMLUP_REPLICATION_REPLICA_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "concurrency/read_view.h"
#include "core/labeled_document.h"
#include "labels/registry.h"
#include "store/document_store.h"
#include "store/file.h"

namespace xmlup::replication {

struct ReplicaStoreOptions {
  /// nullptr = the real POSIX file system. Not owned; must outlive the
  /// store. Tests pass a fault-injected MemFileSystem.
  store::FileSystem* fs = nullptr;
  labels::SchemeOptions scheme_options;
};

/// The replica's durable half: a directory with *exactly* the primary's
/// store layout (CURRENT / snapshot-N / journal-N), fed by the
/// replication stream instead of local mutations. Frames are applied to
/// the in-memory document FIRST — through the same ReplayJournalRecord
/// path recovery uses, outcome cross-checks included — and only then
/// appended verbatim to the journal file, so the journal never holds
/// bytes the document could not retrace, and its committed prefix is
/// bit-identical to the primary's.
///
/// Because the layout matches, everything that reads a store directory
/// works on a replica unchanged: DocumentStore::Open (recovery after a
/// replica crash — including truncating a torn tail left by one),
/// `xmlup info`, `xmlup cat`. ReplicaStore::Open is that same recovery,
/// minus taking over as a writer.
///
/// Not thread-safe: the replication applier owns it on one thread and
/// publishes immutable ReadViews for everyone else.
class ReplicaStore {
 public:
  /// Opens `dir`, running crash recovery (torn journal tails are
  /// truncated in place and replay is outcome-checked). A directory with
  /// no CURRENT file opens empty: has_document() is false and position()
  /// is the zero commit point, which a hello encodes as "send me a
  /// snapshot".
  static common::Result<std::unique_ptr<ReplicaStore>> Open(
      const std::string& dir, const ReplicaStoreOptions& options = {});

  bool has_document() const { return doc_ != nullptr; }
  const core::LabeledDocument& document() const { return *doc_; }
  /// Registry name of the labelling scheme, or "" while empty.
  const std::string& scheme_name() const { return scheme_name_; }
  const std::string& dir() const { return dir_; }

  /// The replica's applied position: generation plus journal file
  /// offset/record count. After Sync() it is also the durable position —
  /// the triple the next hello sends.
  store::CommitPoint position() const { return position_; }

  /// Installs a full snapshot image as generation `generation`: the
  /// catch-up path. Validates the image by loading it BEFORE touching
  /// disk, then writes snapshot + fresh journal + CURRENT (atomic rename,
  /// directory syncs) and deletes the previous generation's files.
  common::Status InstallSnapshot(uint64_t generation,
                                 std::string_view snapshot_bytes);

  /// Applies one `frames` payload: raw CRC-framed journal bytes starting
  /// at file offset `base_bytes` (which must equal the current position —
  /// the stream is strictly sequential). Every frame is CRC-checked,
  /// decoded, and replayed in memory first; only then is the payload
  /// appended to the journal file. Any failure marks the store broken:
  /// the caller reopens from disk, which recovers to the last good state.
  common::Status AppendFrames(uint64_t generation, uint64_t base_bytes,
                              uint64_t base_records,
                              std::string_view payload);

  /// Follows a primary checkpoint: writes the replica's OWN snapshot of
  /// the fully-applied document as generation `generation` (SaveSnapshot
  /// is deterministic, so the image is bit-identical to the primary's),
  /// starts a fresh journal, commits CURRENT, deletes the old generation,
  /// and reloads the document from the new snapshot so arena-id
  /// compaction matches the primary's post-checkpoint id space.
  common::Status Roll(uint64_t generation);

  /// Durability barrier: fsyncs the journal. Called at commit-point
  /// markers, mirroring the primary's group-commit barrier.
  common::Status Sync();

  /// Builds an immutable ReadView of the current document (replica
  /// publication path). Requires has_document().
  common::Result<std::shared_ptr<const concurrency::ReadView>> BuildView(
      uint64_t epoch) const;

 private:
  ReplicaStore(std::string dir, store::FileSystem* fs,
               ReplicaStoreOptions options);

  common::Status WriteFileAtomic(const std::string& name,
                                 std::string_view contents);
  /// Commits generation `generation` whose snapshot image is
  /// `snapshot_bytes` (already durably written): fresh journal, CURRENT,
  /// old-generation cleanup, document reload from the image.
  common::Status CommitGeneration(uint64_t generation,
                                  std::string_view snapshot_bytes,
                                  uint64_t previous_generation);

  std::string dir_;
  store::FileSystem* fs_;
  ReplicaStoreOptions options_;
  std::string scheme_name_;
  std::unique_ptr<labels::LabelingScheme> scheme_;
  std::unique_ptr<core::LabeledDocument> doc_;
  std::unique_ptr<store::WritableFile> journal_;
  store::CommitPoint position_;
  /// Set on the first apply/roll/install failure; every later call
  /// refuses, so a half-applied state can never be extended.
  common::Status broken_;
};

}  // namespace xmlup::replication

#endif  // XMLUP_REPLICATION_REPLICA_STORE_H_
