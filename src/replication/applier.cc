#include "replication/applier.h"

#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "concurrency/server.h"
#include "concurrency/wire.h"
#include "replication/fence.h"
#include "replication/protocol.h"

namespace xmlup::replication {

using common::Result;
using common::Status;
using concurrency::ReadFrame;
using concurrency::UnescapeBinary;
using concurrency::WriteFrame;

ReplicaApplier::ReplicaApplier(std::string dir, std::string primary_socket,
                               ReplicaApplierOptions options)
    : dir_(std::move(dir)),
      primary_socket_(std::move(primary_socket)),
      options_(std::move(options)) {
  obs::Registry& reg = obs::GlobalMetrics();
  metrics_.apply_ns = reg.GetHistogram("repl.apply_ns");
  metrics_.frames_received = reg.GetCounter("repl.frames_received");
  metrics_.bytes_received =
      reg.GetCounter("repl.bytes_received", obs::Unit::kBytes);
  metrics_.records_applied = reg.GetCounter("repl.records_applied");
  metrics_.snapshots_installed = reg.GetCounter("repl.snapshots_installed");
  metrics_.rolls = reg.GetCounter("repl.rolls");
  metrics_.commit_points = reg.GetCounter("repl.commit_points");
  metrics_.reconnects = reg.GetCounter("repl.reconnects");
  metrics_.lag_bytes = reg.GetGauge("repl.lag_bytes");
  metrics_.lag_records = reg.GetGauge("repl.lag_records");
}

Result<std::unique_ptr<ReplicaApplier>> ReplicaApplier::Start(
    const std::string& dir, const std::string& primary_socket,
    const ReplicaApplierOptions& options) {
  // A primary vanishing mid-write must surface as an error on the applier
  // thread, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<ReplicaApplier> applier(
      new ReplicaApplier(dir, primary_socket, options));
  XMLUP_ASSIGN_OR_RETURN(applier->store_,
                         ReplicaStore::Open(dir, options.store));
  XMLUP_ASSIGN_OR_RETURN(const FenceToken fence,
                         ReadFence(options.store.fs, dir));
  applier->fence_epoch_ = fence.epoch;
  applier->status_.fence_epoch = fence.epoch;
  applier->status_.applied = applier->store_->position();
  if (applier->store_->has_document()) {
    // Serve stale-but-consistent reads from the recovered state right
    // away; the stream will advance the view as catch-up progresses.
    XMLUP_RETURN_NOT_OK(applier->PublishView());
  }
  applier->thread_ = std::thread([raw = applier.get()] { raw->Run(); });
  return applier;
}

ReplicaApplier::~ReplicaApplier() { Stop(); }

void ReplicaApplier::Stop() {
  stopping_.store(true);
  {
    // Wake a backoff sleep; an in-flight read is woken by the shutdown.
    std::lock_guard<std::mutex> lock(status_mu_);
    status_changed_.notify_all();
  }
  const int fd = conn_fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (store_ != nullptr) (void)store_->Sync();
}

std::shared_ptr<const concurrency::ReadView> ReplicaApplier::PinView() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

ReplicaStatus ReplicaApplier::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

std::vector<std::string> ReplicaApplier::StatusFields() const {
  ReplicaStatus s = status();
  std::vector<std::string> fields;
  fields.push_back("role=replica");
  fields.push_back(std::string("connected=") + (s.connected ? "1" : "0"));
  fields.push_back(std::string("has_view=") + (s.has_view ? "1" : "0"));
  fields.push_back("generation=" + std::to_string(s.applied.generation));
  fields.push_back("applied_bytes=" + std::to_string(s.applied.bytes));
  fields.push_back("applied_records=" + std::to_string(s.applied.records));
  fields.push_back("primary_generation=" +
                   std::to_string(s.primary.generation));
  fields.push_back("primary_bytes=" + std::to_string(s.primary.bytes));
  fields.push_back("primary_records=" + std::to_string(s.primary.records));
  fields.push_back("lag_bytes=" + std::to_string(s.lag_bytes));
  fields.push_back("lag_records=" + std::to_string(s.lag_records));
  fields.push_back("reconnects=" + std::to_string(s.reconnects));
  fields.push_back("snapshots_installed=" +
                   std::to_string(s.snapshots_installed));
  fields.push_back("rolls=" + std::to_string(s.rolls));
  fields.push_back("commit_points=" + std::to_string(s.commit_points));
  fields.push_back("fence_epoch=" + std::to_string(s.fence_epoch));
  if (!s.last_error.empty()) {
    fields.push_back("last_error=" + s.last_error);
  }
  return fields;
}

bool ReplicaApplier::WaitForPosition(const store::CommitPoint& target,
                                     uint64_t timeout_ms) const {
  auto reached = [&] {
    const store::CommitPoint& applied = status_.applied;
    return applied.generation > target.generation ||
           (applied.generation == target.generation &&
            applied.bytes >= target.bytes);
  };
  std::unique_lock<std::mutex> lock(status_mu_);
  return status_changed_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), reached);
}

void ReplicaApplier::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(status_mu_);
  status_.last_error = status.ToString();
  status_changed_.notify_all();
}

void ReplicaApplier::ReopenStore() {
  // Disk recovery is the one resync lever: whatever the session left —
  // a torn journal tail, a half-received snapshot, a document ahead of
  // its journal — reopening rebuilds the last consistent durable state,
  // and the next hello tells the primary where that is.
  snapshot_buffer_.clear();
  store_.reset();
  Result<std::unique_ptr<ReplicaStore>> reopened =
      ReplicaStore::Open(dir_, options_.store);
  if (!reopened.ok()) {
    RecordError(reopened.status());
    return;
  }
  store_ = std::move(*reopened);
  std::lock_guard<std::mutex> lock(status_mu_);
  status_.applied = store_->position();
  status_changed_.notify_all();
}

void ReplicaApplier::Run() {
  uint64_t backoff_ms = options_.backoff_initial_ms;
  bool connected_once = false;
  while (!stopping_.load()) {
    if (store_ == nullptr) ReopenStore();
    if (store_ != nullptr) {
      session_progress_ = false;
      RunSession(&connected_once);
      if (session_progress_) backoff_ms = options_.backoff_initial_ms;
    }
    if (stopping_.load()) break;
    {
      std::unique_lock<std::mutex> lock(status_mu_);
      status_changed_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                               [this] { return stopping_.load(); });
    }
    backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
  }
}

void ReplicaApplier::RunSession(bool* connected_once) {
  Result<int> connected = concurrency::DialEndpoint(primary_socket_);
  if (!connected.ok()) {
    RecordError(connected.status());
    return;
  }
  const int fd = *connected;
  conn_fd_.store(fd);
  if (*connected_once) {
    metrics_.reconnects->Add(1);
    std::lock_guard<std::mutex> lock(status_mu_);
    ++status_.reconnects;
  }
  *connected_once = true;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.connected = true;
    status_changed_.notify_all();
  }

  // Handshake with the recovered durable position; the primary decides
  // between tailing frames and a full snapshot.
  const store::CommitPoint position = store_->position();
  const std::string scheme = store_->has_document()
                                 ? store_->scheme_name()
                                 : std::string(kReplNoScheme);
  std::vector<std::string> hello = options_.hello_prefix;
  hello.insert(hello.end(),
               {concurrency::kReplicationHelloVerb,
                std::to_string(kReplProtocolVersion), scheme,
                std::to_string(position.generation),
                std::to_string(position.bytes),
                std::to_string(position.records),
                std::to_string(fence_epoch_)});
  bool session_ok = WriteFrame(fd, hello).ok();
  if (session_ok) {
    Result<std::optional<std::vector<std::string>>> reply = ReadFrame(fd);
    if (!reply.ok() || !reply->has_value() || (*reply)->empty() ||
        (**reply)[0] != "ok") {
      if (reply.ok() && reply->has_value() && (*reply)->size() >= 2 &&
          (**reply)[0] == "err") {
        RecordError(Status::Unsupported("primary rejected hello: " +
                                        (**reply)[1]));
      } else if (!reply.ok()) {
        RecordError(reply.status());
      } else {
        RecordError(Status::Internal("primary closed during handshake"));
      }
      session_ok = false;
    } else {
      // The reply carries the primary's fence epoch; persist a higher one
      // so a later promotion of *this* replica fences the right epoch and
      // a rejoining stale primary can never serve us.
      uint64_t primary_epoch = 0;
      if ((*reply)->size() >= 3 &&
          ParseU64((**reply)[2], &primary_epoch) &&
          primary_epoch > fence_epoch_) {
        Status persisted = WriteFence(options_.store.fs, dir_,
                                      FenceToken{primary_epoch, {}});
        if (!persisted.ok()) {
          // Serving can continue — the epoch is re-learned on the next
          // hello — but the failure is worth surfacing.
          RecordError(persisted);
        } else {
          fence_epoch_ = primary_epoch;
          std::lock_guard<std::mutex> lock(status_mu_);
          status_.fence_epoch = primary_epoch;
        }
      }
    }
  }
  snapshot_buffer_.clear();
  while (session_ok && !stopping_.load()) {
    Result<std::optional<std::vector<std::string>>> frame = ReadFrame(fd);
    if (!frame.ok()) {
      if (!stopping_.load()) RecordError(frame.status());
      break;
    }
    if (!frame->has_value()) break;  // primary closed cleanly
    if (!ApplyMessage(**frame)) break;
  }
  conn_fd_.store(-1);
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.connected = false;
    status_changed_.notify_all();
  }
}

Status ReplicaApplier::PublishView() {
  XMLUP_ASSIGN_OR_RETURN(std::shared_ptr<const concurrency::ReadView> view,
                         store_->BuildView(next_epoch_));
  ++next_epoch_;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  status_.has_view = true;
  status_changed_.notify_all();
  return Status::Ok();
}

bool ReplicaApplier::ApplyMessage(const std::vector<std::string>& message) {
  if (message.empty()) {
    RecordError(Status::ParseError("empty replication message"));
    return false;
  }
  const std::string& verb = message[0];
  // A local store/apply failure is handled the same way everywhere:
  // record it, reopen from disk (recovering the last consistent state),
  // and end the session so the next hello renegotiates.
  auto fail_session = [this](const Status& status) {
    RecordError(status);
    ReopenStore();
    return false;
  };

  if (verb == kReplVerbSnapshot) {
    uint64_t generation, index, count;
    if (message.size() != 5 || !ParseU64(message[1], &generation) ||
        !ParseU64(message[2], &index) || !ParseU64(message[3], &count) ||
        count == 0 || index >= count) {
      RecordError(Status::ParseError("malformed snapshot message"));
      return false;
    }
    Result<std::string> chunk = UnescapeBinary(message[4]);
    if (!chunk.ok()) {
      RecordError(chunk.status());
      return false;
    }
    if (index == 0) snapshot_buffer_.clear();
    snapshot_buffer_ += *chunk;
    metrics_.bytes_received->Add(chunk->size());
    if (index + 1 < count) return true;
    Status installed;
    {
      XMLUP_SCOPED_TIMER(metrics_.apply_ns);
      installed = store_->InstallSnapshot(generation, snapshot_buffer_);
    }
    snapshot_buffer_.clear();
    if (!installed.ok()) return fail_session(installed);
    metrics_.snapshots_installed->Add(1);
    session_progress_ = true;
    // Publish before advertising the position: a WaitForPosition waiter
    // that wakes at this position must be able to pin a view covering it.
    Status published = PublishView();
    if (!published.ok()) return fail_session(published);
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      status_.applied = store_->position();
      ++status_.snapshots_installed;
      status_changed_.notify_all();
    }
    return true;
  }

  if (verb == kReplVerbFrames) {
    uint64_t generation, base_bytes, base_records, records;
    if (message.size() != 6 || !ParseU64(message[1], &generation) ||
        !ParseU64(message[2], &base_bytes) ||
        !ParseU64(message[3], &base_records) ||
        !ParseU64(message[4], &records)) {
      RecordError(Status::ParseError("malformed frames message"));
      return false;
    }
    Result<std::string> payload = UnescapeBinary(message[5]);
    if (!payload.ok()) {
      RecordError(payload.status());
      return false;
    }
    Status applied;
    {
      XMLUP_SCOPED_TIMER(metrics_.apply_ns);
      applied = store_->AppendFrames(generation, base_bytes, base_records,
                                     *payload);
    }
    if (!applied.ok()) return fail_session(applied);
    if (store_->position().records != base_records + records) {
      return fail_session(Status::Internal(
          "frames payload record count does not match its header"));
    }
    metrics_.frames_received->Add(1);
    metrics_.bytes_received->Add(payload->size());
    metrics_.records_applied->Add(records);
    session_progress_ = true;
    // Publish before advertising the position (see the snapshot branch).
    Status published = PublishView();
    if (!published.ok()) return fail_session(published);
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      status_.applied = store_->position();
      status_changed_.notify_all();
    }
    return true;
  }

  if (verb == kReplVerbRoll) {
    uint64_t generation;
    if (message.size() != 2 || !ParseU64(message[1], &generation)) {
      RecordError(Status::ParseError("malformed roll message"));
      return false;
    }
    Status rolled;
    {
      XMLUP_SCOPED_TIMER(metrics_.apply_ns);
      rolled = store_->Roll(generation);
    }
    if (!rolled.ok()) return fail_session(rolled);
    metrics_.rolls->Add(1);
    session_progress_ = true;
    // The document is unchanged by a roll (only its on-disk generation
    // moved), so the published view stays valid as-is.
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.applied = store_->position();
    ++status_.rolls;
    status_changed_.notify_all();
    return true;
  }

  if (verb == kReplVerbCommitPoint) {
    store::CommitPoint primary;
    if (message.size() != 4 || !ParseU64(message[1], &primary.generation) ||
        !ParseU64(message[2], &primary.bytes) ||
        !ParseU64(message[3], &primary.records)) {
      RecordError(Status::ParseError("malformed commit-point message"));
      return false;
    }
    // The primary's durable position: make everything applied so far
    // durable here too (the replica-side group-commit barrier).
    Status synced = store_->Sync();
    if (!synced.ok()) return fail_session(synced);
    metrics_.commit_points->Add(1);
    session_progress_ = true;
    std::lock_guard<std::mutex> lock(status_mu_);
    status_.primary = primary;
    ++status_.commit_points;
    const store::CommitPoint& applied = status_.applied;
    if (applied.generation == primary.generation) {
      status_.lag_bytes =
          primary.bytes > applied.bytes ? primary.bytes - applied.bytes : 0;
      status_.lag_records = primary.records > applied.records
                                ? primary.records - applied.records
                                : 0;
    } else if (applied.generation > primary.generation) {
      // A stale heartbeat racing a roll; the next one catches up.
      status_.lag_bytes = 0;
      status_.lag_records = 0;
    } else {
      // Behind a roll: the local offset is not comparable, so report the
      // primary's whole journal as outstanding until the roll applies.
      status_.lag_bytes = primary.bytes;
      status_.lag_records = primary.records;
    }
    metrics_.lag_bytes->Set(static_cast<int64_t>(status_.lag_bytes));
    metrics_.lag_records->Set(static_cast<int64_t>(status_.lag_records));
    status_changed_.notify_all();
    return true;
  }

  if (verb == "err") {
    RecordError(Status::Internal(
        message.size() >= 2 ? "stream error from primary: " + message[1]
                            : "stream error from primary"));
    return false;
  }

  RecordError(Status::ParseError("unknown replication verb: " + verb));
  return false;
}

}  // namespace xmlup::replication
