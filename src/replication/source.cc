#include "replication/source.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "concurrency/wire.h"
#include "replication/protocol.h"
#include "store/journal.h"

namespace xmlup::replication {

using common::Result;
using common::Status;
using concurrency::EscapeBinary;
using concurrency::WriteFrame;

namespace {

uint32_t ReadLe32(const std::string& bytes, uint64_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

}  // namespace

ReplicationSource::ReplicationSource() : ReplicationSource(Options()) {}

ReplicationSource::ReplicationSource(Options options)
    : options_(std::move(options)) {
  obs::Registry& reg = obs::GlobalMetrics();
  metrics_.subscribers = reg.GetGauge("repl.src.subscribers");
  metrics_.snapshots_shipped = reg.GetCounter("repl.src.snapshots_shipped");
  metrics_.frames_shipped = reg.GetCounter("repl.src.frames_shipped");
  metrics_.bytes_shipped =
      reg.GetCounter("repl.src.bytes_shipped", obs::Unit::kBytes);
  metrics_.commit_points = reg.GetCounter("repl.src.commit_points");
}

void ReplicationSource::OnCommit(store::DocumentStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_.ok()) return;
  if (cursor_ == nullptr) {
    // Priming call: the store is quiescent and fully recovered. Capture
    // the generation-opening snapshot; the cursor starts at the head of
    // the current journal, so the first Poll below returns the whole
    // committed body.
    scheme_name_ = store->scheme().traits().name;
    const uint64_t generation = store->LastCommitPoint().generation;
    Result<std::string> snapshot = store->file_system()->ReadFile(
        store->dir() + "/" + store::SnapshotFileName(generation));
    if (!snapshot.ok()) {
      error_ = snapshot.status();
      data_ready_.notify_all();
      return;
    }
    current_.generation = generation;
    current_.snapshot = *std::move(snapshot);
    current_.journal = store::JournalFileHeader();
    current_.records = 0;
    cursor_ = std::make_unique<store::JournalCursor>(store);
  }
  Result<store::JournalCursor::Batch> batch = cursor_->Poll();
  if (!batch.ok()) {
    // Committed bytes vanished under the cursor — nothing sane can be
    // shipped from here on; subscribers are told to resync elsewhere.
    error_ = batch.status();
    data_ready_.notify_all();
    return;
  }
  if (batch->rolled) {
    // Keep the finished generation so a subscriber mid-stream can drain
    // its tail and follow the roll instead of resyncing from scratch.
    prev_ = std::move(current_);
    prev_valid_ = true;
    Result<std::string> snapshot = store->file_system()->ReadFile(
        store->dir() + "/" + store::SnapshotFileName(batch->generation));
    if (!snapshot.ok()) {
      error_ = snapshot.status();
      data_ready_.notify_all();
      return;
    }
    current_.generation = batch->generation;
    current_.snapshot = *std::move(snapshot);
    current_.journal = store::JournalFileHeader();
    current_.records = 0;
  }
  if (batch->base_bytes != current_.journal.size()) {
    error_ = Status::Internal(
        "journal cursor position diverged from the buffered image");
    data_ready_.notify_all();
    return;
  }
  current_.journal += batch->payload;
  current_.records += batch->records;
  committed_ = cursor_->position();
  data_ready_.notify_all();
}

bool ReplicationSource::ValidBoundary(const GenerationImage& image,
                                      uint64_t bytes, uint64_t records) {
  if (bytes < store::kJournalHeaderSize) return false;
  if (bytes > image.journal.size()) return false;
  // Walk frame headers from the journal head; complete frames only (the
  // image holds nothing but committed whole frames), so this terminates
  // exactly at a boundary or overshoots a mid-frame offset.
  uint64_t offset = store::kJournalHeaderSize;
  uint64_t count = 0;
  while (offset < bytes) {
    const uint64_t frame =
        store::kFrameHeaderSize + ReadLe32(image.journal, offset);
    offset += frame;
    ++count;
  }
  return offset == bytes && count == records;
}

void ReplicationSource::SliceFrames(const std::string& journal,
                                    uint64_t begin, uint64_t max_batch_bytes,
                                    uint64_t* end, uint64_t* records) {
  uint64_t offset = begin;
  uint64_t count = 0;
  while (offset < journal.size()) {
    const uint64_t frame =
        store::kFrameHeaderSize + ReadLe32(journal, offset);
    if (count > 0 && offset + frame - begin > max_batch_bytes) break;
    offset += frame;
    ++count;
  }
  *end = offset;
  *records = count;
}

store::CommitPoint ReplicationSource::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

std::vector<std::string> ReplicationSource::StatusFields() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> fields;
  fields.push_back("role=primary");
  fields.push_back("scheme=" + scheme_name_);
  fields.push_back("generation=" + std::to_string(committed_.generation));
  fields.push_back("committed_bytes=" + std::to_string(committed_.bytes));
  fields.push_back("committed_records=" +
                   std::to_string(committed_.records));
  fields.push_back("subscribers=" + std::to_string(subscribers_));
  fields.push_back("snapshots_shipped=" +
                   std::to_string(snapshots_shipped_));
  if (!error_.ok()) fields.push_back("error=" + error_.ToString());
  return fields;
}

void ReplicationSource::ServeReplica(const std::vector<std::string>& request,
                                     int out_fd,
                                     const std::atomic<bool>& stop) {
  auto fail = [out_fd](const std::string& message) {
    (void)WriteFrame(out_fd, {"err", message});
  };
  if (request.size() != 6) {
    fail("malformed hello: want <verb> <version> <scheme> <generation> "
         "<bytes> <records>");
    return;
  }
  uint64_t version, hello_gen, hello_bytes, hello_records;
  if (!ParseU64(request[1], &version) || !ParseU64(request[3], &hello_gen) ||
      !ParseU64(request[4], &hello_bytes) ||
      !ParseU64(request[5], &hello_records)) {
    fail("malformed hello: non-numeric position field");
    return;
  }
  if (version != kReplProtocolVersion) {
    fail("protocol version mismatch: primary speaks " +
         std::to_string(kReplProtocolVersion));
    return;
  }
  const std::string& hello_scheme = request[2];

  // Decide the catch-up mode under the lock; copy what the snapshot path
  // needs so the bulk transfer runs without holding it.
  bool send_snapshot = false;
  std::string snapshot_image;
  // The subscriber's stream position (journal file offsets).
  uint64_t pos_gen, pos_bytes, pos_records;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (cursor_ == nullptr) {
      lock.unlock();
      fail("replication source is not attached to a store yet");
      return;
    }
    if (!error_.ok()) {
      const std::string message = error_.ToString();
      lock.unlock();
      fail(message);
      return;
    }
    if (hello_scheme != kReplNoScheme && hello_scheme != scheme_name_) {
      const std::string message =
          "scheme mismatch: primary uses " + scheme_name_;
      lock.unlock();
      fail(message);
      return;
    }
    if (hello_gen == current_.generation &&
        ValidBoundary(current_, hello_bytes, hello_records)) {
      pos_gen = current_.generation;
      pos_bytes = hello_bytes;
      pos_records = hello_records;
    } else if (prev_valid_ && hello_gen == prev_.generation &&
               ValidBoundary(prev_, hello_bytes, hello_records)) {
      pos_gen = prev_.generation;
      pos_bytes = hello_bytes;
      pos_records = hello_records;
    } else {
      // Empty replica, a generation no longer retained, or an offset that
      // is not a frame boundary we recognise: full snapshot catch-up.
      send_snapshot = true;
      snapshot_image = current_.snapshot;
      pos_gen = current_.generation;
      pos_bytes = store::kJournalHeaderSize;
      pos_records = 0;
    }
    ++subscribers_;
    if (send_snapshot) ++snapshots_shipped_;
  }
  metrics_.subscribers->Add(1);
  struct SubscriberGuard {
    ReplicationSource* source;
    ~SubscriberGuard() {
      source->metrics_.subscribers->Add(-1);
      std::lock_guard<std::mutex> lock(source->mu_);
      --source->subscribers_;
    }
  } guard{this};

  if (!WriteFrame(out_fd, {"ok", send_snapshot ? kReplModeSnapshot
                                               : kReplModeFrames})
           .ok()) {
    return;
  }

  if (send_snapshot) {
    metrics_.snapshots_shipped->Add(1);
    const uint64_t chunk_size = std::max<uint64_t>(
        options_.snapshot_chunk_bytes, 1);
    const uint64_t chunks =
        std::max<uint64_t>((snapshot_image.size() + chunk_size - 1) /
                               chunk_size,
                           1);
    for (uint64_t i = 0; i < chunks; ++i) {
      if (stop.load()) return;
      const uint64_t begin = i * chunk_size;
      const uint64_t len =
          std::min<uint64_t>(chunk_size, snapshot_image.size() - begin);
      std::vector<std::string> message = {
          kReplVerbSnapshot, std::to_string(pos_gen), std::to_string(i),
          std::to_string(chunks),
          EscapeBinary(std::string_view(snapshot_image).substr(begin, len))};
      if (!WriteFrame(out_fd, message).ok()) return;
      metrics_.bytes_shipped->Add(len);
    }
    snapshot_image.clear();
  }

  // The streaming loop: compose one message under the lock, send it
  // outside. last_sent_commit suppresses duplicate commit-points while
  // new data keeps arriving; the heartbeat timeout re-sends one anyway so
  // an idle replica still observes a live, lag-zero primary.
  store::CommitPoint last_sent_commit;
  bool have_sent_commit = false;
  while (!stop.load()) {
    std::vector<std::string> message;
    bool terminal = false;
    uint64_t payload_bytes = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!error_.ok()) {
        message = {"err", error_.ToString()};
        terminal = true;
      } else if (pos_gen == current_.generation) {
        if (pos_bytes < current_.journal.size()) {
          uint64_t end, records;
          SliceFrames(current_.journal, pos_bytes, options_.max_batch_bytes,
                      &end, &records);
          message = {kReplVerbFrames,
                     std::to_string(pos_gen),
                     std::to_string(pos_bytes),
                     std::to_string(pos_records),
                     std::to_string(records),
                     EscapeBinary(std::string_view(current_.journal)
                                      .substr(pos_bytes, end - pos_bytes))};
          payload_bytes = end - pos_bytes;
          pos_bytes = end;
          pos_records += records;
        } else {
          // Caught up: announce the commit point once per position, then
          // heartbeat. The wait releases the lock until the writer thread
          // commits more frames (or the heartbeat expires).
          if (!have_sent_commit || !(last_sent_commit == committed_)) {
            message = {kReplVerbCommitPoint,
                       std::to_string(committed_.generation),
                       std::to_string(committed_.bytes),
                       std::to_string(committed_.records)};
            last_sent_commit = committed_;
            have_sent_commit = true;
          } else {
            data_ready_.wait_for(
                lock, std::chrono::milliseconds(options_.heartbeat_ms));
            if (pos_bytes >= current_.journal.size() &&
                pos_gen == current_.generation && error_.ok()) {
              // Nothing new: heartbeat the same commit point.
              message = {kReplVerbCommitPoint,
                         std::to_string(committed_.generation),
                         std::to_string(committed_.bytes),
                         std::to_string(committed_.records)};
            } else {
              continue;  // recompose against the new state
            }
          }
        }
      } else if (prev_valid_ && pos_gen == prev_.generation) {
        if (pos_bytes < prev_.journal.size()) {
          uint64_t end, records;
          SliceFrames(prev_.journal, pos_bytes, options_.max_batch_bytes,
                      &end, &records);
          message = {kReplVerbFrames,
                     std::to_string(pos_gen),
                     std::to_string(pos_bytes),
                     std::to_string(pos_records),
                     std::to_string(records),
                     EscapeBinary(std::string_view(prev_.journal)
                                      .substr(pos_bytes, end - pos_bytes))};
          payload_bytes = end - pos_bytes;
          pos_bytes = end;
          pos_records += records;
        } else {
          // The subscriber drained the finished generation: its document
          // now equals the primary's at the checkpoint, so it can roll by
          // writing its own (deterministic, bit-identical) snapshot.
          message = {kReplVerbRoll, std::to_string(current_.generation)};
          pos_gen = current_.generation;
          pos_bytes = store::kJournalHeaderSize;
          pos_records = 0;
        }
      } else {
        // More than one checkpoint passed while this subscriber lagged;
        // the bytes it needs are gone. Reconnecting gets it a snapshot.
        message = {"err", "generation " + std::to_string(pos_gen) +
                              " is no longer retained; reconnect for a "
                              "snapshot"};
        terminal = true;
      }
    }
    if (!WriteFrame(out_fd, message).ok()) return;
    if (message[0] == kReplVerbFrames) {
      metrics_.frames_shipped->Add(1);
      metrics_.bytes_shipped->Add(payload_bytes);
    } else if (message[0] == kReplVerbCommitPoint) {
      metrics_.commit_points->Add(1);
    }
    if (terminal) return;
  }
}

}  // namespace xmlup::replication
